// casurf_report — human/CI consumer for the observability artifacts:
//
//   casurf_report report.json              phase breakdown of one run report
//   casurf_report a.json b.json            A/B delta table (percent change)
//   casurf_report --trace trace.json       summarize a Chrome-trace file
//   casurf_report --comm report.json       per-rank wait/compute breakdown
//   casurf_report --merge-traces OUT IN..  stitch per-process traces into one
//
// Accepts both `casurf_run --metrics` reports and the BENCH_*.json files the
// benchmarks drop in bench_out/ (same "casurf-run-report/1" schema). Exits 0
// on success, 1 on unreadable/malformed input, 2 on usage errors.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "io/atomic_file.hpp"
#include "obs/json.hpp"
#include "obs/prom.hpp"
#include "serve/http.hpp"

using casurf::obs::json::Value;

namespace {

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s [--trace|--events|--comm] FILE [FILE2]\n"
               "       %s --merge-traces OUT IN [IN...]\n"
               "       %s --serve PORT\n"
               "  FILE           a casurf-run-report/1 JSON (casurf_run --metrics,\n"
               "                 or a BENCH_*.json from bench_out/)\n"
               "  FILE FILE2     print an A/B comparison with percent deltas\n"
               "  --trace FILE   summarize a casurf-trace/1 Chrome-trace JSON\n"
               "  --comm FILE    communication breakdown of one run report:\n"
               "                 per-rank wait fractions, per-edge traffic, and\n"
               "                 measured-vs-cost-model message/byte counts\n"
               "  --merge-traces OUT IN [IN...]\n"
               "                 merge casurf-trace/1 files from one machine\n"
               "                 (daemon + workers) into OUT, one pid per input,\n"
               "                 timestamps aligned on the shared steady clock\n"
               "  --events FILE  timeline of a casurf-events/1 journal\n"
               "                 (a job's events.jsonl, or the daemon's)\n"
               "  --serve PORT   live fleet table from a casurf_serve daemon on\n"
               "                 127.0.0.1:PORT (/stats plus /metrics latency\n"
               "                 percentiles when the build exposes them)\n",
               argv0, argv0, argv0);
  std::exit(error ? 2 : 0);
}

struct TimerRow {
  std::uint64_t count = 0;
  double total_ns = 0;
  double mean_ns = 0;
  double max_ns = 0;
};

struct Report {
  std::string path;
  Value doc;
  std::map<std::string, TimerRow> timers;
  std::map<std::string, double> counters;
  double wall_seconds = 0;
  double trials = 0;
  bool has_spatial = false;
  double spatial_imbalance = 0;
  double seam_ratio = 0;
};

Value load_json(const std::string& path) {
  try {
    return Value::parse(casurf::io::read_file(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    std::exit(1);
  }
}

Report load_report(const std::string& path) {
  Report r;
  r.path = path;
  r.doc = load_json(path);
  if (r.doc.string_or("schema", "") != "casurf-run-report/1") {
    std::fprintf(stderr, "error: %s: not a casurf-run-report/1 document\n",
                 path.c_str());
    std::exit(1);
  }
  try {
    if (const Value* m = r.doc.find("metrics")) {
      if (const Value* timers = m->find("timers")) {
        for (const auto& [name, t] : timers->members()) {
          TimerRow row;
          row.count = t.at("count").as_u64();
          row.total_ns = t.at("total_ns").as_number();
          row.mean_ns = t.number_or("mean_ns", 0);
          row.max_ns = t.at("max_ns").as_number();
          r.timers.emplace(name, row);
        }
      }
      if (const Value* counters = m->find("counters")) {
        for (const auto& [name, c] : counters->members()) {
          r.counters.emplace(name, c.as_number());
        }
      }
    }
    if (const Value* run = r.doc.find("run")) {
      r.wall_seconds = run->number_or("wall_seconds", 0);
    }
    if (const Value* c = r.doc.find("counters")) {
      r.trials = c->number_or("trials", 0);
    }
    if (const Value* sp = r.doc.find("spatial"); sp != nullptr && sp->is_object()) {
      r.has_spatial = true;
      r.spatial_imbalance = sp->number_or("chunk_fire_imbalance", 1.0);
      r.seam_ratio = sp->number_or("seam_interior_fire_ratio", 0.0);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    std::exit(1);
  }
  return r;
}

std::string run_summary(const Report& r) {
  const Value* run = r.doc.find("run");
  if (run == nullptr) return "(no run section)";
  char buf[256];
  std::snprintf(buf, sizeof buf, "%s on %s, %dx%d, seed %llu, threads %llu",
                run->string_or("algorithm", "?").c_str(),
                run->string_or("model", "?").c_str(),
                static_cast<int>(run->number_or("width", 0)),
                static_cast<int>(run->number_or("height", 0)),
                static_cast<unsigned long long>(run->number_or("seed", 0)),
                static_cast<unsigned long long>(run->number_or("threads", 0)));
  return buf;
}

void print_single(const Report& r) {
  std::printf("report: %s\n", r.path.c_str());
  std::printf("  run: %s\n", run_summary(r).c_str());
  if (const Value* c = r.doc.find("counters"); c != nullptr && c->find("trials")) {
    std::printf("  sim: t = %.6g, %.0f trials, %.0f executed "
                "(acceptance %.2f%%), %.0f steps, wall %.3fs\n",
                c->number_or("time", 0), c->number_or("trials", 0),
                c->number_or("executed", 0), 100 * c->number_or("acceptance", 0),
                c->number_or("steps", 0), r.wall_seconds);
    if (r.wall_seconds > 0 && r.trials > 0) {
      std::printf("  throughput: %.3g trials/s\n", r.trials / r.wall_seconds);
    }
  }

  if (!r.timers.empty()) {
    // Sorted by total time, descending: where did the run go?
    std::vector<std::pair<std::string, TimerRow>> rows(r.timers.begin(),
                                                       r.timers.end());
    std::ranges::sort(rows, [](const auto& a, const auto& b) {
      return a.second.total_ns > b.second.total_ns;
    });
    double grand = 0;
    for (const auto& [name, row] : rows) grand += row.total_ns;
    std::printf("  phases:\n");
    std::printf("    %-28s %10s %12s %12s %12s %6s\n", "timer", "count",
                "total_ms", "mean_us", "max_us", "%");
    for (const auto& [name, row] : rows) {
      std::printf("    %-28s %10llu %12.3f %12.3f %12.3f %5.1f%%\n", name.c_str(),
                  static_cast<unsigned long long>(row.count), row.total_ns / 1e6,
                  row.mean_ns / 1e3, row.max_ns / 1e3,
                  grand > 0 ? 100 * row.total_ns / grand : 0.0);
    }
  }
  if (!r.counters.empty()) {
    std::printf("  counters:\n");
    for (const auto& [name, v] : r.counters) {
      std::printf("    %-28s %14.0f\n", name.c_str(), v);
    }
  }

  if (const Value* tb = r.doc.find("thread_balance");
      tb != nullptr && tb->is_object()) {
    std::printf("  thread balance: %llu workers, imbalance %.3f (max/mean busy)\n",
                static_cast<unsigned long long>(tb->number_or("workers", 0)),
                tb->number_or("imbalance", 1.0));
  }

  if (const Value* sp = r.doc.find("spatial"); sp != nullptr && sp->is_object()) {
    const double seam_sites = sp->number_or("seam_sites", 0);
    const double interior_sites = sp->number_or("interior_sites", 0);
    const double seam_fires = sp->number_or("seam_fires", 0);
    const double interior_fires = sp->number_or("interior_fires", 0);
    std::printf("  spatial: %llu chunks, fire imbalance %.3f (max/mean), "
                "seam/interior fire ratio %.3f\n",
                static_cast<unsigned long long>(sp->number_or("chunks", 0)),
                sp->number_or("chunk_fire_imbalance", 1.0),
                sp->number_or("seam_interior_fire_ratio", 0.0));
    std::printf("    seam: %.0f sites, %.0f fires (%.4g/site); interior: %.0f "
                "sites, %.0f fires (%.4g/site)\n",
                seam_sites, seam_fires,
                seam_sites > 0 ? seam_fires / seam_sites : 0.0, interior_sites,
                interior_fires,
                interior_sites > 0 ? interior_fires / interior_sites : 0.0);
  }

  if (const Value* rec = r.doc.find("recovery");
      rec != nullptr && rec->is_object()) {
    const Value& records = rec->at("records");
    std::printf("  recovery: %s, %llu restarts (budget %llu), "
                "%llu checkpoint write failures, %llu rotation failures\n",
                rec->find("supervised") != nullptr &&
                        rec->at("supervised").as_bool()
                    ? "supervised"
                    : "unsupervised",
                static_cast<unsigned long long>(rec->number_or("restarts", 0)),
                static_cast<unsigned long long>(
                    rec->number_or("retries_allowed", 0)),
                static_cast<unsigned long long>(
                    rec->number_or("checkpoint_write_failures", 0)),
                static_cast<unsigned long long>(
                    rec->number_or("checkpoint_rotate_failures", 0)));
    for (const Value& a : records.items()) {
      std::printf("    attempt %llu: %s (%d), resumed at t = %.6g from %s "
                  "(wall %.3fs)\n",
                  static_cast<unsigned long long>(a.number_or("attempt", 0)),
                  a.string_or("cause", "?").c_str(),
                  static_cast<int>(a.number_or("detail", 0)),
                  a.number_or("resume_time", 0),
                  a.string_or("restore_source", "?").c_str(),
                  a.number_or("wall_seconds", 0));
    }
  }

  if (const Value* run = r.doc.find("run")) {
    const double drops = run->number_or("trace_drops", 0);
    if (drops > 0) {
      std::printf("  WARNING: trace ring dropped %.0f events — the trace is "
                  "incomplete; raise the ring capacity\n",
                  drops);
    }
  }

  if (const Value* d = r.doc.find("drift"); d != nullptr && d->is_object()) {
    const Value& alarms = d->at("alarms");
    std::printf("  drift: %llu windows checked vs %s reference, %zu alarms, "
                "max z %.2f\n",
                static_cast<unsigned long long>(d->number_or("windows_checked", 0)),
                d->string_or("reference_algorithm", "?").c_str(),
                alarms.items().size(), d->number_or("max_z", 0));
    for (const Value& a : alarms.items()) {
      std::printf("    window %llu [%.6g, %.6g) %s: observed %.6g expected %.6g "
                  "(z = %.2f)\n",
                  static_cast<unsigned long long>(a.number_or("window", 0)),
                  a.number_or("t0", 0), a.number_or("t1", 0),
                  a.string_or("what", "?").c_str(), a.number_or("observed", 0),
                  a.number_or("expected", 0), a.number_or("z", 0));
    }
  }
}

/// Percent change B vs A; the empty string when A is zero.
std::string pct(double a, double b) {
  if (a == 0) return "";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", 100 * (b - a) / a);
  return buf;
}

void print_delta(const Report& a, const Report& b) {
  std::printf("A: %s (%s)\n", a.path.c_str(), run_summary(a).c_str());
  std::printf("B: %s (%s)\n", b.path.c_str(), run_summary(b).c_str());

  std::printf("  %-28s %14s %14s %9s\n", "", "A", "B", "delta");
  std::printf("  %-28s %14.3f %14.3f %9s\n", "wall_seconds", a.wall_seconds,
              b.wall_seconds, pct(a.wall_seconds, b.wall_seconds).c_str());
  const double ta = a.wall_seconds > 0 ? a.trials / a.wall_seconds : 0;
  const double tb = b.wall_seconds > 0 ? b.trials / b.wall_seconds : 0;
  std::printf("  %-28s %14.3g %14.3g %9s\n", "trials_per_second", ta, tb,
              pct(ta, tb).c_str());
  if (a.has_spatial || b.has_spatial) {
    std::printf("  %-28s %14.3f %14.3f %9s\n", "spatial_fire_imbalance",
                a.spatial_imbalance, b.spatial_imbalance,
                pct(a.spatial_imbalance, b.spatial_imbalance).c_str());
    std::printf("  %-28s %14.3f %14.3f %9s\n", "seam_interior_fire_ratio",
                a.seam_ratio, b.seam_ratio, pct(a.seam_ratio, b.seam_ratio).c_str());
  }

  // Phase-by-phase totals over the union of timer names.
  std::map<std::string, std::pair<const TimerRow*, const TimerRow*>> phases;
  for (const auto& [name, row] : a.timers) phases[name].first = &row;
  for (const auto& [name, row] : b.timers) phases[name].second = &row;
  if (!phases.empty()) {
    std::printf("  phases (total_ms):\n");
    std::printf("    %-28s %14s %14s %9s\n", "timer", "A", "B", "delta");
    for (const auto& [name, rows] : phases) {
      const double ma = rows.first != nullptr ? rows.first->total_ns / 1e6 : 0;
      const double mb = rows.second != nullptr ? rows.second->total_ns / 1e6 : 0;
      std::printf("    %-28s %14.3f %14.3f %9s\n", name.c_str(), ma, mb,
                  pct(ma, mb).c_str());
    }
  }

  std::map<std::string, std::pair<double, double>> counters;
  for (const auto& [name, v] : a.counters) counters[name].first = v;
  for (const auto& [name, v] : b.counters) counters[name].second = v;
  if (!counters.empty()) {
    std::printf("  counters:\n");
    std::printf("    %-28s %14s %14s %9s\n", "counter", "A", "B", "delta");
    for (const auto& [name, v] : counters) {
      std::printf("    %-28s %14.0f %14.0f %9s\n", name.c_str(), v.first,
                  v.second, pct(v.first, v.second).c_str());
    }
  }
}

int print_trace(const std::string& path) {
  const Value doc = load_json(path);
  const Value* events = doc.find("traceEvents");
  const Value* other = doc.find("otherData");
  if (events == nullptr || other == nullptr ||
      other->string_or("schema", "") != "casurf-trace/1") {
    std::fprintf(stderr, "error: %s: not a casurf-trace/1 document\n", path.c_str());
    return 1;
  }
  // Events per name: how often did each phase appear in the retained window?
  std::map<std::string, std::pair<std::uint64_t, double>> by_name;  // count, total µs
  std::uint64_t spans = 0, instants = 0;
  for (const Value& e : events->items()) {
    const std::string ph = e.string_or("ph", "");
    if (ph == "X") {
      ++spans;
      auto& slot = by_name[e.string_or("name", "?")];
      ++slot.first;
      slot.second += e.number_or("dur", 0);
    } else if (ph == "i") {
      ++instants;
      ++by_name[e.string_or("name", "?")].first;
    }
  }
  std::printf("trace: %s\n", path.c_str());
  std::printf("  %llu spans, %llu instants retained; %llu recorded, %llu "
              "dropped (ring capacity %llu)\n",
              static_cast<unsigned long long>(spans),
              static_cast<unsigned long long>(instants),
              static_cast<unsigned long long>(other->number_or("recorded_events", 0)),
              static_cast<unsigned long long>(other->number_or("dropped_events", 0)),
              static_cast<unsigned long long>(other->number_or("ring_capacity", 0)));
  if (other->number_or("dropped_events", 0) > 0) {
    std::printf("  WARNING: %.0f events were dropped — the timeline has gaps; "
                "raise the ring capacity\n",
                other->number_or("dropped_events", 0));
  }
  if (const Value* rings = other->find("rings")) {
    for (const Value& ring : rings->items()) {
      std::printf("  tid %llu (%s): %llu recorded, %llu retained, %llu dropped\n",
                  static_cast<unsigned long long>(ring.number_or("tid", 0)),
                  ring.string_or("name", "").c_str(),
                  static_cast<unsigned long long>(ring.number_or("recorded", 0)),
                  static_cast<unsigned long long>(ring.number_or("retained", 0)),
                  static_cast<unsigned long long>(ring.number_or("dropped", 0)));
    }
  }
  std::printf("  events by name:\n");
  for (const auto& [name, slot] : by_name) {
    std::printf("    %-28s %10llu %12.3f ms\n", name.c_str(),
                static_cast<unsigned long long>(slot.first), slot.second / 1e3);
  }
  return 0;
}

/// Communication breakdown of one run report: the "comm" section emitted
/// when a multi-process engine ran with metrics armed. Exits 1 when the
/// report has no comm section or the per-edge totals fail to reconcile
/// with the communicator's own counts.
int print_comm(const std::string& path) {
  const Report r = load_report(path);
  const Value* comm = r.doc.find("comm");
  if (comm == nullptr || !comm->is_object()) {
    std::fprintf(stderr,
                 "error: %s: no comm section (single-process run, comm probes "
                 "never armed, or a CASURF_METRICS=OFF build)\n",
                 path.c_str());
    return 1;
  }

  std::printf("comm: %s\n", path.c_str());
  std::printf("  run: %s\n", run_summary(r).c_str());
  const double total_messages = comm->number_or("messages", 0);
  const double total_bytes = comm->number_or("bytes", 0);
  std::printf("  totals: %.0f messages, %.0f bytes, %.0f barriers, wall %.3fs\n",
              total_messages, total_bytes, comm->number_or("barriers", 0),
              r.wall_seconds);

  if (const Value* model = comm->find("model");
      model != nullptr && model->is_object()) {
    const double mm = model->number_or("messages", 0);
    const double mb = model->number_or("bytes", 0);
    std::printf("  vs cost model:\n");
    std::printf("    %-10s %14s %14s %9s\n", "", "measured", "model", "ratio");
    std::printf("    %-10s %14.0f %14.0f %9.3f\n", "messages", total_messages,
                mm, mm > 0 ? total_messages / mm : 0.0);
    std::printf("    %-10s %14.0f %14.0f %9.3f\n", "bytes", total_bytes, mb,
                mb > 0 ? total_bytes / mb : 0.0);
  }

  if (const Value* ranks = comm->find("ranks");
      ranks != nullptr && ranks->is_array() && !ranks->items().empty()) {
    const double wall_ns = r.wall_seconds * 1e9;
    std::printf("  per-rank waits:\n");
    std::printf("    %4s %12s %12s %12s %12s %7s %8s\n", "rank", "recv_ms",
                "barrier_ms", "allred_ms", "wait_ms", "wait%", "queue_hw");
    for (const Value& rank : ranks->items()) {
      const double wait_ns = rank.number_or("wait_ns", 0);
      std::printf("    %4d %12.3f %12.3f %12.3f %12.3f %6.1f%% %8.0f\n",
                  static_cast<int>(rank.number_or("rank", 0)),
                  rank.number_or("wait_recv_ns", 0) / 1e6,
                  rank.number_or("wait_barrier_ns", 0) / 1e6,
                  rank.number_or("wait_allreduce_ns", 0) / 1e6, wait_ns / 1e6,
                  wall_ns > 0 ? 100 * wait_ns / wall_ns : 0.0,
                  rank.number_or("queue_high_water", 0));
    }
  }

  double edge_messages = 0, edge_bytes = 0;
  if (const Value* edges = comm->find("edges");
      edges != nullptr && edges->is_array() && !edges->items().empty()) {
    std::printf("  per-edge traffic:\n");
    std::printf("    %-10s %14s %14s\n", "edge", "messages", "bytes");
    for (const Value& e : edges->items()) {
      const double em = e.number_or("messages", 0);
      const double eb = e.number_or("bytes", 0);
      edge_messages += em;
      edge_bytes += eb;
      char label[32];
      std::snprintf(label, sizeof label, "%d->%d",
                    static_cast<int>(e.number_or("src", 0)),
                    static_cast<int>(e.number_or("dst", 0)));
      std::printf("    %-10s %14.0f %14.0f\n", label, em, eb);
    }
    const bool ok = edge_messages == total_messages && edge_bytes == total_bytes;
    std::printf("  reconcile: edges sum to %.0f messages / %.0f bytes vs "
                "communicator totals %.0f / %.0f — %s\n",
                edge_messages, edge_bytes, total_messages, total_bytes,
                ok ? "OK" : "MISMATCH");
    if (!ok) return 1;
  }

  if (const Value* skew = comm->find("barrier_skew");
      skew != nullptr && skew->is_object()) {
    std::printf("  barrier skew (first->last arrival): %.0f epochs, mean "
                "%.3f us, max bucket <= %.3f us\n",
                skew->number_or("count", 0), skew->number_or("mean_ns", 0) / 1e3,
                skew->number_or("max_ns_bucket", 0) / 1e3);
  }

  if (const Value* run = r.doc.find("run");
      run != nullptr && run->number_or("trace_drops", 0) > 0) {
    std::printf("  WARNING: trace ring dropped %.0f events — the trace is "
                "incomplete; raise the ring capacity\n",
                run->number_or("trace_drops", 0));
  }
  return 0;
}

/// Re-emit a parsed value verbatim (used by the trace merger for the
/// members it does not rewrite).
void emit_value(casurf::obs::json::Writer& w, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      w.raw("null");
      break;
    case Value::Kind::kBool:
      w.boolean(v.as_bool());
      break;
    case Value::Kind::kNumber:
      w.number(v.as_number());
      break;
    case Value::Kind::kString:
      w.string(v.as_string());
      break;
    case Value::Kind::kArray:
      w.begin_array();
      for (const Value& e : v.items()) emit_value(w, e);
      w.end_array();
      break;
    case Value::Kind::kObject:
      w.begin_object();
      for (const auto& [key, member] : v.members()) {
        w.key(key);
        emit_value(w, member);
      }
      w.end_object();
      break;
  }
}

/// Stitch per-process casurf-trace/1 files (daemon + supervised workers)
/// into one Chrome trace: input i becomes pid i+1, named after its trace id,
/// with timestamps shifted onto the earliest input's clock. Valid for traces
/// captured on one machine — t0_ns comes from the shared monotonic clock.
int merge_traces(const std::string& out_path,
                 const std::vector<std::string>& inputs) {
  struct Input {
    std::string path;
    Value doc;
    const Value* events = nullptr;
    const Value* other = nullptr;
    std::uint64_t t0_ns = 0;
    std::string label;
  };
  std::vector<Input> ins;
  ins.reserve(inputs.size());
  std::uint64_t t0_min = 0;
  bool have_t0 = false;
  for (const std::string& path : inputs) {
    Input in;
    in.path = path;
    in.doc = load_json(path);
    in.events = in.doc.find("traceEvents");
    in.other = in.doc.find("otherData");
    if (in.events == nullptr || in.other == nullptr ||
        in.other->string_or("schema", "") != "casurf-trace/1") {
      std::fprintf(stderr, "error: %s: not a casurf-trace/1 document\n",
                   path.c_str());
      return 1;
    }
    in.t0_ns = static_cast<std::uint64_t>(in.other->number_or("t0_ns", 0));
    in.label = in.other->string_or("trace_id", "");
    if (in.label.empty()) {
      const std::size_t slash = path.find_last_of('/');
      in.label = slash == std::string::npos ? path : path.substr(slash + 1);
    }
    if (!have_t0 || in.t0_ns < t0_min) t0_min = in.t0_ns, have_t0 = true;
    ins.push_back(std::move(in));
  }

  casurf::obs::json::Writer w;
  std::uint64_t total_events = 0, recorded = 0, dropped = 0, capacity = 0;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const Input& in = ins[i];
    const std::uint64_t pid = i + 1;
    const double shift_us =
        static_cast<double>(in.t0_ns - t0_min) / 1000.0;
    // Process-name metadata so each input gets a labelled lane group.
    w.begin_object();
    w.key("name"), w.string("process_name");
    w.key("ph"), w.string("M");
    w.key("pid"), w.u64(pid);
    w.key("args");
    w.begin_object();
    w.key("name"), w.string(in.label);
    w.end_object();
    w.end_object();
    for (const Value& e : in.events->items()) {
      if (!e.is_object()) continue;
      ++total_events;
      w.begin_object();
      bool wrote_pid = false;
      for (const auto& [key, member] : e.members()) {
        if (key == "pid") {
          w.key("pid"), w.u64(pid);
          wrote_pid = true;
        } else if (key == "ts" && member.is_number()) {
          w.key("ts"), w.number(member.as_number() + shift_us);
        } else {
          w.key(key);
          emit_value(w, member);
        }
      }
      if (!wrote_pid) w.key("pid"), w.u64(pid);
      w.end_object();
    }
    recorded += static_cast<std::uint64_t>(
        in.other->number_or("recorded_events", 0));
    dropped +=
        static_cast<std::uint64_t>(in.other->number_or("dropped_events", 0));
    capacity = std::max(capacity, static_cast<std::uint64_t>(
                                      in.other->number_or("ring_capacity", 0)));
  }
  w.end_array();
  w.key("otherData");
  w.begin_object();
  w.key("schema"), w.string("casurf-trace/1");
  w.key("t0_ns"), w.u64(t0_min);
  w.key("recorded_events"), w.u64(recorded);
  w.key("dropped_events"), w.u64(dropped);
  w.key("ring_capacity"), w.u64(capacity);
  w.key("merged");
  w.begin_array();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    w.begin_object();
    w.key("file"), w.string(ins[i].path);
    w.key("trace_id"), w.string(ins[i].label);
    w.key("pid"), w.u64(i + 1);
    w.key("t0_ns"), w.u64(ins[i].t0_ns);
    w.key("shift_us"),
        w.number(static_cast<double>(ins[i].t0_ns - t0_min) / 1000.0);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();

  try {
    casurf::io::atomic_write_file(out_path, std::move(w).str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", out_path.c_str(), e.what());
    return 1;
  }
  std::printf("merged %zu traces into %s (%llu events", ins.size(),
              out_path.c_str(), static_cast<unsigned long long>(total_events));
  if (dropped > 0) {
    std::printf("; WARNING: %llu dropped at capture",
                static_cast<unsigned long long>(dropped));
  }
  std::printf(")\n");
  for (std::size_t i = 0; i < ins.size(); ++i) {
    std::printf("  pid %zu: %s (%s, +%.3f ms)\n", i + 1, ins[i].path.c_str(),
                ins[i].label.c_str(),
                static_cast<double>(ins[i].t0_ns - t0_min) / 1e6);
  }
  return 0;
}

/// One member of an events.jsonl record rendered as `key=value`, for the
/// free-form details column of the timeline.
void append_detail(std::string& out, const std::string& key, const Value& v) {
  if (!out.empty()) out += ' ';
  out += key;
  out += '=';
  if (v.is_string()) {
    out += v.as_string();
  } else if (v.is_number()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v.as_number());
    out += buf;
  } else if (v.is_null()) {
    out += "null";
  } else {
    out += v.is_object() ? "{...}" : v.is_array() ? "[...]" : "?";
  }
}

bool terminal_event(const std::string& e) {
  return e == "finished" || e == "failed" || e == "cancelled" ||
         e == "preempted" || e == "daemon_stopped";
}

int print_events(const std::string& path) {
  std::string text;
  try {
    text = casurf::io::read_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  struct Row {
    double ts = 0;
    std::string event;
    bool has_job = false;
    std::uint64_t job = 0;
    std::string details;
  };
  std::vector<Row> rows;
  // event name per journal stream ("daemon" or "job-<id>") for chain checks
  std::map<std::string, std::vector<std::string>> chains;

  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++lineno;
    if (line.empty()) continue;
    Value doc;
    try {
      doc = Value::parse(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s:%zu: %s\n", path.c_str(), lineno, e.what());
      return 1;
    }
    if (doc.string_or("schema", "") != "casurf-events/1") {
      std::fprintf(stderr, "error: %s:%zu: not a casurf-events/1 record\n",
                   path.c_str(), lineno);
      return 1;
    }
    Row row;
    row.ts = doc.number_or("ts", 0);
    row.event = doc.string_or("event", "?");
    for (const auto& [key, v] : doc.members()) {
      if (key == "schema" || key == "ts" || key == "event") continue;
      if (key == "job" && v.is_number()) {
        row.has_job = true;
        row.job = v.as_u64();
        continue;
      }
      append_detail(row.details, key, v);
    }
    const std::string stream =
        row.has_job ? "job-" + std::to_string(row.job) : "daemon";
    chains[stream].push_back(row.event);
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    std::fprintf(stderr, "error: %s: no events\n", path.c_str());
    return 1;
  }

  const double t0 = rows.front().ts;
  std::printf("events: %s (%zu records)\n", path.c_str(), rows.size());
  std::printf("  %10s  %-10s %-12s %s\n", "t(+s)", "job", "event", "details");
  for (const Row& row : rows) {
    const std::string job =
        row.has_job ? std::to_string(row.job) : std::string("-");
    std::printf("  %10.3f  %-10s %-12s %s\n", row.ts - t0, job.c_str(),
                row.event.c_str(), row.details.c_str());
  }

  // Chain sanity: each job's stream should open with submitted (a journal
  // sliced from a job dir) or restarted (a daemon-restart requeue record)
  // and close on a terminal event; anything else is in flight / truncated.
  for (const auto& [stream, events] : chains) {
    if (stream == "daemon") continue;
    if (events.front() != "submitted" && events.front() != "restarted") {
      std::printf("  warning: %s opens with '%s' (expected submitted)\n",
                  stream.c_str(), events.front().c_str());
    }
    if (!terminal_event(events.back())) {
      std::printf("  warning: %s still in flight (last event '%s')\n",
                  stream.c_str(), events.back().c_str());
    }
  }
  return 0;
}

/// The three scheduling/latency percentiles of one histogram family, or
/// "-" columns when the family is absent (fresh daemon, no samples yet).
void print_percentiles(const std::vector<casurf::obs::prom::Family>& families,
                       const char* family_name, const char* label) {
  const casurf::obs::prom::Family* fam = nullptr;
  for (const auto& f : families) {
    if (f.name == family_name && f.type == "histogram") fam = &f;
  }
  bool any = false;
  if (fam != nullptr) {
    for (const auto& s : fam->samples) {
      if (s.name == fam->name + "_count" && s.value > 0) any = true;
    }
  }
  if (!any) {
    std::printf("  %-22s %10s %10s %10s\n", label, "-", "-", "-");
    return;
  }
  const double p50 = casurf::obs::prom::quantile(*fam, 0.50);
  const double p95 = casurf::obs::prom::quantile(*fam, 0.95);
  const double p99 = casurf::obs::prom::quantile(*fam, 0.99);
  std::printf("  %-22s %9.3fs %9.3fs %9.3fs\n", label, p50 / 1e9, p95 / 1e9,
              p99 / 1e9);
}

int print_serve(std::uint16_t port) {
  using casurf::serve::HttpResponse;
  HttpResponse stats;
  try {
    stats = casurf::serve::http_request(port, "GET", "/stats");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: 127.0.0.1:%u: %s\n",
                 static_cast<unsigned>(port), e.what());
    return 1;
  }
  if (stats.status != 200) {
    std::fprintf(stderr, "error: GET /stats returned %d\n", stats.status);
    return 1;
  }
  Value doc;
  try {
    doc = Value::parse(stats.body);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: /stats: %s\n", e.what());
    return 1;
  }

  std::printf("casurf_serve on 127.0.0.1:%u\n", static_cast<unsigned>(port));
  std::printf("  %-12s %llu queued, %llu running, %llu done, %llu failed, "
              "%llu stopped\n",
              "jobs:",
              static_cast<unsigned long long>(doc.number_or("queued", 0)),
              static_cast<unsigned long long>(doc.number_or("running", 0)),
              static_cast<unsigned long long>(doc.number_or("done", 0)),
              static_cast<unsigned long long>(doc.number_or("failed", 0)),
              static_cast<unsigned long long>(doc.number_or("stopped", 0)));
  std::printf("  %-12s %llu of %llu busy; %s; suggested Retry-After %llus\n",
              "slots:",
              static_cast<unsigned long long>(doc.number_or("running", 0)),
              static_cast<unsigned long long>(doc.number_or("slots", 0)),
              doc.find("draining") != nullptr && doc.at("draining").as_bool()
                  ? "draining"
                  : "accepting",
              static_cast<unsigned long long>(doc.number_or("retry_after", 0)));

  HttpResponse metrics;
  try {
    metrics = casurf::serve::http_request(port, "GET", "/metrics");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: GET /metrics: %s\n", e.what());
    return 1;
  }
  if (metrics.status == 404) {
    std::printf("  (no /metrics — daemon built with CASURF_METRICS=OFF)\n");
    return 0;
  }
  if (metrics.status != 200) {
    std::fprintf(stderr, "error: GET /metrics returned %d\n", metrics.status);
    return 1;
  }
  std::vector<casurf::obs::prom::Family> families;
  try {
    families = casurf::obs::prom::parse(metrics.body);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: /metrics: %s\n", e.what());
    return 1;
  }

  // Whole-fleet totals worth a glance; percentile rows from the two
  // scheduling histograms (docs/SERVING.md, "Serving telemetry").
  auto family_total = [&](const char* name) {
    double total = 0;
    for (const auto& f : families) {
      if (f.name != name) continue;
      for (const auto& s : f.samples) {
        if (s.name == f.name) total += s.value;
      }
    }
    return total;
  };
  std::printf("  %-12s %.0f submissions, %.0f restarts, %.0f preemptions, "
              "%.0f backpressure\n",
              "lifetime:", family_total("casurf_job_submissions_total"),
              family_total("casurf_job_restarts_total"),
              family_total("casurf_job_preemptions_total"),
              family_total("casurf_http_backpressure_total"));
  std::printf("  %-12s %.0f trials, %.0f reactions, %.0f drift alarms\n",
              "workers:", family_total("casurf_worker_trials_total"),
              family_total("casurf_worker_reactions_total"),
              family_total("casurf_worker_drift_alarms_total"));
  std::printf("  %-22s %10s %10s %10s\n", "latency", "p50", "p95", "p99");
  print_percentiles(families, "casurf_job_queue_wait_ns", "queue wait");
  print_percentiles(families, "casurf_job_duration_ns", "job duration");
  print_percentiles(families, "casurf_http_request_duration_ns", "http request");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool trace_mode = false;
  bool events_mode = false;
  bool comm_mode = false;
  bool merge_mode = false;
  long serve_port = -1;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(argv[0]);
    else if (arg == "--trace") trace_mode = true;
    else if (arg == "--events") events_mode = true;
    else if (arg == "--comm") comm_mode = true;
    else if (arg == "--merge-traces") merge_mode = true;
    else if (arg == "--serve") {
      if (i + 1 >= argc) usage(argv[0], "--serve expects a port");
      char* end = nullptr;
      serve_port = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || serve_port < 1 ||
          serve_port > 65535) {
        usage(argv[0], "--serve expects a port in 1..65535");
      }
    }
    else if (!arg.empty() && arg.front() == '-') {
      usage(argv[0], ("unknown flag: " + std::string(arg)).c_str());
    } else {
      files.emplace_back(arg);
    }
  }
  if (static_cast<int>(trace_mode) + static_cast<int>(events_mode) +
          static_cast<int>(comm_mode) + static_cast<int>(merge_mode) >
      1) {
    usage(argv[0],
          "--trace, --events, --comm, and --merge-traces are mutually "
          "exclusive");
  }
  if (serve_port > 0) {
    if (trace_mode || events_mode || comm_mode || merge_mode || !files.empty()) {
      usage(argv[0], "--serve takes no input files");
    }
    return print_serve(static_cast<std::uint16_t>(serve_port));
  }
  if (merge_mode) {
    if (files.size() < 2) {
      usage(argv[0], "--merge-traces expects OUT and at least one input trace");
    }
    return merge_traces(files[0], {files.begin() + 1, files.end()});
  }
  if (files.empty()) usage(argv[0], "expected at least one input file");
  if (files.size() > 2) usage(argv[0], "expected at most two input files");
  if (trace_mode && files.size() != 1) {
    usage(argv[0], "--trace takes exactly one file");
  }
  if (events_mode && files.size() != 1) {
    usage(argv[0], "--events takes exactly one file");
  }
  if (comm_mode && files.size() != 1) {
    usage(argv[0], "--comm takes exactly one file");
  }

  if (trace_mode) return print_trace(files[0]);
  if (events_mode) return print_events(files[0]);
  if (comm_mode) return print_comm(files[0]);
  if (files.size() == 1) {
    print_single(load_report(files[0]));
  } else {
    print_delta(load_report(files[0]), load_report(files[1]));
  }
  return 0;
}
