// casurf_run — command-line driver for the library: pick a bundled model
// (or load one from a .model file), pick an algorithm, run, and dump
// coverage series / snapshots / images. Long runs can checkpoint
// periodically, resume bit-identically after a crash, and run under a
// built-in supervisor that restarts a crashed or hung worker from the
// latest good checkpoint (docs/ROBUSTNESS.md).
//
//   casurf_run --model zgb --y 0.45 --algorithm pndca --size 128x128 \
//              --t-end 50 --dt 1 --csv coverage.csv --ppm final.ppm
//
//   casurf_run --model-file my.model --fill "*" --algorithm rsm --t-end 10
//
//   casurf_run --model zgb --t-end 100 --checkpoint run.ck --checkpoint-every 5
//   casurf_run --model zgb --t-end 100 --checkpoint run.ck --resume run.ck
//   casurf_run --model zgb --t-end 100 --checkpoint run.ck --supervise=5
//
// Exit codes (docs/ROBUSTNESS.md):
//   0    run completed
//   1    runtime error (bad input files, simulation failure)
//   2    usage error (bad flags, bad --failpoints spec)
//   3    --resume: neither PATH nor PATH.bak could be restored
//   4    --supervise: retry budget exhausted
//   42   --die-at simulated crash (no cleanup, as a real crash)
//   128+N  ended by signal N after a graceful shutdown (130 = SIGINT,
//          143 = SIGTERM)

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/audit.hpp"
#include "core/observer.hpp"
#include "core/simulation.hpp"
#include "io/checkpoint.hpp"
#include "io/snapshot.hpp"
#include "obs/drift.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/spatial.hpp"
#include "obs/trace.hpp"
#include "partition/conflict.hpp"
#include "model/parser.hpp"
#include "serve/spawn.hpp"
#include "models/diffusion.hpp"
#include "models/ising.hpp"
#include "models/pt100.hpp"
#include "models/zgb.hpp"
#include "stats/coverage.hpp"
#include "stats/csv.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"

using namespace casurf;

namespace {

// Exit-code taxonomy; see the header comment and docs/ROBUSTNESS.md.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitRestoreFailed = 3;
constexpr int kExitRetriesExhausted = 4;

struct Options {
  std::string argv0 = "casurf_run";
  std::string model = "zgb";
  std::string model_file;
  std::string algorithm = "rsm";
  std::int32_t width = 100, height = 100;
  std::uint64_t seed = 1;
  double t_end = 20.0;
  double dt = 1.0;
  double y = 0.45;       // ZGB CO fraction
  double beta = 0.5;     // Ising J/kT
  double hop = 1.0;      // diffusion rate
  double coverage0 = 0;  // initial particle coverage for diffusion/ising
  std::uint32_t l_trials = 1;
  unsigned threads = 2;
  bool fast_path = false;  // batched bitplane trial path (PNDCA family)
  std::string fill;      // species name to fill the lattice with
  std::string csv, ppm, snapshot_out, snapshot_in;
  std::string checkpoint;       // periodic checkpoint target
  double checkpoint_every = 0;  // 0 = every sampling interval
  std::string resume;           // checkpoint to resume from
  std::uint64_t audit_every = 0;  // audit each N samples (0 = off)
  AuditPolicy audit_policy = AuditPolicy::kAbort;
  std::string metrics;            // JSON run-report target ("" = metrics off)
  std::uint64_t metrics_every = 0;  // refresh report each N samples (0 = at end)
  std::string trace;              // Chrome-trace JSON target ("" = tracing off)
  std::uint64_t trace_buffer = obs::Tracer::kDefaultCapacity;  // events per ring
  std::string trace_id;           // correlation id (flag or CASURF_TRACE_ID)
  std::string drift_record;  // write a drift reference profile here
  std::string drift_ref;     // compare online against this profile
  double drift_window = 0;   // profile window width (0 = 10 * dt)
  bool drift_corr = false;   // include pair correlations in the profile
  std::uint64_t drift_corr_rmax = 8;  // decay-length truncation radius
  bool drift_corr_rmax_set = false;
  std::string heatmap;       // spatial-artifact prefix ("" = off)
  std::uint64_t heatmap_every = 0;  // refresh each N samples (0 = at end)
  double die_at = -1;  // crash-test aid: _Exit mid-run once time() >= die_at
  std::string failpoints;  // fault-injection spec (flag or CASURF_FAILPOINTS)
  bool supervise = false;             // run under the restarting supervisor
  std::uint64_t supervise_retries = 3;  // restarts before giving up
  double watchdog = 30.0;  // seconds without a heartbeat before SIGKILL
  bool watchdog_set = false;
  bool quiet = false;
  log::Level log_level = log::threshold();  // structured-log threshold
  std::string log_file;                     // "" = stderr
  bool log_flags = false;  // explicit --log-* given (env alone stays soft)
  // Internal (not a flag): a supervised restart may fall back to a clean
  // start when both checkpoints are unusable, where an explicit --resume
  // must fail loudly instead (exit 3).
  bool resume_clean_ok = false;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --model NAME        zgb | pt100 | diffusion | single-file | ising\n"
               "  --model-file PATH   parse a .model description instead\n"
               "  --algorithm NAME    rsm | vssm | frm | ndca | pndca | lpndca |\n"
               "                      tpndca | parallel\n"
               "  --size WxH          lattice size (default 100x100)\n"
               "  --t-end T           simulated end time (default 20)\n"
               "  --dt T              sampling interval (default 1)\n"
               "  --seed S            RNG seed (default 1)\n"
               "  --y Y               ZGB CO fraction (default 0.45)\n"
               "  --beta B            Ising J/kT (default 0.5)\n"
               "  --hop R             diffusion hop rate (default 1)\n"
               "  --coverage0 C       initial particle coverage (diffusion/ising)\n"
               "  --L N               L-PNDCA trials per batch (default 1)\n"
               "  --threads N         threads for the parallel engine (default 2)\n"
               "  --fast-path         batched bitplane trial path (PNDCA family;\n"
               "                      bit-identical trajectory, scalar fallback\n"
               "                      when the partition fails the gate)\n"
               "  --fill NAME         species to fill the lattice with\n"
               "  --load PATH         start from a snapshot (species matched by name)\n"
               "  --csv PATH          write the coverage time series\n"
               "  --ppm PATH          write the final state as a PPM image\n"
               "  --snapshot PATH     write the final state as a snapshot\n"
               "  --checkpoint PATH   periodically save a crash-safe checkpoint;\n"
               "                      the previous one is kept as PATH.bak\n"
               "  --checkpoint-every T  simulated time between checkpoints\n"
               "                      (default: the sampling interval)\n"
               "  --resume PATH       restore state from a checkpoint and continue;\n"
               "                      falls back to PATH.bak if PATH is corrupt\n"
               "  --supervise[=N]     run the simulation in a monitored worker\n"
               "                      process; on a crash or hang, restart it from\n"
               "                      the latest good checkpoint, up to N times\n"
               "                      (default 3). Requires --checkpoint.\n"
               "  --watchdog T        with --supervise: kill and restart a worker\n"
               "                      that posts no heartbeat for T wall seconds\n"
               "                      (default 30; 0 disables the watchdog)\n"
               "  --log-level L       structured JSON-lines log threshold:\n"
               "                      debug|info|warn|error|off (default warn;\n"
               "                      the CASURF_LOG env var is the default)\n"
               "  --log-file PATH     append the structured log to PATH\n"
               "                      (default stderr)\n"
               "  --failpoints SPEC   arm deterministic fault injection, e.g.\n"
               "                      'io/checkpoint/corrupt=hit@2,run/kill=prob@0.1'\n"
               "                      (docs/ROBUSTNESS.md lists the names; the\n"
               "                      CASURF_FAILPOINTS env var is the default)\n"
               "  --audit-every N     verify derived state every N samples\n"
               "  --audit-policy P    abort (default) | repair\n"
               "  --metrics PATH      record phase timers/counters and write a\n"
               "                      JSON run-report (docs/OBSERVABILITY.md)\n"
               "  --metrics-every N   atomically refresh the report every N\n"
               "                      samples (default: only at the end)\n"
               "  --trace PATH        record per-thread phase spans and write a\n"
               "                      Chrome-trace JSON (load in Perfetto)\n"
               "  --trace-buffer N    trace ring capacity in events per thread\n"
               "                      (default %zu; oldest events drop on wrap)\n"
               "  --trace-id STR      correlation id stamped into the trace\n"
               "                      footer and the run report, so traces of\n"
               "                      many processes can be merged and labeled\n"
               "                      (casurf_report --merge-traces; the\n"
               "                      CASURF_TRACE_ID env var is the default)\n"
               "  --drift-record PATH run as a reference: write a windowed\n"
               "                      coverage/rate profile (casurf-drift-profile/1)\n"
               "  --drift-window T    profile window width in simulated time\n"
               "                      (with --drift-record; default 10*dt)\n"
               "  --drift-ref PATH    compare this run online against a recorded\n"
               "                      profile; alarms go to stdout + the report\n"
               "  --drift-corr        with --drift-record: add windowed pair\n"
               "                      correlations g_ab and axial decay lengths\n"
               "                      to the profile (a --drift-ref monitor picks\n"
               "                      them up from the reference automatically)\n"
               "  --drift-corr-rmax N decay-length truncation radius in sites\n"
               "                      (with --drift-corr; default 8)\n"
               "  --heatmap PREFIX    write spatial activity artifacts at the end:\n"
               "                      PREFIX.json (casurf-heatmap/1) plus\n"
               "                      PREFIX.{attempts,fires,occupancy}.ppm images\n"
               "  --heatmap-every N   also refresh the artifacts every N samples\n"
               "  --quiet             suppress the progress table\n",
               argv0, obs::Tracer::kDefaultCapacity);
  std::exit(error ? kExitUsage : 0);
}

/// strtod with the full error protocol: no partial parses ("5x" is an
/// error, atof would read 5), no empty input, no overflow.
double parse_double(const char* flag, const char* value, const char* argv0) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE) {
    usage(argv0,
          (std::string(flag) + " expects a number, got '" + value + "'").c_str());
  }
  return v;
}

std::uint64_t parse_u64(const char* flag, const char* value, const char* argv0) {
  // strtoull silently wraps negatives ("-1" parses as 2^64-1); reject them.
  const char* p = value;
  while (*p == ' ' || *p == '\t') ++p;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || *p == '-') {
    usage(argv0, (std::string(flag) + " expects a non-negative integer, got '" +
                  value + "'")
                     .c_str());
  }
  return v;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  opt.argv0 = argv[0];
  // The env var is the default; an explicit --failpoints overrides it (it
  // is parsed later). Lets a supervisor or CI arm faults without touching
  // the command line under test.
  if (const char* env = std::getenv("CASURF_FAILPOINTS")) opt.failpoints = env;
  // Same env-as-default pattern for the trace correlation id: the serve
  // daemon (or any orchestrator) can label workers without owning argv.
  if (const char* env = std::getenv("CASURF_TRACE_ID")) opt.trace_id = env;
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], "missing value for flag");
    return argv[++i];
  };
  const auto num = [&](int& i, const char* flag) {
    return parse_double(flag, need_value(i), argv[0]);
  };
  const auto integer = [&](int& i, const char* flag) {
    return parse_u64(flag, need_value(i), argv[0]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--help" || flag == "-h") usage(argv[0]);
    else if (flag == "--model") opt.model = need_value(i);
    else if (flag == "--model-file") opt.model_file = need_value(i);
    else if (flag == "--algorithm") opt.algorithm = need_value(i);
    else if (flag == "--size") {
      const char* v = need_value(i);
      char trailing = '\0';
      if (std::sscanf(v, "%dx%d%c", &opt.width, &opt.height, &trailing) != 2 ||
          opt.width <= 0 || opt.height <= 0) {
        usage(argv[0], "--size expects WxH with positive dimensions");
      }
    }
    else if (flag == "--t-end") opt.t_end = num(i, "--t-end");
    else if (flag == "--dt") opt.dt = num(i, "--dt");
    else if (flag == "--seed") opt.seed = integer(i, "--seed");
    else if (flag == "--y") opt.y = num(i, "--y");
    else if (flag == "--beta") opt.beta = num(i, "--beta");
    else if (flag == "--hop") opt.hop = num(i, "--hop");
    else if (flag == "--coverage0") opt.coverage0 = num(i, "--coverage0");
    else if (flag == "--L") opt.l_trials = static_cast<std::uint32_t>(integer(i, "--L"));
    else if (flag == "--threads") opt.threads = static_cast<unsigned>(integer(i, "--threads"));
    else if (flag == "--fast-path") opt.fast_path = true;
    else if (flag == "--fill") opt.fill = need_value(i);
    else if (flag == "--load") opt.snapshot_in = need_value(i);
    else if (flag == "--csv") opt.csv = need_value(i);
    else if (flag == "--ppm") opt.ppm = need_value(i);
    else if (flag == "--snapshot") opt.snapshot_out = need_value(i);
    else if (flag == "--checkpoint") opt.checkpoint = need_value(i);
    else if (flag == "--checkpoint-every") opt.checkpoint_every = num(i, "--checkpoint-every");
    else if (flag == "--resume") opt.resume = need_value(i);
    else if (flag == "--supervise") opt.supervise = true;
    else if (flag.rfind("--supervise=", 0) == 0) {
      opt.supervise = true;
      opt.supervise_retries = parse_u64(
          "--supervise", std::string(flag.substr(12)).c_str(), argv[0]);
    }
    else if (flag == "--watchdog") {
      opt.watchdog = num(i, "--watchdog");
      opt.watchdog_set = true;
    }
    else if (flag == "--failpoints") opt.failpoints = need_value(i);
    else if (flag == "--audit-every") opt.audit_every = integer(i, "--audit-every");
    else if (flag == "--audit-policy") {
      const std::string_view v = need_value(i);
      if (v == "abort") opt.audit_policy = AuditPolicy::kAbort;
      else if (v == "repair") opt.audit_policy = AuditPolicy::kRepair;
      else usage(argv[0], "--audit-policy expects 'abort' or 'repair'");
    }
    else if (flag == "--metrics") opt.metrics = need_value(i);
    else if (flag == "--metrics-every") opt.metrics_every = integer(i, "--metrics-every");
    else if (flag == "--trace") opt.trace = need_value(i);
    else if (flag == "--trace-buffer") opt.trace_buffer = integer(i, "--trace-buffer");
    else if (flag == "--trace-id") opt.trace_id = need_value(i);
    else if (flag == "--drift-record") opt.drift_record = need_value(i);
    else if (flag == "--drift-ref") opt.drift_ref = need_value(i);
    else if (flag == "--drift-window") opt.drift_window = num(i, "--drift-window");
    else if (flag == "--drift-corr") opt.drift_corr = true;
    else if (flag == "--drift-corr-rmax") {
      opt.drift_corr_rmax = integer(i, "--drift-corr-rmax");
      opt.drift_corr_rmax_set = true;
    }
    else if (flag == "--heatmap") opt.heatmap = need_value(i);
    else if (flag == "--heatmap-every") opt.heatmap_every = integer(i, "--heatmap-every");
    else if (flag == "--die-at") opt.die_at = num(i, "--die-at");  // crash-test aid
    else if (flag == "--quiet") opt.quiet = true;
    else if (flag == "--log-level") {
      if (!log::parse_level(need_value(i), opt.log_level)) {
        usage(argv[0], "--log-level expects debug|info|warn|error|off");
      }
      opt.log_flags = true;
    }
    else if (flag == "--log-file") {
      opt.log_file = need_value(i);
      opt.log_flags = true;
    }
    else usage(argv[0], ("unknown flag: " + std::string(flag)).c_str());
  }

  if (!(opt.t_end > 0)) usage(argv[0], "--t-end must be a positive number");
  if (!(opt.dt > 0)) usage(argv[0], "--dt must be a positive number");
  if (opt.checkpoint_every < 0) usage(argv[0], "--checkpoint-every must be positive");
  if (opt.l_trials == 0) usage(argv[0], "--L must be at least 1");
  if (opt.threads == 0) usage(argv[0], "--threads must be at least 1");
  if (opt.checkpoint_every > 0 && opt.checkpoint.empty()) {
    usage(argv[0], "--checkpoint-every requires --checkpoint PATH");
  }
  if (opt.supervise && opt.checkpoint.empty()) {
    usage(argv[0],
          "--supervise requires --checkpoint PATH (recovery restarts from "
          "the latest good checkpoint)");
  }
  if (opt.watchdog_set && !opt.supervise) {
    usage(argv[0], "--watchdog only applies with --supervise");
  }
  if (opt.watchdog < 0) usage(argv[0], "--watchdog must be non-negative");
  if (!opt.failpoints.empty()) {
    // Rejects both malformed specs and any spec in a CASURF_FAILPOINTS=OFF
    // build: silently running faultless would defeat the torture test.
    const std::string err = fail::validate(opt.failpoints);
    if (!err.empty()) usage(argv[0], ("--failpoints: " + err).c_str());
  }
  if (opt.metrics_every > 0 && opt.metrics.empty()) {
    usage(argv[0], "--metrics-every requires --metrics PATH");
  }
  if (opt.trace_buffer == 0) usage(argv[0], "--trace-buffer must be at least 1");
  if (!opt.drift_record.empty() && !opt.drift_ref.empty()) {
    usage(argv[0], "--drift-record and --drift-ref are mutually exclusive");
  }
  if (opt.drift_window != 0 && opt.drift_record.empty()) {
    usage(argv[0],
          "--drift-window only applies with --drift-record (a reference "
          "profile fixes the window width)");
  }
  if (opt.drift_window < 0) usage(argv[0], "--drift-window must be positive");
  if (opt.drift_corr && opt.drift_record.empty()) {
    usage(argv[0],
          "--drift-corr requires --drift-record (a --drift-ref monitor "
          "enables correlations from the reference profile)");
  }
  if (opt.drift_corr_rmax_set && !opt.drift_corr) {
    usage(argv[0], "--drift-corr-rmax requires --drift-corr");
  }
  if (opt.drift_corr_rmax == 0) {
    usage(argv[0], "--drift-corr-rmax must be at least 1");
  }
  if (opt.heatmap_every > 0 && opt.heatmap.empty()) {
    usage(argv[0], "--heatmap-every requires --heatmap PREFIX");
  }
  // Fail fast on output/input paths the run would only touch at the end:
  // a multi-hour run must not die on a typo after the fact.
  if (!opt.trace.empty()) {
    std::filesystem::path dir = std::filesystem::path(opt.trace).parent_path();
    if (dir.empty()) dir = ".";
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec) ||
        ::access(dir.c_str(), W_OK) != 0) {
      usage(argv[0], ("--trace directory is not writable: " + dir.string()).c_str());
    }
  }
  if (!opt.heatmap.empty()) {
    std::filesystem::path dir = std::filesystem::path(opt.heatmap).parent_path();
    if (dir.empty()) dir = ".";
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec) ||
        ::access(dir.c_str(), W_OK) != 0) {
      usage(argv[0],
            ("--heatmap directory is not writable: " + dir.string()).c_str());
    }
  }
  if (!opt.drift_ref.empty() && ::access(opt.drift_ref.c_str(), R_OK) != 0) {
    usage(argv[0],
          ("--drift-ref reference file does not exist or is unreadable: " +
           opt.drift_ref)
              .c_str());
  }
  return opt;
}

Algorithm algorithm_from_name(const std::string& name, const char* argv0) {
  static const std::map<std::string, Algorithm> kMap = {
      {"rsm", Algorithm::kRsm},       {"vssm", Algorithm::kVssm},
      {"frm", Algorithm::kFrm},       {"ndca", Algorithm::kNdca},
      {"pndca", Algorithm::kPndca},   {"lpndca", Algorithm::kLPndca},
      {"tpndca", Algorithm::kTPndca}, {"parallel", Algorithm::kParallelPndca}};
  const auto it = kMap.find(name);
  if (it == kMap.end()) usage(argv0, ("unknown algorithm: " + name).c_str());
  return it->second;
}

/// Scatter species `what` onto a fraction `coverage` of vacant sites,
/// deterministically from the seed.
void scatter(Configuration& cfg, Species what, double coverage, std::uint64_t seed) {
  CounterRng rng(seed, 0xc0ffee);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    if (rng.next_double() < coverage) cfg.set(s, what);
  }
}

/// App-level state stored in the checkpoint's user section: the next sample
/// time and the full coverage history, so the resumed run's CSV equals the
/// uninterrupted run's byte for byte.
std::string encode_run_state(double next, const CoverageRecorder& recorder) {
  StateWriter w;
  w.section("casurf-run");
  w.f64(next);
  recorder.save_state(w);
  return {reinterpret_cast<const char*>(w.buffer().data()), w.size()};
}

void decode_run_state(const std::string& blob, double& next,
                      CoverageRecorder& recorder) {
  StateReader r(std::span(reinterpret_cast<const std::uint8_t*>(blob.data()),
                          blob.size()));
  r.expect_section("casurf-run");
  next = r.f64();
  recorder.restore_state(r);
  r.expect_end();
}

// --- Signals and heartbeat ------------------------------------------------
// The worker's handlers only set a flag; the sample loop notices it at the
// next sample boundary and shuts down gracefully (final checkpoint, flushed
// artifacts, exit 128+sig). The supervisor installs its own forwarding
// handlers instead.

volatile std::sig_atomic_t g_signal = 0;
volatile pid_t g_child_pid = -1;

void on_worker_signal(int sig) { g_signal = sig; }

void on_supervisor_signal(int sig) {
  g_signal = sig;
  const pid_t child = g_child_pid;
  if (child > 0) ::kill(child, sig);  // async-signal-safe
}

void install_worker_handlers() {
  struct sigaction sa {};
  sa.sa_handler = on_worker_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

/// Heartbeat pipe to the supervisor (one byte per sample); -1 when the run
/// is not supervised.
int g_heartbeat_fd = -1;

void heartbeat() {
  if (g_heartbeat_fd < 0) return;
  const char beat = 'h';
  [[maybe_unused]] const ssize_t n = ::write(g_heartbeat_fd, &beat, 1);
}

/// Rotate the previous checkpoint to PATH.bak, then atomically publish the
/// new one; at every instant at least one intact checkpoint exists. Both
/// halves degrade gracefully rather than kill a long run: a failed rotation
/// (other than "no previous checkpoint") skips this interval entirely —
/// publishing anyway would overwrite the only intact checkpoint while .bak
/// still holds an older generation — and a failed write retries with
/// backoff, then carries on with the previous checkpoint still in place.
/// Failures are counted in the recovery log and surfaced in the report.
bool write_checkpoint(const Options& opt, const Simulator& sim, double next,
                      const CoverageRecorder& recorder, obs::RecoveryLog& recovery) {
  const std::string bak = opt.checkpoint + ".bak";
  if (std::rename(opt.checkpoint.c_str(), bak.c_str()) != 0 && errno != ENOENT) {
    const int err = errno;
    std::fprintf(stderr,
                 "warning: checkpoint rotation failed: rename %s -> %s: %s; "
                 "keeping the previous checkpoint, skipping this interval\n",
                 opt.checkpoint.c_str(), bak.c_str(), std::strerror(err));
    ++recovery.checkpoint_rotate_failures;
    return false;
  }
  const std::string blob = encode_run_state(next, recorder);
  constexpr int kAttempts = 3;
  for (int attempt = 1;; ++attempt) {
    try {
      io::save_checkpoint(opt.checkpoint, sim, blob);
      return true;
    } catch (const std::exception& e) {
      if (attempt >= kAttempts) {
        std::fprintf(stderr,
                     "warning: checkpoint write failed after %d attempts: %s; "
                     "continuing with the previous checkpoint (%s)\n",
                     attempt, e.what(), bak.c_str());
        ++recovery.checkpoint_write_failures;
        return false;
      }
      std::fprintf(stderr, "warning: checkpoint write failed: %s; retrying\n",
                   e.what());
      std::this_thread::sleep_for(std::chrono::milliseconds(50 << (attempt - 1)));
    }
  }
}

// --- Worker ---------------------------------------------------------------

int run_once(const Options& opt, obs::RecoveryLog& recovery) {
  // Arm fault injection in this process only: under --supervise each worker
  // generation configures after the fork, so hit@N counters restart at zero
  // per attempt and every generation makes forward progress before its
  // fault fires again.
  if (!opt.failpoints.empty()) {
    fail::set_seed(opt.seed);
    const std::string err = fail::configure(opt.failpoints);
    if (!err.empty()) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return kExitUsage;
    }
  }
  install_worker_handlers();

  // Injected process-level faults (docs/ROBUSTNESS.md), evaluated once per
  // sample after the checkpoint write so every supervised attempt makes
  // forward progress before its fault recurs.
  static constexpr fail::Failpoint kRunKill{"run/kill"};
  static constexpr fail::Failpoint kRunSigterm{"run/sigterm"};
  static constexpr fail::Failpoint kRunStall{"run/stall"};

  // --- Build the model -----------------------------------------------
  std::optional<ReactionModel> model;
  Species fill_species = 0;
  try {
    if (!opt.model_file.empty()) {
      model.emplace(parse_model_file(opt.model_file));
    } else if (opt.model == "zgb") {
      model.emplace(models::make_zgb(models::ZgbParams::from_y(opt.y, 20.0)).model);
    } else if (opt.model == "pt100") {
      model.emplace(models::make_pt100().model);
    } else if (opt.model == "diffusion") {
      model.emplace(models::make_diffusion(opt.hop).model);
    } else if (opt.model == "single-file") {
      model.emplace(models::make_single_file(opt.hop).model);
      if (opt.height != 1) {
        std::fprintf(stderr, "note: single-file is one-dimensional; using %dx1\n",
                     opt.width);
      }
    } else if (opt.model == "ising") {
      model.emplace(models::make_ising(opt.beta).model);
    } else {
      usage(opt.argv0.c_str(), ("unknown model: " + opt.model).c_str());
    }

    if (!opt.fill.empty()) {
      fill_species = model->species().require(opt.fill);
    }

    const std::int32_t height = opt.model == "single-file" ? 1 : opt.height;

    // --- Initial configuration ---------------------------------------
    const auto build_config = [&]() -> Configuration {
      Configuration cfg(Lattice(opt.width, height), model->species().size(),
                        fill_species);
      if (!opt.snapshot_in.empty()) {
        const io::Snapshot snap = io::load_snapshot(opt.snapshot_in);
        if (snap.config.lattice().width() != opt.width ||
            snap.config.lattice().height() != height) {
          throw std::runtime_error("snapshot lattice is " +
                                   std::to_string(snap.config.lattice().width()) + "x" +
                                   std::to_string(snap.config.lattice().height()) +
                                   ", run is " + std::to_string(opt.width) + "x" +
                                   std::to_string(height) + " (pass a matching --size)");
        }
        // Species are matched by NAME: a snapshot written under a model
        // that orders the same species differently is re-indexed, and one
        // mentioning an unknown species is rejected with its name.
        cfg = io::remap_species(snap, model->species());
      } else if (opt.coverage0 > 0 && model->species().size() >= 2) {
        scatter(cfg, 1, opt.coverage0, opt.seed);
      }
      return cfg;
    };

    // --- Simulator -----------------------------------------------------
    SimulationOptions sim_opt;
    sim_opt.algorithm = algorithm_from_name(opt.algorithm, opt.argv0.c_str());
    sim_opt.seed = opt.seed;
    sim_opt.l_trials = opt.l_trials;
    sim_opt.threads = opt.threads;
    sim_opt.fast_path = opt.fast_path;
    const auto build_sim = [&] {
      return make_simulator(*model, build_config(), sim_opt);
    };
    std::unique_ptr<Simulator> sim = build_sim();
    if (opt.fast_path && !sim->fast_path_active() && !opt.quiet) {
      std::fprintf(stderr,
                   "note: --fast-path not engaged for %s (no batched path, "
                   "build without it, or partition failed the gate); running "
                   "the scalar reference loop\n",
                   sim->name().c_str());
    }

    // --- Resume ------------------------------------------------------
    CoverageRecorder recorder;
    double next = opt.dt;
    bool resumed = false;
    std::string restore_source;
    if (!opt.resume.empty()) {
      // A failed restore may leave the simulator partially modified, so
      // each attempt gets a freshly constructed one. After a successful
      // restore an abort-policy audit cross-checks every derived cache
      // against the raw configuration — a checkpoint can be intact
      // byte-wise (CRC passes) yet semantically inconsistent.
      const std::string bak = opt.resume + ".bak";
      std::string blob;
      bool have_blob = false;
      try {
        blob = io::restore_checkpoint(opt.resume, *sim);
        StateAuditor(AuditPolicy::kAbort).run(*sim);
        restore_source = "primary";
        have_blob = true;
      } catch (const std::exception& primary) {
        std::fprintf(stderr, "warning: %s\nwarning: falling back to %s\n",
                     primary.what(), bak.c_str());
        sim = build_sim();
        try {
          blob = io::restore_checkpoint(bak, *sim);
          StateAuditor(AuditPolicy::kAbort).run(*sim);
          restore_source = "backup";
          have_blob = true;
        } catch (const std::exception& secondary) {
          if (!opt.resume_clean_ok) {
            // Explicit --resume: starting over silently is worse than
            // stopping — fail loudly with a dedicated exit code.
            std::fprintf(stderr,
                         "error: %s\nerror: cannot restore from %s or %s\n",
                         secondary.what(), opt.resume.c_str(), bak.c_str());
            return kExitRestoreFailed;
          }
          // Supervised restart: losing all progress beats losing the run.
          std::fprintf(stderr,
                       "warning: %s\nwarning: neither checkpoint is usable; "
                       "restarting from a clean state\n",
                       secondary.what());
          sim = build_sim();
          restore_source = "clean";
        }
      }
      if (have_blob) {
        decode_run_state(blob, next, recorder);
        resumed = true;
      }
    }
    // A supervised restart fills in what the supervisor could not know:
    // where the replacement actually resumed.
    if (!restore_source.empty() && !recovery.records.empty()) {
      recovery.records.back().resume_time = resumed ? sim->time() : 0.0;
      recovery.records.back().restore_source = restore_source;
    }

    // --- Metrics / tracing / drift ------------------------------------
    // Attached after any resume: a restore fallback rebuilds the
    // simulator, which would drop probe handles attached earlier.
    obs::MetricsRegistry registry;
    if (!opt.metrics.empty()) sim->set_metrics(&registry);
    obs::Tracer tracer(static_cast<std::size_t>(opt.trace_buffer));
    if (!opt.trace_id.empty()) tracer.set_trace_id(opt.trace_id);
    if (!opt.trace.empty()) sim->set_tracer(&tracer);
    std::optional<obs::SpatialMap> spatial_map;
    if (!opt.heatmap.empty()) {
      spatial_map.emplace(sim->configuration().size());
      sim->set_spatial(&*spatial_map);
#ifdef CASURF_NO_METRICS
      std::fprintf(stderr,
                   "note: built with CASURF_METRICS=OFF; activity grids in the "
                   "heatmap artifacts will be empty\n");
#endif
    }
    // Partition-level aggregation happens at export time only; algorithms
    // without a partition (the DMC family, plain NDCA) get a null summary.
    const auto spatial_summary = [&]() -> std::optional<obs::SpatialSummary> {
      if (!spatial_map || sim->spatial_partition() == nullptr) return std::nullopt;
      return obs::summarize(*spatial_map, *sim->spatial_partition(),
                            conflict_offsets(*model));
    };
    const auto write_heatmap = [&] {
      const std::optional<obs::SpatialSummary> ssum = spatial_summary();
      obs::write_heatmap_json(opt.heatmap + ".json", sim->configuration(),
                              model->species().names(), sim->time(),
                              &*spatial_map, ssum ? &*ssum : nullptr);
      obs::write_activity_ppm(opt.heatmap + ".attempts.ppm", *spatial_map,
                              sim->configuration().lattice(),
                              obs::ActivityChannel::kAttempts);
      obs::write_activity_ppm(opt.heatmap + ".fires.ppm", *spatial_map,
                              sim->configuration().lattice(),
                              obs::ActivityChannel::kFires);
      io::write_ppm(opt.heatmap + ".occupancy.ppm", sim->configuration());
    };
    std::optional<obs::DriftRecorder> drift_rec;
    if (!opt.drift_record.empty()) {
      drift_rec.emplace(opt.drift_window > 0 ? opt.drift_window : 10 * opt.dt,
                        obs::CorrelationOptions{
                            opt.drift_corr,
                            static_cast<std::int32_t>(opt.drift_corr_rmax)});
    }
    std::optional<obs::DriftMonitor> drift_mon;
    if (!opt.drift_ref.empty()) {
      drift_mon.emplace(obs::DriftProfile::load(opt.drift_ref));
      if (!opt.trace.empty()) drift_mon->set_trace(&tracer.ring(0));
    }
    const obs::DriftMonitor* drift_for_report =
        drift_mon.has_value() ? &*drift_mon : nullptr;
    const auto drift_sample = [&](const Simulator& s) {
      if (drift_rec) drift_rec->sample(s);
      if (drift_mon) drift_mon->sample(s);
    };
    const auto wall_start = std::chrono::steady_clock::now();
    const auto report_info = [&] {
      obs::RunInfo info;
      info.algorithm = sim->name();
      info.model = opt.model_file.empty() ? opt.model : opt.model_file;
      info.width = opt.width;
      info.height = opt.model == "single-file" ? 1 : opt.height;
      info.seed = opt.seed;
      info.t_end = opt.t_end;
      info.dt = opt.dt;
      info.threads = opt.algorithm == "parallel" ? opt.threads : 1;
      info.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
      info.trace_id = opt.trace_id;
      info.trace_drops = opt.trace.empty() ? 0 : tracer.total_dropped();
      return info;
    };
    const auto flush_report = [&] {
      if (opt.metrics.empty()) return;
      const std::optional<obs::SpatialSummary> ssum = spatial_summary();
      obs::write_run_report(opt.metrics, report_info(), sim.get(), &registry,
                            nullptr, drift_for_report, ssum ? &*ssum : nullptr,
                            &recovery);
    };
    const auto flush_trace = [&] {
      if (!opt.trace.empty()) tracer.write(opt.trace);
    };

    if (!opt.quiet) {
      std::printf("# %s, %zu reaction types, K = %.3f, %d x %d, seed %llu\n",
                  sim->name().c_str(), model->num_reactions(), model->total_rate(),
                  opt.width, height, static_cast<unsigned long long>(opt.seed));
      if (resumed) std::printf("# resumed at t = %.6g\n", sim->time());
      std::printf("%-10s", "time");
      for (const std::string& name : model->species().names()) {
        std::printf(" %-8s", name.c_str());
      }
      std::printf("\n");
    }

    // --- Main loop ---------------------------------------------------
    StateAuditor auditor(opt.audit_policy);
    const double ckpt_every =
        opt.checkpoint_every > 0 ? opt.checkpoint_every : opt.dt;
    double next_ckpt = sim->time() + ckpt_every;
    std::uint64_t samples = 0;

    if (!resumed) {
      recorder.sample(*sim);
      drift_sample(*sim);
    }
    heartbeat();  // setup done: start the watchdog clock from here
    // Sampling targets form the fixed grid k * dt, indexed by integer k so
    // an overshooting advance never drifts later samples off the grid (and
    // a resumed run recovers its k from the checkpointed grid time).
    auto sample_k = static_cast<std::uint64_t>(std::llround(next / opt.dt));
    while (next <= opt.t_end) {
      sim->advance_to(next);
      recorder.sample(*sim);
      drift_sample(*sim);
      heartbeat();
      if (!opt.trace.empty()) {
        tracer.ring(0).instant("run/sample", sim->time(), sample_k);
      }
      if (!opt.quiet) {
        std::printf("%-10.2f", sim->time());
        for (Species s = 0; s < model->species().size(); ++s) {
          std::printf(" %-8.4f", sim->configuration().coverage(s));
        }
        std::printf("\n");
      }
      ++sample_k;
      next = static_cast<double>(sample_k) * opt.dt;

      ++samples;
      if (opt.metrics_every > 0 && samples % opt.metrics_every == 0) {
        flush_report();
      }
      if (opt.heatmap_every > 0 && samples % opt.heatmap_every == 0) {
        write_heatmap();
      }
      if (opt.audit_every > 0 && samples % opt.audit_every == 0) {
        const AuditReport report = auditor.run(*sim);  // throws under kAbort
        if (report.repaired) {
          std::fprintf(stderr, "warning: audit repaired inconsistent state:\n%s",
                       report.to_string().c_str());
        }
      }
      if (!opt.checkpoint.empty() && sim->time() >= next_ckpt) {
        write_checkpoint(opt, *sim, next, recorder, recovery);
        next_ckpt = sim->time() + ckpt_every;
      }
      if (kRunStall.fire()) {
        std::fprintf(stderr, "injected stall at t = %.6g\n", sim->time());
        std::this_thread::sleep_for(std::chrono::seconds(3));
      }
      if (kRunKill.fire()) {
        std::fprintf(stderr, "injected SIGKILL at t = %.6g\n", sim->time());
        std::fflush(nullptr);
        ::raise(SIGKILL);
      }
      if (kRunSigterm.fire()) {
        std::fprintf(stderr, "injected SIGTERM at t = %.6g\n", sim->time());
        ::raise(SIGTERM);
      }
      if (opt.die_at >= 0 && sim->time() >= opt.die_at) {
        std::fprintf(stderr, "simulated crash at t = %.6g\n", sim->time());
        std::_Exit(42);  // no destructors, no final outputs — as a crash would
      }
      if (g_signal != 0) {
        // Graceful shutdown: save where we are, flush what observability
        // state exists, and report the signal in the exit code. A later
        // --resume (or supervised relaunch) continues from this sample.
        const int sig = static_cast<int>(g_signal);
        std::fprintf(stderr,
                     "casurf_run: caught %s at t = %.6g; writing final "
                     "checkpoint and flushing artifacts\n",
                     sig == SIGINT ? "SIGINT" : "SIGTERM", sim->time());
        heartbeat();
        if (!opt.checkpoint.empty()) {
          write_checkpoint(opt, *sim, next, recorder, recovery);
        }
        flush_report();
        flush_trace();
        return 128 + sig;
      }
    }

    // A final checkpoint at t_end makes `--resume` idempotent: resuming a
    // finished run just rewrites the outputs.
    if (!opt.checkpoint.empty()) {
      write_checkpoint(opt, *sim, next, recorder, recovery);
    }

    if (drift_mon) {
      drift_mon->finish();
      std::printf("# drift: %llu windows checked vs %s reference, %zu alarms, "
                  "max z %.2f\n",
                  static_cast<unsigned long long>(drift_mon->windows_checked()),
                  drift_mon->reference().algorithm.c_str(),
                  drift_mon->alarms().size(), drift_mon->max_z());
      for (const obs::DriftAlarm& a : drift_mon->alarms()) {
        std::printf("# drift alarm: window %llu [%.6g, %.6g) %s observed %.6g "
                    "expected %.6g (z = %.2f)\n",
                    static_cast<unsigned long long>(a.window), a.t0, a.t1,
                    a.what.c_str(), a.observed, a.expected, a.z);
      }
    }
    if (drift_rec) {
      obs::DriftProfile profile = drift_rec->take_profile(
          sim->name(), opt.model_file.empty() ? opt.model : opt.model_file);
      profile.write(opt.drift_record);
      if (!opt.quiet) {
        std::printf("# drift profile: %s (%zu windows of %.6g)\n",
                    opt.drift_record.c_str(), profile.windows.size(),
                    profile.window);
      }
    }

    if (!opt.heatmap.empty()) {
      write_heatmap();
      if (!opt.quiet) {
        std::printf("# heatmap: %s.json (+ attempts/fires/occupancy PPMs)\n",
                    opt.heatmap.c_str());
      }
    }

    if (!opt.metrics.empty()) {
      flush_report();
      if (!opt.quiet) std::printf("# metrics report: %s\n", opt.metrics.c_str());
    }

    if (!opt.trace.empty()) {
      flush_trace();
      if (!opt.quiet) {
        std::printf("# trace: %s (%llu events, %llu dropped)\n", opt.trace.c_str(),
                    static_cast<unsigned long long>(tracer.total_recorded()),
                    static_cast<unsigned long long>(tracer.total_dropped()));
      }
    }

    if (!opt.quiet) {
      const SimCounters& c = sim->counters();
      std::printf("# %llu trials, %llu executed (acceptance %.2f%%)\n",
                  static_cast<unsigned long long>(c.trials),
                  static_cast<unsigned long long>(c.executed),
                  100 * c.acceptance());
      if (opt.audit_every > 0) {
        std::printf("# %llu audits, %llu found issues\n",
                    static_cast<unsigned long long>(auditor.audits_run()),
                    static_cast<unsigned long long>(auditor.audits_failed()));
      }
    }

    // --- Outputs ---------------------------------------------------------
    if (!opt.csv.empty()) {
      std::vector<std::string> names;
      std::vector<TimeSeries> series;
      for (Species s = 0; s < model->species().size(); ++s) {
        names.push_back(model->species().name(s));
        series.push_back(recorder.series(s));
      }
      stats::write_csv_series(opt.csv, names, series);
    }
    if (!opt.ppm.empty()) io::write_ppm(opt.ppm, sim->configuration());
    if (!opt.snapshot_out.empty()) {
      io::save_snapshot(opt.snapshot_out, sim->configuration(), model->species());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitRuntime;
  }
  return kExitOk;
}

// --- Supervisor -----------------------------------------------------------

/// Fork-based supervised execution: the simulation runs in a worker child
/// while the parent watches a heartbeat pipe. A worker that crashes (any
/// abnormal exit, an injected SIGKILL, a --die-at) or hangs (no heartbeat
/// for --watchdog seconds; killed) is restarted from the latest good
/// checkpoint with bounded exponential backoff, up to the retry budget.
/// SIGINT/SIGTERM are forwarded to the worker, whose graceful shutdown
/// (exit 128+sig) ends the supervised run without a restart — the contract
/// a preempting scheduler relies on. Each restart is recorded in the
/// recovery log the worker inherits through fork, so the final worker's
/// run report carries the full history.
int supervise(const Options& opt) {
  obs::RecoveryLog recovery;
  recovery.supervised = true;
  recovery.retries_allowed = opt.supervise_retries;
  const auto start = std::chrono::steady_clock::now();

  struct sigaction sa {};
  sa.sa_handler = on_supervisor_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::uint64_t restarts = 0;
  for (;;) {
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      std::fprintf(stderr, "error: supervisor pipe failed: %s\n",
                   std::strerror(errno));
      return kExitRuntime;
    }
    // spawn_supervised closes the forwarding window: SIGINT/SIGTERM are
    // blocked across fork() and the g_child_pid store (a signal landing in
    // between would otherwise run on_supervisor_signal against a stale pid
    // and orphan the fresh worker), and a signal that had already arrived
    // before the fork is re-forwarded once the pid is published.
    const pid_t pid = serve::spawn_supervised(&g_child_pid, &g_signal, [&] {
      // Worker. No exec: the parsed options and the recovery log so far
      // come along through the fork.
      ::close(pipefd[0]);
      g_heartbeat_fd = pipefd[1];
      std::signal(SIGPIPE, SIG_IGN);  // a dead supervisor must not kill us
      Options worker = opt;
      worker.supervise = false;
      if (restarts > 0) {
        // Restart: resume from the checkpoint chain; if both generations
        // are unusable, start clean rather than give up the attempt.
        worker.resume = opt.checkpoint;
        worker.resume_clean_ok = true;
      }
      const int code = run_once(worker, recovery);
      std::fflush(nullptr);
      return code;
    });
    if (pid < 0) {
      std::fprintf(stderr, "error: supervisor fork failed: %s\n",
                   std::strerror(errno));
      return kExitRuntime;
    }
    ::close(pipefd[1]);
    log::Event(log::Level::kDebug, "run.supervise", "worker_spawned")
        .i64("pid", pid)
        .u64("attempt", restarts);

    // Heartbeat watch. poll() wakes on data (worker alive), EOF (worker
    // gone), timeout (worker hung), or EINTR (signal being forwarded).
    bool watchdog_fired = false;
    const int timeout_ms =
        opt.watchdog > 0 ? static_cast<int>(opt.watchdog * 1000.0) : -1;
    for (;;) {
      struct pollfd pfd {pipefd[0], POLLIN, 0};
      const int r = ::poll(&pfd, 1, timeout_ms);
      if (r < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (r == 0) {
        std::fprintf(stderr,
                     "supervisor: no heartbeat for %.3g s; killing worker %d\n",
                     opt.watchdog, static_cast<int>(pid));
        log::Event(log::Level::kWarn, "run.supervise", "watchdog_kill")
            .i64("pid", pid)
            .f64("watchdog_s", opt.watchdog);
        watchdog_fired = true;
        ::kill(pid, SIGKILL);
        break;
      }
      if ((pfd.revents & POLLIN) != 0) {
        char buf[64];
        const ssize_t n = ::read(pipefd[0], buf, sizeof buf);
        if (n <= 0) break;  // EOF: worker exited
      } else {
        break;  // POLLHUP/POLLERR: worker exited
      }
    }
    ::close(pipefd[0]);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
    g_child_pid = -1;

    // Classify the exit: done, not-worth-retrying, graceful, or restart.
    std::string cause;
    int detail = 0;
    if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      if (code == kExitOk) return kExitOk;
      if (code == kExitUsage) return code;  // config error: retrying is pointless
      if (code == 128 + SIGINT || code == 128 + SIGTERM) {
        // The worker shut down gracefully after a forwarded (or external)
        // signal; that is an orderly preemption, not a failure.
        log::Event(log::Level::kInfo, "run.supervise", "worker_yielded")
            .i64("signal", code - 128);
        return code;
      }
      cause = "crash";
      detail = code;
    } else if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      if (watchdog_fired) {
        cause = "watchdog";
        detail = sig;
      } else if ((sig == SIGINT || sig == SIGTERM) && g_signal != 0) {
        // Forwarded signal landed before the worker's handlers were up.
        return 128 + sig;
      } else {
        cause = "signal";
        detail = sig;
      }
    } else {
      cause = "crash";
      detail = status;
    }

    ++restarts;
    if (restarts > opt.supervise_retries) {
      std::fprintf(stderr,
                   "error: supervised run still failing after %llu restarts "
                   "(last: %s %d); giving up\n",
                   static_cast<unsigned long long>(opt.supervise_retries),
                   cause.c_str(), detail);
      log::Event(log::Level::kError, "run.supervise", "retries_exhausted")
          .str("cause", cause)
          .i64("detail", detail)
          .u64("retries", opt.supervise_retries);
      return kExitRetriesExhausted;
    }
    obs::RecoveryRecord record;
    record.cause = cause;
    record.detail = detail;
    record.attempt = restarts;
    record.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    // Estimate where the replacement will resume by peeking the checkpoint
    // chain. The replacement overwrites this with the actual outcome, but
    // only the final generation's log survives into the report —
    // intermediate generations die with their copy — so the estimate is
    // what the report carries for every restart but the last.
    record.restore_source = "clean";
    try {
      record.resume_time = io::peek_checkpoint(opt.checkpoint).time;
      record.restore_source = "primary";
    } catch (const std::exception&) {
      try {
        record.resume_time = io::peek_checkpoint(opt.checkpoint + ".bak").time;
        record.restore_source = "backup";
      } catch (const std::exception&) {
      }
    }
    recovery.records.push_back(record);
    const double backoff =
        std::min(2.0, 0.1 * std::ldexp(1.0, static_cast<int>(restarts) - 1));
    std::fprintf(stderr,
                 "supervisor: worker died (%s %d); restarting from %s "
                 "(attempt %llu of %llu) after %.2g s\n",
                 cause.c_str(), detail, opt.checkpoint.c_str(),
                 static_cast<unsigned long long>(restarts),
                 static_cast<unsigned long long>(opt.supervise_retries), backoff);
    log::Event(log::Level::kWarn, "run.supervise", "worker_restart")
        .str("cause", cause)
        .i64("detail", detail)
        .u64("attempt", restarts)
        .str("restore_source", record.restore_source)
        .f64("resume_time", record.resume_time)
        .f64("backoff_s", backoff);
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Environment first so explicit --log-* flags win; a bad CASURF_LOG is a
  // usage error like a bad CASURF_FAILPOINTS.
  if (const std::string err = log::configure_from_env(); !err.empty()) {
    usage(argv[0], err.c_str());
  }
  const Options opt = parse_args(argc, argv);
  if (opt.log_flags) {
    // Explicit flags refuse loudly when logging is compiled out
    // (CASURF_METRICS=OFF); the env variable degrades silently.
    if (const std::string err = log::configure(opt.log_level, opt.log_file);
        !err.empty()) {
      usage(argv[0], err.c_str());
    }
  }
  if (opt.supervise) return supervise(opt);
  obs::RecoveryLog recovery;  // unsupervised: carries degradation counters
  return run_once(opt, recovery);
}
