// casurf_run — command-line driver for the library: pick a bundled model
// (or load one from a .model file), pick an algorithm, run, and dump
// coverage series / snapshots / images.
//
//   casurf_run --model zgb --y 0.45 --algorithm pndca --size 128x128 \
//              --t-end 50 --dt 1 --csv coverage.csv --ppm final.ppm
//
//   casurf_run --model-file my.model --fill "*" --algorithm rsm --t-end 10

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/observer.hpp"
#include "core/simulation.hpp"
#include "io/snapshot.hpp"
#include "model/parser.hpp"
#include "models/diffusion.hpp"
#include "models/ising.hpp"
#include "models/pt100.hpp"
#include "models/zgb.hpp"
#include "stats/coverage.hpp"
#include "stats/csv.hpp"

using namespace casurf;

namespace {

struct Options {
  std::string model = "zgb";
  std::string model_file;
  std::string algorithm = "rsm";
  std::int32_t width = 100, height = 100;
  std::uint64_t seed = 1;
  double t_end = 20.0;
  double dt = 1.0;
  double y = 0.45;       // ZGB CO fraction
  double beta = 0.5;     // Ising J/kT
  double hop = 1.0;      // diffusion rate
  double coverage0 = 0;  // initial particle coverage for diffusion/ising
  std::uint32_t l_trials = 1;
  unsigned threads = 2;
  std::string fill;      // species name to fill the lattice with
  std::string csv, ppm, snapshot_out, snapshot_in;
  bool quiet = false;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --model NAME        zgb | pt100 | diffusion | single-file | ising\n"
               "  --model-file PATH   parse a .model description instead\n"
               "  --algorithm NAME    rsm | vssm | frm | ndca | pndca | lpndca |\n"
               "                      tpndca | parallel\n"
               "  --size WxH          lattice size (default 100x100)\n"
               "  --t-end T           simulated end time (default 20)\n"
               "  --dt T              sampling interval (default 1)\n"
               "  --seed S            RNG seed (default 1)\n"
               "  --y Y               ZGB CO fraction (default 0.45)\n"
               "  --beta B            Ising J/kT (default 0.5)\n"
               "  --hop R             diffusion hop rate (default 1)\n"
               "  --coverage0 C       initial particle coverage (diffusion/ising)\n"
               "  --L N               L-PNDCA trials per batch (default 1)\n"
               "  --threads N         threads for the parallel engine (default 2)\n"
               "  --fill NAME         species to fill the lattice with\n"
               "  --load PATH         start from a snapshot\n"
               "  --csv PATH          write the coverage time series\n"
               "  --ppm PATH          write the final state as a PPM image\n"
               "  --snapshot PATH     write the final state as a snapshot\n"
               "  --quiet             suppress the progress table\n",
               argv0);
  std::exit(error ? 2 : 0);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], "missing value for flag");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--help" || flag == "-h") usage(argv[0]);
    else if (flag == "--model") opt.model = need_value(i);
    else if (flag == "--model-file") opt.model_file = need_value(i);
    else if (flag == "--algorithm") opt.algorithm = need_value(i);
    else if (flag == "--size") {
      const char* v = need_value(i);
      if (std::sscanf(v, "%dx%d", &opt.width, &opt.height) != 2 || opt.width <= 0 ||
          opt.height <= 0) {
        usage(argv[0], "--size expects WxH");
      }
    }
    else if (flag == "--t-end") opt.t_end = std::atof(need_value(i));
    else if (flag == "--dt") opt.dt = std::atof(need_value(i));
    else if (flag == "--seed") opt.seed = std::strtoull(need_value(i), nullptr, 10);
    else if (flag == "--y") opt.y = std::atof(need_value(i));
    else if (flag == "--beta") opt.beta = std::atof(need_value(i));
    else if (flag == "--hop") opt.hop = std::atof(need_value(i));
    else if (flag == "--coverage0") opt.coverage0 = std::atof(need_value(i));
    else if (flag == "--L") opt.l_trials = std::strtoul(need_value(i), nullptr, 10);
    else if (flag == "--threads") opt.threads = std::strtoul(need_value(i), nullptr, 10);
    else if (flag == "--fill") opt.fill = need_value(i);
    else if (flag == "--load") opt.snapshot_in = need_value(i);
    else if (flag == "--csv") opt.csv = need_value(i);
    else if (flag == "--ppm") opt.ppm = need_value(i);
    else if (flag == "--snapshot") opt.snapshot_out = need_value(i);
    else if (flag == "--quiet") opt.quiet = true;
    else usage(argv[0], ("unknown flag: " + std::string(flag)).c_str());
  }
  return opt;
}

Algorithm algorithm_from_name(const std::string& name, const char* argv0) {
  static const std::map<std::string, Algorithm> kMap = {
      {"rsm", Algorithm::kRsm},       {"vssm", Algorithm::kVssm},
      {"frm", Algorithm::kFrm},       {"ndca", Algorithm::kNdca},
      {"pndca", Algorithm::kPndca},   {"lpndca", Algorithm::kLPndca},
      {"tpndca", Algorithm::kTPndca}, {"parallel", Algorithm::kParallelPndca}};
  const auto it = kMap.find(name);
  if (it == kMap.end()) usage(argv0, ("unknown algorithm: " + name).c_str());
  return it->second;
}

/// Scatter species `what` onto a fraction `coverage` of vacant sites,
/// deterministically from the seed.
void scatter(Configuration& cfg, Species what, double coverage, std::uint64_t seed) {
  CounterRng rng(seed, 0xc0ffee);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    if (rng.next_double() < coverage) cfg.set(s, what);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  // --- Build the model -----------------------------------------------
  std::optional<ReactionModel> model;
  Species fill_species = 0;
  try {
    if (!opt.model_file.empty()) {
      model.emplace(parse_model_file(opt.model_file));
    } else if (opt.model == "zgb") {
      model.emplace(models::make_zgb(models::ZgbParams::from_y(opt.y, 20.0)).model);
    } else if (opt.model == "pt100") {
      model.emplace(models::make_pt100().model);
    } else if (opt.model == "diffusion") {
      model.emplace(models::make_diffusion(opt.hop).model);
    } else if (opt.model == "single-file") {
      model.emplace(models::make_single_file(opt.hop).model);
      if (opt.height != 1) {
        std::fprintf(stderr, "note: single-file is one-dimensional; using %dx1\n",
                     opt.width);
      }
    } else if (opt.model == "ising") {
      model.emplace(models::make_ising(opt.beta).model);
    } else {
      usage(argv[0], ("unknown model: " + opt.model).c_str());
    }

    if (!opt.fill.empty()) {
      fill_species = model->species().require(opt.fill);
    }

    // --- Initial configuration ---------------------------------------
    const std::int32_t height = opt.model == "single-file" ? 1 : opt.height;
    Configuration cfg(Lattice(opt.width, height), model->species().size(),
                      fill_species);
    if (!opt.snapshot_in.empty()) {
      io::Snapshot snap = io::load_snapshot(opt.snapshot_in);
      if (snap.config.num_species() != model->species().size()) {
        std::fprintf(stderr, "error: snapshot species count mismatch\n");
        return 1;
      }
      cfg = std::move(snap.config);
    } else if (opt.coverage0 > 0 && model->species().size() >= 2) {
      scatter(cfg, 1, opt.coverage0, opt.seed);
    }

    // --- Simulator -----------------------------------------------------
    SimulationOptions sim_opt;
    sim_opt.algorithm = algorithm_from_name(opt.algorithm, argv[0]);
    sim_opt.seed = opt.seed;
    sim_opt.l_trials = opt.l_trials;
    sim_opt.threads = opt.threads;
    auto sim = make_simulator(*model, std::move(cfg), sim_opt);

    if (!opt.quiet) {
      std::printf("# %s, %zu reaction types, K = %.3f, %d x %d, seed %llu\n",
                  sim->name().c_str(), model->num_reactions(), model->total_rate(),
                  opt.width, height, static_cast<unsigned long long>(opt.seed));
      std::printf("%-10s", "time");
      for (const std::string& name : model->species().names()) {
        std::printf(" %-8s", name.c_str());
      }
      std::printf("\n");
    }

    CoverageRecorder recorder;
    recorder.sample(*sim);
    double next = opt.dt;
    while (next <= opt.t_end) {
      sim->advance_to(next);
      recorder.sample(*sim);
      if (!opt.quiet) {
        std::printf("%-10.2f", sim->time());
        for (Species s = 0; s < model->species().size(); ++s) {
          std::printf(" %-8.4f", sim->configuration().coverage(s));
        }
        std::printf("\n");
      }
      next = sim->time() + opt.dt;
    }

    if (!opt.quiet) {
      const SimCounters& c = sim->counters();
      std::printf("# %llu trials, %llu executed (acceptance %.2f%%)\n",
                  static_cast<unsigned long long>(c.trials),
                  static_cast<unsigned long long>(c.executed),
                  100 * c.acceptance());
    }

    // --- Outputs ---------------------------------------------------------
    if (!opt.csv.empty()) {
      std::vector<std::string> names;
      std::vector<TimeSeries> series;
      for (Species s = 0; s < model->species().size(); ++s) {
        names.push_back(model->species().name(s));
        series.push_back(recorder.series(s));
      }
      stats::write_csv_series(opt.csv, names, series);
    }
    if (!opt.ppm.empty()) io::write_ppm(opt.ppm, sim->configuration());
    if (!opt.snapshot_out.empty()) {
      io::save_snapshot(opt.snapshot_out, sim->configuration(), model->species());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
