// casurf_serve — long-running job daemon for surface-reaction simulations.
//
// Accepts model-DSL + run-spec jobs over a loopback HTTP API and
// multiplexes many concurrent simulations, each executed as its own
// supervised casurf_run worker process (docs/SERVING.md documents the API
// and lifecycle; docs/ROBUSTNESS.md the recovery machinery underneath).
//
// Exit codes follow the casurf_run taxonomy:
//   0      clean shutdown (SIGINT/SIGTERM drain completed)
//   1      runtime failure (could not bind, data dir unwritable, ...)
//   2      usage error
//   128+N  reserved for future non-drain signal deaths

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/daemon.hpp"
#include "util/log.hpp"

namespace {

using casurf::serve::Daemon;
using casurf::serve::DaemonOptions;

constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "%s: %s\n\n", argv0, error);
  std::fprintf(
      stderr,
      "usage: %s --runner PATH --data-dir DIR [options]\n"
      "\n"
      "  --runner PATH       casurf_run binary workers exec (required)\n"
      "  --data-dir DIR      job directories live here (required; a restart\n"
      "                      over the same DIR requeues unfinished jobs)\n"
      "  --port N            HTTP listen port (default 0 = ephemeral)\n"
      "  --port-file PATH    write the bound port to PATH once listening\n"
      "  --slots N           concurrently running jobs (default 2)\n"
      "  --queue-cap N       queued jobs before 429 (default 64)\n"
      "  --tenant-cap N      live jobs per tenant before 403 (default 16)\n"
      "  --max-threads N     per-job worker-thread clamp (default 4)\n"
      "  --worker-log-cap N  bytes before a job's worker.log rotates to .1\n"
      "                      (default 1 MiB; 0 = unbounded)\n"
      "  --log-level L       structured-log threshold: debug|info|warn|error\n"
      "                      |off (default warn; env CASURF_LOG also applies)\n"
      "  --log-file PATH     append JSON-lines log to PATH (default stderr)\n"
      "\n"
      "API summary (docs/SERVING.md):\n"
      "  POST /jobs            submit a job (JSON spec)\n"
      "  GET  /jobs            list jobs\n"
      "  GET  /jobs/I          state + progress\n"
      "  GET  /jobs/I/report   latest run-report snapshot\n"
      "  GET  /jobs/I/csv      coverage trajectory\n"
      "  GET  /jobs/I/heatmap  spatial activity artifact\n"
      "  GET  /jobs/I/drift    drift profile\n"
      "  POST /jobs/I/stop     checkpoint and yield\n"
      "  POST /jobs/I/start    requeue (resumes from checkpoint)\n"
      "  GET  /healthz, /stats, /metrics\n",
      argv0);
  std::exit(error != nullptr ? kExitUsage : 0);
}

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  DaemonOptions opt;
  std::string port_file;
  std::string log_file;
  casurf::log::Level log_level = casurf::log::threshold();
  bool log_flags = false;

  // Environment first so explicit flags win.
  if (const std::string err = casurf::log::configure_from_env(); !err.empty()) {
    usage(argv[0], err.c_str());
  }

  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    auto need_value = [&](int& idx) -> const char* {
      if (idx + 1 >= argc) {
        usage(argv[0], (std::string(flag) + " expects a value").c_str());
      }
      return argv[++idx];
    };
    auto integer = [&](int& idx, const char* name) -> unsigned long {
      const char* text = need_value(idx);
      char* end = nullptr;
      const unsigned long v = std::strtoul(text, &end, 10);
      if (end == text || *end != '\0') {
        usage(argv[0], (std::string(name) + " expects a number").c_str());
      }
      return v;
    };
    if (flag == "--help" || flag == "-h") usage(argv[0]);
    else if (flag == "--runner") opt.runner = need_value(i);
    else if (flag == "--data-dir") opt.data_dir = need_value(i);
    else if (flag == "--port") {
      const unsigned long p = integer(i, "--port");
      if (p > 65535) usage(argv[0], "--port must be 0..65535");
      opt.port = static_cast<std::uint16_t>(p);
    }
    else if (flag == "--port-file") port_file = need_value(i);
    else if (flag == "--slots") {
      opt.slots = static_cast<unsigned>(integer(i, "--slots"));
      if (opt.slots == 0) usage(argv[0], "--slots must be at least 1");
    }
    else if (flag == "--queue-cap") opt.queue_cap = integer(i, "--queue-cap");
    else if (flag == "--tenant-cap") opt.tenant_cap = integer(i, "--tenant-cap");
    else if (flag == "--worker-log-cap") {
      opt.worker_log_cap = integer(i, "--worker-log-cap");
    }
    else if (flag == "--log-level") {
      if (!casurf::log::parse_level(need_value(i), log_level)) {
        usage(argv[0], "--log-level expects debug|info|warn|error|off");
      }
      log_flags = true;
    }
    else if (flag == "--log-file") {
      log_file = need_value(i);
      log_flags = true;
    }
    else if (flag == "--max-threads") {
      opt.max_threads_per_job = static_cast<unsigned>(integer(i, "--max-threads"));
      if (opt.max_threads_per_job == 0) {
        usage(argv[0], "--max-threads must be at least 1");
      }
    }
    else usage(argv[0], ("unknown flag: " + std::string(flag)).c_str());
  }
  if (opt.runner.empty()) usage(argv[0], "--runner PATH is required");
  if (opt.data_dir.empty()) usage(argv[0], "--data-dir DIR is required");
  if (log_flags) {
    // Explicit flags refuse loudly when logging is compiled out; the env
    // variable above degrades silently (same contract as failpoints).
    if (const std::string err = casurf::log::configure(log_level, log_file);
        !err.empty()) {
      usage(argv[0], err.c_str());
    }
  }

  // Handlers before the daemon exists: a SIGTERM during recovery/startup
  // is recorded and drains immediately after construction.
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a dropped client connection is not fatal

  try {
    Daemon daemon(opt);
    std::fprintf(stderr, "casurf_serve: listening on 127.0.0.1:%u, %u slot(s), data in %s\n",
                 static_cast<unsigned>(daemon.port()), opt.slots,
                 opt.data_dir.c_str());
    if (!port_file.empty()) {
      std::FILE* f = std::fopen(port_file.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "casurf_serve: cannot write --port-file %s\n",
                     port_file.c_str());
        return kExitRuntime;
      }
      std::fprintf(f, "%u\n", static_cast<unsigned>(daemon.port()));
      std::fclose(f);
    }

    // Park until a shutdown signal lands. sigsuspend-free polling keeps
    // this portable and the 100 ms latency is irrelevant for a drain.
    sigset_t empty;
    sigemptyset(&empty);
    struct timespec tick = {0, 100 * 1000 * 1000};
    while (g_signal == 0) ::nanosleep(&tick, nullptr);

    const int sig = static_cast<int>(g_signal);
    std::fprintf(stderr,
                 "casurf_serve: %s received; draining (checkpointing %s)\n",
                 sig == SIGINT ? "SIGINT" : "SIGTERM", "in-flight jobs");
    daemon.drain(SIGTERM);
    daemon.stop();  // joins runners once every worker has checkpointed out
    std::fprintf(stderr, "casurf_serve: drain complete\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casurf_serve: %s\n", e.what());
    return kExitRuntime;
  }
}
