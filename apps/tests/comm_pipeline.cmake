# Cross-process trace correlation end to end: two casurf_run workers carry
# distinct trace ids (one via --trace-id, one via the CASURF_TRACE_ID
# environment default), stamp them into their run-report headers and trace
# footers, and casurf_report --merge-traces stitches the two traces into
# one clock-aligned Chrome trace that --trace must accept as a valid
# casurf-trace/1 document. The id plumbing and the merge are independent
# of CASURF_METRICS (an OFF build merges valid empty traces), so the
# script runs on both flavors.
#
# Driven by ctest as:  cmake -DCASURF_RUN=... -DCASURF_REPORT=... -DWORK_DIR=... -P this
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common --model zgb --algorithm rsm --size 24x24 --t-end 1 --dt 0.5 --quiet)

execute_process(COMMAND ${CASURF_RUN} ${common} --seed 1
                        --trace ${WORK_DIR}/a_trace.json
                        --trace-id job-A
                        --metrics ${WORK_DIR}/a_report.json
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "worker A failed (exit ${rc})")
endif()

# Worker B gets its id the way a supervising environment would hand it out.
execute_process(COMMAND ${CMAKE_COMMAND} -E env CASURF_TRACE_ID=job-B
                        ${CASURF_RUN} ${common} --seed 2
                        --trace ${WORK_DIR}/b_trace.json
                        --metrics ${WORK_DIR}/b_report.json
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "worker B failed (exit ${rc})")
endif()

# The ids must land in the run-report headers (with the drop counter)...
file(READ ${WORK_DIR}/a_report.json a_report)
if(NOT a_report MATCHES "\"trace_id\":\"job-A\"")
  message(FATAL_ERROR "worker A report is missing its trace id")
endif()
if(NOT a_report MATCHES "\"trace_drops\":")
  message(FATAL_ERROR "worker A report is missing the trace_drops field")
endif()
file(READ ${WORK_DIR}/b_report.json b_report)
if(NOT b_report MATCHES "\"trace_id\":\"job-B\"")
  message(FATAL_ERROR "worker B report did not pick CASURF_TRACE_ID up")
endif()

# ...and in the trace footers next to the clock origin --merge-traces
# aligns on.
file(READ ${WORK_DIR}/a_trace.json a_trace)
if(NOT a_trace MATCHES "\"trace_id\":\"job-A\"" OR NOT a_trace MATCHES "\"t0_ns\":")
  message(FATAL_ERROR "worker A trace footer is missing trace_id/t0_ns")
endif()

execute_process(COMMAND ${CASURF_REPORT} --merge-traces ${WORK_DIR}/merged.json
                        ${WORK_DIR}/a_trace.json ${WORK_DIR}/b_trace.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--merge-traces failed (exit ${rc}):\n${out}")
endif()
foreach(needle "merged 2 traces" "job-A" "job-B")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "merge summary missing '${needle}':\n${out}")
  endif()
endforeach()

# The merged document is itself a valid casurf-trace/1 file with the
# provenance of both inputs.
execute_process(COMMAND ${CASURF_REPORT} --trace ${WORK_DIR}/merged.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "casurf_report --trace rejected the merged trace (exit ${rc})")
endif()
file(READ ${WORK_DIR}/merged.json merged)
foreach(needle "\"trace_id\":\"job-A\"" "\"trace_id\":\"job-B\"" "\"merged\":")
  if(NOT merged MATCHES "${needle}")
    message(FATAL_ERROR "merged trace missing '${needle}'")
  endif()
endforeach()
