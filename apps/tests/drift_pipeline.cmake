# End-to-end drift pipeline: record a reference coverage/rate profile from a
# VSSM run, replay the same model under the monitor, and check that the run
# report carries the drift section and casurf_report prints it.
#
# Driven by ctest as:  cmake -DCASURF_RUN=... -DCASURF_REPORT=... -DWORK_DIR=... -P this
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common --model zgb --size 32x32 --t-end 4 --dt 0.25 --quiet)

execute_process(COMMAND ${CASURF_RUN} ${common} --algorithm vssm --seed 7
                        --drift-record ${WORK_DIR}/ref.json --drift-window 1
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference recording failed (exit ${rc})")
endif()
if(NOT EXISTS ${WORK_DIR}/ref.json)
  message(FATAL_ERROR "--drift-record did not write the profile")
endif()

# Same algorithm, different seed: statistically equivalent, so the monitor
# must run its windows without blowing up.
execute_process(COMMAND ${CASURF_RUN} ${common} --algorithm vssm --seed 8
                        --drift-ref ${WORK_DIR}/ref.json
                        --metrics ${WORK_DIR}/report.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "monitored run failed (exit ${rc})")
endif()
if(NOT out MATCHES "# drift:")
  message(FATAL_ERROR "monitored run did not print a drift summary:\n${out}")
endif()

file(READ ${WORK_DIR}/report.json report)
if(NOT report MATCHES "\"drift\": *\\{")
  message(FATAL_ERROR "run report is missing the drift section")
endif()

execute_process(COMMAND ${CASURF_REPORT} ${WORK_DIR}/report.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "casurf_report rejected the run report (exit ${rc})")
endif()
if(NOT out MATCHES "drift:.*windows checked")
  message(FATAL_ERROR "casurf_report did not print the drift summary:\n${out}")
endif()
