# End-to-end spatial pipeline: run an instrumented PNDCA simulation with
# --heatmap and --metrics, check every artifact (heatmap JSON + the three
# PPM channels + the run report's spatial section), then drive casurf_report
# in single and A/B mode over the spatial summaries. Also records a
# --drift-corr reference and replays a monitored run against it.
#
# Driven by ctest as:  cmake -DCASURF_RUN=... -DCASURF_REPORT=... -DWORK_DIR=... -P this
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common --model zgb --size 32x32 --t-end 4 --dt 0.5 --quiet)

execute_process(COMMAND ${CASURF_RUN} ${common} --algorithm pndca --seed 9
                        --heatmap ${WORK_DIR}/hm --heatmap-every 4
                        --metrics ${WORK_DIR}/a.json
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "heatmap run failed (exit ${rc})")
endif()

foreach(artifact hm.json hm.attempts.ppm hm.fires.ppm hm.occupancy.ppm)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "--heatmap did not write ${artifact}")
  endif()
endforeach()

file(READ ${WORK_DIR}/hm.json heatmap)
if(NOT heatmap MATCHES "\"schema\":\"casurf-heatmap/1\"")
  message(FATAL_ERROR "heatmap JSON carries the wrong schema")
endif()
if(NOT heatmap MATCHES "\"summary\": *\\{")
  message(FATAL_ERROR "heatmap JSON is missing the partition summary")
endif()

# P6 header with the lattice dimensions (binary body follows the newline);
# the hex literal is "P6\n32 32\n255\n".
file(READ ${WORK_DIR}/hm.fires.ppm ppm LIMIT 13 HEX)
if(NOT ppm STREQUAL "50360a33322033320a3235350a")
  message(FATAL_ERROR "activity PPM does not start with a P6 32x32 header: ${ppm}")
endif()

file(READ ${WORK_DIR}/a.json report)
if(NOT report MATCHES "\"spatial\": *\\{")
  message(FATAL_ERROR "run report is missing the spatial section")
endif()

execute_process(COMMAND ${CASURF_REPORT} ${WORK_DIR}/a.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "casurf_report rejected the run report (exit ${rc})")
endif()
if(NOT out MATCHES "spatial:.*chunks.*fire imbalance")
  message(FATAL_ERROR "casurf_report did not print the spatial section:\n${out}")
endif()

# Second run on a different algorithm for the A/B spatial delta rows.
execute_process(COMMAND ${CASURF_RUN} ${common} --algorithm lpndca --L 4 --seed 10
                        --heatmap ${WORK_DIR}/hm_b --metrics ${WORK_DIR}/b.json
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "second heatmap run failed (exit ${rc})")
endif()
execute_process(COMMAND ${CASURF_REPORT} ${WORK_DIR}/a.json ${WORK_DIR}/b.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "casurf_report A/B failed (exit ${rc})")
endif()
if(NOT out MATCHES "spatial_fire_imbalance")
  message(FATAL_ERROR "A/B output is missing the spatial delta rows:\n${out}")
endif()

# Correlation-profile leg: record with --drift-corr, monitor a replay.
execute_process(COMMAND ${CASURF_RUN} ${common} --algorithm vssm --seed 11
                        --drift-record ${WORK_DIR}/ref.json --drift-window 1
                        --drift-corr --drift-corr-rmax 4
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--drift-corr recording failed (exit ${rc})")
endif()
file(READ ${WORK_DIR}/ref.json profile)
if(NOT profile MATCHES "\"corr_pairs\":")
  message(FATAL_ERROR "profile recorded without correlation pairs")
endif()
execute_process(COMMAND ${CASURF_RUN} ${common} --algorithm vssm --seed 12
                        --drift-ref ${WORK_DIR}/ref.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "corr-monitored run failed (exit ${rc})")
endif()
if(NOT out MATCHES "# drift:")
  message(FATAL_ERROR "corr-monitored run did not print a drift summary:\n${out}")
endif()
