# Supervised execution end to end (docs/ROBUSTNESS.md): a worker that is
# repeatedly killed and whose checkpoints are corrupted mid-run must, under
# --supervise, still finish with a trajectory CSV byte-identical to an
# unperturbed run — and the run report must account for every restart. Also
# covers the watchdog, graceful SIGTERM shutdown with a final checkpoint,
# the retry budget, and the exact usage-error exit codes.
#
# Driven by ctest as:
#   cmake -DCASURF_RUN=... -DCASURF_REPORT=... -DWORK_DIR=... -DFAILPOINTS=ON|OFF -P this
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common --model zgb --algorithm vssm --size 32x32 --t-end 6 --dt 1
    --seed 11 --quiet)

function(run_expecting code)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rv ERROR_VARIABLE err)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR "expected exit ${code}, got '${rv}' from: ${ARGN}\n${err}")
  endif()
endfunction()

function(require_identical a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${what}: output differs from the unperturbed run")
  endif()
endfunction()

# Render a run report through casurf_report and require each needle.
function(require_report_matches report what)
  execute_process(COMMAND ${CASURF_REPORT} "${report}"
                  RESULT_VARIABLE rv OUTPUT_VARIABLE out)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "${what}: casurf_report rejected ${report} (exit ${rv})")
  endif()
  foreach(needle IN LISTS ARGN)
    if(NOT out MATCHES "${needle}")
      message(FATAL_ERROR "${what}: report summary missing '${needle}':\n${out}")
    endif()
  endforeach()
endfunction()

# 1. The reference: an unperturbed, unsupervised run.
run_expecting(0 ${CASURF_RUN} ${common} --csv "${WORK_DIR}/ref.csv")

# 2. Supervision with nothing going wrong is invisible: same CSV, and the
#    recovery section reports zero restarts.
run_expecting(0 ${CASURF_RUN} ${common} --csv "${WORK_DIR}/calm.csv"
              --checkpoint "${WORK_DIR}/calm.ck" --supervise
              --metrics "${WORK_DIR}/calm.json")
require_identical("${WORK_DIR}/ref.csv" "${WORK_DIR}/calm.csv" "calm supervised run")
require_report_matches("${WORK_DIR}/calm.json" "calm supervised run"
                       "recovery: supervised" "0 restarts")

# 3. Usage errors are exit 2, in every build flavor.
run_expecting(2 ${CASURF_RUN} ${common} --supervise)                  # no --checkpoint
run_expecting(2 ${CASURF_RUN} ${common} --failpoints "a=hit@0")       # bad spec

if(NOT FAILPOINTS)
  # Compiled-out builds must refuse any armed spec up front — and that is
  # all the fault-injection this build can do, so stop here.
  run_expecting(2 ${CASURF_RUN} ${common} --failpoints "run/kill=hit@2")
  return()
endif()

# 4. The torture run: the worker is SIGKILLed at its second checkpoint in
#    every generation, and every second checkpoint write is corrupted on
#    disk (forcing the .bak fallback on restore). The supervisor must grind
#    through to completion with a byte-identical CSV, and the report must
#    show the restarts it took.
run_expecting(0 ${CASURF_RUN} ${common} --csv "${WORK_DIR}/torture.csv"
              --checkpoint "${WORK_DIR}/torture.ck" --supervise=10
              --failpoints "run/kill=hit@2,io/checkpoint/corrupt=hit@2"
              --metrics "${WORK_DIR}/torture.json")
require_identical("${WORK_DIR}/ref.csv" "${WORK_DIR}/torture.csv" "torture run")
require_report_matches("${WORK_DIR}/torture.json" "torture run"
                       "recovery: supervised" "attempt 1: signal \\(9\\)"
                       "resumed at t = 1 from backup")

# 5. The watchdog: a worker that stalls (3 s sleep failpoint) past a 1 s
#    heartbeat deadline is killed and restarted; the record says why.
run_expecting(0 ${CASURF_RUN} ${common} --csv "${WORK_DIR}/stall.csv"
              --checkpoint "${WORK_DIR}/stall.ck" --supervise=10 --watchdog 1
              --failpoints "run/stall=hit@2"
              --metrics "${WORK_DIR}/stall.json")
require_identical("${WORK_DIR}/ref.csv" "${WORK_DIR}/stall.csv" "watchdog run")
require_report_matches("${WORK_DIR}/stall.json" "watchdog run"
                       "recovery: supervised" "attempt 1: watchdog")

# 6. Graceful shutdown: SIGTERM (injected mid-run) exits 128+15 after
#    writing a final checkpoint; resuming from it reproduces the reference.
run_expecting(143 ${CASURF_RUN} ${common} --checkpoint "${WORK_DIR}/term.ck"
              --failpoints "run/sigterm=hit@4")
run_expecting(0 ${CASURF_RUN} ${common} --resume "${WORK_DIR}/term.ck"
              --csv "${WORK_DIR}/term.csv")
require_identical("${WORK_DIR}/ref.csv" "${WORK_DIR}/term.csv" "post-SIGTERM resume")

# 7. The retry budget is honored: a worker killed in every generation
#    exhausts --supervise=1 and the supervisor gives up with exit 4.
run_expecting(4 ${CASURF_RUN} ${common} --checkpoint "${WORK_DIR}/doomed.ck"
              --supervise=1 --failpoints "run/kill=hit@1")
