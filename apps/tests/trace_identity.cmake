# Tracing must never perturb the trajectory: a 7-thread parallel PNDCA run
# with --trace attached has to produce a byte-identical trajectory CSV to the
# same run without it, and the emitted trace has to be loadable (and its
# schema/footer valid) through casurf_report --trace.
#
# Driven by ctest as:  cmake -DCASURF_RUN=... -DCASURF_REPORT=... -DWORK_DIR=... -P this
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common --model zgb --algorithm parallel --threads 7 --size 40x40
    --t-end 2 --dt 0.25 --seed 99 --quiet)

execute_process(COMMAND ${CASURF_RUN} ${common} --csv ${WORK_DIR}/plain.csv
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "baseline run failed (exit ${rc})")
endif()

execute_process(COMMAND ${CASURF_RUN} ${common} --csv ${WORK_DIR}/traced.csv
                        --trace ${WORK_DIR}/trace.json
                        --metrics ${WORK_DIR}/report.json
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traced run failed (exit ${rc})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK_DIR}/plain.csv ${WORK_DIR}/traced.csv
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trajectory CSV differs with tracing attached")
endif()

# The trace must parse and carry per-worker rings (main + 7 workers).
execute_process(COMMAND ${CASURF_REPORT} --trace ${WORK_DIR}/trace.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "casurf_report --trace rejected the trace (exit ${rc})")
endif()
# Under CASURF_METRICS=OFF span recording compiles out: the trace is a
# valid, empty document, and only the byte-identity half applies.
if(METRICS)
  foreach(needle "threads/busy" "threads/wait" "worker6" "\\(main\\)")
    if(NOT out MATCHES "${needle}")
      message(FATAL_ERROR "trace summary missing '${needle}':\n${out}")
    endif()
  endforeach()
endif()

# And the run report must load in casurf_report's single-file mode.
execute_process(COMMAND ${CASURF_REPORT} ${WORK_DIR}/report.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "casurf_report rejected the run report (exit ${rc})")
endif()
if(NOT out MATCHES "thread balance")
  message(FATAL_ERROR "run-report summary missing thread balance:\n${out}")
endif()
