// Operationalizes Segers' two correctness criteria (paper section 6) as a
// measurement: (1) the waiting time of a reaction type must be exponential
// with its rate; (2) reaction types must execute in proportion to their
// rates. Exact DMC methods pass both; the CA family approximates.

#include <cstdio>

#include "bench_util.hpp"
#include "ca/lpndca.hpp"
#include "ca/ndca.hpp"
#include "dmc/frm.hpp"
#include "dmc/rsm.hpp"
#include "dmc/vssm.hpp"
#include "stats/ks.hpp"

using namespace casurf;

namespace {

ReactionModel competing_noop() {
  ReactionModel m(SpeciesSet({"A"}));
  m.add(ReactionType("r1", 1.0, {exact({0, 0}, 0, 0)}));
  m.add(ReactionType("r2", 2.0, {exact({0, 0}, 0, 0)}));
  m.add(ReactionType("r5", 5.0, {exact({0, 0}, 0, 0)}));
  return m;
}

template <class Sim>
void criterion1(const char* name, Sim& sim, double rate, int events) {
  std::vector<double> waits;
  waits.reserve(events);
  double last = sim.time();
  for (int i = 0; i < events; ++i) {
    const std::uint64_t before = sim.counters().executed;
    while (sim.counters().executed == before) sim.mc_step();
    waits.push_back(sim.time() - last);
    last = sim.time();
  }
  const auto r = stats::ks_exponential(waits, rate);
  std::printf("  %-10s KS D=%.4f  p=%.3f   %s\n", name, r.statistic, r.p_value,
              r.reject(0.01) ? "REJECT exponential" : "consistent with Exp(k)");
}

template <class Sim>
void criterion2(const char* name, Sim& sim, std::uint64_t events) {
  while (sim.counters().executed < events) sim.mc_step();
  const auto& per = sim.counters().executed_per_type;
  const double total = static_cast<double>(per[0] + per[1] + per[2]);
  const double expected[3] = {total / 8, total / 4, total * 5 / 8};
  double chi2 = 0;
  for (int i = 0; i < 3; ++i) {
    const double d = static_cast<double>(per[i]) - expected[i];
    chi2 += d * d / expected[i];
  }
  const double p = stats::chi_square_p(chi2, 2);
  std::printf("  %-10s fractions %.4f/%.4f/%.4f (want 0.125/0.25/0.625) "
              "chi2=%.2f p=%.3f\n",
              name, per[0] / total, per[1] / total, per[2] / total, chi2, p);
}

}  // namespace

int main() {
  bench::header("Ablation — Segers correctness criteria (paper sec. 6)");
  const bool fast = bench::fast_mode();
  const int events = fast ? 1000 : 6000;

  std::printf("Criterion 1: waiting time of a unit reaction ~ Exp(k) (k = 2):\n");
  {
    ReactionModel m(SpeciesSet({"A"}));
    m.add(ReactionType("tick", 2.0, {exact({0, 0}, 0, 0)}));
    const Configuration cfg(Lattice(1, 1), 1, 0);
    {
      RsmSimulator sim(m, cfg, 1);
      criterion1("RSM", sim, 2.0, events);
    }
    {
      VssmSimulator sim(m, cfg, 2);
      criterion1("VSSM", sim, 2.0, events);
    }
    {
      FrmSimulator sim(m, cfg, 3);
      criterion1("FRM", sim, 2.0, events);
    }
    {
      NdcaSimulator sim(m, cfg, 4);
      criterion1("NDCA", sim, 2.0, events);
    }
  }

  std::printf("\nCriterion 2: execution counts proportional to rates (1 : 2 : 5):\n");
  {
    const ReactionModel m = competing_noop();
    const Configuration cfg(Lattice(8, 8), 1, 0);
    {
      RsmSimulator sim(m, cfg, 5);
      criterion2("RSM", sim, 8 * events);
    }
    {
      VssmSimulator sim(m, cfg, 6);
      criterion2("VSSM", sim, 8 * events);
    }
    {
      FrmSimulator sim(m, cfg, 7);
      criterion2("FRM", sim, 8 * events);
    }
    {
      NdcaSimulator sim(m, cfg, 8);
      criterion2("NDCA", sim, 8 * events);
    }
    {
      LPndcaSimulator sim(m, cfg, Partition::single_chunk(Lattice(8, 8)), 9, 16);
      criterion2("L-PNDCA", sim, 8 * events);
    }
  }

  std::printf("\nShape check: the exact DMC methods satisfy both criteria; the CA\n");
  std::printf("family satisfies criterion 2 (type selection is rate-proportional)\n");
  std::printf("while criterion 1 only holds in distributional approximation.\n");
  return 0;
}
