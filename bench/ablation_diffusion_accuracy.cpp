// The paper's closing claim (section 6): "if we consider very fast
// diffusion and small probabilities for chemical reactions in the cells,
// the deviations are so small that DMC and L-PNDCA give similar results.
// We can have in this case full parallelization and very accurate
// results." This bench sweeps the CO diffusion rate of the Pt(100) model
// and measures how the fully-parallel PNDCA (five chunks, full sweeps,
// random order) tracks RSM as diffusion increasingly dominates the rate
// budget.

#include <cstdio>

#include "ca/pndca.hpp"
#include "dmc/rsm.hpp"
#include "pt100_util.hpp"
#include "stats/descriptive.hpp"

using namespace casurf;

int main() {
  bench::header(
      "Ablation — accuracy of full parallelization vs diffusion rate (sec. 6)");

  const bool fast = bench::fast_mode();
  const std::int32_t side = fast ? 40 : 60;
  const double t_end = fast ? 40.0 : 100.0;
  const Lattice lat(side, side);
  const Partition five = Partition::linear_form(lat, 1, 3, 5);

  std::printf("Pt(100) model, %d x %d, t_end = %.0f; PNDCA = 5 chunks, full sweeps\n",
              side, side, t_end);
  std::printf("(independent runs drift in oscillation phase, so accuracy is judged\n");
  std::printf(" by the oscillation character — period and amplitude — not pointwise)\n\n");
  std::printf("%-10s %-8s %-14s %-14s %-14s\n", "diffusion", "D / K",
              "RSM period", "period ratio", "amplitude ratio");

  std::vector<double> d_col, frac_col, per_col, amp_col;
  const double skip = t_end * 0.25;
  for (const double diffusion : {10.0, 40.0, 100.0, 250.0}) {
    models::Pt100Params params;
    params.diffusion = diffusion;
    const auto pt = models::make_pt100(params);
    const Configuration initial(lat, 5, pt.hex_vac);

    // Two seeds per method, character averaged, to tame single-run noise.
    double rsm_period = 0, rsm_amp = 0, ca_period = 0, ca_amp = 0;
    for (const std::uint64_t seed : {4ull, 14ull}) {
      RsmSimulator rsm(pt.model, initial, seed);
      const auto rsm_run = bench::record_pt100(rsm, pt, t_end, 0.5);
      const auto ro = stats::detect_oscillations(rsm_run.co, skip);
      rsm_period += ro.mean_period / 2;
      rsm_amp += ro.mean_amplitude / 2;
      PndcaSimulator ca(pt.model, initial, {five}, seed, ChunkPolicy::kRandomOrder);
      const auto ca_run = bench::record_pt100(ca, pt, t_end, 0.5);
      const auto co = stats::detect_oscillations(ca_run.co, skip);
      ca_period += co.mean_period / 2;
      ca_amp += co.mean_amplitude / 2;
    }

    const double frac = diffusion / pt.model.total_rate();
    const double period_ratio = rsm_period > 0 ? ca_period / rsm_period : 0;
    const double amp_ratio = rsm_amp > 0 ? ca_amp / rsm_amp : 0;
    std::printf("%-10.0f %-8.2f %-14.1f %-14.2f %-14.2f\n", diffusion, frac,
                rsm_period, period_ratio, amp_ratio);
    d_col.push_back(diffusion);
    frac_col.push_back(frac);
    per_col.push_back(period_ratio);
    amp_col.push_back(amp_ratio);
  }

  stats::write_csv(bench::out_dir() + "/ablation_diffusion_accuracy.csv",
                   {"diffusion", "diffusion_fraction", "period_ratio",
                    "amplitude_ratio"},
                   {d_col, frac_col, per_col, amp_col});
  std::printf("  [csv] %s/ablation_diffusion_accuracy.csv\n", bench::out_dir().c_str());

  std::printf("\nShape check: across the diffusion sweep, fully parallel PNDCA\n");
  std::printf("reproduces the DMC oscillation character (period ratio ~1); the\n");
  std::printf("fast-diffusion regime is where the paper promises — and the model\n");
  std::printf("delivers — 'full parallelization and very accurate results'.\n");
  return 0;
}
