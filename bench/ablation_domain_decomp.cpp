// Ablation for the Segers-style parallel DMC baseline the paper discusses
// in section 3: strip-decomposed RSM with halo exchange. Measures the
// work/communication (volume/boundary) trade-off as the rank count grows,
// and contrasts it with PNDCA, which needs no state exchange at all —
// the motivation for the partitioned CA approach.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "models/zgb.hpp"
#include "obs/trace.hpp"
#include "parallel/domain_decomp.hpp"

using namespace casurf;

int main() {
  bench::header("Ablation — Segers chunked parallel DMC: work vs communication");

  const bool fast = bench::fast_mode();
  const std::int32_t side = fast ? 40 : 80;
  const double t_end = fast ? 2.0 : 6.0;
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Configuration initial(Lattice(side, side), 3, zgb.vacant);

  std::printf("ZGB on %d x %d, t_end = %.0f; vertical strips, halo exchange per round\n\n",
              side, side, t_end);
  std::printf("%-6s %-10s %-12s %-12s %-14s %s\n", "ranks", "strip", "messages",
              "bytes", "bytes/trial", "final O cov");

  // The widest row (8 ranks) runs comm-instrumented: per-edge counters and
  // per-rank trace lanes feed BENCH_domain_decomp.json and the Chrome
  // trace, with the cost-model prediction alongside for casurf_report
  // --comm. Probes never touch RNG state, so the row's trajectory matches
  // an uninstrumented run bit for bit.
  obs::MetricsRegistry registry8;
  obs::Tracer tracer8;
  tracer8.set_trace_id("bench-domain-decomp");
  DomainDecompResult res8;
  double wall8 = 0;
  bool have8 = false;

  std::vector<double> ranks_col, msg_col, bytes_col, ratio_col;
  for (const int ranks : {1, 2, 4, 8}) {
    if (side % ranks != 0) continue;
    DomainDecompParams params;
    params.ranks = ranks;
    params.seed = 7;
    params.t_end = t_end;
    params.sample_dt = 1.0;
    if (ranks == 8) {
      params.metrics = &registry8;
      params.tracer = &tracer8;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = run_domain_decomp(zgb.model, initial, params);
    if (ranks == 8) {
      wall8 = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
      res8 = res;
      have8 = true;
    }
    const double ratio = res.total_trials
                             ? static_cast<double>(res.comm.bytes) /
                                   static_cast<double>(res.total_trials)
                             : 0.0;
    std::printf("%-6d %-10d %-12llu %-12llu %-14.4f %.3f\n", ranks, side / ranks,
                static_cast<unsigned long long>(res.comm.messages),
                static_cast<unsigned long long>(res.comm.bytes), ratio,
                res.coverage[zgb.o].back());
    ranks_col.push_back(ranks);
    msg_col.push_back(static_cast<double>(res.comm.messages));
    bytes_col.push_back(static_cast<double>(res.comm.bytes));
    ratio_col.push_back(ratio);
  }

  stats::write_csv(bench::out_dir() + "/ablation_domain_decomp.csv",
                   {"ranks", "messages", "bytes", "bytes_per_trial"},
                   {ranks_col, msg_col, bytes_col, ratio_col});
  std::printf("  [csv] %s/ablation_domain_decomp.csv\n", bench::out_dir().c_str());

  if (have8) {
    const std::int32_t r = zgb.model.max_radius_l1();
    obs::CommModel model;
    model.messages = 2.0 * 8 * static_cast<double>(res8.rounds);
    model.bytes =
        model.messages * (2.0 * r * side * static_cast<double>(sizeof(Species)));
    obs::RunInfo info;
    info.algorithm = "domain-decomp-rsm";
    info.model = "zgb";
    info.width = side;
    info.height = side;
    info.seed = 7;
    info.t_end = t_end;
    info.threads = 8;
    info.wall_seconds = wall8;
    info.trace_id = tracer8.trace_id();
    info.trace_drops = tracer8.total_dropped();
    bench::write_bench_report("domain_decomp", info, nullptr, registry8, nullptr,
                              &res8.comm, &model);
    const std::string trace_path = bench::out_dir() + "/domain_decomp_trace.json";
    tracer8.write(trace_path);
    std::printf("  [trace] %s\n", trace_path.c_str());
  }

  std::printf("\nShape check: communication grows linearly with the rank count while\n");
  std::printf("work per rank shrinks — the volume/boundary trade-off that made\n");
  std::printf("Segers' chunked DMC pay a considerable parallel overhead (paper\n");
  std::printf("sec. 3). PNDCA's conflict-free chunks exchange zero state instead.\n");
  return 0;
}
