// Ablation for the paper's section-4 remark (citing Vichniac) that CA
// updating "gives degenerate results for some systems (Ising models, ...)":
// fully synchronous heat-bath Ising dynamics stabilizes a blinking
// checkerboard that the true Gibbs dynamics melts instantly — the
// degeneracy that motivates *partitioned* (conflict-free, but not fully
// synchronous) updating.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "ca/pndca.hpp"
#include "dmc/rsm.hpp"
#include "models/ising.hpp"
#include "partition/coloring.hpp"

using namespace casurf;
using models::IsingModel;
using models::SynchronousHeatBathIsing;

namespace {

Configuration checkerboard(const IsingModel& ising, std::int32_t side) {
  Configuration cfg(Lattice(side, side), 2, ising.down);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    const Vec2 p = cfg.lattice().coord(s);
    if ((p.x + p.y) % 2 == 0) cfg.set(s, ising.up);
  }
  return cfg;
}

}  // namespace

int main() {
  bench::header("Ablation — synchronous-CA degeneracy on the Ising model (sec. 4)");

  const bool fast = bench::fast_mode();
  const std::int32_t side = 32;
  const int steps = fast ? 40 : 200;
  const double beta = 1.0;  // deep in the ordered phase
  const IsingModel ising = models::make_ising(beta);

  std::printf("2-D Ising, beta J = %.1f, %d x %d, start: perfect checkerboard\n",
              beta, side, side);
  std::printf("(every flip releases 8J, so correct kinetics must melt it)\n\n");
  std::printf("%-8s %-22s %-22s %-22s\n", "step", "RSM |m_stag|",
              "PNDCA(5) |m_stag|", "synchronous CA |m_stag|");

  RsmSimulator rsm(ising.model, checkerboard(ising, side), 1);
  const Partition part = make_partition(Lattice(side, side), ising.model);
  PndcaSimulator pndca(ising.model, checkerboard(ising, side), {part}, 2);
  SynchronousHeatBathIsing sync(ising, checkerboard(ising, side), 3);

  for (int step = 0; step <= steps; ++step) {
    if (step % (steps / 10) == 0) {
      std::printf("%-8d %-22.3f %-22.3f %-22.3f\n", step,
                  std::abs(ising.staggered_magnetization(rsm.configuration())),
                  std::abs(ising.staggered_magnetization(pndca.configuration())),
                  std::abs(ising.staggered_magnetization(sync.configuration())));
    }
    rsm.mc_step();
    pndca.mc_step();
    sync.step();
  }

  std::printf("\nfinal magnetization     : RSM %+.3f, PNDCA %+.3f, sync CA %+.3f\n",
              ising.magnetization(rsm.configuration()),
              ising.magnetization(pndca.configuration()),
              ising.magnetization(sync.configuration()));
  std::printf("final energy per site/J : RSM %+.3f, PNDCA %+.3f, sync CA %+.3f "
              "(ground state -2)\n",
              ising.energy_per_site(rsm.configuration()),
              ising.energy_per_site(pndca.configuration()),
              ising.energy_per_site(sync.configuration()));

  std::printf("\nShape check: RSM and the *partitioned* CA melt the checkerboard\n");
  std::printf("and order ferromagnetically; the fully synchronous CA blinks at\n");
  std::printf("|m_stag| ~ 1 forever — Vichniac's degeneracy, and the reason the\n");
  std::printf("paper replaces synchronous updates with conflict-free partitions.\n");
  return 0;
}
