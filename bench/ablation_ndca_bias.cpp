// Ablation for the paper's section 4 remark that plain NDCA "gives
// degenerate results for some systems (Ising models, Single-File models)":
// quantifies the site-selection bias of NDCA sweeps on 1-D single-file
// diffusion, against RSM, the shuffled-sweep NDCA, and PNDCA.

#include <cstdio>

#include "bench_util.hpp"
#include "ca/ndca.hpp"
#include "ca/pndca.hpp"
#include "dmc/rsm.hpp"
#include "models/diffusion.hpp"
#include "partition/coloring.hpp"

using namespace casurf;

namespace {

Configuration half_filled(const models::DiffusionModel& sf, std::int32_t len) {
  Configuration cfg(Lattice(len, 1), 2, sf.vacant);
  for (std::int32_t x = 0; x < len; x += 2) cfg.set(Vec2{x, 0}, sf.particle);
  return cfg;
}

double hop_ratio(const Simulator& sim) {
  const auto& per = sim.counters().executed_per_type;
  return static_cast<double>(per[0]) / static_cast<double>(per[1]);
}

}  // namespace

int main() {
  bench::header("Ablation — NDCA sweep bias on single-file diffusion (paper sec. 4)");

  const bool fast = bench::fast_mode();
  const std::int32_t len = 128;
  const int steps = fast ? 1000 : 10000;
  const auto sf = models::make_single_file(1.0);
  const Configuration initial = half_filled(sf, len);

  std::printf("1-D lattice of %d sites, half filled, %d MC steps.\n", len, steps);
  std::printf("Right/left hop channels have identical rates; any deviation of the\n");
  std::printf("executed-count ratio from 1 is algorithmic bias.\n\n");
  std::printf("%-26s %s\n", "algorithm", "right/left execution ratio");

  {
    RsmSimulator sim(sf.model, initial, 1);
    for (int i = 0; i < steps; ++i) sim.mc_step();
    std::printf("%-26s %.4f   (exact reference)\n", "RSM", hop_ratio(sim));
  }
  {
    NdcaSimulator sim(sf.model, initial, 2, TimeMode::kStochastic, SweepOrder::kRaster);
    for (int i = 0; i < steps; ++i) sim.mc_step();
    std::printf("%-26s %.4f   (raster sweep: biased)\n", "NDCA raster", hop_ratio(sim));
  }
  {
    NdcaSimulator sim(sf.model, initial, 3, TimeMode::kStochastic, SweepOrder::kShuffled);
    for (int i = 0; i < steps; ++i) sim.mc_step();
    std::printf("%-26s %.4f   (random permutation per step)\n", "NDCA shuffled",
                hop_ratio(sim));
  }
  {
    const Partition p = make_partition(initial.lattice(), sf.model);
    PndcaSimulator sim(sf.model, initial, {p}, 4, ChunkPolicy::kRandomOrder);
    for (int i = 0; i < steps; ++i) sim.mc_step();
    std::printf("%-26s %.4f   (%zu conflict-free chunks)\n", "PNDCA random order",
                hop_ratio(sim), p.num_chunks());
  }

  std::printf("\nShape check: RSM ~ 1.00; NDCA raster deviates systematically;\n");
  std::printf("randomising the visit order (shuffled NDCA, PNDCA) removes the bias.\n");
  return 0;
}
