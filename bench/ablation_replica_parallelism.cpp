// The paper's *third* route to parallelism (section 1): average many
// small, independent simulations. This bench contrasts it with PNDCA:
// replica averaging parallelizes perfectly but only reduces the
// *statistical* error of small-system observables — it cannot simulate a
// larger lattice or longer trajectory, which is exactly the gap the
// partitioned CA fills.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "models/zgb.hpp"
#include "stats/block_average.hpp"
#include "stats/ensemble.hpp"

using namespace casurf;

int main() {
  bench::header("Ablation — replica-ensemble parallelism (paper sec. 1, route 3)");

  const bool fast = bench::fast_mode();
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.48, 20.0));
  const Lattice lat(32, 32);
  const Configuration initial(lat, 3, zgb.vacant);
  const double t_end = fast ? 6.0 : 15.0;

  const auto factory = [&](std::uint64_t seed) {
    SimulationOptions opt;
    opt.seed = seed;
    return make_simulator(zgb.model, initial, opt);
  };
  const auto obs = [&](const Simulator& sim) {
    return sim.configuration().coverage(zgb.o);
  };

  std::printf("ZGB y = 0.48 on 32 x 32, O coverage at t = %.0f\n\n", t_end);
  std::printf("%-10s %-12s %-12s %s\n", "replicas", "mean", "stderr",
              "stderr * sqrt(R) (should be ~constant)");
  for (const std::size_t replicas : {4u, 16u, 64u}) {
    const auto r = run_ensemble(factory, obs, replicas, t_end, t_end, 2, 31);
    const double se = r.stderr_at(r.mean.size() - 1);
    std::printf("%-10zu %-12.4f %-12.5f %.4f\n", replicas, r.mean.values().back(), se,
                se * std::sqrt(static_cast<double>(replicas)));
  }

  // What replicas cannot buy: time-correlated statistics of ONE system.
  // Block averaging of a single trajectory shows how expensive a
  // steady-state estimate is sequentially.
  SimulationOptions opt;
  opt.seed = 77;
  auto sim = make_simulator(zgb.model, initial, opt);
  sim->advance_to(t_end);
  std::vector<double> series;
  for (int i = 0; i < (fast ? 400 : 2000); ++i) {
    sim->mc_step();
    series.push_back(sim->configuration().coverage(zgb.o));
  }
  const auto ba = stats::block_average(series);
  std::printf("\nsingle-trajectory steady state (block averaging, %zu samples):\n",
              series.size());
  std::printf("  mean %.4f, naive stderr %.5f, true (blocked) stderr %.5f\n", ba.mean,
              ba.naive_error, ba.error);
  std::printf("  statistical inefficiency g = %.1f (one independent sample per g\n",
              ba.statistical_inefficiency());
  std::printf("  MC steps) — the correlations replicas sidestep entirely\n");

  std::printf("\nShape check: replica stderr scales as 1/sqrt(R) (perfect parallel\n");
  std::printf("efficiency, zero communication) — but each replica is still a small\n");
  std::printf("lattice evolved sequentially; scaling the SYSTEM needs PNDCA.\n");
  return 0;
}
