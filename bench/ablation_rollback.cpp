// Ablation for the paper's section-1 claim that optimistic parallel
// simulation (Time Warp) of surface reactions "would result in frequent
// roll-back, because each reaction disables many others".
//
// Method: record the exact event trajectory (VSSM), then analyse it
// offline for a hypothetical Time-Warp execution with p vertical strips
// and synchronization windows of length tau: a rank must roll back a
// window whenever one of its events read a site that a *different* rank's
// earlier event in the same window had written. This counts unavoidable
// rollbacks (a real optimistic runtime can only do worse).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "dmc/vssm.hpp"
#include "models/zgb.hpp"

using namespace casurf;

namespace {

struct Trace {
  std::vector<VssmSimulator::Event> events;
  Lattice lattice{1, 1};
  const ReactionModel* model = nullptr;
};

Trace record_trace(double t_end) {
  static const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.48, 20.0));
  Trace trace;
  trace.lattice = Lattice(64, 64);
  trace.model = &zgb.model;
  VssmSimulator sim(zgb.model, Configuration(trace.lattice, 3, zgb.vacant), 11);
  // Skip the transient so the analysis sees steady-state event density.
  sim.advance_to(5.0);
  const double t0 = sim.time();
  while (sim.time() < t0 + t_end && !sim.stalled()) {
    sim.mc_step();
    auto ev = sim.last_event();
    ev.time -= t0;
    trace.events.push_back(ev);
  }
  return trace;
}

struct RollbackStats {
  std::uint64_t windows = 0;          // (rank, window) pairs with any event
  std::uint64_t rolled_back = 0;      // of those, how many must roll back
  std::uint64_t conflicting_events = 0;
  std::uint64_t total_events = 0;
};

RollbackStats analyse(const Trace& trace, int ranks, double window) {
  const std::int32_t strip = trace.lattice.width() / ranks;
  const auto rank_of = [&](SiteIndex s) {
    return trace.lattice.coord(s).x / strip;
  };

  RollbackStats stats;
  // Per site: which rank wrote it last in the current window (epoch-tagged).
  std::vector<int> writer(trace.lattice.size(), -1);
  std::vector<std::uint64_t> epoch(trace.lattice.size(), ~0ull);
  std::vector<char> rank_active(ranks, 0), rank_conflicted(ranks, 0);
  std::uint64_t current_window = ~0ull;

  const auto close_window = [&] {
    for (int r = 0; r < ranks; ++r) {
      if (rank_active[r]) ++stats.windows;
      if (rank_conflicted[r]) ++stats.rolled_back;
      rank_active[r] = rank_conflicted[r] = 0;
    }
  };

  for (const auto& ev : trace.events) {
    const auto w = static_cast<std::uint64_t>(ev.time / window);
    if (w != current_window) {
      if (current_window != ~0ull) close_window();
      current_window = w;
    }
    const int me = rank_of(ev.site);
    rank_active[me] = 1;
    ++stats.total_events;

    const ReactionType& rt = trace.model->reaction(ev.type);
    bool conflict = false;
    for (const Vec2 o : rt.neighborhood()) {
      const SiteIndex z = trace.lattice.neighbor(ev.site, o);
      if (epoch[z] == current_window && writer[z] >= 0 && writer[z] != me) {
        conflict = true;
      }
    }
    if (conflict) {
      rank_conflicted[me] = 1;
      ++stats.conflicting_events;
    }
    for (const Transform& t : rt.transforms()) {
      if (t.tg == kKeep) continue;
      const SiteIndex z = trace.lattice.neighbor(ev.site, t.offset);
      writer[z] = me;
      epoch[z] = current_window;
    }
  }
  close_window();
  return stats;
}

}  // namespace

int main() {
  bench::header("Ablation — Time-Warp rollback rate on surface reactions (sec. 1)");

  const bool fast = bench::fast_mode();
  const Trace trace = record_trace(fast ? 3.0 : 10.0);
  std::printf("ZGB (y = 0.48, reactive) on 64 x 64; %zu events traced\n\n",
              trace.events.size());
  std::printf("%-8s %-12s %-18s %-18s %s\n", "ranks", "window", "windows w/ work",
              "rolled back", "rollback fraction");

  std::vector<double> r_col, w_col, frac_col;
  for (const int ranks : {2, 4, 8}) {
    for (const double window : {0.005, 0.02, 0.1, 0.5}) {
      const RollbackStats s = analyse(trace, ranks, window);
      const double frac = s.windows ? static_cast<double>(s.rolled_back) /
                                          static_cast<double>(s.windows)
                                    : 0.0;
      std::printf("%-8d %-12.3f %-18llu %-18llu %.3f\n", ranks, window,
                  static_cast<unsigned long long>(s.windows),
                  static_cast<unsigned long long>(s.rolled_back), frac);
      r_col.push_back(ranks);
      w_col.push_back(window);
      frac_col.push_back(frac);
    }
  }
  stats::write_csv(bench::out_dir() + "/ablation_rollback.csv",
                   {"ranks", "window", "rollback_fraction"}, {r_col, w_col, frac_col});
  std::printf("  [csv] %s/ablation_rollback.csv\n", bench::out_dir().c_str());

  std::printf("\nShape check: already at modest window sizes most busy windows\n");
  std::printf("contain a cross-strip read-after-write and must roll back — the\n");
  std::printf("paper's reason to abandon optimistic methods and change the model\n");
  std::printf("(partitioned CA) instead. Rollback rate grows with both the window\n");
  std::printf("length and the rank count (more seams).\n");
  return 0;
}
