#pragma once

// Shared helpers for the figure/table reproduction harness. Each bench
// binary prints the rows/series the paper reports and additionally dumps
// the raw series to bench_out/*.csv for plotting.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "stats/csv.hpp"
#include "stats/timeseries.hpp"

namespace casurf::bench {

/// Directory for CSV dumps; created on demand next to the working dir.
inline std::string out_dir() {
  static const std::string dir = [] {
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    return std::string("bench_out");
  }();
  return dir;
}

inline void dump_series(const std::string& name, const std::vector<std::string>& cols,
                        const std::vector<TimeSeries>& series) {
  const std::string path = out_dir() + "/" + name + ".csv";
  stats::write_csv_series(path, cols, series);
  std::printf("  [csv] %s\n", path.c_str());
}

/// Print a series as a compact table: one row every `stride` samples.
inline void print_series(const char* label, const TimeSeries& ts, std::size_t rows = 12) {
  std::printf("  %s:\n    t       value\n", label);
  const std::size_t stride = ts.size() <= rows ? 1 : ts.size() / rows;
  for (std::size_t i = 0; i < ts.size(); i += stride) {
    std::printf("    %-7.1f %.4f\n", ts.time(i), ts.value(i));
  }
}

/// Dump an instrumented bench run as bench_out/BENCH_<name>.json — the
/// same schema casurf_run --metrics emits, written through the atomic
/// path. Attach the registry (sim.set_metrics) before the timed section
/// so the per-phase timers cover it. Pass a SpatialSummary to fill the
/// report's "spatial" section (null leaves it null, as casurf_run does
/// without --heatmap). Multi-process benches pass the communicator stats
/// and the paper cost-model prediction so the report's "comm" section
/// carries measured-vs-model counts for `casurf_report --comm`; `sim` may
/// be null for runs without a Simulator object (e.g. the halo-exchange
/// baseline).
inline void write_bench_report(const std::string& name, const obs::RunInfo& info,
                               const Simulator* sim,
                               const obs::MetricsRegistry& registry,
                               const obs::SpatialSummary* spatial = nullptr,
                               const Communicator::Stats* comm = nullptr,
                               const obs::CommModel* comm_model = nullptr) {
  const std::string path = out_dir() + "/BENCH_" + name + ".json";
  obs::write_run_report(path, info, sim, &registry, comm, nullptr, spatial,
                        nullptr, comm_model);
  std::printf("  [json] %s\n", path.c_str());
}

inline void write_bench_report(const std::string& name, const obs::RunInfo& info,
                               const Simulator& sim,
                               const obs::MetricsRegistry& registry,
                               const obs::SpatialSummary* spatial = nullptr) {
  write_bench_report(name, info, &sim, registry, spatial);
}

/// Scale factor for quick smoke runs: CASURF_BENCH_FAST=1 shrinks the
/// heavy figure benches (smaller lattice / shorter horizon) so the whole
/// harness runs in seconds. Full paper-scale runs are the default.
inline bool fast_mode() {
  const char* v = std::getenv("CASURF_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

inline void header(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

}  // namespace casurf::bench
