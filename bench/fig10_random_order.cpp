// Reproduces Fig 10 of the paper: PNDCA with five chunks where every chunk
// is swept exactly once per step in a fresh random order (the L = N^2/m
// full-sweep regime). Despite the maximal per-chunk batch size, the random
// once-per-step order preserves the coverage oscillations.

#include <cstdio>

#include "ca/pndca.hpp"
#include "dmc/rsm.hpp"
#include "pt100_util.hpp"

using namespace casurf;

int main() {
  bench::header("Fig 10 — PNDCA, five chunks, random order once per step (L = N^2/m)");

  const bool fast = bench::fast_mode();
  const std::int32_t side = fast ? 60 : 100;
  const double t_end = fast ? 100.0 : 100.0;
  const double skip = t_end * 0.25;
  const auto pt = models::make_pt100();
  const Lattice lat(side, side);
  const Configuration initial(lat, 5, pt.hex_vac);
  const Partition five = Partition::linear_form(lat, 1, 3, 5);

  std::printf("lattice %d x %d, t_end = %.0f; full chunk sweeps (%u sites each)\n\n",
              side, side, t_end, static_cast<unsigned>(five.max_chunk_size()));

  RsmSimulator rsm(pt.model, initial, 1);
  const auto rsm_run = bench::record_pt100(rsm, pt, t_end, 0.5);

  PndcaSimulator random_order(pt.model, initial, {five}, 2, ChunkPolicy::kRandomOrder);
  const auto ro_run = bench::record_pt100(random_order, pt, t_end, 0.5);

  // Contrast: chunk selection with replacement (paper: for large L and
  // |Pi|/|P| selection the oscillations drift and eventually disappear).
  PndcaSimulator with_repl(pt.model, initial, {five}, 3,
                           ChunkPolicy::kRandomWithReplacement);
  const auto wr_run = bench::record_pt100(with_repl, pt, t_end, 0.5);

  bench::print_series("RSM CO coverage", rsm_run.co);
  bench::print_series("PNDCA random-order CO coverage", ro_run.co);

  std::printf("\nOscillation character (transient skipped):\n");
  bench::print_oscillation("RSM (reference)", rsm_run.co, skip);
  bench::print_oscillation("PNDCA random order (Fig 10)", ro_run.co, skip);
  bench::print_oscillation("PNDCA with replacement", wr_run.co, skip);

  std::printf("\nMean |delta CO coverage| vs RSM: random-order %.4f, replacement %.4f\n",
              mean_abs_difference(rsm_run.co, ro_run.co),
              mean_abs_difference(rsm_run.co, wr_run.co));
  std::printf("(pointwise distances between independent runs are dominated by\n");
  std::printf(" stochastic phase alignment; the figure's claim lives in the\n");
  std::printf(" period/amplitude comparison above. The with-replacement policy's\n");
  std::printf(" degradation at maximal L is horizon- and run-dependent at t <= 100;\n");
  std::printf(" the systematic L effect is quantified in fig9's L sweep.)\n");

  bench::dump_series("fig10_rsm", {"co", "o"}, {rsm_run.co, rsm_run.o});
  bench::dump_series("fig10_random_order", {"co", "o"}, {ro_run.co, ro_run.o});
  bench::dump_series("fig10_with_replacement", {"co", "o"}, {wr_run.co, wr_run.o});
  return 0;
}
