// Reproduces Fig 3 of the paper: a one-dimensional Block CA with 3-site
// blocks and the rule "a site becomes 0 when a neighbor in its own block is
// 0", with the block boundaries shifting between steps.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "ca/bca.hpp"

using namespace casurf;

namespace {

void print_state(const BlockCA& ca, const char* note) {
  std::printf("  ");
  for (SiteIndex s = 0; s < ca.configuration().size(); ++s) {
    std::printf("%d ", ca.configuration().get(s));
  }
  std::printf("   %s\n", note);
}

}  // namespace

int main() {
  bench::header("Fig 3 — 1-D Block CA, blocks of three sites, shifting edges");

  const Lattice lat(9, 1);
  Configuration cfg(lat, 2, 0);
  const std::vector<Species> initial = {0, 1, 1, 1, 1, 1, 0, 1, 1};
  for (std::int32_t x = 0; x < 9; ++x) cfg.set(Vec2{x, 0}, initial[x]);

  BlockCA ca(std::move(cfg),
             {Partition::blocks(lat, 3, 1), Partition::blocks(lat, 3, 1, {1, 0})},
             fig3_zero_spreads_rule());

  std::printf("  sites 0..8; blocks {0,1,2}{3,4,5}{6,7,8}, then {1,2,3}{4,5,6}{7,8,0}\n\n");
  print_state(ca, "initial   (paper row 1)");
  ca.step();
  print_state(ca, "after blocks [012][345][678]  (paper row 2: 0 0 1 1 1 1 0 0 1)");
  ca.step();
  print_state(ca, "after shifted blocks [123][456][780]");
  ca.step();
  print_state(ca, "step 3");
  ca.step();
  print_state(ca, "step 4 (zeros spread across the moving block edges)");
  return 0;
}
