// Reproduces Figs 4 and 5 of the paper: the conflict (pattern-overlap)
// offsets of the ZGB model at a site s, the optimal five-chunk partition
// tile, and the machinery's proof that five chunks are optimal.

#include <cstdio>

#include "bench_util.hpp"
#include "models/zgb.hpp"
#include "partition/coloring.hpp"

using namespace casurf;

int main() {
  bench::header("Figs 4 & 5 — conflict offsets and the optimal 5-chunk partition");

  const auto zgb = models::make_zgb();
  const auto offsets = conflict_offsets(zgb.model);

  std::printf("Fig 5: anchor offsets whose reaction patterns can overlap s (|D| = %zu):\n  ",
              offsets.size());
  for (const Vec2 d : offsets) std::printf("(%d,%d) ", d.x, d.y);
  std::printf("\n  => all offsets with 1 <= |d|_1 <= 2 (von Neumann pair patterns)\n\n");

  const Lattice lat(10, 10);
  const auto form = find_linear_form(lat, offsets);
  if (!form) {
    std::printf("no linear form found (unexpected)\n");
    return 1;
  }
  std::printf("Fig 4: minimal linear-form coloring chunk(x,y) = (%d x + %d y) mod %d\n",
              form->a, form->b, form->m);
  std::printf("  (the paper's tile is (x + 3y) mod 5 — the mirror image of the\n");
  std::printf("   form found first by the search; both are optimal and valid)\n");
  const Partition p = Partition::linear_form(lat, 1, 3, 5);
  std::printf("  5x5 tile with the paper's orientation:\n");
  for (std::int32_t y = 0; y < 5; ++y) {
    std::printf("    ");
    for (std::int32_t x = 0; x < 5; ++x) {
      std::printf("%u ", p.chunk_of(lat.index({x, y})));
    }
    std::printf("\n");
  }

  std::printf("\n  valid partition:     %s\n",
              verify_partition(p, offsets) ? "yes" : "NO");
  std::printf("  chunks used:         %zu\n", p.num_chunks());
  std::printf("  clique lower bound:  %zu  => five chunks are optimal\n",
              chunk_lower_bound(offsets));
  std::printf("  greedy fallback on an awkward 7x9 lattice: %zu chunks, valid = %s\n",
              greedy_coloring(Lattice(7, 9), offsets).num_chunks(),
              verify_partition(greedy_coloring(Lattice(7, 9), offsets), offsets)
                  ? "yes" : "NO");
  return 0;
}
