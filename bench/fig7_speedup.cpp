// Reproduces Fig 7 of the paper: the PNDCA speedup T(1,N)/T(p,N) as a
// function of the lattice side N (200..1000) and the processor count p
// (2..10).
//
// Substitution (see DESIGN.md): this host has a single CPU core, so the
// multiprocessor is *simulated* by a calibrated cost model — per-trial cost
// t_site is measured on the real sequential PNDCA engine on this machine,
// while load balance comes from the actual chunk sizes of the partition and
// the synchronization constants are representative of the clusters the
// paper targets. The threaded engine itself is exercised (and its
// trajectory equality with the sequential engine is enforced by the test
// suite); its wall-clock on this 1-core host is reported for p = 1, 2 as a
// sanity line, not as the figure.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "models/zgb.hpp"
#include "obs/trace.hpp"
#include "parallel/domain_decomp.hpp"
#include "parallel/parallel_pndca.hpp"
#include "parallel/simulated_machine.hpp"
#include "partition/coloring.hpp"

using namespace casurf;

int main() {
  bench::header("Fig 7 — speedup T(1,N)/T(p,N) of PNDCA vs lattice side N and p");

  const bool fast = bench::fast_mode();
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));

  // Calibrate the per-trial cost on this host with a real sequential run.
  const Lattice cal_lat(fast ? 64 : 128, fast ? 64 : 128);
  PndcaSimulator cal(zgb.model, Configuration(cal_lat, 3, zgb.vacant),
                     {make_partition(cal_lat, zgb.model)}, 1);
  const MachineParams params = SimulatedMachine::calibrate(cal, fast ? 2 : 8);
  std::printf("calibrated t_site = %.1f ns/trial on this host; barrier model "
              "alpha=%.0f us + %.0f us * log2(p); serial fraction %.0f%%\n\n",
              params.t_site_seconds * 1e9, params.barrier_alpha * 1e6,
              params.barrier_beta * 1e6, params.serial_fraction * 100);

  const SimulatedMachine machine(params);

  std::printf("%-6s", "N\\p");
  for (int p = 2; p <= 10; ++p) std::printf("%8d", p);
  std::printf("\n");

  std::vector<std::vector<double>> csv_cols;
  std::vector<std::string> csv_headers = {"N"};
  for (int p = 2; p <= 10; ++p) csv_headers.push_back("p" + std::to_string(p));
  csv_cols.resize(csv_headers.size());

  for (const std::int32_t side : {200, 300, 400, 500, 600, 700, 800, 900, 1000}) {
    const Lattice lat(side, side);
    const Partition part = Partition::linear_form(lat, 1, 3, 5);
    std::printf("%-6d", side);
    csv_cols[0].push_back(side);
    for (int p = 2; p <= 10; ++p) {
      const auto point = machine.predict(part, p, 1);
      std::printf("%8.2f", point.speedup());
      csv_cols[p - 1].push_back(point.speedup());
    }
    std::printf("\n");
  }
  stats::write_csv(bench::out_dir() + "/fig7_speedup.csv", csv_headers, csv_cols);
  std::printf("  [csv] %s/fig7_speedup.csv\n", bench::out_dir().c_str());

  std::printf("\nPaper shape check: speedup grows with N, saturates with p;\n");
  std::printf("max ~8 at p = 10 for the largest lattice.\n");

  // Sanity: drive the real threaded engine (1-core host: no wall-clock
  // speedup is expected here, only correctness and overhead visibility).
  const Lattice small(fast ? 50 : 100, fast ? 50 : 100);
  const int steps = fast ? 2 : 5;
  std::printf("\nReal threaded engine on this host (%d x %d, %d steps):\n",
              small.width(), small.height(), steps);
  for (const unsigned threads : {1u, 2u, 4u}) {
    ParallelPndcaEngine engine(zgb.model, Configuration(small, 3, zgb.vacant),
                               {make_partition(small, zgb.model)}, 7, threads);
    obs::MetricsRegistry registry;
    engine.set_metrics(&registry);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < steps; ++i) engine.mc_step();
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0).count();
    std::printf("  threads=%u  wall=%.3fs  executed=%llu\n", threads, dt,
                static_cast<unsigned long long>(engine.counters().executed));

    obs::RunInfo info;
    info.algorithm = engine.name();
    info.model = "zgb";
    info.width = small.width();
    info.height = small.height();
    info.seed = 7;
    info.t_end = engine.time();
    info.threads = threads;
    info.wall_seconds = dt;
    bench::write_bench_report("fig7_threads" + std::to_string(threads), info, engine,
                              registry);
  }

  // Comm-instrumented 8-rank halo-exchange baseline: the measured per-edge
  // message/byte counts land in BENCH_fig7.json next to the paper
  // cost-model prediction (2 messages per rank per round, 2r*H species
  // each), and every rank records onto its own lane in
  // bench_out/fig7_trace.json — open it in Perfetto to see dd/interior,
  // dd/seam, and the comm waits interleaved across all 8 ranks.
  {
    const std::int32_t dd_side = fast ? 64 : 80;
    const double dd_t_end = fast ? 0.5 : 2.0;
    const int dd_ranks = 8;
    std::printf("\n8-rank halo-exchange baseline, comm-instrumented "
                "(%d x %d, t_end = %.1f):\n",
                dd_side, dd_side, dd_t_end);

    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    tracer.set_trace_id("bench-fig7");
    DomainDecompParams dd;
    dd.ranks = dd_ranks;
    dd.seed = 7;
    dd.t_end = dd_t_end;
    dd.sample_dt = 1.0;
    dd.metrics = &registry;
    dd.tracer = &tracer;
    const Configuration dd_initial(Lattice(dd_side, dd_side), 3, zgb.vacant);
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = run_domain_decomp(zgb.model, dd_initial, dd);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0).count();

    const std::int32_t r = zgb.model.max_radius_l1();
    obs::CommModel model;
    model.messages = 2.0 * dd_ranks * static_cast<double>(res.rounds);
    model.bytes =
        model.messages * (2.0 * r * dd_side * static_cast<double>(sizeof(Species)));
    std::printf("  %llu rounds, wall %.3fs\n",
                static_cast<unsigned long long>(res.rounds), wall);
    std::printf("  messages: measured %llu, model %.0f\n",
                static_cast<unsigned long long>(res.comm.messages), model.messages);
    std::printf("  bytes:    measured %llu, model %.0f\n",
                static_cast<unsigned long long>(res.comm.bytes), model.bytes);

    obs::RunInfo info;
    info.algorithm = "domain-decomp-rsm";
    info.model = "zgb";
    info.width = dd_side;
    info.height = dd_side;
    info.seed = 7;
    info.t_end = dd_t_end;
    info.threads = dd_ranks;
    info.wall_seconds = wall;
    info.trace_id = tracer.trace_id();
    info.trace_drops = tracer.total_dropped();
    bench::write_bench_report("fig7", info, nullptr, registry, nullptr,
                              &res.comm, &model);
    const std::string trace_path = bench::out_dir() + "/fig7_trace.json";
    tracer.write(trace_path);
    std::printf("  [trace] %s\n", trace_path.c_str());
  }
  return 0;
}
