// Reproduces Fig 8 of the paper: for the Pt(100) CO-oxidation model with
// surface reconstruction on a 100x100 lattice, the L-PNDCA limit parameter
// sets (m = 1, L = N^2) and (m = N^2, L = 1) give the same coverage-vs-time
// curves as RSM — the degenerate partitions under which L-PNDCA *is* the
// DMC method.

#include <cstdio>

#include "ca/lpndca.hpp"
#include "dmc/rsm.hpp"
#include "pt100_util.hpp"

using namespace casurf;

int main() {
  bench::header("Fig 8 — RSM vs L-PNDCA limit parameters, Pt(100), N = 100x100");

  const bool fast = bench::fast_mode();
  const std::int32_t side = fast ? 60 : 100;
  const double t_end = fast ? 100.0 : 200.0;
  const auto pt = models::make_pt100();
  const Lattice lat(side, side);
  const Configuration initial(lat, 5, pt.hex_vac);

  std::printf("lattice %d x %d, t_end = %.0f, model K = %.2f\n\n", side, side, t_end,
              pt.model.total_rate());

  RsmSimulator rsm(pt.model, initial, 1);
  const auto rsm_run = bench::record_pt100(rsm, pt, t_end, 1.0);

  LPndcaSimulator one_chunk(pt.model, initial, Partition::single_chunk(lat), 2,
                            lat.size());
  const auto one_run = bench::record_pt100(one_chunk, pt, t_end, 1.0);

  LPndcaSimulator singles(pt.model, initial, Partition::singletons(lat), 3, 1);
  const auto single_run = bench::record_pt100(singles, pt, t_end, 1.0);

  bench::print_series("RSM            CO coverage", rsm_run.co);
  bench::print_series("m=1,  L=N^2    CO coverage", one_run.co);
  bench::print_series("m=N^2, L=1     CO coverage", single_run.co);

  std::printf("\nAgreement with RSM (mean |delta coverage| over the run):\n");
  std::printf("  m=1,  L=N^2 :  CO %.4f   O %.4f\n",
              mean_abs_difference(rsm_run.co, one_run.co),
              mean_abs_difference(rsm_run.o, one_run.o));
  std::printf("  m=N^2, L=1  :  CO %.4f   O %.4f\n",
              mean_abs_difference(rsm_run.co, single_run.co),
              mean_abs_difference(rsm_run.o, single_run.o));
  std::printf("(statistical agreement: different seeds, same kinetics —\n");
  std::printf(" deviations at the level of a single run's stochastic spread)\n\n");

  bench::print_oscillation("RSM", rsm_run.co, t_end * 0.2);
  bench::print_oscillation("L-PNDCA m=1,L=N^2", one_run.co, t_end * 0.2);
  bench::print_oscillation("L-PNDCA m=N^2,L=1", single_run.co, t_end * 0.2);

  bench::dump_series("fig8_rsm", {"co", "o"}, {rsm_run.co, rsm_run.o});
  bench::dump_series("fig8_m1_LN2", {"co", "o"}, {one_run.co, one_run.o});
  bench::dump_series("fig8_mN2_L1", {"co", "o"}, {single_run.co, single_run.o});
  return 0;
}
