// Reproduces Fig 9 of the paper: L-PNDCA on the Pt(100) oscillation model
// with the optimal five-chunk partition and chunk selection proportional to
// chunk size. (a) L = 1 tracks RSM closely; (b) L = 100 introduces
// correlations that shift/damp the coverage oscillations.

#include <chrono>
#include <cstdio>
#include <vector>

#include "ca/lpndca.hpp"
#include "ca/pndca.hpp"
#include "dmc/rsm.hpp"
#include "pt100_util.hpp"

using namespace casurf;

int main() {
  bench::header("Fig 9 — L-PNDCA with five chunks: L = 1 vs L = 100, Pt(100)");

  const bool fast = bench::fast_mode();
  const std::int32_t side = fast ? 60 : 100;
  const double t_end = fast ? 120.0 : 300.0;
  const double skip = t_end * 0.15;  // discard the start-up transient
  const auto pt = models::make_pt100();
  const Lattice lat(side, side);
  const Configuration initial(lat, 5, pt.hex_vac);
  const Partition five = Partition::linear_form(lat, 1, 3, 5);

  std::printf("lattice %d x %d, t_end = %.0f, partition m = 5\n\n", side, side, t_end);

  RsmSimulator rsm(pt.model, initial, 1);
  const auto rsm_run = bench::record_pt100(rsm, pt, t_end, 0.5);

  LPndcaSimulator l1(pt.model, initial, five, 2, 1);
  const auto l1_run = bench::record_pt100(l1, pt, t_end, 0.5);

  LPndcaSimulator l100(pt.model, initial, five, 3, 100);
  const auto l100_run = bench::record_pt100(l100, pt, t_end, 0.5);

  std::printf("Oscillation character of the CO coverage (transient skipped):\n");
  bench::print_oscillation("RSM (reference)", rsm_run.co, skip);
  bench::print_oscillation("L-PNDCA, L=1   (Fig 9a)", l1_run.co, skip);
  bench::print_oscillation("L-PNDCA, L=100 (Fig 9b)", l100_run.co, skip);

  const auto rsm_osc = stats::detect_oscillations(rsm_run.co, skip);
  const auto l1_osc = stats::detect_oscillations(l1_run.co, skip);
  const auto l100_osc = stats::detect_oscillations(l100_run.co, skip);

  std::printf("\nDeviation from the DMC reference:\n");
  if (rsm_osc.mean_period > 0 && l1_osc.mean_period > 0) {
    std::printf("  L=1   period ratio vs RSM: %.2f (paper: ~1, 'almost the same')\n",
                l1_osc.mean_period / rsm_osc.mean_period);
  }
  if (rsm_osc.mean_period > 0 && l100_osc.mean_period > 0) {
    std::printf("  L=100 period ratio vs RSM: %.2f (paper: oscillations deviate in time)\n",
                l100_osc.mean_period / rsm_osc.mean_period);
  }
  std::printf("  L=1   amplitude ratio: %.2f\n",
              rsm_osc.mean_amplitude > 0
                  ? l1_osc.mean_amplitude / rsm_osc.mean_amplitude : 0.0);
  std::printf("  L=100 amplitude ratio: %.2f\n",
              rsm_osc.mean_amplitude > 0
                  ? l100_osc.mean_amplitude / rsm_osc.mean_amplitude : 0.0);

  bench::dump_series("fig9_rsm", {"co", "o"}, {rsm_run.co, rsm_run.o});
  bench::dump_series("fig9_L1", {"co", "o"}, {l1_run.co, l1_run.o});
  bench::dump_series("fig9_L100", {"co", "o"}, {l100_run.co, l100_run.o});

  // Extended L sweep: the full accuracy-vs-parallel-batch trade-off.
  std::printf("\nL sweep (same partition; amplitude/period relative to RSM):\n");
  std::printf("%-8s %-8s %-10s %-10s\n", "L", "peaks", "period/RSM", "amp/RSM");
  for (const std::uint32_t l_param : {1u, 10u, 100u, 1000u}) {
    LPndcaSimulator sweep_sim(pt.model, initial, five, 17 + l_param, l_param);
    const auto run = bench::record_pt100(sweep_sim, pt, t_end, 0.5);
    const auto osc = stats::detect_oscillations(run.co, skip);
    std::printf("%-8u %-8zu %-10.2f %-10.2f\n", l_param, osc.num_peaks,
                rsm_osc.mean_period > 0 ? osc.mean_period / rsm_osc.mean_period : 0.0,
                rsm_osc.mean_amplitude > 0
                    ? osc.mean_amplitude / rsm_osc.mean_amplitude
                    : 0.0);
  }

  // Rate-weighted chunk selection (paper section 5, option 4). First the
  // accuracy angle: L = 1 with chunks weighted by their enabled rate
  // instead of their size, on the same five-chunk form.
  std::printf("\nRate-weighted chunk selection (L = 1, five chunks):\n");
  LPndcaSimulator lrw(pt.model, initial, five, 4, 1, TimeMode::kStochastic,
                      ChunkWeighting::kRateWeighted);
  const auto lrw_run = bench::record_pt100(lrw, pt, t_end, 0.5);
  bench::print_oscillation("L-PNDCA, L=1, rate-weighted", lrw_run.co, skip);
  bench::dump_series("fig9_L1_rate_weighted", {"co", "o"}, {lrw_run.co, lrw_run.o});

  // Then the cost angle: step throughput of the rate-weighted PNDCA policy
  // with the incremental enabled-rate cache ("after") vs the previous
  // brute per-step O(N |T|) chunk-weight rescan ("before", emulated by
  // recomputing every chunk weight from the configuration each step).
  using clock = std::chrono::steady_clock;
  const int throughput_steps = fast ? 40 : 150;

  const auto run_info = [&](const Simulator& sim, double wall) {
    obs::RunInfo info;
    info.algorithm = sim.name();
    info.model = "pt100";
    info.width = side;
    info.height = side;
    info.seed = 5;
    info.t_end = sim.time();
    info.threads = 1;
    info.wall_seconds = wall;
    return info;
  };

  PndcaSimulator cached(pt.model, initial, {five}, 5, ChunkPolicy::kRateWeighted);
  obs::MetricsRegistry cached_reg;
  cached.set_metrics(&cached_reg);
  const auto t_after0 = clock::now();
  for (int i = 0; i < throughput_steps; ++i) cached.mc_step();
  const double after_s = std::chrono::duration<double>(clock::now() - t_after0).count();
  bench::write_bench_report("fig9_rate_weighted_cached", run_info(cached, after_s),
                            cached, cached_reg);

  PndcaSimulator brute(pt.model, initial, {five}, 5, ChunkPolicy::kRateWeighted);
  obs::MetricsRegistry brute_reg;
  brute.set_metrics(&brute_reg);
  std::vector<double> weights(five.num_chunks());
  const auto t_before0 = clock::now();
  for (int i = 0; i < throughput_steps; ++i) {
    for (ChunkId c = 0; c < five.num_chunks(); ++c) {
      weights[c] = brute.enabled_rate_in_chunk(five, c);
    }
    brute.mc_step();
  }
  const double before_s = std::chrono::duration<double>(clock::now() - t_before0).count();
  bench::write_bench_report("fig9_rate_weighted_brute", run_info(brute, before_s),
                            brute, brute_reg);

  std::printf("\nRate-weighted selection cost (%d PNDCA steps, %d x %d):\n",
              throughput_steps, side, side);
  std::printf("  before (brute per-step rescan): %8.1f steps/s\n",
              throughput_steps / before_s);
  std::printf("  after  (incremental cache):     %8.1f steps/s\n",
              throughput_steps / after_s);
  std::printf("  speedup: %.1fx\n", before_s / after_s);
  return 0;
}
