// Ground-truth validation against the Master Equation itself (paper
// section 2, Eq. 1): on a lattice small enough to enumerate every
// configuration, integrate dP/dt = Q P exactly and compare the expected
// coverages with simulated ensembles of each algorithm — exact DMC methods
// must match within sampling error; the CA family shows its (small)
// model-change bias.

#include <cstdio>

#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "me/master_equation.hpp"
#include "models/zgb.hpp"
#include "stats/ensemble.hpp"

using namespace casurf;

int main() {
  bench::header("Master Equation exact check — ZGB on a 3x2 lattice");

  const bool fast = bench::fast_mode();
  const std::size_t replicas = fast ? 400 : 4000;
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.5, 5.0));
  const Lattice lat(3, 2);
  const Configuration initial(lat, 3, zgb.vacant);

  const MasterEquation me(zgb.model, lat);
  std::printf("state space: %zu states, %zu transitions; %zu replicas/algorithm\n\n",
              me.num_states(), me.num_transitions(), replicas);

  const double t = 1.5;
  const auto p = me.evolve(me.delta(initial), t, 1e-3);
  const double exact_co = me.expected_coverage(p, zgb.co);
  const double exact_o = me.expected_coverage(p, zgb.o);
  std::printf("exact E[coverage] at t = %.1f:   CO %.4f   O %.4f\n\n", t, exact_co,
              exact_o);

  std::printf("%-10s %-22s %-22s\n", "algorithm", "CO (sim - exact)", "O (sim - exact)");
  for (const Algorithm algo : {Algorithm::kRsm, Algorithm::kVssm, Algorithm::kFrm,
                               Algorithm::kNdca, Algorithm::kLPndca}) {
    const auto run_one = [&](Species species) {
      return run_ensemble(
          [&](std::uint64_t seed) {
            SimulationOptions opt;
            opt.algorithm = algo;
            opt.seed = seed;
            return make_simulator(zgb.model, initial, opt);
          },
          [species](const Simulator& sim) {
            return sim.configuration().coverage(species);
          },
          replicas, t, t, 2, 1000);
    };
    const auto co = run_one(zgb.co);
    const auto o = run_one(zgb.o);
    const double co_mean = co.mean.values().back();
    const double o_mean = o.mean.values().back();
    std::printf("%-10s %7.4f (%+.4f +- %.4f) %7.4f (%+.4f +- %.4f)\n",
                algorithm_name(algo), co_mean, co_mean - exact_co,
                co.stderr_at(co.mean.size() - 1), o_mean, o_mean - exact_o,
                o.stderr_at(o.mean.size() - 1));
  }

  std::printf("\nShape check: every exact DMC method sits within a few standard\n");
  std::printf("errors of the Master Equation marginal; the CA approximations are\n");
  std::printf("close but carry the documented site-selection bias.\n");
  return 0;
}
