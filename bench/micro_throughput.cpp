// Google-benchmark microbenchmarks: per-trial / per-event throughput of
// every simulator on the ZGB workload, plus the primitive operations on the
// hot path. These are the numbers behind the calibrated t_site of the
// Fig 7 speedup model.

#include <benchmark/benchmark.h>

#include "ca/lpndca.hpp"
#include "ca/ndca.hpp"
#include "ca/pndca.hpp"
#include "ca/tpndca.hpp"
#include "dmc/frm.hpp"
#include "dmc/rsm.hpp"
#include "dmc/vssm.hpp"
#include "models/zgb.hpp"
#include "parallel/parallel_pndca.hpp"
#include "partition/coloring.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace {

using namespace casurf;

constexpr std::int32_t kSide = 64;

const models::ZgbModel& zgb() {
  static const models::ZgbModel model =
      models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  return model;
}

Configuration initial() { return Configuration(Lattice(kSide, kSide), 3, zgb().vacant); }

void BM_RsmMcStep(benchmark::State& state) {
  RsmSimulator sim(zgb().model, initial(), 1);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_RsmMcStep)->Unit(benchmark::kMicrosecond);

void BM_NdcaMcStep(benchmark::State& state) {
  NdcaSimulator sim(zgb().model, initial(), 2);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_NdcaMcStep)->Unit(benchmark::kMicrosecond);

void BM_PndcaMcStep(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  PndcaSimulator sim(zgb().model, initial(),
                     {Partition::linear_form(lat, 1, 3, 5)}, 3);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_PndcaMcStep)->Unit(benchmark::kMicrosecond);

void BM_LPndcaMcStep(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  LPndcaSimulator sim(zgb().model, initial(), Partition::linear_form(lat, 1, 3, 5),
                      4, 64);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_LPndcaMcStep)->Unit(benchmark::kMicrosecond);

void BM_TPndcaMcStep(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  TPndcaSimulator sim(zgb().model, initial(), make_type_partition(lat, zgb().model), 5);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_TPndcaMcStep)->Unit(benchmark::kMicrosecond);

void BM_ParallelPndcaMcStep(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  ParallelPndcaEngine sim(zgb().model, initial(),
                          {Partition::linear_form(lat, 1, 3, 5)}, 6,
                          static_cast<unsigned>(state.range(0)));
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_ParallelPndcaMcStep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_VssmEvent(benchmark::State& state) {
  VssmSimulator sim(zgb().model, initial(), 7);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().executed));
}
BENCHMARK(BM_VssmEvent);

void BM_FrmEvent(benchmark::State& state) {
  FrmSimulator sim(zgb().model, initial(), 8);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().executed));
}
BENCHMARK(BM_FrmEvent);

void BM_EnabledCheck(benchmark::State& state) {
  const Configuration cfg = initial();
  const ReactionType& rt = zgb().model.reaction(3);  // 2-site CO+O pattern
  SiteIndex s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.enabled(cfg, s));
    s = (s + 1) % cfg.size();
  }
}
BENCHMARK(BM_EnabledCheck);

void BM_AliasTypeSample(benchmark::State& state) {
  Xoshiro256 rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zgb().model.sample_type(rng));
  }
}
BENCHMARK(BM_AliasTypeSample);

void BM_MakePartition(benchmark::State& state) {
  const Lattice lat(static_cast<std::int32_t>(state.range(0)),
                    static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_partition(lat, zgb().model));
  }
}
BENCHMARK(BM_MakePartition)->Arg(50)->Arg(100)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
