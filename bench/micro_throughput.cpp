// Google-benchmark microbenchmarks: per-trial / per-event throughput of
// every simulator on the ZGB workload, plus the primitive operations on the
// hot path. These are the numbers behind the calibrated t_site of the
// Fig 7 speedup model.

#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "bench_util.hpp"
#include "ca/lpndca.hpp"
#include "ca/ndca.hpp"
#include "ca/pndca.hpp"
#include "ca/tpndca.hpp"
#include "dmc/frm.hpp"
#include "dmc/rsm.hpp"
#include "dmc/vssm.hpp"
#include "models/pt100.hpp"
#include "models/zgb.hpp"
#include "parallel/parallel_pndca.hpp"
#include "partition/coloring.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace {

using namespace casurf;

// Side 80 (not 64): the canonical five-chunk linear form needs the side
// divisible by 5, otherwise Partition::linear_form rejects the lattice.
constexpr std::int32_t kSide = 80;

const models::ZgbModel& zgb() {
  static const models::ZgbModel model =
      models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  return model;
}

Configuration initial() { return Configuration(Lattice(kSide, kSide), 3, zgb().vacant); }

void BM_RsmMcStep(benchmark::State& state) {
  RsmSimulator sim(zgb().model, initial(), 1);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_RsmMcStep)->Unit(benchmark::kMicrosecond);

void BM_NdcaMcStep(benchmark::State& state) {
  NdcaSimulator sim(zgb().model, initial(), 2);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_NdcaMcStep)->Unit(benchmark::kMicrosecond);

void BM_PndcaMcStep(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  PndcaSimulator sim(zgb().model, initial(),
                     {Partition::linear_form(lat, 1, 3, 5)}, 3);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_PndcaMcStep)->Unit(benchmark::kMicrosecond);

void BM_PndcaMcStepFast(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  PndcaSimulator sim(zgb().model, initial(),
                     {Partition::linear_form(lat, 1, 3, 5)}, 3);
  sim.set_fast_path(true);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_PndcaMcStepFast)->Unit(benchmark::kMicrosecond);

void BM_LPndcaMcStep(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  LPndcaSimulator sim(zgb().model, initial(), Partition::linear_form(lat, 1, 3, 5),
                      4, 64);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_LPndcaMcStep)->Unit(benchmark::kMicrosecond);

void BM_LPndcaMcStepFast(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  LPndcaSimulator sim(zgb().model, initial(), Partition::linear_form(lat, 1, 3, 5),
                      4, 64);
  sim.set_fast_path(true);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_LPndcaMcStepFast)->Unit(benchmark::kMicrosecond);

void BM_TPndcaMcStep(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  TPndcaSimulator sim(zgb().model, initial(), make_type_partition(lat, zgb().model), 5);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_TPndcaMcStep)->Unit(benchmark::kMicrosecond);

void BM_TPndcaMcStepFast(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  TPndcaSimulator sim(zgb().model, initial(), make_type_partition(lat, zgb().model), 5);
  sim.set_fast_path(true);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_TPndcaMcStepFast)->Unit(benchmark::kMicrosecond);

// Rate-weighted chunk selection (paper's policy 4). "Cached" is the
// incremental enabled-rate cache; "BruteRescan" reproduces the previous
// per-step cost by recomputing every chunk weight from the configuration
// before each step (the old plan_schedule did exactly this O(N |T|) scan).
// The ratio of the two is the cache's step-throughput improvement.
//
// Both variants restart every iteration from the same pre-equilibrated
// snapshot with the same seed, so they time the exact same trajectory —
// without this the simulator state drifts across iterations and the two
// benchmarks end up sampling different (cheaper/dearer) phases of the run.
Configuration equilibrated(const ReactionModel& model, Configuration fresh,
                           const Partition& p, int warm_steps) {
  PndcaSimulator sim(model, std::move(fresh), {p}, 10, ChunkPolicy::kRateWeighted);
  for (int i = 0; i < warm_steps; ++i) sim.mc_step();
  return sim.configuration();
}

constexpr int kRateWeightedMeasureSteps = 5;

void rate_weighted_pair(benchmark::State& state, const ReactionModel& model,
                        const Configuration& start, const Partition& p,
                        bool brute_rescan) {
  std::vector<double> weights(p.num_chunks());
  std::uint64_t trials = 0;
  for (auto _ : state) {
    state.PauseTiming();
    PndcaSimulator sim(model, start, {p}, 10, ChunkPolicy::kRateWeighted);
    state.ResumeTiming();
    for (int i = 0; i < kRateWeightedMeasureSteps; ++i) {
      if (brute_rescan) {
        for (ChunkId c = 0; c < p.num_chunks(); ++c) {
          weights[c] = sim.enabled_rate_in_chunk(p, c);
        }
        benchmark::DoNotOptimize(weights.data());
      }
      sim.mc_step();
    }
    trials += sim.counters().trials;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(trials));
}

void BM_PndcaRateWeightedCached(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const Lattice lat(side, side);
  const Partition p = Partition::linear_form(lat, 1, 3, 16);
  const Configuration start =
      equilibrated(zgb().model, Configuration(lat, 3, zgb().vacant), p, 20);
  rate_weighted_pair(state, zgb().model, start, p, false);
}
BENCHMARK(BM_PndcaRateWeightedCached)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_PndcaRateWeightedBruteRescan(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const Lattice lat(side, side);
  const Partition p = Partition::linear_form(lat, 1, 3, 16);
  const Configuration start =
      equilibrated(zgb().model, Configuration(lat, 3, zgb().vacant), p, 20);
  rate_weighted_pair(state, zgb().model, start, p, true);
}
BENCHMARK(BM_PndcaRateWeightedBruteRescan)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// Same pair on Pt(100), whose ~5x larger reaction-type set is where the
// old O(N |T|) rescan truly dominated the step.
void BM_Pt100RateWeightedCached(benchmark::State& state) {
  static const models::Pt100Model pt = models::make_pt100();
  const auto side = static_cast<std::int32_t>(state.range(0));
  const Lattice lat(side, side);
  const Partition p = Partition::linear_form(lat, 1, 3, 16);
  const Configuration start =
      equilibrated(pt.model, Configuration(lat, 5, pt.hex_vac), p, 30);
  rate_weighted_pair(state, pt.model, start, p, false);
}
BENCHMARK(BM_Pt100RateWeightedCached)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_Pt100RateWeightedBruteRescan(benchmark::State& state) {
  static const models::Pt100Model pt = models::make_pt100();
  const auto side = static_cast<std::int32_t>(state.range(0));
  const Lattice lat(side, side);
  const Partition p = Partition::linear_form(lat, 1, 3, 16);
  const Configuration start =
      equilibrated(pt.model, Configuration(lat, 5, pt.hex_vac), p, 30);
  rate_weighted_pair(state, pt.model, start, p, true);
}
BENCHMARK(BM_Pt100RateWeightedBruteRescan)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_LPndcaRateWeightedMcStep(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  LPndcaSimulator sim(zgb().model, initial(), Partition::linear_form(lat, 1, 3, 5),
                      11, 64, TimeMode::kStochastic, ChunkWeighting::kRateWeighted);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_LPndcaRateWeightedMcStep)->Unit(benchmark::kMicrosecond);

void BM_TPndcaRateWeightedMcStep(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  TPndcaSimulator sim(zgb().model, initial(), make_type_partition(lat, zgb().model),
                      12, 0, ChunkWeighting::kRateWeighted);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_TPndcaRateWeightedMcStep)->Unit(benchmark::kMicrosecond);

void BM_ParallelPndcaMcStep(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  ParallelPndcaEngine sim(zgb().model, initial(),
                          {Partition::linear_form(lat, 1, 3, 5)}, 6,
                          static_cast<unsigned>(state.range(0)));
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_ParallelPndcaMcStep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_ParallelPndcaMcStepFast(benchmark::State& state) {
  const Lattice lat(kSide, kSide);
  ParallelPndcaEngine sim(zgb().model, initial(),
                          {Partition::linear_form(lat, 1, 3, 5)}, 6,
                          static_cast<unsigned>(state.range(0)));
  sim.set_fast_path(true);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().trials));
}
BENCHMARK(BM_ParallelPndcaMcStepFast)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// The headline fast-path pair: scalar vs batched trial loop on the PR-1
// rate-weighted Pt(100) configuration at 256x256 — the workload where the
// per-trial pattern match dominates the step. Same partition, same seed,
// same trajectory; only the trial-evaluation machinery differs.
// Deterministic time mode keeps the per-trial exponential clock draws out
// of the measurement — they cost the same on both sides and would dilute
// the ratio this pair exists to expose.
void pt100_trial_loop(benchmark::State& state, bool fast) {
  static const models::Pt100Model pt = models::make_pt100();
  const auto side = static_cast<std::int32_t>(state.range(0));
  const Lattice lat(side, side);
  const Partition p = Partition::linear_form(lat, 1, 3, 16);
  const Configuration start =
      equilibrated(pt.model, Configuration(lat, 5, pt.hex_vac), p, 10);
  std::uint64_t trials = 0;
  for (auto _ : state) {
    state.PauseTiming();
    PndcaSimulator sim(pt.model, start, {p}, 10, ChunkPolicy::kRateWeighted,
                       TimeMode::kDeterministic);
    if (fast) sim.set_fast_path(true);
    state.ResumeTiming();
    for (int i = 0; i < kRateWeightedMeasureSteps; ++i) sim.mc_step();
    trials += sim.counters().trials;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(trials));
}

void BM_Pt100TrialLoopScalar(benchmark::State& state) {
  pt100_trial_loop(state, false);
}
BENCHMARK(BM_Pt100TrialLoopScalar)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_Pt100TrialLoopFast(benchmark::State& state) {
  pt100_trial_loop(state, true);
}
BENCHMARK(BM_Pt100TrialLoopFast)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_VssmEvent(benchmark::State& state) {
  VssmSimulator sim(zgb().model, initial(), 7);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().executed));
}
BENCHMARK(BM_VssmEvent);

void BM_FrmEvent(benchmark::State& state) {
  FrmSimulator sim(zgb().model, initial(), 8);
  for (auto _ : state) sim.mc_step();
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.counters().executed));
}
BENCHMARK(BM_FrmEvent);

void BM_EnabledCheck(benchmark::State& state) {
  const Configuration cfg = initial();
  const ReactionType& rt = zgb().model.reaction(3);  // 2-site CO+O pattern
  SiteIndex s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.enabled(cfg, s));
    s = (s + 1) % cfg.size();
  }
}
BENCHMARK(BM_EnabledCheck);

void BM_AliasTypeSample(benchmark::State& state) {
  Xoshiro256 rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zgb().model.sample_type(rng));
  }
}
BENCHMARK(BM_AliasTypeSample);

void BM_MakePartition(benchmark::State& state) {
  const Lattice lat(static_cast<std::int32_t>(state.range(0)),
                    static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_partition(lat, zgb().model));
  }
}
BENCHMARK(BM_MakePartition)->Arg(50)->Arg(100)->Unit(benchmark::kMicrosecond);

// One instrumented run of `sim` for `steps` MC steps, dumped as
// bench_out/BENCH_<name>.json so casurf_report (and CI) always have a
// fresh machine-readable artifact, whatever --benchmark_filter selected.
void emit_report(const char* name, const char* model, Simulator& sim,
                 std::uint64_t seed, int steps, bool instrument) {
  // The scalar/fast A/B pair runs uninstrumented: probes and activity maps
  // cost the batched path proportionally more than the scalar one, so an
  // instrumented pair would understate the trial-loop delta the artifact
  // exists to record.
  obs::MetricsRegistry registry;
  if (instrument) sim.set_metrics(&registry);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) sim.mc_step();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0).count();

  obs::RunInfo info;
  info.algorithm = sim.name();
  info.model = model;
  info.width = sim.configuration().lattice().width();
  info.height = sim.configuration().lattice().height();
  info.seed = seed;
  info.t_end = sim.time();
  info.threads = 1;
  info.wall_seconds = wall;
  bench::write_bench_report(name, info, sim, registry);
}

void emit_reports() {
  // The recorded scalar/fast pair is the headline workload: rate-weighted
  // PNDCA on equilibrated Pt(100) at 256x256 (shrunk under the CI smoke's
  // fast mode), deterministic time, identical seed and schedule — the
  // casurf_report A/B of these two files is a pure trial-loop readout.
  static const models::Pt100Model& pt = models::make_pt100();
  const std::int32_t side = bench::fast_mode() ? 64 : 256;
  const int steps = bench::fast_mode() ? 3 : 10;
  const Lattice lat(side, side);
  const Partition p = Partition::linear_form(lat, 1, 3, 16);
  const Configuration start =
      equilibrated(pt.model, Configuration(lat, 5, pt.hex_vac), p, 10);

  PndcaSimulator pndca(pt.model, start, {p}, 10, ChunkPolicy::kRateWeighted,
                       TimeMode::kDeterministic);
  emit_report("micro_throughput", "pt100", pndca, 10, steps, false);

  // The same run with the batched bitplane path engaged; the trajectory is
  // bit-identical, so a casurf_report A/B against micro_throughput isolates
  // the trial-loop speedup (the CI smoke asserts on exactly this pair).
  PndcaSimulator pndca_fast(pt.model, start, {p}, 10,
                            ChunkPolicy::kRateWeighted,
                            TimeMode::kDeterministic);
  pndca_fast.set_fast_path(true);
  emit_report("micro_fastpath", "pt100", pndca_fast, 10, steps, false);

  const std::int32_t zside = bench::fast_mode() ? 40 : kSide;
  const Lattice zlat(zside, zside);
  ParallelPndcaEngine engine(zgb().model, Configuration(zlat, 3, zgb().vacant),
                             {Partition::linear_form(zlat, 1, 3, 5)}, 21, 2);
  obs::MetricsRegistry registry;
  engine.set_metrics(&registry);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) engine.mc_step();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0).count();
  obs::RunInfo info;
  info.algorithm = engine.name();
  info.model = "zgb";
  info.width = zside;
  info.height = zside;
  info.seed = 21;
  info.t_end = engine.time();
  info.threads = 2;
  info.wall_seconds = wall;
  bench::write_bench_report("micro_parallel2", info, engine, registry);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Always emitted, even under a narrow --benchmark_filter: the CI smoke
  // and casurf_report's A/B mode depend on these two files existing.
  emit_reports();
  return 0;
}
