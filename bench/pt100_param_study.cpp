// Reproducibility of the Pt(100) substitution (DESIGN.md / EXPERIMENTS.md):
// the paper uses Kuzovkov et al.'s reconstruction model but publishes no
// rate constants, so this library ships a tuned set. This bench documents
// the tuning landscape: oscillation character across the neighborhood of
// the chosen defaults, including the failure modes (O-flooded absorbing
// state; weak local-transition oscillations).

#include <cstdio>

#include "dmc/rsm.hpp"
#include "pt100_util.hpp"

using namespace casurf;

namespace {

struct Case {
  const char* label;
  models::Pt100Params params;
};

}  // namespace

int main() {
  bench::header("Pt(100) parameter study — oscillation landscape around the defaults");

  const bool fast = bench::fast_mode();
  const std::int32_t side = fast ? 48 : 64;
  const double t_end = fast ? 80.0 : 150.0;

  std::vector<Case> cases;
  cases.push_back({"defaults (des .2, V 1.0)", models::Pt100Params{}});
  {
    models::Pt100Params p;
    p.co_des = 0.1;
    p.v_lift = p.v_restore = 0.5;
    cases.push_back({"des .1, V 0.5 (fragile)", p});
  }
  {
    models::Pt100Params p;
    p.v_lift = p.v_restore = 2.0;
    cases.push_back({"V 2.0 (fronts too fast)", p});
  }
  {
    models::Pt100Params p;
    p.diffusion = 10.0;
    cases.push_back({"diffusion 10 (weak sync)", p});
  }
  {
    models::Pt100Params p;
    p.front_propagation = false;
    p.v_lift = 0.2;
    p.v_restore = 0.1;
    cases.push_back({"local transitions (no fronts)", p});
  }
  {
    models::Pt100Params p;
    p.o2_ads = 1.6;
    cases.push_back({"O2 1.6 (flood risk)", p});
  }

  std::printf("%d x %d, RSM, t_end = %.0f, seed 9\n\n", side, side, t_end);
  std::printf("%-32s %-8s %-8s %-10s %-8s %s\n", "parameter set", "peaks", "period",
              "amplitude", "end O", "verdict");

  for (const Case& c : cases) {
    const auto pt = models::make_pt100(c.params);
    RsmSimulator sim(pt.model, Configuration(Lattice(side, side), 5, pt.hex_vac), 9);
    const auto run = bench::record_pt100(sim, pt, t_end, 0.5);
    const auto osc = stats::detect_oscillations(run.co, t_end * 0.2);
    const double end_o = pt.o_coverage(sim.configuration());
    const char* verdict = osc.oscillating() ? "oscillating"
                          : end_o > 0.9     ? "O-flooded (absorbing)"
                                            : "steady / weak";
    std::printf("%-32s %-8zu %-8.1f %-10.3f %-8.2f %s\n", c.label, osc.num_peaks,
                osc.mean_period, osc.mean_amplitude, end_o, verdict);
  }

  std::printf("\nShape check: the shipped defaults oscillate robustly; weakening the\n");
  std::printf("fronts, the diffusion, or pushing O2 uptake toward the absorbing\n");
  std::printf("O-covered state degrades or kills the oscillations — the landscape\n");
  std::printf("recorded in EXPERIMENTS.md (substitution #2).\n");
  return 0;
}
