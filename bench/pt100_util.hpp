#pragma once

// Shared setup for the Pt(100) oscillation experiments (Figs 8-10): the
// model, the 100x100 lattice of the paper, and a run helper that records
// CO and O coverage series.

#include <memory>

#include "bench_util.hpp"
#include "core/observer.hpp"
#include "core/simulator.hpp"
#include "models/pt100.hpp"
#include "stats/coverage.hpp"
#include "stats/oscillation.hpp"

namespace casurf::bench {

struct Pt100Run {
  TimeSeries co;  ///< total CO coverage (both phases)
  TimeSeries o;   ///< O coverage
};

inline Pt100Run record_pt100(Simulator& sim, const models::Pt100Model& pt,
                             double t_end, double dt) {
  CoverageRecorder rec;
  run_sampled(sim, t_end, dt, rec);
  return Pt100Run{rec.combined({pt.hex_co, pt.sq_co}), rec.series(pt.sq_o)};
}

inline void print_oscillation(const char* label, const TimeSeries& ts, double skip) {
  const auto osc = stats::detect_oscillations(ts, skip);
  std::printf("  %-28s peaks=%-3zu period=%-6.1f amplitude=%.3f %s\n", label,
              osc.num_peaks, osc.mean_period, osc.mean_amplitude,
              osc.oscillating() ? "[oscillating]" : "[not oscillating]");
}

}  // namespace casurf::bench
