// serve_churn — job-daemon throughput under churn.
//
// Stands up an in-process serve::Daemon (the same class behind the
// casurf_serve binary), pushes a wave of short ZGB jobs through the HTTP
// API, and reports submission latency plus end-to-end completion
// throughput per slot count. Every job is a real fork+exec'd casurf_run
// worker, so the numbers include process startup — the cost that decides
// whether the one-worker-per-job isolation model is affordable.
//
// A 10 Hz scraper thread hits GET /metrics throughout each wave and runs
// every response through the strict exposition parser, so the bench also
// smoke-tests the telemetry path under load (on CASURF_METRICS=OFF builds
// it instead checks the route 404s).
//
// CASURF_BENCH_FAST=1 shrinks the wave for CI smoke runs.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/prom.hpp"
#include "serve/daemon.hpp"
#include "serve/http.hpp"

namespace {

using casurf::obs::json::Value;
using casurf::serve::Daemon;
using casurf::serve::DaemonOptions;
using casurf::serve::HttpResponse;
using casurf::serve::http_request;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ChurnResult {
  double submit_seconds = 0;   // wall time to POST the whole wave
  double drain_seconds = 0;    // wall time until every job is terminal
  int completed = 0;
  int failed = 0;
  int scrapes = 0;             // /metrics responses validated mid-wave
};

ChurnResult run_wave(unsigned slots, int jobs, const std::string& data_dir) {
  DaemonOptions opt;
  opt.runner = CASURF_RUN_PATH;
  opt.data_dir = data_dir;
  opt.slots = slots;
  opt.queue_cap = static_cast<std::size_t>(jobs) + 8;
  opt.tenant_cap = static_cast<std::size_t>(jobs) + 8;
  Daemon daemon(opt);

  ChurnResult result;

  // 10 Hz scraper: every /metrics body must survive the strict 0.0.4
  // parser while runners churn underneath it (or 404 when compiled out).
  std::atomic<bool> scraping{true};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    while (scraping.load(std::memory_order_relaxed)) {
      const HttpResponse resp = http_request(daemon.port(), "GET", "/metrics");
      if (casurf::obs::prom::kPromCompiled) {
        if (resp.status != 200) {
          std::fprintf(stderr, "/metrics returned %d\n", resp.status);
          std::exit(1);
        }
        try {
          (void)casurf::obs::prom::parse(resp.body);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "/metrics failed strict parse: %s\n", e.what());
          std::exit(1);
        }
      } else if (resp.status != 404) {
        std::fprintf(stderr, "/metrics on an OFF build returned %d\n",
                     resp.status);
        std::exit(1);
      }
      scrapes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(jobs));
  const auto submit_t0 = Clock::now();
  for (int i = 0; i < jobs; ++i) {
    const std::string body =
        R"({"model":"zgb","algorithm":"rsm","width":16,"height":16,)"
        R"("t_end":1,"dt":1,"seed":)" +
        std::to_string(i + 1) + "}";
    const HttpResponse resp = http_request(daemon.port(), "POST", "/jobs", body);
    if (resp.status != 202) {
      std::fprintf(stderr, "submit %d failed: %d %s\n", i, resp.status,
                   resp.body.c_str());
      std::exit(1);
    }
    ids.push_back(Value::parse(resp.body).at("id").as_u64());
  }
  result.submit_seconds = seconds_since(submit_t0);

  const auto drain_t0 = Clock::now();
  for (const std::uint64_t id : ids) {
    for (;;) {
      const HttpResponse resp =
          http_request(daemon.port(), "GET", "/jobs/" + std::to_string(id));
      const std::string state = Value::parse(resp.body).at("state").as_string();
      if (state == "done") {
        ++result.completed;
        break;
      }
      if (state == "failed" || state == "stopped") {
        ++result.failed;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  result.drain_seconds = seconds_since(drain_t0);

  scraping.store(false, std::memory_order_relaxed);
  scraper.join();
  result.scrapes = scrapes.load(std::memory_order_relaxed);
  return result;
}

}  // namespace

int main() {
  const bool fast = std::getenv("CASURF_BENCH_FAST") != nullptr;
  const int jobs = fast ? 16 : 200;

  std::printf("serve_churn: %d ZGB jobs (16x16, t_end 1) per wave, "
              "one casurf_run worker process per job\n\n", jobs);
  std::printf("%-6s %-10s %-12s %-12s %-10s %-8s\n", "slots", "completed",
              "submit_ms", "drain_s", "jobs/s", "scrapes");

  for (const unsigned slots : {1u, 2u, 4u, 8u}) {
    const std::string dir = "serve_churn_out/slots_" + std::to_string(slots);
    const ChurnResult r = run_wave(slots, jobs, dir);
    if (r.failed != 0) {
      std::fprintf(stderr, "%d job(s) did not complete\n", r.failed);
      return 1;
    }
    const double total = r.submit_seconds + r.drain_seconds;
    std::printf("%-6u %-10d %-12.1f %-12.2f %-10.1f %-8d\n", slots,
                r.completed, r.submit_seconds * 1e3, r.drain_seconds,
                total > 0 ? jobs / total : 0.0, r.scrapes);
  }
  std::printf("\njobs/s counts full job lifecycle: HTTP submit, queue, "
              "fork+exec, simulate, checkpoint, report, join. Every scrape "
              "is a /metrics body that passed the strict 0.0.4 parser "
              "mid-wave.\n");
  return 0;
}
