// serve_churn — job-daemon throughput under churn.
//
// Stands up an in-process serve::Daemon (the same class behind the
// casurf_serve binary), pushes a wave of short ZGB jobs through the HTTP
// API, and reports submission latency plus end-to-end completion
// throughput per slot count. Every job is a real fork+exec'd casurf_run
// worker, so the numbers include process startup — the cost that decides
// whether the one-worker-per-job isolation model is affordable.
//
// CASURF_BENCH_FAST=1 shrinks the wave for CI smoke runs.

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "serve/daemon.hpp"
#include "serve/http.hpp"

namespace {

using casurf::obs::json::Value;
using casurf::serve::Daemon;
using casurf::serve::DaemonOptions;
using casurf::serve::HttpResponse;
using casurf::serve::http_request;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ChurnResult {
  double submit_seconds = 0;   // wall time to POST the whole wave
  double drain_seconds = 0;    // wall time until every job is terminal
  int completed = 0;
  int failed = 0;
};

ChurnResult run_wave(unsigned slots, int jobs, const std::string& data_dir) {
  DaemonOptions opt;
  opt.runner = CASURF_RUN_PATH;
  opt.data_dir = data_dir;
  opt.slots = slots;
  opt.queue_cap = static_cast<std::size_t>(jobs) + 8;
  opt.tenant_cap = static_cast<std::size_t>(jobs) + 8;
  Daemon daemon(opt);

  ChurnResult result;
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(jobs));
  const auto submit_t0 = Clock::now();
  for (int i = 0; i < jobs; ++i) {
    const std::string body =
        R"({"model":"zgb","algorithm":"rsm","width":16,"height":16,)"
        R"("t_end":1,"dt":1,"seed":)" +
        std::to_string(i + 1) + "}";
    const HttpResponse resp = http_request(daemon.port(), "POST", "/jobs", body);
    if (resp.status != 202) {
      std::fprintf(stderr, "submit %d failed: %d %s\n", i, resp.status,
                   resp.body.c_str());
      std::exit(1);
    }
    ids.push_back(Value::parse(resp.body).at("id").as_u64());
  }
  result.submit_seconds = seconds_since(submit_t0);

  const auto drain_t0 = Clock::now();
  for (const std::uint64_t id : ids) {
    for (;;) {
      const HttpResponse resp =
          http_request(daemon.port(), "GET", "/jobs/" + std::to_string(id));
      const std::string state = Value::parse(resp.body).at("state").as_string();
      if (state == "done") {
        ++result.completed;
        break;
      }
      if (state == "failed" || state == "stopped") {
        ++result.failed;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  result.drain_seconds = seconds_since(drain_t0);
  return result;
}

}  // namespace

int main() {
  const bool fast = std::getenv("CASURF_BENCH_FAST") != nullptr;
  const int jobs = fast ? 16 : 200;

  std::printf("serve_churn: %d ZGB jobs (16x16, t_end 1) per wave, "
              "one casurf_run worker process per job\n\n", jobs);
  std::printf("%-6s %-10s %-12s %-12s %-10s\n", "slots", "completed",
              "submit_ms", "drain_s", "jobs/s");

  for (const unsigned slots : {1u, 2u, 4u, 8u}) {
    const std::string dir = "serve_churn_out/slots_" + std::to_string(slots);
    const ChurnResult r = run_wave(slots, jobs, dir);
    if (r.failed != 0) {
      std::fprintf(stderr, "%d job(s) did not complete\n", r.failed);
      return 1;
    }
    const double total = r.submit_seconds + r.drain_seconds;
    std::printf("%-6u %-10d %-12.1f %-12.2f %-10.1f\n", slots, r.completed,
                r.submit_seconds * 1e3, r.drain_seconds,
                total > 0 ? jobs / total : 0.0);
  }
  std::printf("\njobs/s counts full job lifecycle: HTTP submit, queue, "
              "fork+exec, simulate, checkpoint, report, join.\n");
  return 0;
}
