// Reproduces Table I of the paper: the seven reaction types of the ZGB
// CO-oxidation model, as (site, source, target) triples applied at a site s.

#include <cstdio>

#include "bench_util.hpp"
#include "models/zgb.hpp"

using namespace casurf;

int main() {
  bench::header("Table I — reaction types of the ZGB model (CO oxidation)");

  const auto zgb = models::make_zgb();
  const SpeciesSet& sp = zgb.model.species();

  std::printf("%-12s %-8s %s\n", "type", "rate", "transformations at site s");
  for (ReactionIndex i = 0; i < zgb.model.num_reactions(); ++i) {
    const ReactionType& rt = zgb.model.reaction(i);
    std::string row;
    for (const Transform& t : rt.transforms()) {
      Species src = 0;
      for (Species c = 0; c < sp.size(); ++c) {
        if (mask_contains(t.src, c)) src = c;
      }
      char buf[96];
      std::snprintf(buf, sizeof buf, "(s+(%d,%d), %s, %s) ", t.offset.x, t.offset.y,
                    sp.name(src).c_str(),
                    t.tg == kKeep ? "keep" : sp.name(t.tg).c_str());
      row += buf;
    }
    std::printf("%-12s %-8.3f %s\n", rt.name().c_str(), rt.rate(), row.c_str());
  }

  std::printf("\nChannel structure (as in Table I):\n");
  std::printf("  Rt_CO   : 1 version  (adsorption on a vacant site)\n");
  std::printf("  Rt_O2   : 2 versions (two orientations of the vacant pair)\n");
  std::printf("  Rt_CO+O : 4 versions (four orientations of the O neighbor)\n");
  std::printf("  K = sum k_i = %.3f\n", zgb.model.total_rate());
  return 0;
}
