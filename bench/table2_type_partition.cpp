// Reproduces Table II and Fig 6 of the paper: the division of the ZGB
// reaction types into subsets T_j by bond direction, and the two-chunk
// (checkerboard) site partitions each subset uses.

#include <cstdio>

#include "bench_util.hpp"
#include "models/zgb.hpp"
#include "partition/type_partition.hpp"

using namespace casurf;

int main() {
  bench::header("Table II — reaction-type subsets T_j for the ZGB model");

  const auto zgb = models::make_zgb();
  const Lattice lat(6, 4);  // small even lattice so the Fig 6 checkerboard shows
  const auto subsets = make_type_partition(lat, zgb.model);

  for (std::size_t j = 0; j < subsets.size(); ++j) {
    const TypeSubset& sub = subsets[j];
    std::printf("T%zu  (bond (%d,%d), K_Tj = %.3f):\n", j, sub.bond.x, sub.bond.y,
                sub.total_rate);
    for (const ReactionIndex i : sub.types) {
      std::printf("    %s (k = %.3f)\n", zgb.model.reaction(i).name().c_str(),
                  zgb.model.reaction(i).rate());
    }
    std::printf("  chunk pattern (Fig 6 style, %zu chunks):\n",
                sub.chunks.num_chunks());
    for (std::int32_t y = 0; y < lat.height(); ++y) {
      std::printf("    ");
      for (std::int32_t x = 0; x < lat.width(); ++x) {
        std::printf("%u ", sub.chunks.chunk_of(lat.index({x, y})));
      }
      std::printf("\n");
    }
  }

  std::printf("\nPaper check: T0 holds Rt_CO+O^(0), Rt_CO+O^(2), Rt_O2^(0) and Rt_CO;\n");
  std::printf("T1 holds Rt_CO+O^(1), Rt_CO+O^(3), Rt_O2^(1). Two chunks per subset\n");
  std::printf("(vs five for the full partition) => each parallel sweep spans N/2 sites.\n");
  return 0;
}
