// The abstract's "experimental data for the simulation of the Ziff model":
// the kinetic phase diagram of ZGB CO oxidation. Sweeping the CO fraction y
// maps the O-poisoned phase (y < y1 ~ 0.39), the reactive window, and the
// first-order CO-poisoning transition (y > y2 ~ 0.525). RSM (exact DMC) and
// PNDCA (five conflict-free chunks) are compared point by point.

#include <cstdio>

#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "models/zgb.hpp"

using namespace casurf;

namespace {

struct PhasePoint {
  double co, o, vacant, rate;  // steady coverages + CO2 rate per site/time
};

PhasePoint steady_state(Algorithm algo, double y, std::int32_t side, double t_relax,
                        double t_avg, std::uint64_t seed) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(y, 20.0));
  SimulationOptions opt;
  opt.algorithm = algo;
  opt.seed = seed;
  auto sim = make_simulator(zgb.model, Configuration(Lattice(side, side), 3, zgb.vacant),
                            opt);
  sim->advance_to(t_relax);
  std::uint64_t co2_before = 0;
  for (int i = 3; i < 7; ++i) co2_before += sim->counters().executed_per_type[i];
  const double t_before = sim->time();

  PhasePoint p{};
  int n = 0;
  while (sim->time() < t_relax + t_avg) {
    sim->advance_to(sim->time() + 1.0);
    p.co += sim->configuration().coverage(zgb.co);
    p.o += sim->configuration().coverage(zgb.o);
    p.vacant += sim->configuration().coverage(zgb.vacant);
    ++n;
  }
  p.co /= n;
  p.o /= n;
  p.vacant /= n;
  std::uint64_t co2_after = 0;
  for (int i = 3; i < 7; ++i) co2_after += sim->counters().executed_per_type[i];
  p.rate = static_cast<double>(co2_after - co2_before) /
           (static_cast<double>(side) * side * (sim->time() - t_before));
  return p;
}

}  // namespace

int main() {
  bench::header("ZGB phase diagram — steady coverages vs CO fraction y (RSM vs PNDCA)");

  const bool fast = bench::fast_mode();
  const std::int32_t side = fast ? 32 : 64;
  const double t_relax = fast ? 15.0 : 60.0;
  const double t_avg = fast ? 10.0 : 30.0;

  std::printf("lattice %d x %d, relax %.0f, average %.0f (finite reaction rate k=20)\n\n",
              side, side, t_relax, t_avg);
  std::printf("%-6s | %-23s | %-23s | %s\n", "y", "RSM  CO     O     rate",
              "PNDCA CO     O    rate", "phase");
  std::printf("-------+-------------------------+-------------------------+---------\n");

  std::vector<double> ys, rsm_co, rsm_o, rsm_rate, ca_co, ca_o, ca_rate;
  for (const double y : {0.20, 0.30, 0.35, 0.40, 0.44, 0.48, 0.50, 0.52, 0.54,
                         0.56, 0.60, 0.70}) {
    const PhasePoint rsm = steady_state(Algorithm::kRsm, y, side, t_relax, t_avg, 11);
    const PhasePoint ca = steady_state(Algorithm::kPndca, y, side, t_relax, t_avg, 23);
    const char* phase = rsm.co > 0.9 ? "CO-poisoned"
                        : rsm.o > 0.9 ? "O-poisoned"
                                      : "reactive";
    std::printf("%-6.2f | %5.3f  %5.3f  %6.4f  | %5.3f  %5.3f  %6.4f | %s\n", y,
                rsm.co, rsm.o, rsm.rate, ca.co, ca.o, ca.rate, phase);
    ys.push_back(y);
    rsm_co.push_back(rsm.co);
    rsm_o.push_back(rsm.o);
    rsm_rate.push_back(rsm.rate);
    ca_co.push_back(ca.co);
    ca_o.push_back(ca.o);
    ca_rate.push_back(ca.rate);
  }

  stats::write_csv(bench::out_dir() + "/zgb_phase_diagram.csv",
                   {"y", "rsm_co", "rsm_o", "rsm_rate", "pndca_co", "pndca_o",
                    "pndca_rate"},
                   {ys, rsm_co, rsm_o, rsm_rate, ca_co, ca_o, ca_rate});
  std::printf("  [csv] %s/zgb_phase_diagram.csv\n", bench::out_dir().c_str());

  std::printf("\nPaper/ZGB shape check: O-rich at low y, reactive window around\n");
  std::printf("y ~ 0.4-0.53, abrupt CO poisoning just above; RSM and PNDCA agree.\n");
  std::printf("(finite reaction rate shifts the window slightly vs the original\n");
  std::printf("instantaneous-reaction ZGB values y1=0.389, y2=0.525)\n");
  return 0;
}
