// The abstract's "experimental data for the simulation of the Ziff model":
// the kinetic phase diagram of ZGB CO oxidation. Sweeping the CO fraction y
// maps the O-poisoned phase (y < y1 ~ 0.39), the reactive window, and the
// first-order CO-poisoning transition (y > y2 ~ 0.525). RSM (exact DMC) and
// PNDCA (five conflict-free chunks) are compared point by point.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "models/zgb.hpp"
#include "obs/spatial.hpp"
#include "partition/conflict.hpp"
#include "stats/correlations.hpp"

using namespace casurf;

namespace {

struct PhasePoint {
  double co, o, vacant, rate;  // steady coverages + CO2 rate per site/time
  /// Steady nearest-neighbor pair correlations (1 = random mixing): CO-CO
  /// and O-O clustering distinguish the reactive phase's mixed adlayer from
  /// the segregated islands a coarse partition can induce at the same
  /// coverages.
  double g_coco, g_oo;
};

PhasePoint steady_state(Algorithm algo, double y, std::int32_t side, double t_relax,
                        double t_avg, std::uint64_t seed) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(y, 20.0));
  SimulationOptions opt;
  opt.algorithm = algo;
  opt.seed = seed;
  auto sim = make_simulator(zgb.model, Configuration(Lattice(side, side), 3, zgb.vacant),
                            opt);
  sim->advance_to(t_relax);
  std::uint64_t co2_before = 0;
  for (int i = 3; i < 7; ++i) co2_before += sim->counters().executed_per_type[i];
  const double t_before = sim->time();

  PhasePoint p{};
  int n = 0;
  while (sim->time() < t_relax + t_avg) {
    sim->advance_to(sim->time() + 1.0);
    p.co += sim->configuration().coverage(zgb.co);
    p.o += sim->configuration().coverage(zgb.o);
    p.vacant += sim->configuration().coverage(zgb.vacant);
    p.g_coco += stats::pair_correlation(sim->configuration(), zgb.co, zgb.co);
    p.g_oo += stats::pair_correlation(sim->configuration(), zgb.o, zgb.o);
    ++n;
  }
  p.co /= n;
  p.o /= n;
  p.vacant /= n;
  p.g_coco /= n;
  p.g_oo /= n;
  std::uint64_t co2_after = 0;
  for (int i = 3; i < 7; ++i) co2_after += sim->counters().executed_per_type[i];
  p.rate = static_cast<double>(co2_after - co2_before) /
           (static_cast<double>(side) * side * (sim->time() - t_before));
  return p;
}

}  // namespace

int main() {
  bench::header("ZGB phase diagram — steady coverages vs CO fraction y (RSM vs PNDCA)");

  const bool fast = bench::fast_mode();
  const std::int32_t side = fast ? 32 : 64;
  const double t_relax = fast ? 15.0 : 60.0;
  const double t_avg = fast ? 10.0 : 30.0;

  std::printf("lattice %d x %d, relax %.0f, average %.0f (finite reaction rate k=20)\n\n",
              side, side, t_relax, t_avg);
  std::printf("%-6s | %-37s | %-37s | %s\n", "y",
              "RSM  CO     O     rate   gCC   gOO",
              "PNDCA CO    O     rate   gCC   gOO", "phase");
  std::printf("-------+---------------------------------------+"
              "---------------------------------------+---------\n");

  std::vector<double> ys, rsm_co, rsm_o, rsm_rate, rsm_gcc, rsm_goo, ca_co,
      ca_o, ca_rate, ca_gcc, ca_goo;
  for (const double y : {0.20, 0.30, 0.35, 0.40, 0.44, 0.48, 0.50, 0.52, 0.54,
                         0.56, 0.60, 0.70}) {
    const PhasePoint rsm = steady_state(Algorithm::kRsm, y, side, t_relax, t_avg, 11);
    const PhasePoint ca = steady_state(Algorithm::kPndca, y, side, t_relax, t_avg, 23);
    const char* phase = rsm.co > 0.9 ? "CO-poisoned"
                        : rsm.o > 0.9 ? "O-poisoned"
                                      : "reactive";
    std::printf("%-6.2f | %5.3f  %5.3f  %6.4f %5.2f %5.2f | %5.3f  %5.3f  "
                "%6.4f %5.2f %5.2f | %s\n",
                y, rsm.co, rsm.o, rsm.rate, rsm.g_coco, rsm.g_oo, ca.co, ca.o,
                ca.rate, ca.g_coco, ca.g_oo, phase);
    ys.push_back(y);
    rsm_co.push_back(rsm.co);
    rsm_o.push_back(rsm.o);
    rsm_rate.push_back(rsm.rate);
    rsm_gcc.push_back(rsm.g_coco);
    rsm_goo.push_back(rsm.g_oo);
    ca_co.push_back(ca.co);
    ca_o.push_back(ca.o);
    ca_rate.push_back(ca.rate);
    ca_gcc.push_back(ca.g_coco);
    ca_goo.push_back(ca.g_oo);
  }

  stats::write_csv(bench::out_dir() + "/zgb_phase_diagram.csv",
                   {"y", "rsm_co", "rsm_o", "rsm_rate", "rsm_g_coco", "rsm_g_oo",
                    "pndca_co", "pndca_o", "pndca_rate", "pndca_g_coco",
                    "pndca_g_oo"},
                   {ys, rsm_co, rsm_o, rsm_rate, rsm_gcc, rsm_goo, ca_co, ca_o,
                    ca_rate, ca_gcc, ca_goo});
  std::printf("  [csv] %s/zgb_phase_diagram.csv\n", bench::out_dir().c_str());

  // One instrumented PNDCA run in the reactive window feeds the report
  // pipeline: phase timers, the spatial activity summary (chunk balance and
  // seam accounting), all in the same casurf-run-report/1 schema the CLI
  // consumes — `casurf_report bench_out/BENCH_zgb_phase.json`.
  {
    const double y = 0.48;
    const auto zgb = models::make_zgb(models::ZgbParams::from_y(y, 20.0));
    SimulationOptions opt;
    opt.algorithm = Algorithm::kPndca;
    opt.seed = 29;
    auto sim = make_simulator(
        zgb.model, Configuration(Lattice(side, side), 3, zgb.vacant), opt);
    obs::MetricsRegistry registry;
    sim->set_metrics(&registry);
    obs::SpatialMap activity(sim->configuration().size());
    sim->set_spatial(&activity);
    const auto t0 = std::chrono::steady_clock::now();
    sim->advance_to(fast ? 10.0 : 30.0);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    obs::RunInfo info;
    info.algorithm = sim->name();
    info.model = "zgb";
    info.width = side;
    info.height = side;
    info.seed = 29;
    info.t_end = sim->time();
    info.dt = 1.0;
    info.threads = 1;
    info.wall_seconds = wall;
    if (sim->spatial_partition() != nullptr) {
      const obs::SpatialSummary summary = obs::summarize(
          activity, *sim->spatial_partition(), conflict_offsets(zgb.model));
      bench::write_bench_report("zgb_phase", info, *sim, registry, &summary);
    } else {
      bench::write_bench_report("zgb_phase", info, *sim, registry);
    }
  }

  std::printf("\nPaper/ZGB shape check: O-rich at low y, reactive window around\n");
  std::printf("y ~ 0.4-0.53, abrupt CO poisoning just above; RSM and PNDCA agree.\n");
  std::printf("(finite reaction rate shifts the window slightly vs the original\n");
  std::printf("instantaneous-reaction ZGB values y1=0.389, y2=0.525)\n");
  return 0;
}
