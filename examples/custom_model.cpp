// Building your own surface-reaction model from scratch with the public
// API: an A + B -> 0 annihilation system with adsorption of both species,
// A-diffusion, and reaction of adjacent A-B pairs. Shows the reaction-type
// DSL (exact transforms, wildcard preconditions), automatic partition
// derivation, and running the same model under three algorithms.

#include <cstdio>

#include "core/observer.hpp"
#include "core/simulation.hpp"
#include "partition/coloring.hpp"
#include "stats/coverage.hpp"

using namespace casurf;

int main() {
  // --- 1. Species domain -------------------------------------------------
  SpeciesSet species({"*", "A", "B"});
  const Species vac = species.require("*");
  const Species a = species.require("A");
  const Species b = species.require("B");

  // --- 2. Reaction types -------------------------------------------------
  ReactionModel model(std::move(species));

  // Adsorption: A arrives twice as often as B.
  model.add(ReactionType("A_ads", 1.0, {exact({0, 0}, vac, a)}));
  model.add(ReactionType("B_ads", 0.5, {exact({0, 0}, vac, b)}));

  // Annihilation of adjacent A-B pairs, anchored at the A site; four
  // orientations (cf. the paper's Table I orientation treatment).
  const Vec2 dirs[] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  for (int i = 0; i < 4; ++i) {
    model.add(ReactionType("annihilate_" + std::to_string(i), 10.0 / 4,
                           {exact({0, 0}, a, vac), exact(dirs[i], b, vac)}));
  }

  // A-diffusion with a wildcard twist: A hops onto a vacant neighbor only
  // if the destination has no B neighbor ahead (a purely illustrative
  // precondition showing `require` masks).
  for (int i = 0; i < 4; ++i) {
    model.add(ReactionType(
        "A_hop_" + std::to_string(i), 2.0 / 4,
        {exact({0, 0}, a, vac), exact(dirs[i], vac, a),
         require(dirs[i] + dirs[i], species_bit(vac) | species_bit(a))}));
  }
  model.validate();

  std::printf("custom A+B model: %zu reaction types, K = %.2f\n",
              model.num_reactions(), model.total_rate());

  // --- 3. Partition analysis (what the paper's machinery derives) --------
  const Lattice lat(60, 60);
  const auto offsets = conflict_offsets(model);
  const Partition partition = make_partition(lat, model);
  std::printf("conflict offsets: %zu, derived partition: %zu chunks (lower bound %zu)\n\n",
              offsets.size(), partition.num_chunks(), chunk_lower_bound(offsets));

  // --- 4. Run under three algorithms ------------------------------------
  for (const Algorithm algo : {Algorithm::kRsm, Algorithm::kVssm, Algorithm::kPndca}) {
    SimulationOptions opt;
    opt.algorithm = algo;
    opt.seed = 9;
    auto sim = make_simulator(model, Configuration(lat, 3, vac), opt);
    sim->advance_to(20.0);
    std::printf("%-8s t=%.1f  A=%.3f  B=%.3f  vacant=%.3f  (%llu reactions)\n",
                sim->name().c_str(), sim->time(), sim->configuration().coverage(a),
                sim->configuration().coverage(b), sim->configuration().coverage(vac),
                static_cast<unsigned long long>(sim->counters().executed));
  }

  std::printf("\nAll three agree on the steady state: A-rich surface (A adsorbs\n");
  std::printf("faster and B is consumed on contact).\n");
  return 0;
}
