// Ising domain coarsening — a non-catalysis workload that exercises the
// same machinery: quench a disordered spin lattice below the critical
// temperature, watch ferromagnetic domains coarsen under exact Glauber
// dynamics, and dump PPM snapshots of the process. Also demonstrates the
// synchronous-CA failure mode the paper's partitioning avoids.
//
//   build/examples/ising_coarsening [beta_J] [out_prefix]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "dmc/rsm.hpp"
#include "io/snapshot.hpp"
#include "models/ising.hpp"
#include "rng/counter_rng.hpp"

using namespace casurf;

int main(int argc, char** argv) {
  const double beta = argc > 1 ? std::atof(argv[1]) : 0.6;  // Tc at ~0.4407
  const std::string prefix = argc > 2 ? argv[2] : "ising";
  const models::IsingModel ising = models::make_ising(beta);

  // Random initial spins, deterministic from a seed.
  const Lattice lat(128, 128);
  Configuration cfg(lat, 2, ising.down);
  CounterRng init(2026, 0);
  for (SiteIndex s = 0; s < lat.size(); ++s) {
    if (init.next_double() < 0.5) cfg.set(s, ising.up);
  }

  RsmSimulator sim(ising.model, std::move(cfg), 7);
  std::printf("2-D Ising quench, beta J = %.3f (critical ~0.4407), 128 x 128\n\n", beta);
  std::printf("%-10s %-14s %-14s %-10s\n", "MC steps", "magnetization",
              "energy/site/J", "|m_stag|");

  const int snapshots[] = {0, 10, 100, 1000};
  int snap_idx = 0;
  for (int step = 0; step <= 1000; ++step) {
    if (snap_idx < 4 && step == snapshots[snap_idx]) {
      const std::string path = prefix + "_" + std::to_string(step) + ".ppm";
      io::write_ppm(path, sim.configuration());
      std::printf("%-10d %-14.3f %-14.3f %-10.3f  -> %s\n", step,
                  ising.magnetization(sim.configuration()),
                  ising.energy_per_site(sim.configuration()),
                  std::abs(ising.staggered_magnetization(sim.configuration())),
                  path.c_str());
      ++snap_idx;
    }
    sim.mc_step();
  }

  std::printf("\nDomains coarsen: |energy| grows toward the ground state -2 as\n");
  std::printf("boundaries anneal away; the staggered order parameter stays ~0.\n");
  std::printf("(Contrast bench/ablation_ising_sync: a fully synchronous CA instead\n");
  std::printf("locks into a blinking checkerboard — the degeneracy the paper's\n");
  std::printf("partitioned updating is designed to avoid.)\n");
  return 0;
}
