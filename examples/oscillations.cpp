// Kinetic oscillations on a reconstructing Pt(100) surface — the workload
// of the paper's accuracy experiments (Figs 8-10). Runs the Kuzovkov-style
// model with the exact DMC method and with the paper's partitioned CA
// (PNDCA, five conflict-free chunks), and compares the oscillations.
//
//   build/examples/oscillations [t_end]

#include <cstdio>
#include <cstdlib>

#include "core/observer.hpp"
#include "core/simulation.hpp"
#include "models/pt100.hpp"
#include "stats/coverage.hpp"
#include "stats/oscillation.hpp"

using namespace casurf;

namespace {

void report(const char* label, const TimeSeries& co, double skip) {
  const auto osc = stats::detect_oscillations(co, skip);
  std::printf("%s\n", label);
  std::printf("  peaks: %zu, mean period: %.1f, mean amplitude: %.3f -> %s\n",
              osc.num_peaks, osc.mean_period, osc.mean_amplitude,
              osc.oscillating() ? "oscillating" : "not oscillating");
}

}  // namespace

int main(int argc, char** argv) {
  const double t_end = argc > 1 ? std::atof(argv[1]) : 120.0;

  // The model: {hex, 1x1} x {vacant, CO, O} product states, CO-driven
  // lifting of the reconstruction, O2 adsorption only on the 1x1 phase, and
  // front-propagating phase transitions. Default parameters sit in the
  // oscillatory regime (see EXPERIMENTS.md for the tuning study).
  const models::Pt100Model pt = models::make_pt100();
  const Lattice lat(80, 80);
  const Configuration initial(lat, pt.model.species().size(), pt.hex_vac);

  std::printf("Pt(100) CO oxidation with surface reconstruction, 80 x 80, t <= %.0f\n",
              t_end);
  std::printf("%zu reaction types, K = %.1f\n\n", pt.model.num_reactions(),
              pt.model.total_rate());

  // Exact reference.
  SimulationOptions rsm_opt;
  rsm_opt.algorithm = Algorithm::kRsm;
  rsm_opt.seed = 1;
  auto rsm = make_simulator(pt.model, initial, rsm_opt);
  CoverageRecorder rsm_rec;
  run_sampled(*rsm, t_end, 0.5, rsm_rec);
  const TimeSeries rsm_co = rsm_rec.combined({pt.hex_co, pt.sq_co});

  // Partitioned CA (parallelizable).
  SimulationOptions ca_opt;
  ca_opt.algorithm = Algorithm::kPndca;
  ca_opt.seed = 2;
  auto ca = make_simulator(pt.model, initial, ca_opt);
  CoverageRecorder ca_rec;
  run_sampled(*ca, t_end, 0.5, ca_rec);
  const TimeSeries ca_co = ca_rec.combined({pt.hex_co, pt.sq_co});

  // ASCII strip chart of the CO coverage.
  std::printf("CO coverage over time (RSM = '*', PNDCA = 'o'):\n");
  for (double t = 0; t <= t_end; t += t_end / 40.0) {
    const int col_rsm = static_cast<int>(rsm_co.at(t) * 60);
    const int col_ca = static_cast<int>(ca_co.at(t) * 60);
    char line[64];
    for (int i = 0; i < 62; ++i) line[i] = ' ';
    line[62] = 0;
    line[col_rsm] = '*';
    line[col_ca] = line[col_ca] == '*' ? '#' : 'o';
    std::printf("  t=%6.1f |%s|\n", t, line);
  }

  std::printf("\n");
  report("RSM (exact DMC):", rsm_co, t_end * 0.2);
  report("PNDCA (5 chunks, random order):", ca_co, t_end * 0.2);
  std::printf("\nBoth methods produce the same oscillation character — the paper's\n");
  std::printf("'full parallelization with accurate results' regime (Fig 10).\n");
  return 0;
}
