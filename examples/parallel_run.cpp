// Parallel execution walkthrough: the same PNDCA trajectory on 1..4
// threads (bit-identical by construction), the partition that makes it
// race-free, and the projected speedup on a real multiprocessor from the
// calibrated machine model.

#include <chrono>
#include <cstdio>

#include "models/zgb.hpp"
#include "parallel/parallel_pndca.hpp"
#include "parallel/simulated_machine.hpp"
#include "partition/coloring.hpp"

using namespace casurf;

int main() {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(100, 100);
  const Partition partition = make_partition(lat, zgb.model);

  std::printf("ZGB on %d x %d; partition: %zu conflict-free chunks of <= %zu sites\n\n",
              lat.width(), lat.height(), partition.num_chunks(),
              partition.max_chunk_size());

  // --- Determinism: the threaded engine replays the sequential trajectory.
  std::printf("Running 20 MC steps on 1..4 threads (same seed):\n");
  std::uint64_t reference_hash = 0;
  for (const unsigned threads : {1u, 2u, 4u}) {
    ParallelPndcaEngine engine(zgb.model, Configuration(lat, 3, zgb.vacant),
                               {partition}, 42, threads);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 20; ++i) engine.mc_step();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0).count();
    // Cheap state fingerprint.
    std::uint64_t h = 1469598103934665603ULL;
    for (const Species s : engine.configuration().raw()) {
      h = (h ^ s) * 1099511628211ULL;
    }
    if (threads == 1) reference_hash = h;
    std::printf("  threads=%u  wall=%.3fs  state hash %016llx  %s\n", threads, wall,
                static_cast<unsigned long long>(h),
                h == reference_hash ? "(identical trajectory)" : "(MISMATCH!)");
  }

  // --- Projection: what this buys on a real multiprocessor.
  PndcaSimulator cal(zgb.model, Configuration(lat, 3, zgb.vacant), {partition}, 1);
  const MachineParams params = SimulatedMachine::calibrate(cal, 5);
  const SimulatedMachine machine(params);
  std::printf("\nProjected speedup (calibrated t_site = %.0f ns, 2003-era cluster "
              "sync costs):\n  p:        ", params.t_site_seconds * 1e9);
  for (int p = 2; p <= 10; p += 2) std::printf("%6d", p);
  std::printf("\n  N=100:    ");
  for (int p = 2; p <= 10; p += 2) {
    std::printf("%6.2f", machine.predict(partition, p, 1).speedup());
  }
  const Partition big = Partition::linear_form(Lattice(1000, 1000), 1, 3, 5);
  std::printf("\n  N=1000:   ");
  for (int p = 2; p <= 10; p += 2) {
    std::printf("%6.2f", machine.predict(big, p, 1).speedup());
  }
  std::printf("\n\nBigger lattices amortize the per-sweep barrier: the paper's Fig 7.\n");
  return 0;
}
