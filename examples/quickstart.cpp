// Quickstart: simulate the ZGB CO-oxidation model (the paper's example
// system, Fig 1 / Table I) with the exact DMC method and watch the surface
// reach its reactive steady state.
//
//   build/examples/quickstart [y_CO]
//
// y_CO is the CO fraction of the impinging gas (default 0.45, inside the
// reactive window).

#include <cstdio>
#include <cstdlib>

#include "core/observer.hpp"
#include "core/simulation.hpp"
#include "models/zgb.hpp"
#include "stats/coverage.hpp"

using namespace casurf;

int main(int argc, char** argv) {
  const double y = argc > 1 ? std::atof(argv[1]) : 0.45;
  if (!(y > 0.0 && y < 1.0)) {
    std::fprintf(stderr, "usage: quickstart [y_CO in (0,1)]\n");
    return 1;
  }

  // 1. Build the model: species domain {*, CO, O} and the seven reaction
  //    types of Table I, parameterized by the CO fraction y.
  const models::ZgbModel zgb = models::make_zgb(models::ZgbParams::from_y(y, 20.0));

  // 2. An empty 128 x 128 periodic lattice.
  Configuration surface(Lattice(128, 128), zgb.model.species().size(), zgb.vacant);

  // 3. Pick an algorithm through the facade. Algorithm::kRsm is the exact
  //    Master Equation sampler; swap in kPndca/kParallelPndca for the
  //    paper's partitioned CA methods — same interface.
  SimulationOptions options;
  options.algorithm = Algorithm::kRsm;
  options.seed = 2026;
  auto sim = make_simulator(zgb.model, std::move(surface), options);

  // 4. Run, sampling coverages once per time unit.
  std::printf("ZGB CO oxidation, y = %.2f, %s, 128 x 128\n\n", y, sim->name().c_str());
  std::printf("%-8s %-8s %-8s %-8s\n", "time", "CO", "O", "vacant");
  CoverageRecorder recorder;
  for (double t = 0; t <= 30.0; t += 2.0) {
    sim->advance_to(t);
    recorder.sample(*sim);
    std::printf("%-8.1f %-8.3f %-8.3f %-8.3f\n", sim->time(),
                sim->configuration().coverage(zgb.co),
                sim->configuration().coverage(zgb.o),
                sim->configuration().coverage(zgb.vacant));
  }

  // 5. Counters tell you what actually happened.
  const SimCounters& c = sim->counters();
  std::printf("\n%llu trials, %llu reactions executed (acceptance %.1f%%)\n",
              static_cast<unsigned long long>(c.trials),
              static_cast<unsigned long long>(c.executed), 100 * c.acceptance());
  std::uint64_t co2 = 0;
  for (int i = 3; i < 7; ++i) co2 += c.executed_per_type[i];
  std::printf("CO2 molecules produced: %llu\n", static_cast<unsigned long long>(co2));

  // 6. A glimpse of the surface (16 x 16 corner).
  std::printf("\nSurface corner ('.' = vacant, 'c' = CO, 'o' = O):\n");
  const Configuration& cfg = sim->configuration();
  for (std::int32_t yy = 0; yy < 16; ++yy) {
    for (std::int32_t xx = 0; xx < 16; ++xx) {
      const Species s = cfg.get(Vec2{xx, yy});
      std::putchar(s == zgb.vacant ? '.' : s == zgb.co ? 'c' : 'o');
    }
    std::putchar('\n');
  }
  return 0;
}
