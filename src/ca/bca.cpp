#include "ca/bca.hpp"

#include <stdexcept>
#include <utility>

namespace casurf {

BlockCA::BlockCA(Configuration initial, std::vector<Partition> phases, BlockRule rule)
    : current_(initial), next_(std::move(initial)), phases_(std::move(phases)),
      rule_(std::move(rule)) {
  if (!rule_) throw std::invalid_argument("BlockCA: null rule");
  if (phases_.empty()) throw std::invalid_argument("BlockCA: no block phases");
  for (const Partition& p : phases_) {
    if (!(p.lattice() == current_.lattice())) {
      throw std::invalid_argument("BlockCA: phase lattice mismatch");
    }
  }
}

void BlockCA::step() {
  const Partition& phase = current_phase();
  const SiteIndex n = current_.size();
  for (SiteIndex s = 0; s < n; ++s) {
    next_.set(s, rule_(current_, phase, s));
  }
  std::swap(current_, next_);
  ++steps_;
}

void BlockCA::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) step();
}

void BlockCA::save_state(StateWriter& w) const {
  w.section("bca");
  w.u64(steps_);
  w.u64(static_cast<std::uint64_t>(current_.size()));
  w.bytes(current_.raw().data(), current_.raw().size());
}

void BlockCA::restore_state(StateReader& r) {
  r.expect_section("bca");
  steps_ = r.u64();
  const std::uint64_t n = r.u64();
  if (n != static_cast<std::uint64_t>(current_.size())) {
    throw StateFormatError("bca configuration size mismatch");
  }
  std::vector<Species> state(static_cast<std::size_t>(n));
  r.bytes(state.data(), state.size());
  current_.assign(state);
}

BlockRule fig3_zero_spreads_rule() {
  return [](const Configuration& cfg, const Partition& phase, SiteIndex s) -> Species {
    const Lattice& lat = cfg.lattice();
    const ChunkId block = phase.chunk_of(s);
    for (const Vec2 d : {Vec2{-1, 0}, Vec2{1, 0}}) {
      const SiteIndex nb = lat.neighbor(s, d);
      if (phase.chunk_of(nb) == block && cfg.get(nb) == 0) return 0;
    }
    return cfg.get(s);
  };
}

}  // namespace casurf
