#pragma once

#include <functional>
#include <vector>

#include "core/state_io.hpp"
#include "lattice/configuration.hpp"
#include "partition/partition.hpp"

namespace casurf {

/// Transition rule of a Block CA: like CaRule, but the rule additionally
/// sees the active partition so it can restrict itself to information local
/// to the site's own block — the defining property of a BCA (paper
/// section 5, Fig 3: "a step is applied at the same time and independently
/// to each block").
using BlockRule =
    std::function<Species(const Configuration&, const Partition&, SiteIndex)>;

/// Block Cellular Automaton: the literature's standard fix for CA update
/// conflicts. The lattice is covered by non-overlapping blocks; each step
/// updates all blocks synchronously and independently, and consecutive
/// steps cycle through a list of shifted partitions so block edges move
/// (Margolus-style alternation).
class BlockCA {
 public:
  /// `phases` are the alternating block partitions (e.g. blocks and the
  /// same blocks shifted); step t uses phases[t mod phases.size()].
  BlockCA(Configuration initial, std::vector<Partition> phases, BlockRule rule);

  void step();
  void run(std::uint64_t steps);

  [[nodiscard]] const Configuration& configuration() const { return current_; }
  [[nodiscard]] Configuration& configuration() { return current_; }
  [[nodiscard]] const Partition& current_phase() const {
    return phases_[steps_ % phases_.size()];
  }
  [[nodiscard]] std::uint64_t steps_done() const { return steps_; }

  /// Checkpointing: the configuration and the step counter (which selects
  /// the next phase) are the whole state — the rule is stateless.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  Configuration current_;
  Configuration next_;
  std::vector<Partition> phases_;
  BlockRule rule_;
  std::uint64_t steps_ = 0;
};

/// The rule of the paper's Fig 3 example (1-D): a site becomes 0 when at
/// least one of its two lattice neighbors *within the same block* is 0,
/// otherwise it keeps its state. Species 0 plays "0", species 1 plays "1".
[[nodiscard]] BlockRule fig3_zero_spreads_rule();

}  // namespace casurf
