#include "ca/deterministic_ca.hpp"

#include <stdexcept>
#include <utility>

namespace casurf {

DeterministicCA::DeterministicCA(Configuration initial, CaRule rule)
    : current_(initial), next_(std::move(initial)), rule_(std::move(rule)) {
  if (!rule_) throw std::invalid_argument("DeterministicCA: null rule");
}

void DeterministicCA::step() {
  const SiteIndex n = current_.size();
  for (SiteIndex s = 0; s < n; ++s) {
    next_.set(s, rule_(current_, s));
  }
  std::swap(current_, next_);
  ++steps_;
}

void DeterministicCA::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) step();
}

}  // namespace casurf
