#include "ca/deterministic_ca.hpp"

#include <stdexcept>
#include <utility>

namespace casurf {

DeterministicCA::DeterministicCA(Configuration initial, CaRule rule)
    : current_(initial), next_(std::move(initial)), rule_(std::move(rule)) {
  if (!rule_) throw std::invalid_argument("DeterministicCA: null rule");
}

void DeterministicCA::step() {
  const SiteIndex n = current_.size();
  for (SiteIndex s = 0; s < n; ++s) {
    next_.set(s, rule_(current_, s));
  }
  std::swap(current_, next_);
  ++steps_;
}

void DeterministicCA::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) step();
}

void DeterministicCA::save_state(StateWriter& w) const {
  w.section("dca");
  w.u64(steps_);
  w.u64(static_cast<std::uint64_t>(current_.size()));
  w.bytes(current_.raw().data(), current_.raw().size());
}

void DeterministicCA::restore_state(StateReader& r) {
  r.expect_section("dca");
  steps_ = r.u64();
  const std::uint64_t n = r.u64();
  if (n != static_cast<std::uint64_t>(current_.size())) {
    throw StateFormatError("dca configuration size mismatch");
  }
  std::vector<Species> state(static_cast<std::size_t>(n));
  r.bytes(state.data(), state.size());
  current_.assign(state);
}

}  // namespace casurf
