#pragma once

#include <functional>

#include "core/state_io.hpp"
#include "lattice/configuration.hpp"

namespace casurf {

/// Local transition rule of a classic synchronous CA: the new species of a
/// site as a function of the current configuration (read-only) and the
/// site. Must only inspect a bounded neighborhood for the automaton to be
/// meaningful, but that is not enforced.
using CaRule = std::function<Species(const Configuration&, SiteIndex)>;

/// A standard deterministic Cellular Automaton (paper section 1): all sites
/// update simultaneously; the state at step t+1 depends on the neighborhood
/// states at step t. Double-buffered, so the rule always reads a consistent
/// snapshot. The inherently-parallel-but-conflicted model the partitioned
/// algorithms improve on.
class DeterministicCA {
 public:
  DeterministicCA(Configuration initial, CaRule rule);

  void step();
  void run(std::uint64_t steps);

  [[nodiscard]] const Configuration& configuration() const { return current_; }
  [[nodiscard]] Configuration& configuration() { return current_; }
  [[nodiscard]] std::uint64_t steps_done() const { return steps_; }

  /// Checkpointing: configuration plus step counter (the rule is stateless).
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  Configuration current_;
  Configuration next_;
  CaRule rule_;
  std::uint64_t steps_ = 0;
};

}  // namespace casurf
