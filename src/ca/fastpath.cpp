#include "ca/fastpath.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#if defined(__GNUC__) && defined(__x86_64__)
#include <immintrin.h>
#endif

#include "partition/conflict.hpp"
#include "util/failpoint.hpp"

namespace casurf {

bool partition_gate(const Partition& p, const std::vector<Vec2>& conflict) {
  static constexpr fail::Failpoint kGate{"fastpath/partition_gate"};
  if (kGate.fire()) return false;
  return verify_partition(p, conflict);
}

std::vector<BatchWindow> build_windows(const Lattice& lat,
                                       const std::vector<SiteIndex>& sites) {
  std::vector<BatchWindow> out;
  const auto width = static_cast<SiteIndex>(lat.width());
  [[maybe_unused]] SiteIndex prev = 0;
  for (const SiteIndex s : sites) {
    // The window walk replays the chunk low-bit-first per window, so the
    // site list must be ascending — which Partition guarantees.
    assert(out.empty() || s > prev);
    prev = s;
    const auto y = static_cast<std::int32_t>(s / width);
    const auto x = static_cast<std::int32_t>(s % width);
    const std::int32_t x0 = x & ~std::int32_t{63};
    if (out.empty() || out.back().y != y || out.back().x0 != x0) {
      out.push_back({y, x0, 0});
    }
    out.back().members |= std::uint64_t{1} << (static_cast<std::uint32_t>(x) & 63u);
  }
  return out;
}

const std::vector<BatchWindow>& WindowCache::get(std::size_t slot, ChunkId c,
                                                 const Lattice& lat,
                                                 const std::vector<SiteIndex>& sites) {
  std::vector<Entry>& chunks = slots_.at(slot);
  if (chunks.size() <= c) chunks.resize(static_cast<std::size_t>(c) + 1);
  Entry& e = chunks[c];
  if (!e.built) {
    e.windows = build_windows(lat, sites);
    e.built = true;
  }
  return e.windows;
}

ProbePlans::ProbePlans(const ReactionModel& model, std::int32_t width,
                       std::int32_t height)
    : width_(width), height_(height) {
  const std::size_t num_species = model.species().size();
  const SpeciesMask full =
      num_species >= 32 ? ~SpeciesMask{0}
                        : static_cast<SpeciesMask>((SpeciesMask{1} << num_species) - 1);
  types_.resize(model.num_reactions());
  for (ReactionIndex t = 0; t < model.num_reactions(); ++t) {
    TypeSpan& ts = types_[t];
    ts.first = static_cast<std::uint32_t>(probes_.size());
    for (const Transform& tr : model.reaction(t).transforms()) {
      const SpeciesMask m = tr.src & full;
      if (m == full) continue;  // matches every species: always true
      if (m == 0) {             // matches nothing: the type can never fire
        ts.never = true;
        break;
      }
      Probe p;
      // Wrap the offsets once so evaluation needs only a conditional
      // subtract per axis: anchor + wrapped offset lands in [0, 2*extent).
      p.dx = ((tr.offset.x % width) + width) % width;
      p.dy = ((tr.offset.y % height) + height) % height;
      p.first_sp = static_cast<std::uint32_t>(species_.size());
      for (Species sp = 0; sp < num_species; ++sp) {
        if (mask_contains(m, sp)) species_.push_back(sp);
      }
      p.num_sp = static_cast<std::uint32_t>(species_.size()) - p.first_sp;
      probes_.push_back(p);
    }
    ts.count = ts.never ? 0
                        : static_cast<std::uint32_t>(probes_.size()) - ts.first;
    if (ts.never) probes_.resize(ts.first);
    if (ts.never) continue;
    // enabled() is a short-circuiting conjunction over the probes and each
    // Probe carries its own species span, so their order is free to choose:
    // test the most selective (fewest matching species) probes first to
    // exit on a miss as early as possible.
    std::stable_sort(probes_.begin() + ts.first, probes_.end(),
                     [](const Probe& a, const Probe& b) {
                       return a.num_sp < b.num_sp;
                     });
    // Recheck table: a write at z can flip type t anchored at z - o only
    // for the offsets o of the probes kept above (trivial transforms can
    // never flip a result). Offsets are deduplicated after wrapping, so
    // tiny lattices where distinct offsets alias don't visit twice.
    for (std::uint32_t pi = ts.first; pi < ts.first + ts.count; ++pi) {
      const std::int32_t rdx = probes_[pi].dx == 0 ? 0 : width - probes_[pi].dx;
      const std::int32_t rdy = probes_[pi].dy == 0 ? 0 : height - probes_[pi].dy;
      SpeciesMask pmask = 0;
      for (std::uint32_t k = 0; k < probes_[pi].num_sp; ++k) {
        pmask |= SpeciesMask{1} << species_[probes_[pi].first_sp + k];
      }
      bool seen = false;
      for (std::size_t k = rechecks_.size();
           k > 0 && rechecks_[k - 1].type == t; --k) {
        if (rechecks_[k - 1].dx == rdx && rechecks_[k - 1].dy == rdy) {
          // Offsets aliasing after the wrap merge their masks: the entry
          // stays relevant to any species either probe watches. The merged
          // mask no longer describes a single probe's hit bit, so the
          // single-probe visit shortcuts must not apply to it.
          rechecks_[k - 1].mask |= pmask;
          rechecks_[k - 1].multi = true;
          seen = true;
        }
      }
      if (!seen) rechecks_.push_back({rdx, rdy, t, pmask, false});
    }
  }
}

void EnabledTypeSet::rebuild(const SpeciesBitplanes& planes,
                             const ProbePlans& probes) {
  const std::int32_t width = planes.width();
  const std::int32_t height = planes.height();
  const std::size_t num_types = probes.num_types();
  words_per_site_ = (num_types + 63) / 64;
  bits_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
                   words_per_site_,
               0);
  SiteIndex s = 0;
  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x, ++s) {
      for (ReactionIndex t = 0; t < num_types; ++t) {
        if (probes.enabled(planes, t, x, y)) assign(s, t, true);
      }
    }
  }
}

namespace {

/// Reference lane loop: the portable implementation of batch_trials, also
/// the tail of the vector path. `index0` offsets the recorded indices so a
/// tail call after the 8-wide blocks stays aligned with the caller's list.
std::size_t batch_trials_scalar(std::uint64_t sweep, std::uint64_t seed_hash,
                                const SiteIndex* sites, std::size_t n,
                                std::uint32_t index0, const AliasTable& alias,
                                const EnabledTypeSet& enabled, TrialHit* out) {
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // seed_hash ^ mix64(key) == CounterRng::stream_base(seed, key), the
    // seed half hoisted out of the loop. First draw = flip, second = slot.
    const std::uint64_t base = seed_hash ^ mix64(CounterRng::key(sweep, sites[i]));
    const double u_flip = CounterRng::to_unit(CounterRng::nth(base, 1));
    const double u_slot = CounterRng::to_unit(CounterRng::nth(base, 2));
    const auto rt = static_cast<ReactionIndex>(alias.sample(u_slot, u_flip));
    if (enabled.test(sites[i], rt)) {
      out[cnt++] = {index0 + static_cast<std::uint32_t>(i), rt};
    }
  }
  return cnt;
}

#if defined(__GNUC__) && defined(__x86_64__)

// Pin the vector constants to the scalar definitions they must mirror: the
// golden-ratio stride of CounterRng::nth and the step multiplier inside
// CounterRng::key. A drift in either would silently fork the trajectories.
static_assert(CounterRng::nth(0, 1) == mix64(0x9e3779b97f4a7c15ULL),
              "counter stride changed; update the vector kernel");
static_assert(CounterRng::key(1, 0) == mix64(0xd1342543de82ef95ULL),
              "counter step multiplier changed; update the vector kernel");

#define CASURF_AVX512 __attribute__((target("avx2,avx512f,avx512dq,avx512vl")))

/// mix64 (the SplitMix64 finalizer), eight lanes at a time. vpmullq keeps
/// the low 64 bits like the scalar wrap-around multiply, so every lane is
/// bit-identical to mix64().
CASURF_AVX512 inline __m512i mix64x8(__m512i z) {
  z = _mm512_xor_si512(z, _mm512_srli_epi64(z, 30));
  z = _mm512_mullo_epi64(
      z, _mm512_set1_epi64(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = _mm512_xor_si512(z, _mm512_srli_epi64(z, 27));
  z = _mm512_mullo_epi64(
      z, _mm512_set1_epi64(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

/// Eight trials per iteration: counter streams, unit-interval draws, alias
/// slot/flip, enabled-bitset gather, then a compressed walk of the (rare)
/// passing lanes. Every floating-point and integer step is the exact IEEE /
/// mod-2^64 operation of the scalar path, so the hit lists agree bit for
/// bit. Requires words_per_site() == 1 (up to 64 reaction types).
CASURF_AVX512 std::size_t batch_trials_avx512(
    std::uint64_t sweep, std::uint64_t seed_hash, const SiteIndex* sites,
    std::size_t n, const AliasTable& alias, const EnabledTypeSet& enabled,
    TrialHit* out) {
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  const __m512i stepv =
      _mm512_set1_epi64(static_cast<long long>(CounterRng::step_word(sweep)));
  const __m512i seedv = _mm512_set1_epi64(static_cast<long long>(seed_hash));
  const __m512i golden1 = _mm512_set1_epi64(static_cast<long long>(kGolden));
  const __m512i golden2 = _mm512_set1_epi64(static_cast<long long>(2 * kGolden));
  const __m512d unit = _mm512_set1_pd(0x1.0p-53);
  const std::uint64_t size = alias.size();
  const __m512d sized = _mm512_set1_pd(static_cast<double>(size));
  const __m512i size_m1 = _mm512_set1_epi64(static_cast<long long>(size - 1));
  const double* prob = alias.prob_data();
  const std::uint32_t* alias_tab = alias.alias_data();
  const std::uint64_t* words = enabled.data();
  const __m512i kIota = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t cnt = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i s32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sites + i));
    const __m512i site = _mm512_cvtepu32_epi64(s32);
    const __m512i key = mix64x8(_mm512_add_epi64(stepv, site));
    const __m512i base = _mm512_xor_si512(seedv, mix64x8(key));
    const __m512i r1 = mix64x8(_mm512_add_epi64(base, golden1));
    const __m512i r2 = mix64x8(_mm512_add_epi64(base, golden2));
    const __m512d u_flip =
        _mm512_mul_pd(_mm512_cvtepu64_pd(_mm512_srli_epi64(r1, 11)), unit);
    const __m512d u_slot =
        _mm512_mul_pd(_mm512_cvtepu64_pd(_mm512_srli_epi64(r2, 11)), unit);
    const __m512i slot = _mm512_min_epu64(
        _mm512_cvttpd_epu64(_mm512_mul_pd(u_slot, sized)), size_m1);
    const __m512d p = _mm512_i64gather_pd(slot, prob, 8);
    const __mmask8 keep = _mm512_cmp_pd_mask(u_flip, p, _CMP_LT_OQ);
    const __m256i slot32 = _mm512_cvtepi64_epi32(slot);
    // Lanes passing the flip keep their slot; only the rest read the alias
    // column — a masked gather, so the common all-keep block costs nothing.
    const __m256i rt = _mm512_mask_i64gather_epi32(
        slot32, static_cast<__mmask8>(~keep), slot, alias_tab, 4);
    // Chunks of the shipped partitions list sites in consecutive runs, so
    // the per-site word fetch is almost always a contiguous load; fall
    // back to the gather only for genuinely scattered blocks.
    const __m512i word =
        _mm512_cmpeq_epi64_mask(site, _mm512_add_epi64(
                                          _mm512_set1_epi64(static_cast<long long>(sites[i])),
                                          kIota)) == 0xFF
            ? _mm512_loadu_si512(words + sites[i])
            : _mm512_i64gather_epi64(site, words, 8);
    const __mmask8 hit = _mm512_test_epi64_mask(
        _mm512_srlv_epi64(word, _mm512_cvtepu32_epi64(rt)),
        _mm512_set1_epi64(1));
    if (hit) {
      alignas(32) std::uint32_t rts[8];
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(rts), rt);
      for (std::uint32_t m = hit; m != 0; m &= m - 1) {
        const auto lane = static_cast<std::uint32_t>(std::countr_zero(m));
        out[cnt++] = {static_cast<std::uint32_t>(i) + lane, rts[lane]};
      }
    }
  }
  // GCC's automatic vzeroupper insertion does not fire for functions
  // vectorized via the target attribute alone (the TU itself is built
  // without AVX), and returning with dirty upper zmm state makes every
  // subsequent SSE-encoded libm call — e.g. the stochastic time advance's
  // log() — pay the VEX transition penalty, slowing the *rest of the step*
  // by an order of magnitude. Clear the state explicitly.
  _mm256_zeroupper();
  cnt += batch_trials_scalar(sweep, seed_hash, sites + i, n - i,
                             static_cast<std::uint32_t>(i), alias, enabled,
                             out + cnt);
  return cnt;
}

#endif  // __GNUC__ && __x86_64__

}  // namespace

std::size_t batch_trials(std::uint64_t sweep, std::uint64_t seed_hash,
                         const SiteIndex* sites, std::size_t n,
                         const AliasTable& alias, const EnabledTypeSet& enabled,
                         TrialHit* out) {
#if defined(__GNUC__) && defined(__x86_64__)
  static const bool have_avx512 = __builtin_cpu_supports("avx512f") &&
                                  __builtin_cpu_supports("avx512dq") &&
                                  __builtin_cpu_supports("avx512vl");
  if (have_avx512 && enabled.words_per_site() == 1 && !alias.empty()) {
    return batch_trials_avx512(sweep, seed_hash, sites, n, alias, enabled, out);
  }
#endif
  return batch_trials_scalar(sweep, seed_hash, sites, n, 0, alias, enabled, out);
}

bool EnabledTypeSet::matches(const SpeciesBitplanes& planes,
                             const ProbePlans& probes) const {
  const std::int32_t width = planes.width();
  const std::int32_t height = planes.height();
  const std::size_t num_types = probes.num_types();
  if (bits_.size() != static_cast<std::size_t>(width) *
                          static_cast<std::size_t>(height) * words_per_site_) {
    return false;
  }
  SiteIndex s = 0;
  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x, ++s) {
      for (ReactionIndex t = 0; t < num_types; ++t) {
        if (test(s, t) != probes.enabled(planes, t, x, y)) return false;
      }
    }
  }
  return true;
}

}  // namespace casurf
