#pragma once

#include <cstdint>
#include <vector>

#include "lattice/bitplanes.hpp"
#include "model/reaction_model.hpp"
#include "partition/partition.hpp"
#include "rng/counter_rng.hpp"

namespace casurf {

/// Compile-time master switch for the batched bitplane trial path. When the
/// build disables it (CASURF_FASTPATH=OFF), every set_fast_path() request
/// falls through to the scalar reference implementation.
#ifdef CASURF_NO_FASTPATH
inline constexpr bool kFastPathCompiled = false;
#else
inline constexpr bool kFastPathCompiled = true;
#endif

/// One 64-column slice of a chunk: the sites of the chunk that fall in row
/// `y`, columns [x0, x0 + 64) of the lattice (x0 is 64-aligned, so member
/// bit f corresponds to column x0 + f < width). Enumerating a chunk's
/// windows in order, low member bit first, visits the chunk's sites in
/// exactly the ascending row-major order the Partition constructor built —
/// the scalar sweep order.
struct BatchWindow {
  std::int32_t y;
  std::int32_t x0;
  std::uint64_t members;
};

/// Group a chunk's site list (ascending row-major, as Partition builds it)
/// into BatchWindows.
[[nodiscard]] std::vector<BatchWindow> build_windows(
    const Lattice& lat, const std::vector<SiteIndex>& sites);

/// verify_partition plus the "fastpath/partition_gate" failpoint: returns
/// false — forcing the engine onto the scalar reference path — when the
/// failpoint fires, otherwise the real non-overlap check. Engines gate
/// set_fast_path() through this so fault injection can prove the scalar
/// fallback produces identical trajectories (docs/ROBUSTNESS.md).
[[nodiscard]] bool partition_gate(const Partition& p,
                                  const std::vector<Vec2>& conflict);

/// Lazily-built per-(partition slot, chunk) window lists. Windows are pure
/// geometry — they depend on the partition only, never on the configuration
/// — so they are built once and reused every sweep.
class WindowCache {
 public:
  explicit WindowCache(std::size_t num_slots) : slots_(num_slots) {}

  const std::vector<BatchWindow>& get(std::size_t slot, ChunkId c,
                                      const Lattice& lat,
                                      const std::vector<SiteIndex>& sites);

 private:
  struct Entry {
    std::vector<BatchWindow> windows;
    bool built = false;
  };
  std::vector<std::vector<Entry>> slots_;
};

/// 64-wide enabled mask of `rt` anchored along row y, columns [x0, x0+64):
/// the AND over the type's transforms of the shifted source-mask windows.
/// This is the dense-window primitive — it pays off when many anchors share
/// one reaction type (T-PNDCA sweeps); for per-trial random types use
/// ProbePlans below, which evaluates single anchors.
[[nodiscard]] inline std::uint64_t enabled_window(const SpeciesBitplanes& planes,
                                                  const ReactionType& rt,
                                                  std::int32_t y, std::int32_t x0) {
  std::uint64_t en = ~std::uint64_t{0};
  for (const Transform& t : rt.transforms()) {
    en &= planes.mask_window(t.src, y + t.offset.y, x0 + t.offset.x);
    if (en == 0) break;
  }
  return en;
}

/// Division-free single-anchor enabledness, precompiled per reaction type.
///
/// ReactionType::enabled() resolves every transform through
/// Lattice::neighbor(), whose coord/wrap arithmetic costs four integer
/// divisions per transform — the dominant cost of a scalar trial. A
/// ProbePlans is the same predicate compiled against the bitplanes: per
/// type, a flat list of probes whose offsets are pre-wrapped into
/// [0, width) x [0, height) at build time, so evaluation is an add, one
/// conditional subtract per axis, and a bitplane load per species of the
/// source mask. Transforms whose mask covers the whole species domain are
/// dropped at build (every site holds exactly one species), and a type
/// with an empty source mask is marked never-enabled.
class ProbePlans {
 public:
  ProbePlans() = default;
  ProbePlans(const ReactionModel& model, std::int32_t width, std::int32_t height);

  /// Exactly model.reaction(t).enabled(cfg, site at (x, y)), evaluated
  /// against the planes. Requires x in [0, width), y in [0, height).
  [[nodiscard]] bool enabled(const SpeciesBitplanes& planes, ReactionIndex t,
                             std::int32_t x, std::int32_t y) const {
    const TypeSpan& ts = types_[t];
    if (ts.never) return false;
    const Probe* p = probes_.data() + ts.first;
    for (std::uint32_t n = ts.count; n != 0; --n, ++p) {
      std::int32_t px = x + p->dx;
      if (px >= width_) px -= width_;
      std::int32_t py = y + p->dy;
      if (py >= height_) py -= height_;
      bool hit = false;
      for (std::uint32_t k = 0; k < p->num_sp; ++k) {
        hit |= planes.bit(species_[p->first_sp + k], px, py);
      }
      if (!hit) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t num_types() const { return types_.size(); }

  /// Visit every (type, anchor) pair whose enabledness may have changed
  /// after a write at (wx, wy) — the division-free counterpart of
  /// visit_recheck_anchors. The visitor receives (type, anchor index,
  /// enabledness against the planes), so the planes must already be synced
  /// with the configuration (resync the written sites first). Offsets whose
  /// source mask covers the whole domain never flip a result and are
  /// pruned from the table at build, as are never-enabled types: the pruned
  /// visits were no-ops, so the visited state converges identically.
  ///
  /// `old_mask` / `new_mask` are the one-bit species masks of the write
  /// (old_mask all-ones when the pre-write species is unknown). An entry
  /// whose probes match neither species reads the same membership bit
  /// before and after, so this write alone cannot have flipped it and the
  /// visit is skipped — a no-op pruned. A write elsewhere that can flip the
  /// same anchor schedules its own visit.
  ///
  /// Two refinements apply when the old species is known and the entry
  /// represents a single probe (the common case; offset-aliased merges opt
  /// out via `multi`). The entry's probe examines exactly the written site,
  /// so its hit bit moved (old in mask) -> (new in mask):
  ///  - both in the mask: the bit held at 1, the anchor's enabledness is
  ///    untouched by this write — skip like the disjoint case;
  ///  - new species not in the mask: the bit dropped to 0 and the type's
  ///    probe conjunction fails outright — report disabled without walking
  ///    the remaining probes.
  template <class Visitor>
  void visit_rechecks(const SpeciesBitplanes& planes, std::int32_t wx,
                      std::int32_t wy, SpeciesMask old_mask,
                      SpeciesMask new_mask, Visitor&& visit) const {
    const SpeciesMask changed = old_mask | new_mask;
    const bool exact = old_mask != ~SpeciesMask{0};
    for (const Recheck& r : rechecks_) {
      if ((r.mask & changed) == 0) continue;
      bool known_false = false;
      if (exact && !r.multi) {
        const bool now_in = (r.mask & new_mask) != 0;
        if (((r.mask & old_mask) != 0) == now_in) continue;
        known_false = !now_in;
      }
      std::int32_t ax = wx + r.dx;
      if (ax >= width_) ax -= width_;
      std::int32_t ay = wy + r.dy;
      if (ay >= height_) ay -= height_;
      const SiteIndex anchor = static_cast<SiteIndex>(ay) *
                                   static_cast<SiteIndex>(width_) +
                               static_cast<SiteIndex>(ax);
      visit(r.type, anchor,
            !known_false && enabled(planes, r.type, ax, ay));
    }
  }

 private:
  struct TypeSpan {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    bool never = false;
  };
  struct Probe {
    std::int32_t dx, dy;  // wrapped into [0, width) / [0, height)
    std::uint32_t first_sp, num_sp;
  };
  struct Recheck {
    std::int32_t dx, dy;  // anchor = written + (dx, dy), wrapped as above
    ReactionIndex type;
    SpeciesMask mask;  // union of the source masks probing the written site
    bool multi;        // offset-aliased merge: mask is a union, not one probe
  };
  std::int32_t width_ = 0;
  std::int32_t height_ = 0;
  std::vector<TypeSpan> types_;
  std::vector<Probe> probes_;
  std::vector<Species> species_;  // flattened per-probe mask members
  std::vector<Recheck> rechecks_;
};

/// Per-site "which reaction types are enabled here" bitset: word-packed so
/// one trial costs a single load and bit test. Like the bitplanes this is
/// derived state — rebuilt from the planes via the probe plans, kept in
/// sync by rechecking around every write (ProbePlans::visit_rechecks), and
/// audited against a fresh recompute.
class EnabledTypeSet {
 public:
  EnabledTypeSet() = default;

  /// Full recompute: every (site, type) pair probed against the planes.
  void rebuild(const SpeciesBitplanes& planes, const ProbePlans& probes);

  [[nodiscard]] bool test(SiteIndex s, ReactionIndex t) const {
    return (bits_[static_cast<std::size_t>(s) * words_per_site_ + (t >> 6)] >>
            (t & 63u)) & 1u;
  }

  /// Sets the bit and reports whether it actually flipped — the common
  /// no-change case skips the store, and callers keeping mirrors of this
  /// predicate (the enabled-rate cache) can skip their own fold too.
  bool assign(SiteIndex s, ReactionIndex t, bool on) {
    std::uint64_t& w =
        bits_[static_cast<std::size_t>(s) * words_per_site_ + (t >> 6)];
    const std::uint64_t bit = std::uint64_t{1} << (t & 63u);
    if (((w & bit) != 0) == on) return false;
    w ^= bit;
    return true;
  }

  /// Audit ground truth: true when every bit agrees with a fresh probe of
  /// the planes.
  [[nodiscard]] bool matches(const SpeciesBitplanes& planes,
                             const ProbePlans& probes) const;

  /// Raw layout access for the batched trial kernel (gathered loads).
  [[nodiscard]] std::size_t words_per_site() const { return words_per_site_; }
  [[nodiscard]] const std::uint64_t* data() const { return bits_.data(); }

 private:
  std::size_t words_per_site_ = 1;
  std::vector<std::uint64_t> bits_;
};

/// One passing trial of a batched sweep: `index` into the site list handed
/// to batch_trials plus the reaction type its stream sampled.
struct TrialHit {
  std::uint32_t index;
  ReactionIndex type;
};

/// The front half of a chunk sweep, batched: for sites[0..n) evaluate the
/// two counter-RNG draws (streams keyed by (sweep, site), draw order
/// flip-then-slot — bit-identical to trial_at's CounterRng use), sample the
/// reaction type through the alias table, and test the per-site enabled
/// bitset. Appends one TrialHit per passing trial to `out` (capacity >= n)
/// in site-list order and returns the count; the caller then executes the
/// hits. At the ~1% acceptance typical of surface kinetics this splits a
/// sweep into a long straight-line kernel and a short commit tail.
///
/// `seed_hash` is CounterRng::seed_hash(seed). Runs 8 lanes wide under
/// AVX-512 when the CPU has it (runtime-dispatched); the lane arithmetic —
/// mix64, unit-interval mapping, alias slot/flip, bitset load — is exact
/// in both versions, so the hit list is identical either way.
[[nodiscard]] std::size_t batch_trials(std::uint64_t sweep, std::uint64_t seed_hash,
                                       const SiteIndex* sites, std::size_t n,
                                       const AliasTable& alias,
                                       const EnabledTypeSet& enabled,
                                       TrialHit* out);

/// Resync the planes for every site an execution of `rt` at `s` wrote.
/// Idempotent per site (resync_site re-derives from the configuration), so
/// the threaded engine can replay a whole sweep's executions at the barrier.
inline void resync_written(SpeciesBitplanes& planes, const Configuration& cfg,
                           const ReactionType& rt, SiteIndex s) {
  const Lattice& lat = cfg.lattice();
  for (const Transform& t : rt.transforms()) {
    if (t.tg != kKeep) planes.resync_site(cfg, lat.neighbor(s, t.offset));
  }
}

}  // namespace casurf
