#include "ca/lpndca.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "rng/distributions.hpp"

namespace casurf {

LPndcaSimulator::LPndcaSimulator(const ReactionModel& model, Configuration config,
                                 Partition partition, std::uint64_t seed,
                                 std::uint32_t trials_per_batch, TimeMode time_mode,
                                 ChunkWeighting weighting)
    : Simulator(model, std::move(config)),
      partition_(std::move(partition)),
      rng_(seed),
      trials_per_batch_(trials_per_batch),
      time_mode_(time_mode),
      weighting_(weighting),
      rate_nk_(static_cast<double>(config_.size()) * model.total_rate()) {
  if (!(partition_.lattice() == config_.lattice())) {
    throw std::invalid_argument("L-PNDCA: partition lattice mismatch");
  }
  if (trials_per_batch_ == 0) {
    throw std::invalid_argument("L-PNDCA: L must be at least 1");
  }
  chunk_cumulative_.resize(partition_.num_chunks());
  double acc = 0;
  for (ChunkId c = 0; c < partition_.num_chunks(); ++c) {
    acc += static_cast<double>(partition_.chunk(c).size());
    chunk_cumulative_[c] = acc;
  }
  if (weighting_ == ChunkWeighting::kRateWeighted) {
    rate_cache_ = std::make_unique<EnabledRateCache>(model_, config_);
    rate_cache_->add_partition(partition_);
  }
}

void LPndcaSimulator::refresh_rate_cache(const ReactionType& reaction, SiteIndex s) {
  const Lattice& lat = config_.lattice();
  for (const Transform& t : reaction.transforms()) {
    if (t.tg != kKeep) {
      const SiteIndex written = lat.neighbor(s, t.offset);
      rate_cache_->refresh_after(config_, written);
      if (rate_rechecks_ != nullptr) rate_rechecks_->add();
      // Cross-seam cache invalidation: the measured boundary conflict.
      if (boundary_rechecks_ != nullptr &&
          partition_.chunk_of(written) != partition_.chunk_of(s)) {
        boundary_rechecks_->add();
      }
    }
  }
}

void LPndcaSimulator::trial_at(SiteIndex s) {
  const ReactionIndex rt = model_.sample_type(rng_);
  const ReactionType& reaction = model_.reaction(rt);
  spatial_.attempt(s);
  if (reaction.enabled(config_, s)) {
    reaction.execute(config_, s);
    record_execution(rt);
    spatial_.fire(s);
    if (rate_cache_) refresh_rate_cache(reaction, s);
  }
  time_ += time_mode_ == TimeMode::kStochastic ? exponential(rng_, rate_nk_)
                                               : 1.0 / rate_nk_;
  ++counters_.trials;
}

bool LPndcaSimulator::set_fast_path(bool on) {
  fast_.reset();
  if (!kFastPathCompiled || !on) return false;
  fast_ = std::make_unique<FastState>(config_, model_);
  return true;
}

void LPndcaSimulator::run_batch_fast(const std::vector<SiteIndex>& sites,
                                     std::uint64_t batch) {
  FastState& f = *fast_;
  f.site.resize(batch);
  f.type.resize(batch);
  f.dt.resize(batch);
  // Hoist the batch's draws in the exact interleaved order the scalar loop
  // consumes them: site, type (two uniforms), dt — per trial. None of the
  // draws depends on trial outcomes, so the stream is unchanged.
  for (std::uint64_t i = 0; i < batch; ++i) {
    f.site[i] = sites[uniform_below(rng_, sites.size())];
    f.type[i] = model_.sample_type(rng_);
    f.dt[i] = time_mode_ == TimeMode::kStochastic ? exponential(rng_, rate_nk_)
                                                  : 1.0 / rate_nk_;
  }
  const auto width = static_cast<SiteIndex>(config_.lattice().width());
  for (std::uint64_t i = 0; i < batch; ++i) {
    const SiteIndex s = f.site[i];
    const ReactionIndex rt = f.type[i];
    spatial_.attempt(s);
    const auto x = static_cast<std::int32_t>(s % width);
    const auto y = static_cast<std::int32_t>(s / width);
    if (f.probes.enabled(f.planes, rt, x, y)) {
      const ReactionType& reaction = model_.reaction(rt);
      reaction.execute(config_, s);
      record_execution(rt);
      spatial_.fire(s);
      if (rate_cache_) refresh_rate_cache(reaction, s);
      resync_written(f.planes, config_, reaction, s);
    }
    time_ += f.dt[i];
    ++counters_.trials;
  }
}

void LPndcaSimulator::save_state(StateWriter& w) const {
  Simulator::save_state(w);
  w.section("lpndca");
  rng_.save(w);
}

void LPndcaSimulator::restore_state(StateReader& r) {
  Simulator::restore_state(r);
  r.expect_section("lpndca");
  rng_.restore(r);
  if (rate_cache_) rate_cache_->rebuild(config_);
  if (fast_) fast_->planes.rebuild(config_);
}

void LPndcaSimulator::audit_derived_state(AuditReport& report, bool repair) {
  Simulator::audit_derived_state(report, repair);
  if (fast_ && !fast_->planes.matches(config_)) {
    report.issues.push_back(
        {"bitplanes", "species bitplanes disagree with the configuration"});
    if (repair) fast_->planes.rebuild(config_);
  }
  if (!rate_cache_) return;
  std::vector<std::string> details;
  if (!rate_cache_->verify(config_, details)) {
    for (std::string& d : details) report.issues.push_back({"rate-cache", std::move(d)});
    if (repair) rate_cache_->rebuild(config_);
  }
}

void LPndcaSimulator::set_metrics(obs::MetricsRegistry* registry) {
  Simulator::set_metrics(registry);
  step_timer_ = registry ? &registry->timer("lpndca/step") : nullptr;
  select_timer_ = registry ? &registry->timer("lpndca/select") : nullptr;
  rate_rechecks_ = registry ? &registry->counter("lpndca/rate_rechecks") : nullptr;
  boundary_rechecks_ = registry ? &registry->counter("lpndca/boundary_rechecks") : nullptr;
}

ChunkId LPndcaSimulator::select_chunk() {
  const obs::ScopedTimer span(select_timer_);
  const obs::ScopedSpan trace(trace_, "lpndca/select", time_, counters_.steps);
  if (rate_cache_) {
    // Rate-weighted draw over the live per-chunk enabled rates; unlike
    // PNDCA's per-step freeze, each batch sees the counts updated by the
    // previous one. Falls back to the size draw when nothing is enabled.
    const ChunkSampler& sampler = rate_cache_->sampler(0);
    if (sampler.total() > 0) return sampler.sample(uniform01(rng_));
  }
  // select P_i with probability |P_i| / N
  return static_cast<ChunkId>(sample_cumulative(chunk_cumulative_, uniform01(rng_)));
}

void LPndcaSimulator::mc_step() {
  const obs::ScopedTimer span(step_timer_);
  const obs::ScopedSpan trace(trace_, "lpndca/step", time_, counters_.steps);
  const std::uint64_t budget = config_.size();  // N trials per step
  std::uint64_t trials = 0;
  while (trials < budget) {
    const std::vector<SiteIndex>& sites = partition_.chunk(select_chunk());

    // select L, clipped to the remaining budget (1 <= L <= N - trials)
    const std::uint64_t batch =
        std::min<std::uint64_t>(trials_per_batch_, budget - trials);
    trials += batch;

    // L random sites within the chunk, with replacement — matching RSM's
    // site statistics in the degenerate-partition limits.
    if (fast_) {
      run_batch_fast(sites, batch);
    } else {
      for (std::uint64_t i = 0; i < batch; ++i) {
        trial_at(sites[uniform_below(rng_, sites.size())]);
      }
    }
  }
  ++counters_.steps;
}

}  // namespace casurf
