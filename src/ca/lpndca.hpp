#pragma once

#include <cstdint>
#include <memory>

#include "ca/fastpath.hpp"
#include "ca/rate_cache.hpp"
#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "partition/partition.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {

/// L-PNDCA (paper section 5, "general structure"): per step, chunks are
/// drawn with probability proportional to their size and a batch of L
/// random sites *within* the selected chunk perform NDCA trials, until N
/// trials have been spent. L tunes the accuracy/parallelism trade-off:
///
///   - small L: little time is spent inside a chunk before other chunks get
///     a chance, so the kinetic bias is small — but so is the parallel
///     batch. L = 1 reproduces RSM-like kinetics (Fig 9a).
///   - large L: big parallel batches, growing bias; oscillatory dynamics
///     drift and eventually die (Fig 9b).
///   - |P| = 1 with L = N, and |P| = N with L = 1, are *exactly* RSM
///     (Fig 8) — sites are then selected uniformly with replacement.
///
/// The paper's chunk-selection probability "|Pi| / |P|" is read as
/// |Pi| / N, the only normalizable reading (see DESIGN.md).
///
/// With `ChunkWeighting::kRateWeighted`, chunk draws are weighted by the
/// rate of currently-enabled reactions per chunk instead of by size
/// (paper's option 4 applied to the batched structure), served by the
/// incremental `EnabledRateCache`; a zero-rate surface falls back to the
/// size-proportional draw so the trial budget still drains.
class LPndcaSimulator final : public Simulator {
 public:
  /// `trials_per_batch` is the paper's L; it is clipped per batch to the
  /// remaining trial budget N - trials, as in the paper's listing.
  LPndcaSimulator(const ReactionModel& model, Configuration config,
                  Partition partition, std::uint64_t seed,
                  std::uint32_t trials_per_batch,
                  TimeMode time_mode = TimeMode::kStochastic,
                  ChunkWeighting weighting = ChunkWeighting::kStructural);

  void mc_step() override;
  [[nodiscard]] std::string name() const override { return "L-PNDCA"; }

  void set_metrics(obs::MetricsRegistry* registry) override;

  [[nodiscard]] const Partition& partition() const { return partition_; }
  [[nodiscard]] const Partition* spatial_partition() const override {
    return &partition_;
  }
  [[nodiscard]] std::uint32_t trials_per_batch() const { return trials_per_batch_; }
  [[nodiscard]] ChunkWeighting weighting() const { return weighting_; }

  /// The incremental enabled-rate cache (slot 0 == the partition), or
  /// nullptr under size-proportional weighting. For the invariant tests.
  [[nodiscard]] const EnabledRateCache* rate_cache() const { return rate_cache_.get(); }

  /// Checkpointing; the rate cache is rebuilt from the restored
  /// configuration rather than serialized.
  void save_state(StateWriter& w) const override;
  void restore_state(StateReader& r) override;

  /// Brute-force verifies the enabled-rate cache; repair rebuilds it.
  void audit_derived_state(AuditReport& report, bool repair) override;

  /// Test-only mutable cache access for the audit suite.
  [[nodiscard]] EnabledRateCache* mutable_rate_cache_for_test() {
    return rate_cache_.get();
  }

  /// Batched trial path: the L draws of a batch (site, type, dt — the
  /// paper's independent per-trial selections) are hoisted into arrays in
  /// the scalar draw order, then evaluated against the bitplane mirror.
  /// Unlike PNDCA's window batches this path needs no non-overlap gate:
  /// the planes are resynced at every commit, so each trial's evaluation
  /// sees exactly the configuration the scalar loop would — duplicates
  /// within a batch included.
  bool set_fast_path(bool on) override;
  [[nodiscard]] bool fast_path_active() const override { return fast_ != nullptr; }

 private:
  struct FastState {
    FastState(const Configuration& config, const ReactionModel& model)
        : planes(config),
          probes(model, config.lattice().width(), config.lattice().height()) {}
    SpeciesBitplanes planes;
    ProbePlans probes;
    std::vector<SiteIndex> site;    // hoisted per-trial site draws
    std::vector<ReactionIndex> type;
    std::vector<double> dt;
  };

  void trial_at(SiteIndex s);
  void run_batch_fast(const std::vector<SiteIndex>& sites, std::uint64_t batch);
  void refresh_rate_cache(const ReactionType& reaction, SiteIndex s);
  [[nodiscard]] ChunkId select_chunk();

  Partition partition_;
  Xoshiro256 rng_;
  std::uint32_t trials_per_batch_;
  TimeMode time_mode_;
  ChunkWeighting weighting_;
  double rate_nk_;
  std::vector<double> chunk_cumulative_;  // cumulative chunk sizes for selection
  std::unique_ptr<EnabledRateCache> rate_cache_;  // kRateWeighted only
  std::unique_ptr<FastState> fast_;
  obs::Timer* step_timer_ = nullptr;             // lpndca/step
  obs::Timer* select_timer_ = nullptr;           // lpndca/select
  obs::Counter* rate_rechecks_ = nullptr;        // lpndca/rate_rechecks
  obs::Counter* boundary_rechecks_ = nullptr;    // lpndca/boundary_rechecks
};

}  // namespace casurf
