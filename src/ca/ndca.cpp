#include "ca/ndca.hpp"

#include <numeric>

#include "obs/trace.hpp"
#include "rng/distributions.hpp"

namespace casurf {

NdcaSimulator::NdcaSimulator(const ReactionModel& model, Configuration config,
                             std::uint64_t seed, TimeMode time_mode, SweepOrder order)
    : Simulator(model, std::move(config)),
      rng_(seed),
      time_mode_(time_mode),
      order_(order),
      rate_nk_(static_cast<double>(config_.size()) * model.total_rate()),
      visit_order_(config_.size()) {
  std::iota(visit_order_.begin(), visit_order_.end(), SiteIndex{0});
}

void NdcaSimulator::trial_at(SiteIndex s) {
  const ReactionIndex rt = model_.sample_type(rng_);
  const ReactionType& reaction = model_.reaction(rt);
  spatial_.attempt(s);
  if (reaction.enabled(config_, s)) {
    reaction.execute(config_, s);
    record_execution(rt);
    spatial_.fire(s);
  }
  time_ += time_mode_ == TimeMode::kStochastic ? exponential(rng_, rate_nk_)
                                               : 1.0 / rate_nk_;
  ++counters_.trials;
}

void NdcaSimulator::save_state(StateWriter& w) const {
  Simulator::save_state(w);
  w.section("ndca");
  rng_.save(w);
  w.vec_u64(visit_order_);
}

void NdcaSimulator::restore_state(StateReader& r) {
  Simulator::restore_state(r);
  r.expect_section("ndca");
  rng_.restore(r);
  visit_order_ = r.vec_u64<SiteIndex>(config_.size(), "ndca visit order");
  std::vector<std::uint8_t> seen(config_.size(), 0);
  for (const SiteIndex s : visit_order_) {
    if (s >= config_.size() || seen[s]) {
      throw StateFormatError("ndca visit order is not a permutation of the sites");
    }
    seen[s] = 1;
  }
}

void NdcaSimulator::mc_step() {
  const obs::ScopedTimer span(step_timer_);
  const obs::ScopedSpan trace(trace_, "ndca/step", time_, counters_.steps);
  if (order_ == SweepOrder::kShuffled) {
    const obs::ScopedTimer shuffle_span(shuffle_timer_);
    const obs::ScopedSpan shuffle_trace(trace_, "ndca/shuffle", time_, counters_.steps);
    // Fisher-Yates with the simulator's own generator.
    for (std::size_t i = visit_order_.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_below(rng_, i));
      std::swap(visit_order_[i - 1], visit_order_[j]);
    }
  }
  for (const SiteIndex s : visit_order_) trial_at(s);
  ++counters_.steps;
}

void NdcaSimulator::set_metrics(obs::MetricsRegistry* registry) {
  Simulator::set_metrics(registry);
  step_timer_ = registry ? &registry->timer("ndca/step") : nullptr;
  shuffle_timer_ = registry ? &registry->timer("ndca/shuffle") : nullptr;
}

}  // namespace casurf
