#pragma once

#include <cstdint>

#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {

/// How NDCA visits the lattice within one step.
enum class SweepOrder {
  kRaster,   ///< the paper's "for each site s": fixed scan order
  kShuffled, ///< fresh random permutation every step (reduces sweep bias)
};

/// Non-Deterministic Cellular Automaton (paper section 4): every site is
/// visited exactly once per step; at each visit a reaction type is drawn
/// with probability k_i / K and executed if enabled. Differs from RSM only
/// in site selection (each site once vs. uniform with replacement) — which
/// is precisely the bias the paper discusses, and which makes NDCA
/// degenerate on some models (Ising, single-file).
class NdcaSimulator final : public Simulator {
 public:
  NdcaSimulator(const ReactionModel& model, Configuration config, std::uint64_t seed,
                TimeMode time_mode = TimeMode::kStochastic,
                SweepOrder order = SweepOrder::kRaster);

  void mc_step() override;
  [[nodiscard]] std::string name() const override { return "NDCA"; }

  void set_metrics(obs::MetricsRegistry* registry) override;

  /// Checkpointing: besides the RNG, the visit order is saved — under
  /// kShuffled it carries the permutation state the next shuffle starts
  /// from.
  void save_state(StateWriter& w) const override;
  void restore_state(StateReader& r) override;

 private:
  void trial_at(SiteIndex s);

  Xoshiro256 rng_;
  TimeMode time_mode_;
  SweepOrder order_;
  double rate_nk_;
  std::vector<SiteIndex> visit_order_;
  obs::Timer* step_timer_ = nullptr;     // ndca/step
  obs::Timer* shuffle_timer_ = nullptr;  // ndca/shuffle
};

}  // namespace casurf
