#include "ca/pndca.hpp"

#include <bit>
#include <numeric>
#include <stdexcept>

#include "obs/trace.hpp"
#include "partition/conflict.hpp"
#include "rng/distributions.hpp"

namespace casurf {

PndcaSimulator::PndcaSimulator(const ReactionModel& model, Configuration config,
                               std::vector<Partition> partitions, std::uint64_t seed,
                               ChunkPolicy policy, TimeMode time_mode)
    : Simulator(model, std::move(config)),
      partitions_(std::move(partitions)),
      rng_(seed),
      policy_(policy),
      time_mode_(time_mode),
      seed_(seed),
      rate_nk_(static_cast<double>(config_.size()) * model.total_rate()) {
  if (partitions_.empty()) {
    throw std::invalid_argument("PNDCA: at least one partition required");
  }
  for (const Partition& p : partitions_) {
    if (!(p.lattice() == config_.lattice())) {
      throw std::invalid_argument("PNDCA: partition lattice mismatch");
    }
  }
  if (policy_ == ChunkPolicy::kRateWeighted) {
    // One full scan at construction; from here on the per-chunk enabled
    // rates are maintained incrementally (slot i == partition i).
    rate_cache_ = std::make_unique<EnabledRateCache>(model_, config_);
    for (const Partition& p : partitions_) rate_cache_->add_partition(p);
  }
}

double PndcaSimulator::enabled_rate_in_chunk(const Partition& p, ChunkId c) const {
  double rate = 0;
  for (const SiteIndex s : p.chunk(c)) {
    for (const ReactionType& rt : model_.reactions()) {
      if (rt.enabled(config_, s)) rate += rt.rate();
    }
  }
  return rate;
}

void PndcaSimulator::refresh_rate_cache(const ReactionType& reaction, SiteIndex s) {
  const Lattice& lat = config_.lattice();
  const Partition& p = partitions_[partition_cursor_];
  for (const Transform& t : reaction.transforms()) {
    if (t.tg != kKeep) {
      const SiteIndex written = lat.neighbor(s, t.offset);
      rate_cache_->refresh_after(config_, written);
      if (rate_rechecks_ != nullptr) rate_rechecks_->add();
      // A write landing outside the anchor's chunk is a measured boundary
      // conflict: the reaction invalidated cached rates across a partition
      // seam (exactly the coupling the non-overlap rule serializes).
      if (boundary_rechecks_ != nullptr && p.chunk_of(written) != p.chunk_of(s)) {
        boundary_rechecks_->add();
      }
    }
  }
}

void PndcaSimulator::set_metrics(obs::MetricsRegistry* registry) {
  Simulator::set_metrics(registry);
  step_timer_ = registry ? &registry->timer("pndca/step") : nullptr;
  plan_timer_ = registry ? &registry->timer("pndca/plan") : nullptr;
  sweep_timer_ = registry ? &registry->timer("pndca/sweep") : nullptr;
  rate_rechecks_ = registry ? &registry->counter("pndca/rate_rechecks") : nullptr;
  boundary_rechecks_ = registry ? &registry->counter("pndca/boundary_rechecks") : nullptr;
  chunk_sites_ = registry ? &registry->histogram("pndca/chunk_sites") : nullptr;
}

void PndcaSimulator::save_state(StateWriter& w) const {
  Simulator::save_state(w);
  w.section("pndca");
  rng_.save(w);
  w.u64(sweep_);
  w.u64(partition_cursor_);
  w.vec_u64(schedule_);
}

void PndcaSimulator::restore_state(StateReader& r) {
  Simulator::restore_state(r);
  r.expect_section("pndca");
  rng_.restore(r);
  sweep_ = r.u64();
  partition_cursor_ = static_cast<std::size_t>(r.u64());
  if (partition_cursor_ >= partitions_.size()) {
    throw StateFormatError("pndca partition cursor out of range");
  }
  schedule_ = r.vec_u64<ChunkId>(SIZE_MAX, "pndca schedule");
  for (const ChunkId c : schedule_) {
    if (c >= partitions_[partition_cursor_].num_chunks()) {
      throw StateFormatError("pndca schedule references chunk out of range");
    }
  }
  // Derived, not serialized: recompute the enabled-rate cache and the
  // bitplane mirror from the restored configuration.
  if (rate_cache_) rate_cache_->rebuild(config_);
  if (fast_) {
    fast_->planes.rebuild(config_);
    fast_->enabled.rebuild(fast_->planes, fast_->probes);
  }
}

void PndcaSimulator::audit_derived_state(AuditReport& report, bool repair) {
  Simulator::audit_derived_state(report, repair);
  if (fast_ && !fast_->planes.matches(config_)) {
    report.issues.push_back(
        {"bitplanes", "species bitplanes disagree with the configuration"});
    if (repair) fast_->planes.rebuild(config_);
  }
  // Audited after (and, on repair, against) the planes: the bitset derives
  // from them through the probe plans.
  if (fast_ && !fast_->enabled.matches(fast_->planes, fast_->probes)) {
    report.issues.push_back(
        {"enabled-types", "per-site enabled-type bitset disagrees with the planes"});
    if (repair) fast_->enabled.rebuild(fast_->planes, fast_->probes);
  }
  if (!rate_cache_) return;
  std::vector<std::string> details;
  if (!rate_cache_->verify(config_, details)) {
    for (std::string& d : details) report.issues.push_back({"rate-cache", std::move(d)});
    if (repair) rate_cache_->rebuild(config_);
  }
}

std::vector<ChunkId> PndcaSimulator::plan_schedule() {
  const Partition& p = partitions_[partition_cursor_];
  const std::size_t m = p.num_chunks();
  std::vector<ChunkId> schedule(m);

  switch (policy_) {
    case ChunkPolicy::kInOrder:
      std::iota(schedule.begin(), schedule.end(), ChunkId{0});
      break;
    case ChunkPolicy::kRandomOrder: {
      std::iota(schedule.begin(), schedule.end(), ChunkId{0});
      for (std::size_t i = m; i > 1; --i) {
        const auto j = static_cast<std::size_t>(uniform_below(rng_, i));
        std::swap(schedule[i - 1], schedule[j]);
      }
      break;
    }
    case ChunkPolicy::kRandomWithReplacement:
      // |P| draws, each chunk with probability 1/|P| (paper's option 3).
      for (std::size_t i = 0; i < m; ++i) {
        schedule[i] = static_cast<ChunkId>(uniform_below(rng_, m));
      }
      break;
    case ChunkPolicy::kRateWeighted: {
      // |P| draws weighted by the rate of currently-enabled reactions in
      // each chunk (paper's option 4). The weights come from the
      // incremental cache — no full-lattice rescan — and are frozen at the
      // start of the step; each draw costs O(log m) through the Fenwick
      // sampler, which never selects a zero-weight chunk. With nothing
      // enabled anywhere the draw degenerates to uniform.
      const ChunkSampler& sampler = rate_cache_->sampler(partition_cursor_);
      for (std::size_t i = 0; i < m; ++i) {
        schedule[i] = sampler.total() > 0
                          ? sampler.sample(uniform01(rng_))
                          : static_cast<ChunkId>(uniform_below(rng_, m));
      }
      break;
    }
  }
  return schedule;
}

std::int32_t PndcaSimulator::trial_at(std::uint64_t sweep, SiteIndex s,
                                      std::int64_t* deltas) {
  // Each (sweep, site) pair owns a private random stream: the trial outcome
  // is independent of the order in which chunk sites are visited, which is
  // what lets the threaded engine replay this exact trajectory.
  //
  // The draw order is pinned: the stream's FIRST value feeds the alias flip
  // and the SECOND the slot. (Historic accident — the original code drew
  // both inside the call's argument list and the compiler evaluated right
  // to left — but now load-bearing: the batched lane path and every stored
  // trajectory reproduce exactly this assignment.)
  CounterRng crng(seed_, CounterRng::key(sweep, s));
  const double u_flip = crng.next_double();
  const double u_slot = crng.next_double();
  const ReactionIndex rt = model_.sample_type(u_slot, u_flip);
  const ReactionType& reaction = model_.reaction(rt);
  // Per-site recording is race-free under the threaded engine: same-chunk
  // sites are disjoint by the non-overlap rule, same as set_raw writes.
  spatial_.attempt(s);
  if (!reaction.enabled(config_, s)) return kNoReaction;
  spatial_.fire(s);
  if (deltas == nullptr) {
    reaction.execute(config_, s);
    record_execution(rt);
    if (rate_cache_) refresh_rate_cache(reaction, s);
  } else {
    reaction.execute_raw(config_, s, deltas);
  }
  return static_cast<std::int32_t>(rt);
}

void PndcaSimulator::mc_step() {
  const obs::ScopedTimer step_span(step_timer_);
  const obs::ScopedSpan step_trace(trace_, "pndca/step", time_, counters_.steps);
  partition_cursor_ = static_cast<std::size_t>(counters_.steps % partitions_.size());
  {
    const obs::ScopedTimer plan_span(plan_timer_);
    const obs::ScopedSpan plan_trace(trace_, "pndca/plan", time_, counters_.steps);
    schedule_ = plan_schedule();
  }
  const Partition& p = partitions_[partition_cursor_];

  for (const ChunkId c : schedule_) {
    ++sweep_;
    if (chunk_sites_ != nullptr) chunk_sites_->record(p.chunk(c).size());
    {
      const obs::ScopedTimer sweep_span(sweep_timer_);
      const obs::ScopedSpan sweep_trace(trace_, "pndca/sweep", time_, sweep_);
      execute_chunk(sweep_, c, p.chunk(c));
    }

    // Time advances once per trial, drawn from the schedule-level
    // generator in a fixed order — identical under any thread scheduling.
    const std::size_t n = p.chunk(c).size();
    if (time_mode_ == TimeMode::kStochastic) {
      for (std::size_t i = 0; i < n; ++i) time_ += exponential(rng_, rate_nk_);
    } else {
      time_ += static_cast<double>(n) / rate_nk_;
    }
    counters_.trials += n;
  }
  ++counters_.steps;
}

bool PndcaSimulator::set_fast_path(bool on) {
  fast_.reset();
  if (!kFastPathCompiled || !on) return false;
  // The batched evaluation reads whole windows against the pre-commit
  // planes; that equals the scalar site-at-a-time loop exactly when no
  // in-chunk execution can flip another same-chunk anchor's enabledness —
  // the paper's non-overlap rule. Partitions violating it (singletons
  // aside, e.g. hand-built ones in tests) keep the scalar reference path.
  const std::vector<Vec2> offsets = conflict_offsets(model_);
  for (const Partition& p : partitions_) {
    if (!partition_gate(p, offsets)) return false;
  }
  fast_ = std::make_unique<FastState>(config_, seed_, model_);
  return true;
}

void PndcaSimulator::execute_chunk(std::uint64_t sweep, ChunkId chunk,
                                   const std::vector<SiteIndex>& sites) {
  (void)chunk;
  if (fast_ == nullptr) {
    for (const SiteIndex s : sites) trial_at(sweep, s);
    return;
  }
  FastState& f = *fast_;
  // The whole sweep's trial front half in one kernel call: RNG lanes, type
  // sample, and the one-load enabled test. The bitset is exact against the
  // pre-sweep state, which equals each trial's state because the
  // non-overlap gate keeps same-chunk anchors unaffected mid-sweep.
  f.hits.resize(sites.size());
  const std::size_t cnt =
      batch_trials(sweep, f.seed_hash, sites.data(), sites.size(),
                   model_.alias_table(), f.enabled, f.hits.data());
  if (spatial_.map() != nullptr) {
    for (const SiteIndex s : sites) spatial_.attempt(s);
  }
  const Lattice& lat = config_.lattice();
  for (std::size_t k = 0; k < cnt; ++k) {
    const SiteIndex s = sites[f.hits[k].index];
    const ReactionIndex rt = f.hits[k].type;
    const ReactionType& reaction = model_.reaction(rt);
    spatial_.fire(s);
    // Capture each written site's species before the commit: the recheck
    // sweep can then skip every candidate indifferent to the transition.
    const auto& trs = reaction.transforms();
    f.old_pre.resize(trs.size());
    for (std::size_t ti = 0; ti < trs.size(); ++ti) {
      f.old_pre[ti] = trs[ti].tg == kKeep
                          ? Species{0}
                          : config_.get(lat.neighbor(s, trs[ti].offset));
    }
    reaction.execute(config_, s);
    record_execution(rt);
    fast_after_fire(reaction, s, /*resync=*/true, f.old_pre.data());
  }
}

void PndcaSimulator::fast_after_fire(const ReactionType& reaction, SiteIndex s,
                                     bool resync, const Species* old_species) {
  FastState& f = *fast_;
  const Lattice& lat = config_.lattice();
  if (resync) resync_written(f.planes, config_, reaction, s);
  const auto width = static_cast<std::int32_t>(lat.width());
  const Partition& p = partitions_[partition_cursor_];
  std::size_t ti = 0;
  for (const Transform& t : reaction.transforms()) {
    const std::size_t idx = ti++;
    if (t.tg == kKeep) continue;
    const SiteIndex written = lat.neighbor(s, t.offset);
    if (rate_cache_) {
      // Mirror the scalar refresh_rate_cache counters: one recheck per
      // written site, seam-classified against the current partition.
      if (rate_rechecks_ != nullptr) rate_rechecks_->add();
      if (boundary_rechecks_ != nullptr && p.chunk_of(written) != p.chunk_of(s)) {
        boundary_rechecks_->add();
      }
    }
    const SpeciesMask old_mask = old_species == nullptr
                                     ? ~SpeciesMask{0}
                                     : SpeciesMask{1} << old_species[idx];
    const SpeciesMask new_mask = SpeciesMask{1} << config_.get(written);
    const auto wx = static_cast<std::int32_t>(written % static_cast<SiteIndex>(width));
    const auto wy = static_cast<std::int32_t>(written / static_cast<SiteIndex>(width));
    f.probes.visit_rechecks(
        f.planes, wx, wy, old_mask, new_mask,
        [&](ReactionIndex rt, SiteIndex anchor, bool now) {
          // The cache's membership bit mirrors the enabled set exactly
          // (both rebuilt from the same configuration, both folded on every
          // visit), so an unchanged bit here makes the cache fold a
          // guaranteed no-op — skip the second bitset walk entirely.
          if (f.enabled.assign(anchor, rt, now) && rate_cache_ != nullptr) {
            rate_cache_->apply_recheck(rt, anchor, now);
          }
        });
  }
}

}  // namespace casurf
