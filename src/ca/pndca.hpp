#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ca/fastpath.hpp"
#include "ca/rate_cache.hpp"
#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "partition/partition.hpp"
#include "rng/counter_rng.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {

/// The paper's four ways of selecting chunks within a PNDCA step
/// (section 5, "Opportunities for improvements").
enum class ChunkPolicy {
  kInOrder,                ///< 1. all chunks, fixed order
  kRandomOrder,            ///< 2. all chunks, fresh random order per step
  kRandomWithReplacement,  ///< 3. |P| draws, each chunk with prob 1/|P|
  kRateWeighted,           ///< 4. |P| draws weighted by enabled rate per chunk
};

/// Partitioned NDCA (paper section 5): per step, chunks are selected
/// according to the policy and every site of a selected chunk performs one
/// NDCA trial. Because same-chunk sites never conflict (the partition
/// satisfies the non-overlap rule), all trials within a chunk are
/// independent — the source of parallelism.
///
/// Per-site randomness comes from a counter RNG keyed by (sweep, site), so
/// the trajectory is a pure function of (seed, chunk schedule) and the
/// threaded engine (`ParallelPndcaEngine`) reproduces this sequential
/// implementation bit for bit.
///
/// Several partitions may be supplied; one is chosen per step ("choose a
/// partition P"), cycling — which also expresses the shifting blocks of a
/// classic BCA.
class PndcaSimulator : public Simulator {
 public:
  PndcaSimulator(const ReactionModel& model, Configuration config,
                 std::vector<Partition> partitions, std::uint64_t seed,
                 ChunkPolicy policy = ChunkPolicy::kRandomOrder,
                 TimeMode time_mode = TimeMode::kStochastic);

  void mc_step() override;
  [[nodiscard]] std::string name() const override { return "PNDCA"; }

  void set_metrics(obs::MetricsRegistry* registry) override;

  [[nodiscard]] const Partition& current_partition() const {
    return partitions_[partition_cursor_];
  }
  [[nodiscard]] const Partition* spatial_partition() const override {
    return &partitions_.front();
  }
  [[nodiscard]] const std::vector<Partition>& partitions() const { return partitions_; }
  [[nodiscard]] ChunkPolicy policy() const { return policy_; }

  /// The chunk schedule executed by the most recent step (for tests and for
  /// replay by the parallel engine / simulated machine).
  [[nodiscard]] const std::vector<ChunkId>& last_schedule() const { return schedule_; }

  /// Build the chunk schedule for the next step without executing it
  /// (exposed for the simulated parallel machine).
  std::vector<ChunkId> plan_schedule();

  /// The incremental enabled-rate cache serving the kRateWeighted policy
  /// (slot i == partition i), or nullptr under the other policies. Exposed
  /// for the cache-invariant tests.
  [[nodiscard]] const EnabledRateCache* rate_cache() const { return rate_cache_.get(); }

  /// Brute-force O(|chunk| |T|) enabled rate of one chunk — the reference
  /// the cache is checked against, and the "before" cost model in the
  /// throughput benchmarks. Never called on the simulation hot path.
  [[nodiscard]] double enabled_rate_in_chunk(const Partition& p, ChunkId c) const;

  /// Checkpointing. The enabled-rate cache is a pure function of the
  /// configuration, so it is not serialized — restore rebuilds it from the
  /// restored lattice state; the per-site counter-RNG streams are keyed by
  /// (seed, sweep), so saving the sweep counter is what resumes them.
  void save_state(StateWriter& w) const override;
  void restore_state(StateReader& r) override;

  /// Brute-force verifies the enabled-rate cache (kRateWeighted only);
  /// repair rebuilds it from the configuration.
  void audit_derived_state(AuditReport& report, bool repair) override;

  /// Test-only mutable cache access for injecting corruption in the audit
  /// suite; nullptr under the structural policies.
  [[nodiscard]] EnabledRateCache* mutable_rate_cache_for_test() {
    return rate_cache_.get();
  }

  /// Batched bitplane trial path: whole 64-site windows of a chunk are
  /// evaluated at once (vectorized CounterRng lanes, per-type enabled
  /// masks). Gated on every partition satisfying the non-overlap rule —
  /// the property that makes all in-chunk trials independent, hence the
  /// pre-sweep window evaluation exactly equal to the sequential scalar
  /// loop. Falls back to the scalar path (returns false) when the gate
  /// fails or the build disabled the fast path.
  bool set_fast_path(bool on) override;
  [[nodiscard]] bool fast_path_active() const override { return fast_ != nullptr; }

  /// Test hook: the bitplanes backing the fast path (nullptr when scalar).
  /// Mutable so the audit suite can corrupt a bit and watch it get caught.
  [[nodiscard]] SpeciesBitplanes* fast_planes_for_test() {
    return fast_ ? &fast_->planes : nullptr;
  }

 protected:
  static constexpr std::int32_t kNoReaction = -1;

  /// One NDCA trial at site s during global sweep `sweep`, using the site's
  /// private random stream. When `deltas` is null, writes go through the
  /// count-maintaining path and the execution is recorded in the counters;
  /// when non-null (threaded engine), writes bypass the shared species
  /// counts and per-species changes accumulate into `deltas` instead, and
  /// the caller is responsible for counter bookkeeping. Returns the
  /// executed reaction type, or kNoReaction.
  std::int32_t trial_at(std::uint64_t sweep, SiteIndex s, std::int64_t* deltas = nullptr);

  /// Run all trials of one chunk sweep. The base class loops sequentially
  /// (or window-batched when the fast path is engaged); the threaded engine
  /// overrides this with a fork-join over the sites. `chunk` identifies the
  /// chunk within the current partition, keying the cached window lists.
  virtual void execute_chunk(std::uint64_t sweep, ChunkId chunk,
                             const std::vector<SiteIndex>& sites);

  /// Whether the rate cache is live (kRateWeighted policy).
  [[nodiscard]] bool rate_cache_active() const { return rate_cache_ != nullptr; }

  /// Fold one executed reaction (type `reaction`, anchored at `s`) into the
  /// rate cache: rechecks the anchors around every written site. The serial
  /// path calls this right after each execution; the threaded engine
  /// replays the sweep's executions through it after the join — the counts
  /// agree either way because rechecks are idempotent against the final
  /// configuration.
  void refresh_rate_cache(const ReactionType& reaction, SiteIndex s);

  /// Shared state of the batched path: the bitplane mirror of the
  /// configuration, the compiled per-type probe plans, the per-site
  /// enabled-type bitset the kernel tests, and scratch for the kernel's
  /// outputs. The threaded engine shares planes/probes/bitset read-only
  /// across workers during a sweep and keeps per-worker hit scratch.
  struct FastState {
    FastState(const Configuration& config, std::uint64_t seed,
              const ReactionModel& model)
        : planes(config),
          probes(model, config.lattice().width(), config.lattice().height()),
          seed_hash(CounterRng::seed_hash(seed)) {
      enabled.rebuild(planes, probes);
    }
    SpeciesBitplanes planes;
    ProbePlans probes;
    std::uint64_t seed_hash;
    EnabledTypeSet enabled;  // per-site type bitset: the trial-loop lookup
    std::vector<TrialHit> hits;     // batch_trials output (serial sweeps)
    std::vector<Species> old_pre;   // pre-fire species, for recheck pruning
  };

  /// Post-fire bookkeeping of the batched path, replacing the scalar
  /// refresh_rate_cache: resyncs the planes for the written sites, then
  /// rechecks the affected (type, anchor) pairs once via the probe plans,
  /// folding each outcome into the enabled-type bitset and (under
  /// kRateWeighted) the rate cache. Mirrors the scalar path's metrics
  /// counters. The threaded engine replays fired lists through this at the
  /// barrier — all resyncs first, then all rechecks, so every probe reads
  /// fully synced planes (`resync` toggles the first phase).
  ///
  /// `old_species`, when given, holds each written site's species from
  /// before the fire (indexed like the reaction's transform list); rechecks
  /// that can depend on neither the old nor the new species are skipped.
  /// Pass nullptr when the pre-fire state is gone (barrier replay) — every
  /// candidate is visited, converging to the same state.
  void fast_after_fire(const ReactionType& reaction, SiteIndex s, bool resync,
                       const Species* old_species = nullptr);

  std::unique_ptr<FastState> fast_;
  std::vector<Partition> partitions_;
  Xoshiro256 rng_;  // drives schedule decisions only, never site trials
  ChunkPolicy policy_;
  TimeMode time_mode_;
  std::uint64_t seed_;
  double rate_nk_;
  std::uint64_t sweep_ = 0;  // counts chunk sweeps; keys the per-site streams
  std::size_t partition_cursor_ = 0;
  std::vector<ChunkId> schedule_;
  std::unique_ptr<EnabledRateCache> rate_cache_;  // kRateWeighted only
  obs::Timer* step_timer_ = nullptr;          // pndca/step
  obs::Timer* plan_timer_ = nullptr;          // pndca/plan
  obs::Timer* sweep_timer_ = nullptr;         // pndca/sweep
  obs::Counter* rate_rechecks_ = nullptr;     // pndca/rate_rechecks
  obs::Counter* boundary_rechecks_ = nullptr; // pndca/boundary_rechecks
  obs::Histogram* chunk_sites_ = nullptr;     // pndca/chunk_sites
};

}  // namespace casurf
