#include "ca/rate_cache.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "dmc/enabled_set.hpp"

namespace casurf {

void ChunkSampler::assign(const std::vector<double>& weights) {
  weights_ = weights;
  const std::size_t m = weights_.size();
  // Sanitize before building the prefix tree: a negative or NaN weight
  // would poison every ancestor sum and make the descent's `tree_[next] <=
  // remaining` comparisons meaningless (a negative weight even makes the
  // prefix sums non-monotone, so "first chunk whose cumulative exceeds the
  // target" stops being well-defined). Clamping to zero keeps such chunks
  // unselectable — the semantics every caller wants — instead of silently
  // skewing the distribution. `w > 0.0` is false for NaN, so NaN also
  // clamps.
  for (double& w : weights_) w = w > 0.0 ? w : 0.0;
  top_bit_ = m == 0 ? 0 : std::bit_floor(m);
  tree_.assign(m + 1, 0.0);
  total_ = 0.0;
  for (std::size_t i = 1; i <= m; ++i) {
    tree_[i] += weights_[i - 1];
    total_ += weights_[i - 1];
    const std::size_t parent = i + (i & (~i + 1));
    if (parent <= m) tree_[parent] += tree_[i];
  }
}

ChunkId ChunkSampler::sample(double u) const {
  assert(total_ > 0.0);
  const std::size_t m = weights_.size();
  double remaining = u * total_;
  // Descend to the largest pos with prefix(pos) <= u * total; the selected
  // chunk is pos (0-based), the first whose cumulative weight exceeds the
  // target. A zero-weight chunk can never be that first-exceeding index —
  // its cumulative equals its predecessor's — so the only way to land on
  // one is accumulated rounding: tree_ sums the weights in a different
  // association than the descent subtracts them, so with u just below 1 the
  // walk can step past the last POSITIVE chunk into a zero tail (or past
  // the end entirely, pos == m). Both are caught below.
  std::size_t pos = 0;
  for (std::size_t step = top_bit_; step > 0; step >>= 1) {
    const std::size_t next = pos + step;
    if (next <= m && tree_[next] <= remaining) {
      pos = next;
      remaining -= tree_[next];
    }
  }
  // Clamp into range, then walk down to the nearest selectable chunk.
  // assign() zeroed every non-positive weight, so total_ > 0 guarantees a
  // positive-weight chunk exists at or below any landing point the descent
  // can produce and the walk terminates on it.
  std::size_t c = pos < m ? pos : m - 1;
  while (c > 0 && weights_[c] <= 0.0) --c;
  return static_cast<ChunkId>(c);
}

EnabledRateCache::EnabledRateCache(const ReactionModel& model,
                                   const Configuration& config)
    : model_(model),
      num_types_(model.num_reactions()),
      num_sites_(config.size()),
      enabled_(num_types_ * num_sites_, 0) {
  rebuild(config);
}

std::size_t EnabledRateCache::add_partition(const Partition& partition) {
  if (partition.size() != num_sites_) {
    throw std::invalid_argument("EnabledRateCache: partition lattice mismatch");
  }
  Slot slot;
  slot.num_chunks = partition.num_chunks();
  slot.chunk_of.resize(num_sites_);
  for (SiteIndex s = 0; s < num_sites_; ++s) slot.chunk_of[s] = partition.chunk_of(s);
  recount_slot(slot);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void EnabledRateCache::recount_slot(Slot& slot) const {
  slot.counts.assign(slot.num_chunks * num_types_, 0);
  for (std::size_t t = 0; t < num_types_; ++t) {
    const std::uint8_t* row = enabled_.data() + t * num_sites_;
    for (SiteIndex s = 0; s < num_sites_; ++s) {
      if (row[s]) {
        ++slot.counts[static_cast<std::size_t>(slot.chunk_of[s]) * num_types_ + t];
      }
    }
  }
  slot.sampler_dirty = true;
}

void EnabledRateCache::rebuild(const Configuration& config) {
  for (std::size_t t = 0; t < num_types_; ++t) {
    const ReactionType& rt = model_.reaction(static_cast<ReactionIndex>(t));
    std::uint8_t* row = enabled_.data() + t * num_sites_;
    for (SiteIndex s = 0; s < num_sites_; ++s) {
      row[s] = rt.enabled(config, s) ? 1 : 0;
    }
  }
  for (Slot& slot : slots_) recount_slot(slot);
}

void EnabledRateCache::refresh_after(const Configuration& config, SiteIndex written) {
  visit_recheck_anchors(model_, config, written,
                        [&](ReactionIndex t, SiteIndex anchor, bool now) {
                          apply_recheck(t, anchor, now);
                        });
}

bool EnabledRateCache::verify(const Configuration& config,
                              std::vector<std::string>& out,
                              std::size_t max_issues) const {
  bool ok = true;
  // Recompute the enabledness table and compare bit by bit.
  for (std::size_t t = 0; t < num_types_; ++t) {
    const ReactionType& rt = model_.reaction(static_cast<ReactionIndex>(t));
    const std::uint8_t* row = enabled_.data() + t * num_sites_;
    for (SiteIndex s = 0; s < num_sites_; ++s) {
      const bool truth = rt.enabled(config, s);
      if (truth == (row[s] != 0)) continue;
      ok = false;
      if (out.size() < max_issues) {
        out.push_back("enabledness bit (type " + std::to_string(t) + ", site " +
                      std::to_string(s) + "): cached " + (row[s] ? "1" : "0") +
                      ", recomputed " + (truth ? "1" : "0"));
      }
    }
  }
  // Recount every slot from the recomputed ground truth and compare counts.
  for (std::size_t slot_index = 0; slot_index < slots_.size(); ++slot_index) {
    const Slot& slot = slots_[slot_index];
    std::vector<std::uint32_t> fresh(slot.num_chunks * num_types_, 0);
    for (std::size_t t = 0; t < num_types_; ++t) {
      const ReactionType& rt = model_.reaction(static_cast<ReactionIndex>(t));
      for (SiteIndex s = 0; s < num_sites_; ++s) {
        if (rt.enabled(config, s)) {
          ++fresh[static_cast<std::size_t>(slot.chunk_of[s]) * num_types_ + t];
        }
      }
    }
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      if (fresh[i] == slot.counts[i]) continue;
      ok = false;
      if (out.size() < max_issues) {
        out.push_back("slot " + std::to_string(slot_index) + " count (chunk " +
                      std::to_string(i / num_types_) + ", type " +
                      std::to_string(i % num_types_) + "): cached " +
                      std::to_string(slot.counts[i]) + ", recomputed " +
                      std::to_string(fresh[i]));
      }
    }
  }
  return ok;
}

double EnabledRateCache::chunk_rate(std::size_t slot_index, ChunkId c) const {
  const Slot& slot = slots_[slot_index];
  double rate = 0.0;
  for (std::size_t t = 0; t < num_types_; ++t) {
    rate += model_.reaction(static_cast<ReactionIndex>(t)).rate() *
            static_cast<double>(
                slot.counts[static_cast<std::size_t>(c) * num_types_ + t]);
  }
  return rate;
}

const ChunkSampler& EnabledRateCache::sampler(std::size_t slot_index) const {
  const Slot& slot = slots_[slot_index];
  if (slot.sampler_dirty) {
    // Weights are derived from the integer counts in a fixed summation
    // order, so identical counts — however they were reached — produce a
    // bit-identical sampler. This is what keeps serial and threaded
    // rate-weighted trajectories in lockstep.
    weight_scratch_.resize(slot.num_chunks);
    for (ChunkId c = 0; c < slot.num_chunks; ++c) {
      weight_scratch_[c] = chunk_rate(slot_index, c);
    }
    slot.sampler.assign(weight_scratch_);
    slot.sampler_dirty = false;
  }
  return slot.sampler;
}

}  // namespace casurf
