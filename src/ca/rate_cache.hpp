#pragma once

#include <cstdint>
#include <vector>

#include "lattice/configuration.hpp"
#include "model/reaction_model.hpp"
#include "partition/partition.hpp"

namespace casurf {

/// Chunk-selection weighting for the PNDCA variants that support both their
/// structural default and the paper's "option 4" rate weighting.
enum class ChunkWeighting {
  kStructural,    ///< the algorithm's own default (size-proportional for
                  ///< L-PNDCA, uniform for TPNDCA)
  kRateWeighted,  ///< weighted by the rate of currently-enabled reactions,
                  ///< served by the incremental EnabledRateCache
};

/// Fenwick (binary-indexed) tree over per-chunk weights: O(m) rebuild,
/// O(log m) weighted draw. Zero-weight chunks are never returned by
/// sample(), even when floating-point rounding pushes u * total() onto a
/// cumulative boundary (the failure mode of a plain cumulative search).
class ChunkSampler {
 public:
  ChunkSampler() = default;

  /// Rebuild from scratch in O(m). Non-positive and NaN weights are
  /// clamped to zero (unselectable) — they would otherwise break the
  /// monotone-prefix invariant sample()'s descent depends on.
  void assign(const std::vector<double>& weights);

  [[nodiscard]] std::size_t size() const { return weights_.size(); }
  [[nodiscard]] double total() const { return total_; }
  /// The sanitized weight actually used (clamped, not the caller's value).
  [[nodiscard]] double weight(ChunkId c) const { return weights_[c]; }

  /// Draw chunk c with probability weight(c) / total() given u in [0, 1).
  /// Precondition: total() > 0. Never returns a zero-weight chunk, even
  /// when accumulated rounding pushes u * total() past the last positive
  /// chunk's cumulative weight.
  [[nodiscard]] ChunkId sample(double u) const;

 private:
  std::vector<double> tree_;     // 1-based Fenwick array
  std::vector<double> weights_;  // plain weights, for queries and zero checks
  double total_ = 0.0;
  std::size_t top_bit_ = 0;  // largest power of two <= size()
};

/// Incremental per-(chunk, reaction-type) enabled-count cache: the
/// bookkeeping that turns the paper's "option 4" rate-weighted chunk
/// selection from an O(N |T|) per-step rescan into an O(neighborhood)
/// update per executed reaction (the same direct-method bookkeeping VSSM
/// uses for event selection).
///
/// The cache tracks, per reaction type, at which sites the type is
/// currently enabled (one byte per (type, site)); partition slots aggregate
/// those bits into per-chunk counts. Enabledness is partition-independent,
/// so several partitions (PNDCA's cycling list, TPNDCA's per-subset
/// sub-partitions) share one enabledness table.
///
/// Invariant (checked in test_rate_cache.cpp): after every refresh,
/// count(slot, c, t) equals the brute-force recount of sites s in chunk c
/// with reaction t enabled at s in the current configuration.
///
/// Update rule: after a reaction writes site z, every anchor a = z - o for
/// offsets o in a type's neighborhood is rechecked against the current
/// configuration; a flip of the stored bit adjusts every slot's count for
/// (chunk_of(a), type) by +-1. Rechecks are idempotent and the final bit is
/// a pure function of the final configuration, so counts are independent of
/// the order in which a batch of writes is replayed — which is what lets
/// the threaded engine defer refreshes to the chunk-sweep barrier and still
/// match the sequential trajectory bit for bit.
///
/// All counts are integers; the floating-point chunk weights and the
/// Fenwick sampler are (re)derived from them in a fixed summation order, so
/// identical counts always produce identical draws.
class EnabledRateCache {
 public:
  /// Builds the enabledness table with one full O(N |T|) scan — the only
  /// full-lattice rescan the cache ever performs.
  EnabledRateCache(const ReactionModel& model, const Configuration& config);

  /// Register a partition and aggregate the current enabledness into its
  /// per-chunk counts; returns the slot index for queries. The site->chunk
  /// map is copied, so the Partition need not outlive the cache.
  std::size_t add_partition(const Partition& partition);

  [[nodiscard]] std::size_t num_slots() const { return slots_.size(); }
  [[nodiscard]] std::size_t num_chunks(std::size_t slot) const {
    return slots_[slot].num_chunks;
  }

  /// Number of sites in chunk c (of slot's partition) where reaction type t
  /// is currently enabled.
  [[nodiscard]] std::uint32_t count(std::size_t slot, ChunkId c, ReactionIndex t) const {
    return slots_[slot].counts[static_cast<std::size_t>(c) * num_types_ + t];
  }

  /// Sum over types of k_t * count(slot, c, t): the chunk's enabled rate.
  [[nodiscard]] double chunk_rate(std::size_t slot, ChunkId c) const;

  /// Fenwick sampler over the slot's chunk rates, lazily rebuilt from the
  /// counts after any of them changed. total() == 0 means no reaction is
  /// enabled anywhere; callers fall back to their structural draw.
  [[nodiscard]] const ChunkSampler& sampler(std::size_t slot) const;

  /// Recheck every (type, anchor) whose enabledness can depend on the just
  /// written site and fold flips into all slots. Call once per written site
  /// after the write is in `config`.
  void refresh_after(const Configuration& config, SiteIndex written);

  /// One recheck outcome, applied directly: sets the cached enabledness of
  /// `t` anchored at `anchor` to `now` and folds any flip into every
  /// slot's counts. This is the body refresh_after runs per candidate,
  /// exposed so the batched trial path can drive the same bookkeeping from
  /// its bitplane-probe rechecks (which prune candidates that can never
  /// flip — those applications were no-ops here anyway). Idempotent.
  void apply_recheck(ReactionIndex t, SiteIndex anchor, bool now) {
    std::uint8_t& bit = enabled_[static_cast<std::size_t>(t) * num_sites_ + anchor];
    if (static_cast<bool>(bit) == now) return;
    bit = now ? 1 : 0;
    for (Slot& slot : slots_) {
      std::uint32_t& cnt =
          slot.counts[static_cast<std::size_t>(slot.chunk_of[anchor]) * num_types_ +
                      t];
      now ? ++cnt : --cnt;
      slot.sampler_dirty = true;
    }
  }

  /// Full rescan, re-deriving every bit and count from `config` (recovery /
  /// testing; never needed on the hot path).
  void rebuild(const Configuration& config);

  /// Brute-force verification against `config`: recomputes every
  /// enabledness bit and per-(chunk, type) count and appends one
  /// description per mismatch to `out` (capped at `max_issues`). Returns
  /// true when the cache is consistent. The audit ground truth.
  bool verify(const Configuration& config, std::vector<std::string>& out,
              std::size_t max_issues = 64) const;

  /// Test-only corruption hook for the audit suite: adds `delta` to one
  /// stored count without touching the enabledness bits.
  void corrupt_count_for_test(std::size_t slot, ChunkId c, ReactionIndex t,
                              std::int32_t delta) {
    slots_[slot].counts[static_cast<std::size_t>(c) * num_types_ + t] +=
        static_cast<std::uint32_t>(delta);
    slots_[slot].sampler_dirty = true;
  }

 private:
  struct Slot {
    std::vector<ChunkId> chunk_of;      // copied site -> chunk map
    std::size_t num_chunks = 0;
    std::vector<std::uint32_t> counts;  // [chunk * num_types + type]
    mutable ChunkSampler sampler;
    mutable bool sampler_dirty = true;
  };

  void recount_slot(Slot& slot) const;

  const ReactionModel& model_;
  std::size_t num_types_;
  SiteIndex num_sites_;
  std::vector<std::uint8_t> enabled_;  // [type * num_sites + site]
  std::vector<Slot> slots_;
  mutable std::vector<double> weight_scratch_;
};

}  // namespace casurf
