#include "ca/tpndca.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"
#include "partition/conflict.hpp"
#include "rng/distributions.hpp"

namespace casurf {

TPndcaSimulator::TPndcaSimulator(const ReactionModel& model, Configuration config,
                                 std::vector<TypeSubset> subsets, std::uint64_t seed,
                                 std::uint32_t sweeps_per_step, ChunkWeighting weighting)
    : Simulator(model, std::move(config)),
      subsets_(std::move(subsets)),
      rng_(seed),
      sweeps_per_step_(sweeps_per_step),
      weighting_(weighting) {
  if (subsets_.empty()) {
    throw std::invalid_argument("TPNDCA: at least one type subset required");
  }
  double acc = 0;
  double mean_chunks = 0;
  for (const TypeSubset& sub : subsets_) {
    if (sub.types.empty() || !(sub.total_rate > 0)) {
      throw std::invalid_argument("TPNDCA: empty or rate-less type subset");
    }
    if (!(sub.chunks.lattice() == config_.lattice())) {
      throw std::invalid_argument("TPNDCA: subset partition lattice mismatch");
    }
    acc += sub.total_rate;
    mean_chunks += static_cast<double>(sub.chunks.num_chunks());
    subset_cumulative_.push_back(acc);
  }
  if (sweeps_per_step_ == 0) {
    // Auto: average chunk count; makes E[executions of type i per step]
    // equal to RSM's (k_i / K) * n_enabled(i) when subsets share a chunk
    // count (they do for the canonical 2-subset / 2-chunk construction).
    sweeps_per_step_ = static_cast<std::uint32_t>(
        std::lround(mean_chunks / static_cast<double>(subsets_.size())));
    if (sweeps_per_step_ == 0) sweeps_per_step_ = 1;
  }
  if (weighting_ == ChunkWeighting::kRateWeighted) {
    rate_cache_ = std::make_unique<EnabledRateCache>(model_, config_);
    for (const TypeSubset& sub : subsets_) rate_cache_->add_partition(sub.chunks);
  }
}

bool TPndcaSimulator::set_fast_path(bool on) {
  fast_.reset();
  if (!kFastPathCompiled || !on) return false;
  auto state = std::make_unique<FastState>(config_, subsets_.size());
  state->safe.assign(subsets_.size(),
                     std::vector<char>(model_.num_reactions(), 0));
  for (std::size_t j = 0; j < subsets_.size(); ++j) {
    for (const ReactionIndex i : subsets_[j].types) {
      // One type at a time means the window batch only has to survive the
      // type's conflicts with itself — the weaker (two-chunk) condition
      // this algorithm exists to exploit.
      const std::vector<Vec2> offsets = self_conflict_offsets(model_.reaction(i));
      state->safe[j][i] = partition_gate(subsets_[j].chunks, offsets) ? 1 : 0;
    }
  }
  fast_ = std::move(state);
  return true;
}

void TPndcaSimulator::save_state(StateWriter& w) const {
  Simulator::save_state(w);
  w.section("tpndca");
  rng_.save(w);
}

void TPndcaSimulator::restore_state(StateReader& r) {
  Simulator::restore_state(r);
  r.expect_section("tpndca");
  rng_.restore(r);
  if (rate_cache_) rate_cache_->rebuild(config_);
  if (fast_) fast_->planes.rebuild(config_);
}

void TPndcaSimulator::audit_derived_state(AuditReport& report, bool repair) {
  Simulator::audit_derived_state(report, repair);
  if (fast_ && !fast_->planes.matches(config_)) {
    report.issues.push_back(
        {"bitplanes", "species bitplanes disagree with the configuration"});
    if (repair) fast_->planes.rebuild(config_);
  }
  if (!rate_cache_) return;
  std::vector<std::string> details;
  if (!rate_cache_->verify(config_, details)) {
    for (std::string& d : details) report.issues.push_back({"rate-cache", std::move(d)});
    if (repair) rate_cache_->rebuild(config_);
  }
}

ChunkId TPndcaSimulator::select_chunk(std::size_t subset_index, ReactionIndex chosen) {
  const TypeSubset& sub = subsets_[subset_index];
  const std::size_t m = sub.chunks.num_chunks();
  if (rate_cache_) {
    // Weight each chunk of the subset's sub-partition by the cached number
    // of sites where the chosen type is enabled; zero-count chunks are
    // unselectable. Enabled-nowhere types keep the uniform draw so the
    // sweep (and its time advance) still happens.
    weight_scratch_.resize(m);
    double total = 0;
    for (ChunkId c = 0; c < m; ++c) {
      weight_scratch_[c] = static_cast<double>(rate_cache_->count(subset_index, c, chosen));
      total += weight_scratch_[c];
    }
    if (total > 0) {
      sampler_scratch_.assign(weight_scratch_);
      return sampler_scratch_.sample(uniform01(rng_));
    }
  }
  return static_cast<ChunkId>(uniform_below(rng_, m));
}

void TPndcaSimulator::set_metrics(obs::MetricsRegistry* registry) {
  Simulator::set_metrics(registry);
  step_timer_ = registry ? &registry->timer("tpndca/step") : nullptr;
  sweep_timer_ = registry ? &registry->timer("tpndca/sweep") : nullptr;
  rate_rechecks_ = registry ? &registry->counter("tpndca/rate_rechecks") : nullptr;
  boundary_rechecks_ = registry ? &registry->counter("tpndca/boundary_rechecks") : nullptr;
}

void TPndcaSimulator::mc_step() {
  const obs::ScopedTimer step_span(step_timer_);
  const obs::ScopedSpan step_trace(trace_, "tpndca/step", time_, counters_.steps);
  const double total_k = model_.total_rate();
  for (std::uint32_t sweep = 0; sweep < sweeps_per_step_; ++sweep) {
    const obs::ScopedTimer sweep_span(sweep_timer_);
    const obs::ScopedSpan sweep_trace(trace_, "tpndca/sweep", time_, counters_.steps);
    // select T_j with probability K_Tj / K
    const std::size_t j = sample_cumulative(subset_cumulative_, uniform01(rng_));
    const TypeSubset& sub = subsets_[j];

    // select a reaction type from T_j with probability k_i / K_Tj
    double target = uniform01(rng_) * sub.total_rate;
    ReactionIndex chosen = sub.types.back();
    for (const ReactionIndex i : sub.types) {
      const double k = model_.reaction(i).rate();
      if (target < k) {
        chosen = i;
        break;
      }
      target -= k;
    }
    const ReactionType& rt = model_.reaction(chosen);

    // select P_i from the subset's partition, then execute the chosen type
    // at every enabled site of the chunk. Same-chunk anchors of a single
    // type never overlap, so this whole sweep is a parallel batch.
    const ChunkId c = select_chunk(j, chosen);
    const Lattice& lat = config_.lattice();
    const auto fire_at = [&](SiteIndex s) {
      rt.execute(config_, s);
      record_execution(chosen);
      spatial_.fire(s);
      if (rate_cache_) {
        for (const Transform& t : rt.transforms()) {
          if (t.tg != kKeep) {
            const SiteIndex written = lat.neighbor(s, t.offset);
            rate_cache_->refresh_after(config_, written);
            if (rate_rechecks_ != nullptr) rate_rechecks_->add();
            // Cross-seam cache invalidation, classified against the
            // subset's own sub-partition (each subset has its own seams).
            if (boundary_rechecks_ != nullptr &&
                sub.chunks.chunk_of(written) != sub.chunks.chunk_of(s)) {
              boundary_rechecks_->add();
            }
          }
        }
      }
      if (fast_) resync_written(fast_->planes, config_, rt, s);
    };
    if (fast_ && fast_->safe[j][chosen]) {
      // One enabled mask per 64-site window replaces 64 scalar pattern
      // matches; the self-conflict gate above guarantees member bits are
      // what the scalar mid-sweep checks would have seen.
      const std::int32_t width = lat.width();
      for (const BatchWindow& w :
           fast_->windows.get(j, c, lat, sub.chunks.chunk(c))) {
        const std::uint64_t en = enabled_window(fast_->planes, rt, w.y, w.x0);
        for (std::uint64_t m = w.members; m != 0; m &= m - 1) {
          const auto f = static_cast<std::uint32_t>(std::countr_zero(m));
          const auto s = static_cast<SiteIndex>(
              static_cast<std::uint64_t>(w.y) * static_cast<std::uint64_t>(width) +
              static_cast<std::uint64_t>(w.x0) + f);
          spatial_.attempt(s);
          if ((en >> f) & 1u) fire_at(s);
          ++counters_.trials;
        }
      }
    } else {
      for (const SiteIndex s : sub.chunks.chunk(c)) {
        spatial_.attempt(s);
        if (rt.enabled(config_, s)) fire_at(s);
        ++counters_.trials;
      }
    }

    // One sweep stands for 1/sweeps_per_step of an MC step: advance by the
    // corresponding share of the mean MC-step duration 1/K.
    time_ += 1.0 / (total_k * static_cast<double>(sweeps_per_step_));
  }
  ++counters_.steps;
}

}  // namespace casurf
