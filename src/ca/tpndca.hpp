#pragma once

#include <cstdint>
#include <memory>

#include "ca/fastpath.hpp"
#include "ca/rate_cache.hpp"
#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "partition/type_partition.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {

/// Type-partitioned PNDCA (paper section 5, "Another approach using
/// partitions"; the generalization of Kortlüke's algorithm). The set of
/// reaction types T is split into subsets T_j whose patterns share a single
/// bond direction; because each inner sweep executes ONE reaction type at a
/// time, the non-overlap rule only has to separate a type from itself and a
/// two-chunk (checkerboard) partition suffices — doubling the concurrency
/// relative to the five-chunk full partition, at the price of less work per
/// sweep.
///
/// Per step, `sweeps_per_step` inner sweeps run; each selects a subset T_j
/// with probability K_Tj / K, a type within it with probability k_i / K_Tj,
/// a chunk of the subset's partition, and executes the type at every
/// enabled site of the chunk. The default sweeps count (the average chunk
/// count over subsets) makes the expected number of executions per step
/// match RSM's MC step for every type.
///
/// Chunk selection within a subset is uniform by default. With
/// `ChunkWeighting::kRateWeighted` it is weighted by the number of sites
/// where the *chosen type* is currently enabled in each chunk of the
/// subset's sub-partition (the rate factor k_i is common to the chunks, so
/// the enabled counts alone give the right distribution), served by the
/// incremental `EnabledRateCache` — one slot per subset. A type enabled
/// nowhere falls back to the uniform draw.
class TPndcaSimulator final : public Simulator {
 public:
  TPndcaSimulator(const ReactionModel& model, Configuration config,
                  std::vector<TypeSubset> subsets, std::uint64_t seed,
                  std::uint32_t sweeps_per_step = 0 /* 0 = auto */,
                  ChunkWeighting weighting = ChunkWeighting::kStructural);

  void mc_step() override;
  [[nodiscard]] std::string name() const override { return "TPNDCA"; }

  void set_metrics(obs::MetricsRegistry* registry) override;

  [[nodiscard]] const std::vector<TypeSubset>& subsets() const { return subsets_; }
  [[nodiscard]] const Partition* spatial_partition() const override {
    return &subsets_.front().chunks;
  }
  [[nodiscard]] std::uint32_t sweeps_per_step() const { return sweeps_per_step_; }
  [[nodiscard]] ChunkWeighting weighting() const { return weighting_; }

  /// The incremental enabled-rate cache (slot j == subset j's
  /// sub-partition), or nullptr under uniform chunk selection. For the
  /// invariant tests.
  [[nodiscard]] const EnabledRateCache* rate_cache() const { return rate_cache_.get(); }

  /// Checkpointing; the rate cache is rebuilt from the restored
  /// configuration rather than serialized.
  void save_state(StateWriter& w) const override;
  void restore_state(StateReader& r) override;

  /// Brute-force verifies the enabled-rate cache; repair rebuilds it.
  void audit_derived_state(AuditReport& report, bool repair) override;

  /// Test-only mutable cache access for the audit suite.
  [[nodiscard]] EnabledRateCache* mutable_rate_cache_for_test() {
    return rate_cache_.get();
  }

  /// Batched trial path: a sweep executes ONE type over a chunk, so the
  /// whole inner loop reduces to one 64-wide enabled mask per window. The
  /// gate is per (subset, type): the chosen type's self-conflict offsets
  /// must be separated by the subset's sub-partition (the property the
  /// two-chunk construction is built to provide); types that fail it — or
  /// hand-built partitions that never satisfy it — run the scalar loop for
  /// that sweep while the planes stay in sync.
  bool set_fast_path(bool on) override;
  [[nodiscard]] bool fast_path_active() const override { return fast_ != nullptr; }

 private:
  struct FastState {
    FastState(const Configuration& config, std::size_t num_subsets)
        : planes(config), windows(num_subsets) {}
    SpeciesBitplanes planes;
    WindowCache windows;
    // safe[j][t]: type t may run window-batched within subset j's chunks.
    std::vector<std::vector<char>> safe;
  };

  [[nodiscard]] ChunkId select_chunk(std::size_t subset_index, ReactionIndex chosen);

  std::vector<TypeSubset> subsets_;
  Xoshiro256 rng_;
  std::uint32_t sweeps_per_step_;
  ChunkWeighting weighting_;
  std::vector<double> subset_cumulative_;  // cumulative K_Tj
  std::unique_ptr<EnabledRateCache> rate_cache_;  // kRateWeighted only
  std::unique_ptr<FastState> fast_;
  std::vector<double> weight_scratch_;
  ChunkSampler sampler_scratch_;
  obs::Timer* step_timer_ = nullptr;           // tpndca/step
  obs::Timer* sweep_timer_ = nullptr;          // tpndca/sweep
  obs::Counter* rate_rechecks_ = nullptr;      // tpndca/rate_rechecks
  obs::Counter* boundary_rechecks_ = nullptr;  // tpndca/boundary_rechecks
};

}  // namespace casurf
