#include "core/audit.hpp"

#include "core/simulator.hpp"

namespace casurf {

std::string AuditReport::to_string() const {
  if (issues.empty()) return "audit: clean";
  std::string out = "audit: " + std::to_string(issues.size()) + " inconsistency(ies)";
  out += repaired ? " (repaired)\n" : "\n";
  for (const AuditIssue& issue : issues) {
    out += "  [" + issue.component + "] " + issue.detail + "\n";
  }
  return out;
}

AuditError::AuditError(AuditReport report)
    : std::runtime_error(report.to_string()), report_(std::move(report)) {}

AuditReport StateAuditor::run(Simulator& sim) {
  AuditReport report;
  sim.audit_derived_state(report, policy_ == AuditPolicy::kRepair);
  ++audits_;
  if (!report.clean()) {
    ++failures_;
    if (policy_ == AuditPolicy::kAbort) throw AuditError(std::move(report));
    report.repaired = true;
  }
  return report;
}

}  // namespace casurf
