#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace casurf {

class Simulator;

/// What StateAuditor does when a derived cache disagrees with the raw
/// configuration.
enum class AuditPolicy {
  kAbort,   ///< throw AuditError carrying the full diff report
  kRepair,  ///< rebuild the derived caches in place, log, continue
};

/// One detected inconsistency between a derived structure and the ground
/// truth recomputed from the raw configuration.
struct AuditIssue {
  std::string component;  ///< "config-counts", "vssm-enabled", "rate-cache", "frm-queue"
  std::string detail;     ///< human-readable expected-vs-actual description
};

/// Outcome of one audit pass.
struct AuditReport {
  std::vector<AuditIssue> issues;
  bool repaired = false;

  [[nodiscard]] bool clean() const { return issues.empty(); }

  /// Multi-line diff report, one line per issue.
  [[nodiscard]] std::string to_string() const;
};

/// Thrown under AuditPolicy::kAbort when an audit finds inconsistencies.
class AuditError : public std::runtime_error {
 public:
  explicit AuditError(AuditReport report);
  [[nodiscard]] const AuditReport& report() const { return report_; }

 private:
  AuditReport report_;
};

/// Opt-in invariant checker: recomputes every derived structure a simulator
/// maintains incrementally (per-species configuration counts, VSSM enabled
/// sets, FRM event-queue bookkeeping, the PNDCA enabled-rate cache) from the
/// raw configuration and compares. A mismatch means memory corruption, a
/// bookkeeping bug, or a tampered checkpoint; under kAbort the auditor
/// throws with a diff report, under kRepair it rebuilds the caches in place
/// (graceful degradation: the trajectory continues from a consistent state)
/// and records the discrepancy.
///
/// The per-algorithm recompute logic lives in Simulator::audit_derived_state
/// overrides; this class drives it, aggregates history, and applies the
/// policy.
class StateAuditor {
 public:
  explicit StateAuditor(AuditPolicy policy = AuditPolicy::kAbort) : policy_(policy) {}

  /// Audit one simulator. Returns the report (repaired == true when issues
  /// were found under kRepair); throws AuditError on issues under kAbort.
  AuditReport run(Simulator& sim);

  [[nodiscard]] AuditPolicy policy() const { return policy_; }
  [[nodiscard]] std::uint64_t audits_run() const { return audits_; }
  [[nodiscard]] std::uint64_t audits_failed() const { return failures_; }

 private:
  AuditPolicy policy_;
  std::uint64_t audits_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace casurf
