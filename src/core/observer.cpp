#include "core/observer.hpp"

#include <stdexcept>

#include "core/simulator.hpp"

namespace casurf {

void run_sampled(Simulator& sim, double t_end, double dt, Observer& obs) {
  if (!(dt > 0)) throw std::invalid_argument("run_sampled: dt must be positive");
  obs.sample(sim);
  double next = sim.time() + dt;
  while (next <= t_end) {
    sim.advance_to(next);
    obs.sample(sim);
    next = sim.time() + dt;
  }
}

}  // namespace casurf
