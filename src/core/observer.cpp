#include "core/observer.hpp"

#include <cstdint>
#include <stdexcept>

#include "core/simulator.hpp"

namespace casurf {

void run_sampled(Simulator& sim, double t_end, double dt, Observer& obs) {
  if (!(dt > 0)) throw std::invalid_argument("run_sampled: dt must be positive");
  obs.sample(sim);
  // True fixed grid t0 + k*dt, integer-indexed: the k-th target is computed
  // directly (never from the simulator's possibly-overshot time, which
  // would let the grid drift by up to one step per sample), and never by
  // repeated addition (which accumulates rounding error over long runs).
  const double t0 = sim.time();
  for (std::uint64_t k = 1;; ++k) {
    const double next = t0 + static_cast<double>(k) * dt;
    if (next > t_end) break;
    sim.advance_to(next);
    obs.sample(sim);
  }
}

}  // namespace casurf
