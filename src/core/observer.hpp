#pragma once

namespace casurf {

class Simulator;

/// Sampling hook: `run_sampled` calls `sample` on a fixed time grid.
class Observer {
 public:
  virtual ~Observer() = default;
  virtual void sample(const Simulator& sim) = 0;
};

/// Drive `sim` until `t_end`, invoking `obs.sample` on the fixed grid
/// t0 + k*dt, k = 0, 1, 2, ... (t0 = the simulator's starting time). The
/// grid is integer-indexed: an advance that overshoots its grid point never
/// shifts later targets, so every run samples the same instants. The state
/// observed is the first state at or past each grid point; trial-based
/// methods resolve the grid to one MC step, and a state that jumps past
/// several grid points is observed once per point (time-aware observers
/// such as CoverageRecorder deduplicate by timestamp).
void run_sampled(Simulator& sim, double t_end, double dt, Observer& obs);

}  // namespace casurf
