#pragma once

namespace casurf {

class Simulator;

/// Sampling hook: `run_sampled` calls `sample` on a fixed time grid.
class Observer {
 public:
  virtual ~Observer() = default;
  virtual void sample(const Simulator& sim) = 0;
};

/// Drive `sim` until `t_end`, invoking `obs.sample` at t = 0, dt, 2 dt, ...
/// (the simulator state observed is the first state at or past each grid
/// point; trial-based methods resolve the grid to one MC step).
void run_sampled(Simulator& sim, double t_end, double dt, Observer& obs);

}  // namespace casurf
