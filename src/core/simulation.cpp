#include "core/simulation.hpp"

#include <stdexcept>

#include "dmc/frm.hpp"
#include "dmc/rsm.hpp"
#include "dmc/vssm.hpp"
#include "parallel/parallel_pndca.hpp"
#include "partition/coloring.hpp"
#include "partition/type_partition.hpp"

namespace casurf {

namespace {

Partition partition_for(const ReactionModel& model, const Configuration& cfg,
                        const SimulationOptions& options) {
  if (options.partition) {
    if (!(options.partition->lattice() == cfg.lattice())) {
      throw std::invalid_argument("make_simulator: supplied partition has wrong lattice");
    }
    return *options.partition;
  }
  return make_partition(cfg.lattice(), model, options.conflict_policy);
}

}  // namespace

namespace {

std::unique_ptr<Simulator> build_simulator(const ReactionModel& model,
                                           Configuration initial,
                                           const SimulationOptions& options) {
  switch (options.algorithm) {
    case Algorithm::kRsm:
      return std::make_unique<RsmSimulator>(model, std::move(initial), options.seed,
                                            options.time_mode);
    case Algorithm::kVssm:
      return std::make_unique<VssmSimulator>(model, std::move(initial), options.seed);
    case Algorithm::kFrm:
      return std::make_unique<FrmSimulator>(model, std::move(initial), options.seed);
    case Algorithm::kNdca:
      return std::make_unique<NdcaSimulator>(model, std::move(initial), options.seed,
                                             options.time_mode);
    case Algorithm::kPndca: {
      Partition p = partition_for(model, initial, options);
      return std::make_unique<PndcaSimulator>(model, std::move(initial),
                                              std::vector<Partition>{std::move(p)},
                                              options.seed, options.chunk_policy,
                                              options.time_mode);
    }
    case Algorithm::kLPndca: {
      Partition p = partition_for(model, initial, options);
      return std::make_unique<LPndcaSimulator>(model, std::move(initial), std::move(p),
                                               options.seed, options.l_trials,
                                               options.time_mode);
    }
    case Algorithm::kTPndca: {
      auto subsets = make_type_partition(initial.lattice(), model);
      return std::make_unique<TPndcaSimulator>(model, std::move(initial),
                                               std::move(subsets), options.seed,
                                               options.tpndca_sweeps);
    }
    case Algorithm::kParallelPndca: {
      Partition p = partition_for(model, initial, options);
      return std::make_unique<ParallelPndcaEngine>(
          model, std::move(initial), std::vector<Partition>{std::move(p)}, options.seed,
          options.threads, options.chunk_policy, options.time_mode);
    }
  }
  throw std::logic_error("make_simulator: unknown algorithm");
}

}  // namespace

std::unique_ptr<Simulator> make_simulator(const ReactionModel& model,
                                          Configuration initial,
                                          const SimulationOptions& options) {
  std::unique_ptr<Simulator> sim = build_simulator(model, std::move(initial), options);
  if (options.fast_path) sim->set_fast_path(true);
  return sim;
}

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kRsm: return "RSM";
    case Algorithm::kVssm: return "VSSM";
    case Algorithm::kFrm: return "FRM";
    case Algorithm::kNdca: return "NDCA";
    case Algorithm::kPndca: return "PNDCA";
    case Algorithm::kLPndca: return "L-PNDCA";
    case Algorithm::kTPndca: return "TPNDCA";
    case Algorithm::kParallelPndca: return "PNDCA(threads)";
  }
  return "?";
}

}  // namespace casurf
