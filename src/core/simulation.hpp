#pragma once

#include <memory>

#include "ca/lpndca.hpp"
#include "ca/ndca.hpp"
#include "ca/pndca.hpp"
#include "ca/tpndca.hpp"
#include "core/simulator.hpp"
#include "partition/conflict.hpp"

namespace casurf {

/// Every simulation algorithm in the library, exact and approximate.
enum class Algorithm {
  kRsm,            ///< Random Selection Method (exact DMC, paper section 3)
  kVssm,           ///< Gillespie direct method (exact, event-driven)
  kFrm,            ///< First Reaction Method (exact, event-driven)
  kNdca,           ///< Non-deterministic CA (paper section 4)
  kPndca,          ///< Partitioned NDCA (paper section 5)
  kLPndca,         ///< L-PNDCA general structure (paper section 5)
  kTPndca,         ///< Type-partitioned PNDCA (paper section 5)
  kParallelPndca,  ///< PNDCA executed on the thread pool
};

/// One options bag for the whole family; algorithm-specific fields are
/// ignored where not applicable.
struct SimulationOptions {
  Algorithm algorithm = Algorithm::kRsm;
  std::uint64_t seed = 1;
  TimeMode time_mode = TimeMode::kStochastic;

  // PNDCA family. When no explicit partition is given, a minimal valid one
  // is derived from the model with make_partition().
  ChunkPolicy chunk_policy = ChunkPolicy::kRandomOrder;
  ConflictPolicy conflict_policy = ConflictPolicy::kFullNeighborhood;
  std::shared_ptr<const Partition> partition;  ///< optional override

  std::uint32_t l_trials = 1;    ///< L of L-PNDCA
  unsigned threads = 2;          ///< worker count of the parallel engine
  std::uint32_t tpndca_sweeps = 0;  ///< 0 = auto

  /// Request the batched bitplane trial path (PNDCA family). Best effort:
  /// algorithms without one, builds with CASURF_FASTPATH=OFF, and
  /// partitions failing the runtime non-overlap gate silently keep the
  /// scalar reference loop — query Simulator::fast_path_active() to see
  /// what engaged. Trajectories are bit-identical either way.
  bool fast_path = false;
};

/// Build a ready-to-run simulator for `model` starting from `initial`.
/// The model must outlive the simulator. This is the single entry point
/// the examples and most benchmarks use; direct construction of the
/// individual simulator classes remains available for finer control.
[[nodiscard]] std::unique_ptr<Simulator> make_simulator(const ReactionModel& model,
                                                        Configuration initial,
                                                        const SimulationOptions& options);

/// Human-readable name of an algorithm enumerator.
[[nodiscard]] const char* algorithm_name(Algorithm a);

}  // namespace casurf
