#include "core/simulator.hpp"

namespace casurf {

void Simulator::advance_to(double t) {
  while (time_ < t) {
    const double before = time_;
    mc_step();
    if (time_ <= before) {
      // No progress is only possible in an absorbing state (every rate
      // gated off); jump to the target instead of spinning.
      time_ = t;
      break;
    }
  }
}

}  // namespace casurf
