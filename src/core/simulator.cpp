#include "core/simulator.hpp"

#include "obs/trace.hpp"

namespace casurf {

void Simulator::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer != nullptr) {
    trace_ = &tracer->ring(0);
    tracer->set_thread_name(0, "main");
  } else {
    trace_ = nullptr;
  }
}

void Simulator::advance_to(double t) {
  while (time_ < t) {
    const double before = time_;
    mc_step();
    if (time_ <= before) {
      // No progress is only possible in an absorbing state (every rate
      // gated off); jump to the target instead of spinning.
      time_ = t;
      break;
    }
  }
}

void Simulator::save_state(StateWriter& w) const {
  w.section("sim-core");
  w.f64(time_);
  w.u64(counters_.trials);
  w.u64(counters_.executed);
  w.u64(counters_.steps);
  w.vec_u64(counters_.executed_per_type);
  w.section("config");
  w.u64(static_cast<std::uint64_t>(config_.size()));
  w.bytes(config_.raw().data(), config_.raw().size());
}

void Simulator::restore_state(StateReader& r) {
  r.expect_section("sim-core");
  time_ = r.f64();
  counters_.trials = r.u64();
  counters_.executed = r.u64();
  counters_.steps = r.u64();
  counters_.executed_per_type =
      r.vec_u64<std::uint64_t>(model_.num_reactions(), "executed_per_type");
  r.expect_section("config");
  const std::uint64_t n = r.u64();
  if (n != static_cast<std::uint64_t>(config_.size())) {
    throw StateFormatError("configuration has " + std::to_string(n) +
                           " sites, simulator expects " + std::to_string(config_.size()));
  }
  std::vector<Species> state(static_cast<std::size_t>(n));
  r.bytes(state.data(), state.size());
  for (const Species s : state) {
    if (s >= config_.num_species()) {
      throw StateFormatError("species value " + std::to_string(int{s}) +
                             " out of domain (" + std::to_string(config_.num_species()) +
                             " species)");
    }
  }
  config_.assign(state);
}

void Simulator::audit_derived_state(AuditReport& report, bool repair) {
  if (!config_.counts_consistent()) {
    report.issues.push_back(
        {"config-counts",
         "per-species site counts disagree with a recount of the raw state"});
    if (repair) config_.recount();
  }
}

}  // namespace casurf
