#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/state_io.hpp"
#include "lattice/configuration.hpp"
#include "model/reaction_model.hpp"
#include "obs/spatial.hpp"

namespace casurf {

class Partition;

namespace obs {
class MetricsRegistry;
class Tracer;
class TraceRing;
}

/// How simulated time advances per trial (paper section 3).
enum class TimeMode {
  /// Draw each increment from the exponential distribution 1 - exp(-N K t),
  /// the Master-Equation-faithful choice.
  kStochastic,
  /// Fixed increment 1 / (N K): RSM read as a time discretization of the
  /// Master Equation. Cheaper and variance-free; same mean.
  kDeterministic,
};

/// Execution statistics common to all simulators.
struct SimCounters {
  std::uint64_t trials = 0;    ///< attempted (site, reaction-type) selections
  std::uint64_t executed = 0;  ///< trials that fired an enabled reaction
  std::uint64_t steps = 0;     ///< completed natural steps (MC steps / events)
  std::vector<std::uint64_t> executed_per_type;

  [[nodiscard]] double acceptance() const {
    return trials == 0 ? 0.0 : static_cast<double>(executed) / static_cast<double>(trials);
  }
};

/// Common interface of every simulation algorithm in the library, exact
/// (DMC) and approximate (CA family) alike. A simulator owns its
/// configuration and advances it through simulated time; the reaction model
/// is borrowed and must outlive the simulator.
class Simulator {
 public:
  virtual ~Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Perform one natural step of the algorithm: one MC step (N trials) for
  /// trial-based methods, one executed event for event-driven DMC, one
  /// synchronous sweep for cellular automata.
  virtual void mc_step() = 0;

  /// Current simulated time.
  [[nodiscard]] double time() const { return time_; }

  /// Advance until time() >= t (no-op if already past). Granularity is one
  /// natural step; trial-based methods may overshoot by up to one MC step.
  /// In an absorbing state (no reaction can ever fire again) implementations
  /// jump time() to t rather than loop forever.
  virtual void advance_to(double t);

  [[nodiscard]] const Configuration& configuration() const { return config_; }
  [[nodiscard]] Configuration& configuration() { return config_; }

  [[nodiscard]] const ReactionModel& model() const { return model_; }
  [[nodiscard]] const SimCounters& counters() const { return counters_; }

  /// Human-readable algorithm name ("RSM", "PNDCA", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Attach a metrics registry (nullptr detaches). Implementations resolve
  /// their probes by name once, here, and keep raw pointers; the hot path
  /// then pays one branch per probe when detached. Probes never read or
  /// write simulation state or RNG streams, so trajectories are
  /// bit-identical with metrics on or off. The registry is borrowed and
  /// must outlive the simulator (or be detached first).
  virtual void set_metrics(obs::MetricsRegistry* registry) { metrics_ = registry; }

  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attach a structured-event tracer (nullptr detaches). Same contract as
  /// set_metrics: the base resolves ring 0 (the simulation thread) once and
  /// the hot path pays one branch per span when detached; span recording
  /// never touches simulation state or RNG streams, so trajectories are
  /// bit-identical with tracing on or off. The threaded engine override
  /// additionally resolves one ring per worker. The tracer is borrowed and
  /// must outlive the simulator (or be detached first).
  virtual void set_tracer(obs::Tracer* tracer);

  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Request the batched (bitplane) trial path. Returns whether it engaged;
  /// false means the simulator keeps its scalar reference loop — either the
  /// algorithm has no batched path, the build disabled it (CASURF_FASTPATH
  /// =OFF), or a runtime gate failed (e.g. the partition does not satisfy
  /// the non-overlap rule the batch evaluation relies on). Engaged or not,
  /// the trajectory is identical: the fast path is an implementation of the
  /// same per-trial semantics, bit for bit, and the determinism suite
  /// (test_fastpath) holds every algorithm to that.
  virtual bool set_fast_path(bool on) {
    (void)on;
    return false;
  }

  /// Whether the batched trial path is currently driving this simulator.
  [[nodiscard]] virtual bool fast_path_active() const { return false; }

  /// Attach a per-site activity map (nullptr detaches). Same contract as
  /// set_metrics/set_tracer: the probe is resolved once, recording is a
  /// pair of plain increments that never touch simulation state or RNG
  /// streams, so trajectories are bit-identical with the map on or off
  /// (and the whole thing compiles out under CASURF_METRICS=OFF). The map
  /// is borrowed and must outlive the simulator (or be detached first).
  virtual void set_spatial(obs::SpatialMap* map) { spatial_.attach(map); }

  [[nodiscard]] const obs::SpatialMap* spatial_map() const { return spatial_.map(); }

  /// The partition that spatial accounting (per-chunk activity, seam
  /// classification) should aggregate on, or nullptr for unpartitioned
  /// algorithms (DMC, NDCA). Multi-partition simulators return their first
  /// partition — chunk aggregation is a diagnostic view, not a trajectory
  /// input, and one representative seam geometry is what a heatmap can
  /// meaningfully overlay.
  [[nodiscard]] virtual const Partition* spatial_partition() const { return nullptr; }

  /// Serialize the full simulator state — configuration, simulated time,
  /// counters, RNG state, and every algorithm-internal structure whose
  /// content is not a pure function of the configuration (event queues,
  /// enabled-set orderings, sweep counters). Overrides call the base first,
  /// then append their own sections; restore_state on an identically
  /// constructed simulator must reproduce the trajectory bit for bit.
  virtual void save_state(StateWriter& w) const;

  /// Inverse of save_state. The simulator must have been constructed with
  /// the same model, lattice, and constructor options as the saved one
  /// (the checkpoint layer validates this); throws StateFormatError on a
  /// stream that is truncated, misaligned, or inconsistent with them.
  virtual void restore_state(StateReader& r);

  /// Recompute every derived structure from the raw configuration and
  /// compare (see StateAuditor). Appends one AuditIssue per mismatch; when
  /// `repair`, also rebuilds the offending structure in place. The base
  /// implementation audits the configuration's per-species counts;
  /// overrides add their own caches.
  virtual void audit_derived_state(AuditReport& report, bool repair);

 protected:
  Simulator(const ReactionModel& model, Configuration config)
      : model_(model), config_(std::move(config)) {
    model.validate();
    counters_.executed_per_type.assign(model.num_reactions(), 0);
  }

  void record_execution(ReactionIndex rt) {
    ++counters_.executed;
    ++counters_.executed_per_type[rt];
  }

  const ReactionModel& model_;
  Configuration config_;
  SimCounters counters_;
  double time_ = 0.0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::TraceRing* trace_ = nullptr;  ///< ring 0; null = tracing off
  obs::SpatialProbe spatial_;        ///< per-site activity; empty when off
};

}  // namespace casurf
