#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace casurf {

/// Error raised by StateReader on any malformed, truncated, or
/// wrong-section input. Checkpoint loading converts these into rejection of
/// the file — state restoration must never crash or silently misparse.
class StateFormatError : public std::runtime_error {
 public:
  explicit StateFormatError(const std::string& message)
      : std::runtime_error("state: " + message) {}
};

/// Append-only binary encoder for simulator state. Fixed-width
/// little-endian integers and bit-exact doubles (no text round-trip), so a
/// save/restore cycle reproduces the simulator word for word — the
/// foundation of bit-identical resume. Length-prefixed section markers give
/// the reader self-describing error locality instead of silent misalignment.
class StateWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v), 8); }

  /// Bit-exact: the double's object representation, not a decimal rendering.
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Named section marker; StateReader::expect_section verifies it, turning
  /// any writer/reader drift into a descriptive error instead of garbage.
  void section(std::string_view name) {
    u8(kSectionTag);
    str(name);
  }

  template <class T>
  void vec_u64(const std::vector<T>& v) {
    u64(v.size());
    for (const T& x : v) u64(static_cast<std::uint64_t>(x));
  }

  void vec_f64(const std::vector<double>& v) {
    u64(v.size());
    for (const double x : v) f64(x);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  static constexpr std::uint8_t kSectionTag = 0xA5;

  void put_le(std::uint64_t v, int nbytes) {
    for (int i = 0; i < nbytes; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked decoder for StateWriter streams. Every read validates the
/// remaining length first and throws StateFormatError on underflow, so a
/// truncated or bit-flipped stream fails loudly at the offending field.
class StateReader {
 public:
  explicit StateReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4, "u32")); }
  std::uint64_t u64() { return get_le(8, "u64"); }
  std::int64_t i64() { return static_cast<std::int64_t>(get_le(8, "i64")); }

  double f64() {
    const std::uint64_t bits = get_le(8, "f64");
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint64_t n = u64();
    if (n > kMaxString) throw StateFormatError("string length " + std::to_string(n) + " implausible");
    need(static_cast<std::size_t>(n), "string body");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  void bytes(void* out, std::size_t n) {
    need(n, "byte block");
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }

  /// Consume a section marker, verifying the name matches.
  void expect_section(std::string_view name) {
    if (u8() != kSectionTag) {
      throw StateFormatError("expected section marker for '" + std::string(name) + "'");
    }
    const std::string found = str();
    if (found != name) {
      throw StateFormatError("expected section '" + std::string(name) + "', found '" +
                             found + "'");
    }
  }

  /// Length-checked vector read: `expected` of SIZE_MAX means any length.
  template <class T>
  std::vector<T> vec_u64(std::size_t expected = SIZE_MAX, const char* what = "vector") {
    const std::uint64_t n = u64();
    if (expected != SIZE_MAX && n != expected) {
      throw StateFormatError(std::string(what) + ": expected " + std::to_string(expected) +
                             " elements, found " + std::to_string(n));
    }
    need_at_least(static_cast<std::size_t>(n), 8, what);
    std::vector<T> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = static_cast<T>(u64());
    return v;
  }

  std::vector<double> vec_f64(std::size_t expected = SIZE_MAX,
                              const char* what = "vector") {
    const std::uint64_t n = u64();
    if (expected != SIZE_MAX && n != expected) {
      throw StateFormatError(std::string(what) + ": expected " + std::to_string(expected) +
                             " elements, found " + std::to_string(n));
    }
    need_at_least(static_cast<std::size_t>(n), 8, what);
    std::vector<double> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = f64();
    return v;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

  /// Restoration must consume the stream exactly; trailing bytes mean the
  /// writer and reader disagree about the format.
  void expect_end() const {
    if (!at_end()) {
      throw StateFormatError(std::to_string(remaining()) + " unconsumed trailing bytes");
    }
  }

 private:
  static constexpr std::uint8_t kSectionTag = 0xA5;
  static constexpr std::uint64_t kMaxString = 1u << 20;

  void need(std::size_t n, const char* what) const {
    if (data_.size() - pos_ < n) {
      throw StateFormatError(std::string("truncated input reading ") + what + " at offset " +
                             std::to_string(pos_));
    }
  }

  /// Guard vector headers against corrupted lengths: `n` elements of
  /// `elem_size` bytes must not exceed what the stream can still hold.
  void need_at_least(std::size_t n, std::size_t elem_size, const char* what) const {
    if (n > (data_.size() - pos_) / elem_size) {
      throw StateFormatError(std::string(what) + ": element count " + std::to_string(n) +
                             " exceeds remaining stream");
    }
  }

  std::uint64_t get_le(int nbytes, const char* what) {
    need(static_cast<std::size_t>(nbytes), what);
    std::uint64_t v = 0;
    for (int i = 0; i < nbytes; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += static_cast<std::size_t>(nbytes);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace casurf
