#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "lattice/lattice.hpp"
#include "model/reaction_model.hpp"

namespace casurf {

/// Visit every (reaction type, anchor) pair whose enabledness may have been
/// affected by a change at site `changed`: a change at z can only flip type
/// i anchored at z - o for offsets o in the type's neighborhood. The visitor
/// receives (type index, anchor site, enabledness of the type at that anchor
/// in the current configuration). Rechecks are idempotent, so duplicate
/// candidates across several changed sites are harmless.
///
/// This is the anchor-recheck kernel shared by the event-driven DMC
/// bookkeeping (`VssmSimulator::refresh_around`) and the per-chunk
/// enabled-rate cache of the rate-weighted PNDCA policies
/// (`EnabledRateCache::refresh_after`).
template <class Visitor>
void visit_recheck_anchors(const ReactionModel& model, const Configuration& cfg,
                           SiteIndex changed, Visitor&& visit) {
  const Lattice& lat = cfg.lattice();
  const auto num = static_cast<ReactionIndex>(model.num_reactions());
  for (ReactionIndex i = 0; i < num; ++i) {
    const ReactionType& rt = model.reaction(i);
    for (const Vec2 o : rt.neighborhood()) {
      const SiteIndex anchor = lat.neighbor(changed, -o);
      visit(i, anchor, rt.enabled(cfg, anchor));
    }
  }
}

/// Dense set of lattice sites with O(1) insert, erase, membership and
/// uniform sampling: the classic vector + position-index trick. One
/// instance per reaction type tracks where that type is currently enabled;
/// this is the bookkeeping that makes VSSM event selection O(1).
class EnabledSet {
 public:
  explicit EnabledSet(SiteIndex num_sites)
      : pos_(num_sites, kAbsent) {}

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool contains(SiteIndex s) const { return pos_[s] != kAbsent; }

  /// Idempotent insert.
  void insert(SiteIndex s) {
    if (contains(s)) return;
    pos_[s] = static_cast<std::uint32_t>(items_.size());
    items_.push_back(s);
  }

  /// Remove every element (audit repair / state restore keep the set's
  /// capacity and rebuild membership in a chosen order).
  void clear() {
    for (const SiteIndex s : items_) pos_[s] = kAbsent;
    items_.clear();
  }

  /// Idempotent erase (swap-with-last).
  void erase(SiteIndex s) {
    const std::uint32_t p = pos_[s];
    if (p == kAbsent) return;
    const SiteIndex last = items_.back();
    items_[p] = last;
    pos_[last] = p;
    items_.pop_back();
    pos_[s] = kAbsent;
  }

  /// Element at dense position i (0 <= i < size()); the basis of uniform
  /// sampling.
  [[nodiscard]] SiteIndex at(std::size_t i) const {
    assert(i < items_.size());
    return items_[i];
  }

  [[nodiscard]] const std::vector<SiteIndex>& items() const { return items_; }

 private:
  static constexpr std::uint32_t kAbsent = std::numeric_limits<std::uint32_t>::max();

  std::vector<SiteIndex> items_;
  std::vector<std::uint32_t> pos_;
};

}  // namespace casurf
