#include "dmc/frm.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "rng/distributions.hpp"

namespace casurf {

FrmSimulator::FrmSimulator(const ReactionModel& model, Configuration config,
                           std::uint64_t seed)
    : Simulator(model, std::move(config)), rng_(seed) {
  const std::size_t pairs = static_cast<std::size_t>(model.num_reactions()) * config_.size();
  generation_.assign(pairs, 0);
  enabled_flag_.assign(pairs, 0);
  for (ReactionIndex i = 0; i < model_.num_reactions(); ++i) {
    for (SiteIndex s = 0; s < config_.size(); ++s) sync_pair(i, s);
  }
}

void FrmSimulator::push_event(const Event& ev) {
  queue_.push_back(ev);
  std::push_heap(queue_.begin(), queue_.end());
}

void FrmSimulator::pop_event() {
  std::pop_heap(queue_.begin(), queue_.end());
  queue_.pop_back();
}

void FrmSimulator::sync_pair(ReactionIndex rt, SiteIndex s) {
  const std::size_t p = pair_index(rt, s);
  const bool now = model_.reaction(rt).enabled(config_, s);
  const bool was = enabled_flag_[p] != 0;
  if (now == was) return;
  enabled_flag_[p] = now ? 1 : 0;
  ++generation_[p];  // invalidates any queued event for this pair
  if (now) {
    ++enabled_pairs_;
    // Memorylessness of the exponential lets us draw the tentative firing
    // time fresh from "now" at every disabled->enabled transition.
    push_event(Event{time_ + exponential(rng_, model_.reaction(rt).rate()),
                     s, rt, generation_[p]});
  } else {
    --enabled_pairs_;
  }
}

void FrmSimulator::refresh_around(SiteIndex changed) {
  const Lattice& lat = config_.lattice();
  for (ReactionIndex i = 0; i < model_.num_reactions(); ++i) {
    for (const Vec2 o : model_.reaction(i).neighborhood()) {
      sync_pair(i, lat.neighbor(changed, -o));
    }
  }
}

bool FrmSimulator::drop_stale_heads() {
  // Pop until the head is a live event: generation matches and the pair is
  // still flagged enabled. Returns false when no live event remains.
  while (!queue_.empty()) {
    const Event& ev = queue_.front();
    const std::size_t p = pair_index(ev.type, ev.site);
    if (ev.generation != generation_[p] || enabled_flag_[p] == 0) {
      pop_event();
      if (stale_dropped_ != nullptr) stale_dropped_->add();
      continue;
    }
    return true;
  }
  return false;
}

void FrmSimulator::set_metrics(obs::MetricsRegistry* registry) {
  Simulator::set_metrics(registry);
  step_timer_ = registry ? &registry->timer("frm/step") : nullptr;
  stale_dropped_ = registry ? &registry->counter("frm/stale_dropped") : nullptr;
}

void FrmSimulator::execute_head() {
  const Event ev = queue_.front();
  pop_event();
  time_ = ev.when;
  const std::size_t p = pair_index(ev.type, ev.site);

  const ReactionType& rt = model_.reaction(ev.type);
  write_buffer_.clear();
  const Lattice& lat = config_.lattice();
  for (const Transform& t : rt.transforms()) {
    if (t.tg != kKeep) write_buffer_.push_back(lat.neighbor(ev.site, t.offset));
  }
  rt.execute(config_, ev.site);
  record_execution(ev.type);
  // Event-driven selection never rejects: every attempt fires.
  spatial_.attempt(ev.site);
  spatial_.fire(ev.site);
  ++counters_.trials;
  ++counters_.steps;

  // The fired pair itself: if still enabled in the new state it needs a
  // fresh draw; force the transition by marking it disabled first.
  enabled_flag_[p] = 0;
  --enabled_pairs_;
  ++generation_[p];
  sync_pair(ev.type, ev.site);

  for (const SiteIndex z : write_buffer_) refresh_around(z);
}

void FrmSimulator::mc_step() {
  const obs::ScopedTimer span(step_timer_);
  const obs::ScopedSpan trace(trace_, "frm/step", time_, counters_.steps);
  if (drop_stale_heads()) execute_head();
  // Empty queue: absorbing state; advance_to() handles time.
}

void FrmSimulator::advance_to(double t) {
  // Events have absolute firing times, so the head beyond t simply stays
  // scheduled; the state AT t is exact.
  while (time_ < t) {
    if (!drop_stale_heads()) {
      time_ = t;
      return;
    }
    if (queue_.front().when > t) {
      time_ = t;
      return;
    }
    const obs::ScopedTimer span(step_timer_);
    const obs::ScopedSpan trace(trace_, "frm/step", time_, counters_.steps);
    execute_head();
  }
}

void FrmSimulator::save_state(StateWriter& w) const {
  Simulator::save_state(w);
  w.section("frm");
  rng_.save(w);
  w.vec_u64(generation_);
  w.u64(enabled_flag_.size());
  w.bytes(enabled_flag_.data(), enabled_flag_.size());
  w.u64(enabled_pairs_);
  w.u64(queue_.size());
  for (const Event& ev : queue_) {
    w.f64(ev.when);
    w.u64(ev.site);
    w.u64(ev.type);
    w.u64(ev.generation);
  }
}

void FrmSimulator::restore_state(StateReader& r) {
  Simulator::restore_state(r);
  r.expect_section("frm");
  rng_.restore(r);
  const std::size_t pairs = generation_.size();
  generation_ = r.vec_u64<std::uint32_t>(pairs, "frm generations");
  const std::uint64_t nflags = r.u64();
  if (nflags != pairs) {
    throw StateFormatError("frm enabled-flag table has " + std::to_string(nflags) +
                           " entries, expected " + std::to_string(pairs));
  }
  enabled_flag_.assign(pairs, 0);
  r.bytes(enabled_flag_.data(), pairs);
  enabled_pairs_ = r.u64();
  std::uint64_t live = 0;
  for (const std::uint8_t f : enabled_flag_) live += f;
  if (live != enabled_pairs_) {
    throw StateFormatError("frm enabled-pair count " + std::to_string(enabled_pairs_) +
                           " disagrees with flag table (" + std::to_string(live) + ")");
  }
  const std::uint64_t nq = r.u64();
  if (nq > static_cast<std::uint64_t>(r.remaining()) / 32) {
    throw StateFormatError("frm queue length " + std::to_string(nq) +
                           " exceeds remaining stream");
  }
  queue_.clear();
  queue_.reserve(static_cast<std::size_t>(nq));
  for (std::uint64_t i = 0; i < nq; ++i) {
    Event ev;
    ev.when = r.f64();
    ev.site = static_cast<SiteIndex>(r.u64());
    ev.type = static_cast<ReactionIndex>(r.u64());
    ev.generation = static_cast<std::uint32_t>(r.u64());
    if (ev.site >= config_.size() || ev.type >= model_.num_reactions()) {
      throw StateFormatError("frm queued event references (type " +
                             std::to_string(ev.type) + ", site " +
                             std::to_string(ev.site) + ") out of range");
    }
    // Saved verbatim from a valid heap, so the array is restored verbatim —
    // no re-heapify, preserving pop order even among equal keys.
    queue_.push_back(ev);
  }
  if (!std::is_heap(queue_.begin(), queue_.end())) {
    throw StateFormatError("frm queue is not a valid heap");
  }
}

void FrmSimulator::audit_derived_state(AuditReport& report, bool repair) {
  Simulator::audit_derived_state(report, repair);
  bool any = false;

  // Flags vs recomputed enabledness, and the flag-count invariant.
  std::uint64_t live_flags = 0;
  for (ReactionIndex i = 0; i < model_.num_reactions(); ++i) {
    const ReactionType& rt = model_.reaction(i);
    for (SiteIndex s = 0; s < config_.size(); ++s) {
      const bool truth = rt.enabled(config_, s);
      const bool cached = enabled_flag_[pair_index(i, s)] != 0;
      if (cached) ++live_flags;
      if (truth == cached) continue;
      any = true;
      if (report.issues.size() < 64) {
        report.issues.push_back(
            {"frm-queue", "pair (type " + std::to_string(i) + ", site " +
                              std::to_string(s) + "): flag says " +
                              (cached ? "enabled" : "disabled") +
                              ", recompute says " + (truth ? "enabled" : "disabled")});
      }
    }
  }
  if (live_flags != enabled_pairs_) {
    any = true;
    report.issues.push_back(
        {"frm-queue", "enabled-pair counter " + std::to_string(enabled_pairs_) +
                          " disagrees with flag table (" + std::to_string(live_flags) +
                          ")"});
  }

  // Every enabled pair must be covered by exactly one live queued event.
  std::vector<std::uint8_t> covered(generation_.size(), 0);
  for (const Event& ev : queue_) {
    const std::size_t p = pair_index(ev.type, ev.site);
    if (ev.generation != generation_[p] || enabled_flag_[p] == 0) continue;  // stale
    if (covered[p]) {
      any = true;
      report.issues.push_back(
          {"frm-queue", "pair (type " + std::to_string(ev.type) + ", site " +
                            std::to_string(ev.site) + ") has multiple live events"});
    }
    covered[p] = 1;
  }
  for (std::size_t p = 0; p < covered.size() && report.issues.size() < 96; ++p) {
    if (enabled_flag_[p] != 0 && !covered[p]) {
      any = true;
      report.issues.push_back(
          {"frm-queue", "enabled pair index " + std::to_string(p) +
                            " has no live queued event"});
    }
  }

  if (any && repair) {
    // Full resynchronization: recompute flags from the configuration, drop
    // the whole queue, and redraw a tentative time for every enabled pair.
    // The redraw consumes fresh randomness — correct kinetics from here on,
    // though not the trajectory an uncorrupted run would have taken.
    queue_.clear();
    enabled_pairs_ = 0;
    for (ReactionIndex i = 0; i < model_.num_reactions(); ++i) {
      const ReactionType& rt = model_.reaction(i);
      for (SiteIndex s = 0; s < config_.size(); ++s) {
        const std::size_t p = pair_index(i, s);
        ++generation_[p];  // invalidate anything that referenced the old state
        const bool now = rt.enabled(config_, s);
        enabled_flag_[p] = now ? 1 : 0;
        if (now) {
          ++enabled_pairs_;
          push_event(Event{time_ + exponential(rng_, rt.rate()), s, i, generation_[p]});
        }
      }
    }
  }
}

void FrmSimulator::corrupt_pair_for_test(ReactionIndex rt, SiteIndex s) {
  enabled_flag_[pair_index(rt, s)] ^= 1;
}

}  // namespace casurf
