#include "dmc/frm.hpp"

#include "rng/distributions.hpp"

namespace casurf {

FrmSimulator::FrmSimulator(const ReactionModel& model, Configuration config,
                           std::uint64_t seed)
    : Simulator(model, std::move(config)), rng_(seed) {
  const std::size_t pairs = static_cast<std::size_t>(model.num_reactions()) * config_.size();
  generation_.assign(pairs, 0);
  enabled_flag_.assign(pairs, 0);
  for (ReactionIndex i = 0; i < model_.num_reactions(); ++i) {
    for (SiteIndex s = 0; s < config_.size(); ++s) sync_pair(i, s);
  }
}

void FrmSimulator::sync_pair(ReactionIndex rt, SiteIndex s) {
  const std::size_t p = pair_index(rt, s);
  const bool now = model_.reaction(rt).enabled(config_, s);
  const bool was = enabled_flag_[p] != 0;
  if (now == was) return;
  enabled_flag_[p] = now ? 1 : 0;
  ++generation_[p];  // invalidates any queued event for this pair
  if (now) {
    ++enabled_pairs_;
    // Memorylessness of the exponential lets us draw the tentative firing
    // time fresh from "now" at every disabled->enabled transition.
    queue_.push(Event{time_ + exponential(rng_, model_.reaction(rt).rate()),
                      s, rt, generation_[p]});
  } else {
    --enabled_pairs_;
  }
}

void FrmSimulator::refresh_around(SiteIndex changed) {
  const Lattice& lat = config_.lattice();
  for (ReactionIndex i = 0; i < model_.num_reactions(); ++i) {
    for (const Vec2 o : model_.reaction(i).neighborhood()) {
      sync_pair(i, lat.neighbor(changed, -o));
    }
  }
}

bool FrmSimulator::drop_stale_heads() {
  // Pop until the head is a live event: generation matches and the pair is
  // still flagged enabled. Returns false when no live event remains.
  while (!queue_.empty()) {
    const Event& ev = queue_.top();
    const std::size_t p = pair_index(ev.type, ev.site);
    if (ev.generation != generation_[p] || enabled_flag_[p] == 0) {
      queue_.pop();
      continue;
    }
    return true;
  }
  return false;
}

void FrmSimulator::execute_head() {
  const Event ev = queue_.top();
  queue_.pop();
  time_ = ev.when;
  const std::size_t p = pair_index(ev.type, ev.site);

  const ReactionType& rt = model_.reaction(ev.type);
  write_buffer_.clear();
  const Lattice& lat = config_.lattice();
  for (const Transform& t : rt.transforms()) {
    if (t.tg != kKeep) write_buffer_.push_back(lat.neighbor(ev.site, t.offset));
  }
  rt.execute(config_, ev.site);
  record_execution(ev.type);
  ++counters_.trials;
  ++counters_.steps;

  // The fired pair itself: if still enabled in the new state it needs a
  // fresh draw; force the transition by marking it disabled first.
  enabled_flag_[p] = 0;
  --enabled_pairs_;
  ++generation_[p];
  sync_pair(ev.type, ev.site);

  for (const SiteIndex z : write_buffer_) refresh_around(z);
}

void FrmSimulator::mc_step() {
  if (drop_stale_heads()) execute_head();
  // Empty queue: absorbing state; advance_to() handles time.
}

void FrmSimulator::advance_to(double t) {
  // Events have absolute firing times, so the head beyond t simply stays
  // scheduled; the state AT t is exact.
  while (time_ < t) {
    if (!drop_stale_heads()) {
      time_ = t;
      return;
    }
    if (queue_.top().when > t) {
      time_ = t;
      return;
    }
    execute_head();
  }
}

}  // namespace casurf
