#pragma once

#include <cstdint>
#include <vector>

#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {

/// First Reaction Method: exact event-driven DMC that draws a tentative
/// firing time ~ Exp(k_i) for every (reaction type, anchor) pair the moment
/// it becomes enabled, and always executes the earliest pending event.
/// Stale events (whose reaction was disabled, or re-enabled later) are
/// invalidated lazily via per-pair generation counters — the standard
/// technique that keeps updates O(log n) amortised without a decrease-key
/// heap. Statistically equivalent to VSSM; included because the paper's
/// framing (waiting times per reaction, Segers' correctness criteria) is
/// exactly the FRM view.
class FrmSimulator final : public Simulator {
 public:
  FrmSimulator(const ReactionModel& model, Configuration config, std::uint64_t seed);

  void mc_step() override;
  void advance_to(double t) override;
  [[nodiscard]] std::string name() const override { return "FRM"; }

  void set_metrics(obs::MetricsRegistry* registry) override;

  /// Number of (type, site) pairs currently enabled.
  [[nodiscard]] std::uint64_t enabled_pairs() const { return enabled_pairs_; }
  [[nodiscard]] bool stalled() const { return enabled_pairs_ == 0; }

  /// Pending (possibly stale) events in the queue; exposed for tests of the
  /// lazy-invalidation bound.
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }

  /// Checkpointing: the heap array is serialized verbatim (not as a sorted
  /// event list), so the restored queue pops ties and lays out future
  /// pushes exactly as the uninterrupted run would.
  void save_state(StateWriter& w) const override;
  void restore_state(StateReader& r) override;

  /// Recomputes per-pair enabledness and the queue's live-event cover from
  /// the configuration; repair resynchronizes flags and redraws tentative
  /// times for every enabled pair.
  void audit_derived_state(AuditReport& report, bool repair) override;

  /// Test-only corruption hook for the audit suite: flips the enabled flag
  /// of one (type, site) pair without touching the queue.
  void corrupt_pair_for_test(ReactionIndex rt, SiteIndex s);

 private:
  struct Event {
    double when;
    SiteIndex site;
    ReactionIndex type;
    std::uint32_t generation;
    // Min-heap on time.
    friend bool operator<(const Event& a, const Event& b) { return a.when > b.when; }
  };

  [[nodiscard]] std::size_t pair_index(ReactionIndex rt, SiteIndex s) const {
    return static_cast<std::size_t>(rt) * config_.size() + s;
  }
  void push_event(const Event& ev);
  void pop_event();
  void sync_pair(ReactionIndex rt, SiteIndex s);
  void refresh_around(SiteIndex changed);
  bool drop_stale_heads();
  void execute_head();

  Xoshiro256 rng_;
  // Explicit binary heap via std::push_heap/pop_heap — the same algorithms
  // std::priority_queue is specified to use, but with the underlying array
  // accessible for verbatim checkpointing.
  std::vector<Event> queue_;
  std::vector<std::uint32_t> generation_;  // per (type, site)
  std::vector<std::uint8_t> enabled_flag_;  // per (type, site)
  std::uint64_t enabled_pairs_ = 0;
  std::vector<SiteIndex> write_buffer_;
  obs::Timer* step_timer_ = nullptr;         // frm/step
  obs::Counter* stale_dropped_ = nullptr;    // frm/stale_dropped
};

}  // namespace casurf
