#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "core/simulator.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {

/// First Reaction Method: exact event-driven DMC that draws a tentative
/// firing time ~ Exp(k_i) for every (reaction type, anchor) pair the moment
/// it becomes enabled, and always executes the earliest pending event.
/// Stale events (whose reaction was disabled, or re-enabled later) are
/// invalidated lazily via per-pair generation counters — the standard
/// technique that keeps updates O(log n) amortised without a decrease-key
/// heap. Statistically equivalent to VSSM; included because the paper's
/// framing (waiting times per reaction, Segers' correctness criteria) is
/// exactly the FRM view.
class FrmSimulator final : public Simulator {
 public:
  FrmSimulator(const ReactionModel& model, Configuration config, std::uint64_t seed);

  void mc_step() override;
  void advance_to(double t) override;
  [[nodiscard]] std::string name() const override { return "FRM"; }

  /// Number of (type, site) pairs currently enabled.
  [[nodiscard]] std::uint64_t enabled_pairs() const { return enabled_pairs_; }
  [[nodiscard]] bool stalled() const { return enabled_pairs_ == 0; }

  /// Pending (possibly stale) events in the queue; exposed for tests of the
  /// lazy-invalidation bound.
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }

 private:
  struct Event {
    double when;
    SiteIndex site;
    ReactionIndex type;
    std::uint32_t generation;
    // Min-heap on time.
    friend bool operator<(const Event& a, const Event& b) { return a.when > b.when; }
  };

  [[nodiscard]] std::size_t pair_index(ReactionIndex rt, SiteIndex s) const {
    return static_cast<std::size_t>(rt) * config_.size() + s;
  }
  void sync_pair(ReactionIndex rt, SiteIndex s);
  void refresh_around(SiteIndex changed);
  bool drop_stale_heads();
  void execute_head();

  Xoshiro256 rng_;
  std::priority_queue<Event> queue_;
  std::vector<std::uint32_t> generation_;  // per (type, site)
  std::vector<std::uint8_t> enabled_flag_;  // per (type, site)
  std::uint64_t enabled_pairs_ = 0;
  std::vector<SiteIndex> write_buffer_;
};

}  // namespace casurf
