#include "dmc/rsm.hpp"

#include "obs/trace.hpp"
#include "rng/distributions.hpp"

namespace casurf {

RsmSimulator::RsmSimulator(const ReactionModel& model, Configuration config,
                           std::uint64_t seed, TimeMode time_mode)
    : Simulator(model, std::move(config)),
      rng_(seed),
      time_mode_(time_mode),
      rate_nk_(static_cast<double>(config_.size()) * model.total_rate()) {}

void RsmSimulator::select_and_execute() {
  // 1. select a site s with probability 1/N
  const auto s = static_cast<SiteIndex>(uniform_below(rng_, config_.size()));
  // 2. select a reaction type i with probability k_i / K
  const ReactionIndex rt = model_.sample_type(rng_);
  // 3-4. check enabledness; execute
  const ReactionType& reaction = model_.reaction(rt);
  spatial_.attempt(s);
  if (reaction.enabled(config_, s)) {
    reaction.execute(config_, s);
    record_execution(rt);
    spatial_.fire(s);
  }
  ++counters_.trials;
}

void RsmSimulator::trial() {
  select_and_execute();
  // 5. advance the time by drawing from 1 - exp(-N K t)
  time_ += time_mode_ == TimeMode::kStochastic ? exponential(rng_, rate_nk_)
                                               : 1.0 / rate_nk_;
}

void RsmSimulator::mc_step() {
  const obs::ScopedTimer span(step_timer_);
  const obs::ScopedSpan trace(trace_, "rsm/step", time_, counters_.steps);
  const SiteIndex n = config_.size();
  for (SiteIndex i = 0; i < n; ++i) trial();
  ++counters_.steps;
}

void RsmSimulator::set_metrics(obs::MetricsRegistry* registry) {
  Simulator::set_metrics(registry);
  step_timer_ = registry ? &registry->timer("rsm/step") : nullptr;
  advance_timer_ = registry ? &registry->timer("rsm/advance") : nullptr;
}

void RsmSimulator::save_state(StateWriter& w) const {
  Simulator::save_state(w);
  w.section("rsm");
  rng_.save(w);
}

void RsmSimulator::restore_state(StateReader& r) {
  Simulator::restore_state(r);
  r.expect_section("rsm");
  rng_.restore(r);
}

void RsmSimulator::advance_to(double t) {
  const obs::ScopedTimer span(advance_timer_);
  const obs::ScopedSpan trace(trace_, "rsm/advance", time_, counters_.steps);
  while (time_ < t) {
    const double dt = time_mode_ == TimeMode::kStochastic
                          ? exponential(rng_, rate_nk_)
                          : 1.0 / rate_nk_;
    if (time_ + dt > t) {
      time_ = t;
      return;
    }
    time_ += dt;
    select_and_execute();
  }
}

}  // namespace casurf
