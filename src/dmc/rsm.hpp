#pragma once

#include <cstdint>

#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {

/// Random Selection Method (paper section 3): the exact-kinetics DMC
/// baseline every approximate algorithm in this library is measured
/// against. Each *trial* selects a site uniformly, a reaction type with
/// probability k_i / K, executes it if enabled, and advances time; one MC
/// step is N trials.
class RsmSimulator final : public Simulator {
 public:
  RsmSimulator(const ReactionModel& model, Configuration config,
               std::uint64_t seed, TimeMode time_mode = TimeMode::kStochastic);

  void mc_step() override;

  /// Exact-in-time variant: never performs a trial whose waiting time lands
  /// beyond t (memorylessness makes discarding the overshooting draw
  /// exact), so the state observed AT t is unbiased even on tiny lattices.
  void advance_to(double t) override;

  [[nodiscard]] std::string name() const override { return "RSM"; }

  void set_metrics(obs::MetricsRegistry* registry) override;

  void save_state(StateWriter& w) const override;
  void restore_state(StateReader& r) override;

  /// One trial (steps 1-5 of the paper's RSM listing). Exposed so tests can
  /// probe the per-trial statistics directly.
  void trial();

 private:
  void select_and_execute();

  Xoshiro256 rng_;
  TimeMode time_mode_;
  double rate_nk_;  // N * K: the rate of the per-trial waiting time
  obs::Timer* step_timer_ = nullptr;     // rsm/step
  obs::Timer* advance_timer_ = nullptr;  // rsm/advance
};

}  // namespace casurf
