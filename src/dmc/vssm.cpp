#include "dmc/vssm.hpp"

#include "obs/trace.hpp"
#include "rng/distributions.hpp"

namespace casurf {

VssmSimulator::VssmSimulator(const ReactionModel& model, Configuration config,
                             std::uint64_t seed)
    : Simulator(model, std::move(config)), rng_(seed) {
  enabled_.reserve(model.num_reactions());
  for (std::size_t i = 0; i < model.num_reactions(); ++i) {
    enabled_.emplace_back(config_.size());
  }
  rebuild_enabled();
}

void VssmSimulator::rebuild_enabled() {
  const SiteIndex n = config_.size();
  for (ReactionIndex i = 0; i < model_.num_reactions(); ++i) {
    const ReactionType& rt = model_.reaction(i);
    for (SiteIndex s = 0; s < n; ++s) {
      if (rt.enabled(config_, s)) enabled_[i].insert(s);
    }
  }
}

void VssmSimulator::set_metrics(obs::MetricsRegistry* registry) {
  Simulator::set_metrics(registry);
  step_timer_ = registry ? &registry->timer("vssm/step") : nullptr;
  rate_scan_timer_ = registry ? &registry->timer("vssm/rate_scan") : nullptr;
}

double VssmSimulator::total_enabled_rate() const {
  const obs::ScopedTimer span(rate_scan_timer_);
  double r = 0;
  for (ReactionIndex i = 0; i < model_.num_reactions(); ++i) {
    r += model_.reaction(i).rate() * static_cast<double>(enabled_[i].size());
  }
  return r;
}

void VssmSimulator::refresh_around(SiteIndex changed) {
  visit_recheck_anchors(model_, config_, changed,
                        [&](ReactionIndex i, SiteIndex anchor, bool now) {
                          if (now) {
                            enabled_[i].insert(anchor);
                          } else {
                            enabled_[i].erase(anchor);
                          }
                        });
}

void VssmSimulator::mc_step() {
  const obs::ScopedTimer span(step_timer_);
  const obs::ScopedSpan trace(trace_, "vssm/step", time_, counters_.steps);
  const double total = total_enabled_rate();
  if (total <= 0.0) return;  // absorbing state; advance_to() handles time

  // Time to next event, then the event itself.
  time_ += exponential(rng_, total);
  execute_event(total);
}

ReactionIndex VssmSimulator::select_type(double u, double total) const {
  // Direct-method band selection: type i with probability k_i |E_i| / total.
  // Empty bands are skipped entirely, and when rounding leaves the target
  // unconsumed past the last band, the fall-through goes to the last type
  // with a *nonzero* band — never to one whose enabled set is empty, which
  // would silently drop the event after time was already advanced.
  double target = u * total;
  const auto num = static_cast<ReactionIndex>(model_.num_reactions());
  ReactionIndex fallback = num;
  for (ReactionIndex i = 0; i < num; ++i) {
    const double band =
        model_.reaction(i).rate() * static_cast<double>(enabled_[i].size());
    if (!(band > 0.0)) continue;
    fallback = i;
    if (target < band) return i;
    target -= band;
  }
  return fallback;  // == num_reactions() only when nothing is enabled at all
}

void VssmSimulator::execute_event(double total) {
  // Type with probability proportional to k_i |E_i|, anchor uniform within
  // the type's set.
  const ReactionIndex chosen = select_type(uniform01(rng_), total);
  if (chosen == model_.num_reactions()) return;  // possible only if total ~ 0
  const EnabledSet& set = enabled_[chosen];
  const SiteIndex s = set.at(static_cast<std::size_t>(uniform_below(rng_, set.size())));

  const ReactionType& rt = model_.reaction(chosen);
  write_buffer_.clear();
  const Lattice& lat = config_.lattice();
  for (const Transform& t : rt.transforms()) {
    if (t.tg != kKeep) write_buffer_.push_back(lat.neighbor(s, t.offset));
  }
  rt.execute(config_, s);
  record_execution(chosen);
  // Event-driven selection never rejects: every attempt fires.
  spatial_.attempt(s);
  spatial_.fire(s);
  last_event_ = Event{time_, chosen, s};
  ++counters_.trials;
  ++counters_.steps;

  for (const SiteIndex z : write_buffer_) refresh_around(z);
}

void VssmSimulator::save_state(StateWriter& w) const {
  Simulator::save_state(w);
  w.section("vssm");
  rng_.save(w);
  for (const EnabledSet& set : enabled_) w.vec_u64(set.items());
  w.f64(last_event_.time);
  w.u64(last_event_.type);
  w.u64(last_event_.site);
}

void VssmSimulator::restore_state(StateReader& r) {
  Simulator::restore_state(r);
  r.expect_section("vssm");
  rng_.restore(r);
  for (ReactionIndex i = 0; i < model_.num_reactions(); ++i) {
    const auto items = r.vec_u64<SiteIndex>(SIZE_MAX, "enabled set");
    enabled_[i].clear();
    for (const SiteIndex s : items) {
      if (s >= config_.size()) {
        throw StateFormatError("enabled-set site " + std::to_string(s) +
                               " out of range");
      }
      enabled_[i].insert(s);
    }
    // Membership must agree with the restored configuration; a checkpoint
    // whose sets disagree with its own lattice state is corrupt.
    if (enabled_[i].size() != items.size()) {
      throw StateFormatError("enabled set for reaction " + std::to_string(i) +
                             " contains duplicates");
    }
  }
  last_event_.time = r.f64();
  last_event_.type = static_cast<ReactionIndex>(r.u64());
  last_event_.site = static_cast<SiteIndex>(r.u64());
}

void VssmSimulator::audit_derived_state(AuditReport& report, bool repair) {
  Simulator::audit_derived_state(report, repair);
  bool any = false;
  for (ReactionIndex i = 0; i < model_.num_reactions() && report.issues.size() < 64; ++i) {
    const ReactionType& rt = model_.reaction(i);
    for (SiteIndex s = 0; s < config_.size(); ++s) {
      const bool truth = rt.enabled(config_, s);
      const bool cached = enabled_[i].contains(s);
      if (truth == cached) continue;
      any = true;
      report.issues.push_back(
          {"vssm-enabled", "reaction " + std::to_string(i) + " at site " +
                               std::to_string(s) + ": cache says " +
                               (cached ? "enabled" : "disabled") + ", recompute says " +
                               (truth ? "enabled" : "disabled")});
      if (report.issues.size() >= 64) break;  // cap the diff report
    }
  }
  if (any && repair) {
    for (EnabledSet& set : enabled_) set.clear();
    rebuild_enabled();
  }
}

void VssmSimulator::advance_to(double t) {
  // Unlike the default implementation, never executes an event whose
  // firing time lies beyond t: by memorylessness, conditioning on "no
  // event in [time, t]" simply restarts the clock at t, so discarding the
  // overshooting draw gives the exact distribution of the state AT t.
  while (time_ < t) {
    const double total = total_enabled_rate();
    if (total <= 0.0) {
      time_ = t;
      return;
    }
    const double dt = exponential(rng_, total);
    if (time_ + dt > t) {
      time_ = t;
      return;
    }
    time_ += dt;
    const obs::ScopedTimer span(step_timer_);
    execute_event(total);
  }
}

}  // namespace casurf
