#pragma once

#include <cstdint>
#include <vector>

#include "core/simulator.hpp"
#include "dmc/enabled_set.hpp"
#include "obs/metrics.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {

/// Variable Step Size Method (Gillespie's direct method specialised to
/// lattices): event-driven exact DMC. Keeps, per reaction type, the set of
/// anchor sites where the type is enabled; each mc_step() executes exactly
/// one reaction and advances time by Exp(sum of enabled rates). Included as
/// the rejection-free counterpart of RSM — same Master Equation kinetics,
/// different cost profile (bookkeeping instead of failed trials).
class VssmSimulator final : public Simulator {
 public:
  VssmSimulator(const ReactionModel& model, Configuration config, std::uint64_t seed);

  void mc_step() override;
  void advance_to(double t) override;
  [[nodiscard]] std::string name() const override { return "VSSM"; }

  void set_metrics(obs::MetricsRegistry* registry) override;

  /// Sum over types of k_i * |enabled_i|: the total propensity R(S).
  [[nodiscard]] double total_enabled_rate() const;

  /// Number of sites where reaction type i is currently enabled.
  [[nodiscard]] std::size_t enabled_count(ReactionIndex i) const {
    return enabled_[i].size();
  }

  /// True when no reaction is enabled (absorbing state).
  [[nodiscard]] bool stalled() const { return total_enabled_rate() <= 0.0; }

  /// The type-selection kernel of the direct method: given u in [0, 1) and
  /// total == total_enabled_rate() > 0, returns the type with probability
  /// k_i |E_i| / total. Never returns a type whose enabled set is empty
  /// (rounding can push u * total past the last band; the fall-through goes
  /// to the last *nonzero* band). Returns num_reactions() only when no type
  /// is enabled at all. Exposed for the rounding-overflow regression test.
  [[nodiscard]] ReactionIndex select_type(double u, double total) const;

  /// The most recently executed event (valid once counters().executed > 0).
  /// Event-driven analyses — e.g. the Time-Warp rollback study — replay
  /// the exact trajectory from this record.
  struct Event {
    double time = 0;
    ReactionIndex type = 0;
    SiteIndex site = 0;
  };
  [[nodiscard]] const Event& last_event() const { return last_event_; }

  /// Checkpointing. The enabled sets are serialized in their exact internal
  /// order: membership alone is not enough, because event selection samples
  /// a set by dense position, so the order is part of the trajectory.
  void save_state(StateWriter& w) const override;
  void restore_state(StateReader& r) override;

  /// Recomputes the enabled sets from the configuration and compares
  /// membership; repair rebuilds them (in raster order — consistent, though
  /// not the historical order a never-corrupted run would carry).
  void audit_derived_state(AuditReport& report, bool repair) override;

  /// Test-only mutable access for injecting cache corruption in the audit
  /// suite. Never used by the library itself.
  [[nodiscard]] EnabledSet& mutable_enabled_for_test(ReactionIndex i) {
    return enabled_[i];
  }

 private:
  void rebuild_enabled();
  void refresh_around(SiteIndex changed);
  void execute_event(double total_rate);

  Xoshiro256 rng_;
  std::vector<EnabledSet> enabled_;      // one per reaction type
  std::vector<SiteIndex> write_buffer_;  // scratch: sites changed by an event
  Event last_event_;
  obs::Timer* step_timer_ = nullptr;       // vssm/step
  obs::Timer* rate_scan_timer_ = nullptr;  // vssm/rate_scan
};

}  // namespace casurf
