#include "io/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "util/failpoint.hpp"

namespace casurf::io {

namespace {

// Every step of the atomic write carries a failpoint so crash-recovery
// machinery can be exercised deterministically (docs/ROBUSTNESS.md).
constexpr fail::Failpoint kFailShortWrite{"io/atomic_write/short_write"};
constexpr fail::Failpoint kFailFsync{"io/atomic_write/fsync"};
constexpr fail::Failpoint kFailRename{"io/atomic_write/rename"};

/// Error messages name the failing syscall, the path, and the errno text:
/// "checkpoint write failed" is unactionable, "fsync failed for run.ck.tmp:
/// No space left on device" is not.
[[noreturn]] void fail_sys(const char* syscall, const std::string& path, int err) {
  throw std::runtime_error(std::string("atomic_write_file: ") + syscall +
                           " failed for " + path + ": " + std::strerror(err));
}

/// Best-effort directory fsync so the rename is durable; ignored on
/// filesystems that refuse to open directories.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail_sys("open", tmp, errno);

  std::size_t written;
  if (kFailShortWrite.fire()) {
    // Leave a genuinely truncated temporary so the cleanup path below runs
    // against a real short file, as an out-of-space write would leave.
    written = contents.size() / 2;
    if (written > 0) std::fwrite(contents.data(), 1, written, f);
    errno = ENOSPC;
  } else {
    written = contents.empty()
                  ? 0
                  : std::fwrite(contents.data(), 1, contents.size(), f);
  }
  if (written != contents.size()) {
    const int err = errno != 0 ? errno : ENOSPC;
    std::fclose(f);
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_write_file: short write to " + tmp + " (" +
                             std::to_string(written) + " of " +
                             std::to_string(contents.size()) +
                             " bytes): " + std::strerror(err));
  }
  if (std::fflush(f) != 0) {
    const int err = errno;
    std::fclose(f);
    std::remove(tmp.c_str());
    fail_sys("fflush", tmp, err);
  }
  const bool fsync_injected = kFailFsync.fire();
  if (fsync_injected || ::fsync(::fileno(f)) != 0) {
    const int err = fsync_injected ? EIO : errno;
    std::fclose(f);
    std::remove(tmp.c_str());
    fail_sys("fsync", tmp, err);
  }
  if (std::fclose(f) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    fail_sys("close", tmp, err);
  }
  if (kFailRename.fire()) {
    std::remove(tmp.c_str());
    fail_sys("rename", path, EIO);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    fail_sys("rename", path, err);
  }
  sync_parent_dir(path);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    const int err = errno;
    throw std::runtime_error("read_file: cannot open " + path + ": " +
                             std::strerror(err != 0 ? err : ENOENT));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("read_file: read failed for " + path);
  }
  return std::move(buf).str();
}

}  // namespace casurf::io
