#include "io/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace casurf::io {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " for " + path + ": " + std::strerror(errno));
}

/// Best-effort directory fsync so the rename is durable; ignored on
/// filesystems that refuse to open directories.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail("atomic_write_file: cannot open temporary", tmp);

  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(::fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    fail("atomic_write_file: write failed", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("atomic_write_file: rename failed", path);
  }
  sync_parent_dir(path);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_file: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) throw std::runtime_error("read_file: read failed for " + path);
  return std::move(buf).str();
}

}  // namespace casurf::io
