#pragma once

#include <string>
#include <string_view>

namespace casurf::io {

/// Crash-safe whole-file write: the contents go to a temporary sibling
/// (`path.tmp.<pid>`), are flushed and fsync'd, and only then renamed over
/// `path` — so readers (and a restarted run) see either the complete old
/// file or the complete new file, never a truncated mix. The containing
/// directory is fsync'd best-effort so the rename itself survives a crash.
/// Throws std::runtime_error on any I/O failure (the temporary is removed).
void atomic_write_file(const std::string& path, std::string_view contents);

/// Read a whole file into a string (binary-exact). Throws std::runtime_error
/// when the file cannot be opened or read.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace casurf::io
