#include "io/checkpoint.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "core/state_io.hpp"
#include "io/atomic_file.hpp"
#include "util/failpoint.hpp"

namespace casurf::io {

namespace {

/// File layout: 8-byte magic, u32 version, u32 CRC-32 of payload, u64
/// payload size, payload. The payload is a StateWriter stream: section
/// "meta" (identity of the writer, validated on restore), section "state"
/// (Simulator::save_state), section "user" (opaque caller blob).
constexpr std::array<std::uint8_t, 8> kMagic = {'C', 'A', 'S', 'U', 'R', 'F', 'C', 'K'};
constexpr std::size_t kHeaderSize = kMagic.size() + 4 + 4 + 8;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void write_meta(StateWriter& w, const Simulator& sim) {
  w.section("meta");
  w.str(sim.name());
  const Lattice& lat = sim.configuration().lattice();
  w.u32(static_cast<std::uint32_t>(lat.width()));
  w.u32(static_cast<std::uint32_t>(lat.height()));
  const auto& names = sim.model().species().names();
  w.u64(names.size());
  for (const std::string& n : names) w.str(n);
  w.u64(sim.model().num_reactions());
  w.f64(sim.model().total_rate());
  w.f64(sim.time());
  w.u64(sim.counters().steps);
}

/// Parse and CRC-check the container, returning the payload bytes (a view
/// into `raw`, which must outlive the result) and the stored version.
std::span<const std::uint8_t> checked_payload(const std::string& raw,
                                              const std::string& path,
                                              std::uint32_t& version_out) {
  if (raw.size() < kHeaderSize) {
    throw CheckpointError(path + ": file too small to be a checkpoint (" +
                          std::to_string(raw.size()) + " bytes)");
  }
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(raw.data());
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes)) {
    throw CheckpointError(path + ": bad magic (not a casurf checkpoint)");
  }
  StateReader header(std::span(bytes + kMagic.size(), kHeaderSize - kMagic.size()));
  version_out = header.u32();
  const std::uint32_t stored_crc = header.u32();
  const std::uint64_t payload_size = header.u64();
  if (version_out != kCheckpointVersion) {
    throw CheckpointError(path + ": unsupported version " + std::to_string(version_out) +
                          " (this build reads version " +
                          std::to_string(kCheckpointVersion) + ")");
  }
  if (payload_size != raw.size() - kHeaderSize) {
    throw CheckpointError(path + ": payload size " + std::to_string(payload_size) +
                          " does not match file size (truncated or trailing data)");
  }
  const std::span payload(bytes + kHeaderSize, static_cast<std::size_t>(payload_size));
  const std::uint32_t actual_crc = crc32(payload);
  if (actual_crc != stored_crc) {
    throw CheckpointError(path + ": CRC mismatch (file corrupt)");
  }
  return payload;
}

void read_meta_header(StateReader& r, CheckpointInfo& info) {
  r.expect_section("meta");
  info.algorithm = r.str();
  info.width = static_cast<std::int32_t>(r.u32());
  info.height = static_cast<std::int32_t>(r.u32());
  const std::uint64_t n_species = r.u64();
  if (n_species > 256) throw StateFormatError("implausible species count");
  info.species.reserve(static_cast<std::size_t>(n_species));
  for (std::uint64_t i = 0; i < n_species; ++i) info.species.push_back(r.str());
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void save_checkpoint(const std::string& path, const Simulator& sim,
                     std::string_view user_section) {
  StateWriter payload;
  write_meta(payload, sim);
  payload.section("state");
  sim.save_state(payload);
  payload.section("user");
  payload.str(user_section);

  StateWriter file;
  file.bytes(kMagic.data(), kMagic.size());
  file.u32(kCheckpointVersion);
  file.u32(crc32(payload.buffer()));
  file.u64(payload.size());
  file.bytes(payload.buffer().data(), payload.size());

  // Fault injection (docs/ROBUSTNESS.md): both failpoints simulate damage
  // the atomic write canNOT catch — the write itself succeeds, and only a
  // later restore discovers the file is unusable (CRC mismatch / short
  // payload) and falls back to the previous generation.
  std::string bytes(reinterpret_cast<const char*>(file.buffer().data()),
                    file.size());
  static constexpr fail::Failpoint kCorrupt{"io/checkpoint/corrupt"};
  static constexpr fail::Failpoint kTruncate{"io/checkpoint/truncate"};
  if (kCorrupt.fire() && payload.size() > 0) {
    bytes[kHeaderSize + payload.size() / 2] ^= 0x01;  // one bit of bit rot
  }
  if (kTruncate.fire()) {
    bytes.resize(bytes.size() / 2);
  }

  try {
    atomic_write_file(path, bytes);
  } catch (const std::exception& e) {
    throw CheckpointError(e.what());
  }
}

CheckpointInfo peek_checkpoint(const std::string& path) {
  std::string raw;
  try {
    raw = read_file(path);
  } catch (const std::exception& e) {
    throw CheckpointError(e.what());
  }
  CheckpointInfo info;
  const std::span payload = checked_payload(raw, path, info.version);
  try {
    StateReader r(payload);
    read_meta_header(r, info);
    const std::uint64_t num_reactions = r.u64();
    (void)num_reactions;
    (void)r.f64();  // total rate
    info.time = r.f64();
    info.steps = r.u64();
  } catch (const StateFormatError& e) {
    throw CheckpointError(path + ": " + e.what());
  }
  return info;
}

std::string restore_checkpoint(const std::string& path, Simulator& sim) {
  std::string raw;
  try {
    raw = read_file(path);
  } catch (const std::exception& e) {
    throw CheckpointError(e.what());
  }
  std::uint32_t version = 0;
  const std::span payload = checked_payload(raw, path, version);

  try {
    StateReader r(payload);
    CheckpointInfo info;
    read_meta_header(r, info);
    const std::uint64_t num_reactions = r.u64();
    const double total_rate = r.f64();
    (void)r.f64();  // time (restored via sim state)
    (void)r.u64();  // steps (restored via sim state)

    if (info.algorithm != sim.name()) {
      throw CheckpointError(path + ": written by algorithm '" + info.algorithm +
                            "', cannot restore into '" + sim.name() + "'");
    }
    const Lattice& lat = sim.configuration().lattice();
    if (info.width != lat.width() || info.height != lat.height()) {
      throw CheckpointError(path + ": lattice " + std::to_string(info.width) + "x" +
                            std::to_string(info.height) + " does not match simulator " +
                            std::to_string(lat.width()) + "x" +
                            std::to_string(lat.height()));
    }
    if (info.species != sim.model().species().names()) {
      throw CheckpointError(path + ": species domain differs from the simulator's model");
    }
    if (num_reactions != sim.model().num_reactions()) {
      throw CheckpointError(path + ": model has " + std::to_string(num_reactions) +
                            " reaction types, simulator has " +
                            std::to_string(sim.model().num_reactions()));
    }
    if (std::bit_cast<std::uint64_t>(total_rate) !=
        std::bit_cast<std::uint64_t>(sim.model().total_rate())) {
      throw CheckpointError(path +
                            ": total rate differs from the simulator's model "
                            "(rate constants changed since the checkpoint)");
    }

    r.expect_section("state");
    sim.restore_state(r);
    r.expect_section("user");
    // Not r.str(): the user blob may exceed the reader's string sanity cap.
    const std::uint64_t user_len = r.u64();
    if (user_len > r.remaining()) {
      throw StateFormatError("user section length exceeds remaining stream");
    }
    std::string user(static_cast<std::size_t>(user_len), '\0');
    if (user_len > 0) r.bytes(user.data(), user.size());
    r.expect_end();
    return user;
  } catch (const StateFormatError& e) {
    throw CheckpointError(path + ": " + e.what());
  }
}

}  // namespace casurf::io
