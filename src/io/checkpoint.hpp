#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/simulator.hpp"

namespace casurf::io {

/// Any failure to write, read, validate, or apply a checkpoint: I/O errors,
/// bad magic/version, CRC mismatch (bit rot / truncation), or metadata that
/// does not match the simulator being restored. Callers treat this as "the
/// file is unusable" and fall back to an older checkpoint (or a cold start).
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& message)
      : std::runtime_error("checkpoint: " + message) {}
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
/// guard over the checkpoint payload. Exposed for the corruption tests.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Current checkpoint container version. Bump on any layout change; loaders
/// reject versions they do not understand rather than guessing.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Header fields of a checkpoint, available without restoring (the CRC is
/// verified before anything is returned).
struct CheckpointInfo {
  std::uint32_t version = 0;
  std::string algorithm;              ///< Simulator::name() of the writer
  double time = 0;                    ///< simulated time at save
  std::uint64_t steps = 0;            ///< natural steps at save
  std::int32_t width = 0, height = 0; ///< lattice dimensions
  std::vector<std::string> species;   ///< species names, model order
};

/// Write the full state of `sim` to `path`: versioned binary container,
/// CRC-32 over the payload, atomic tmp+fsync+rename publication — a crash
/// at any instant leaves either the previous checkpoint or the new one,
/// never a torn file. `user_section` is an opaque caller blob stored and
/// returned verbatim (casurf_run keeps its sampling state there so a
/// resumed run regenerates the identical coverage series).
void save_checkpoint(const std::string& path, const Simulator& sim,
                     std::string_view user_section = {});

/// Read and integrity-check the header of a checkpoint without touching any
/// simulator. Throws CheckpointError on I/O failure, bad magic or version,
/// or CRC mismatch.
[[nodiscard]] CheckpointInfo peek_checkpoint(const std::string& path);

/// Validate `path` against `sim` (same algorithm, lattice, species domain,
/// and reaction model) and restore the simulator's full state from it;
/// returns the user section. After this, `sim` continues the saved
/// trajectory bit for bit. Throws CheckpointError on any validation or
/// format failure — in which case `sim` may have been partially modified,
/// so callers retrying a fallback file should restore into a freshly
/// constructed simulator.
std::string restore_checkpoint(const std::string& path, Simulator& sim);

}  // namespace casurf::io
