#include "io/snapshot.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace casurf::io {

void save_snapshot(const std::string& path, const Configuration& config,
                   const SpeciesSet& species) {
  if (species.size() != config.num_species()) {
    throw std::runtime_error("save_snapshot: species set does not match configuration");
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_snapshot: cannot open " + path);
  const Lattice& lat = config.lattice();
  out << "casurf-snapshot 1\n";
  out << "lattice " << lat.width() << ' ' << lat.height() << '\n';
  out << "species " << species.size();
  for (const std::string& name : species.names()) out << ' ' << name;
  out << "\ndata\n";
  for (std::int32_t y = 0; y < lat.height(); ++y) {
    for (std::int32_t x = 0; x < lat.width(); ++x) {
      if (x) out << ' ';
      out << static_cast<int>(config.get(lat.index({x, y})));
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("save_snapshot: write failed for " + path);
}

Snapshot load_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_snapshot: cannot open " + path);

  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "casurf-snapshot" || version != 1) {
    throw std::runtime_error("load_snapshot: not a casurf-snapshot v1 file");
  }

  std::string keyword;
  std::int32_t width = 0, height = 0;
  in >> keyword >> width >> height;
  if (keyword != "lattice" || width <= 0 || height <= 0) {
    throw std::runtime_error("load_snapshot: malformed lattice header");
  }

  std::size_t n_species = 0;
  in >> keyword >> n_species;
  if (keyword != "species" || n_species == 0 || n_species > 32) {
    throw std::runtime_error("load_snapshot: malformed species header");
  }
  std::vector<std::string> names(n_species);
  for (std::string& name : names) in >> name;

  in >> keyword;
  if (keyword != "data" || !in) {
    throw std::runtime_error("load_snapshot: missing data section");
  }

  Configuration config(Lattice(width, height), n_species, 0);
  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x) {
      int value = -1;
      in >> value;
      if (!in || value < 0 || static_cast<std::size_t>(value) >= n_species) {
        std::ostringstream msg;
        msg << "load_snapshot: bad species index at (" << x << "," << y << ")";
        throw std::runtime_error(msg.str());
      }
      config.set(config.lattice().index({x, y}), static_cast<Species>(value));
    }
  }
  return Snapshot{std::move(config), std::move(names)};
}

Rgb default_palette(Species s) {
  static constexpr std::array<Rgb, 8> kColors = {{
      {245, 245, 245},  // vacant: near-white
      {31, 119, 180},   // blue
      {214, 39, 40},    // red
      {44, 160, 44},    // green
      {255, 127, 14},   // orange
      {148, 103, 189},  // purple
      {140, 86, 75},    // brown
      {23, 190, 207},   // cyan
  }};
  return kColors[s % kColors.size()];
}

void write_ppm(const std::string& path, const Configuration& config,
               Rgb (*palette)(Species)) {
  if (palette == nullptr) palette = default_palette;
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
  const Lattice& lat = config.lattice();
  out << "P6\n" << lat.width() << ' ' << lat.height() << "\n255\n";
  std::vector<char> row(static_cast<std::size_t>(lat.width()) * 3);
  for (std::int32_t y = 0; y < lat.height(); ++y) {
    for (std::int32_t x = 0; x < lat.width(); ++x) {
      const Rgb c = palette(config.get(lat.index({x, y})));
      row[3 * x + 0] = static_cast<char>(c.r);
      row[3 * x + 1] = static_cast<char>(c.g);
      row[3 * x + 2] = static_cast<char>(c.b);
    }
    out.write(row.data(), static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw std::runtime_error("write_ppm: write failed for " + path);
}

}  // namespace casurf::io
