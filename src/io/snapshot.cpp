#include "io/snapshot.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/atomic_file.hpp"

namespace casurf::io {

void save_snapshot(const std::string& path, const Configuration& config,
                   const SpeciesSet& species) {
  if (species.size() != config.num_species()) {
    throw std::runtime_error("save_snapshot: species set does not match configuration");
  }
  std::ostringstream out;
  const Lattice& lat = config.lattice();
  out << "casurf-snapshot 1\n";
  out << "lattice " << lat.width() << ' ' << lat.height() << '\n';
  out << "species " << species.size();
  for (const std::string& name : species.names()) out << ' ' << name;
  out << "\ndata\n";
  for (std::int32_t y = 0; y < lat.height(); ++y) {
    for (std::int32_t x = 0; x < lat.width(); ++x) {
      if (x) out << ' ';
      out << static_cast<int>(config.get(lat.index({x, y})));
    }
    out << '\n';
  }
  atomic_write_file(path, out.view());
}

Snapshot load_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_snapshot: cannot open " + path);

  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "casurf-snapshot" || version != 1) {
    throw std::runtime_error("load_snapshot: not a casurf-snapshot v1 file");
  }

  std::string keyword;
  std::int32_t width = 0, height = 0;
  in >> keyword >> width >> height;
  if (keyword != "lattice" || width <= 0 || height <= 0) {
    throw std::runtime_error("load_snapshot: malformed lattice header");
  }

  std::size_t n_species = 0;
  in >> keyword >> n_species;
  if (keyword != "species" || n_species == 0 || n_species > 32) {
    throw std::runtime_error("load_snapshot: malformed species header");
  }
  std::vector<std::string> names(n_species);
  for (std::string& name : names) in >> name;

  in >> keyword;
  if (keyword != "data" || !in) {
    throw std::runtime_error("load_snapshot: missing data section");
  }

  Configuration config(Lattice(width, height), n_species, 0);
  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x) {
      int value = -1;
      in >> value;
      if (!in || value < 0 || static_cast<std::size_t>(value) >= n_species) {
        std::ostringstream msg;
        msg << "load_snapshot: bad species index at (" << x << "," << y << ")";
        throw std::runtime_error(msg.str());
      }
      config.set(config.lattice().index({x, y}), static_cast<Species>(value));
    }
  }
  return Snapshot{std::move(config), std::move(names)};
}

Configuration remap_species(const Snapshot& snap, const SpeciesSet& target) {
  // One entry per snapshot species index: the target index of the species
  // with the same NAME. Species identity is the name, not the position —
  // a snapshot written under a model that lists the same species in a
  // different order is still valid.
  std::vector<Species> to_target(snap.species.size());
  for (std::size_t i = 0; i < snap.species.size(); ++i) {
    const std::string& name = snap.species[i];
    const auto& names = target.names();
    const auto it = std::find(names.begin(), names.end(), name);
    if (it == names.end()) {
      throw std::runtime_error("remap_species: snapshot species '" + name +
                               "' does not exist in the model (model species:" +
                               [&] {
                                 std::string list;
                                 for (const auto& n : names) list += " " + n;
                                 return list;
                               }() +
                               ")");
    }
    to_target[i] = static_cast<Species>(it - names.begin());
  }

  Configuration out(snap.config.lattice(), target.size(), 0);
  for (SiteIndex s = 0; s < snap.config.size(); ++s) {
    out.set(s, to_target[snap.config.get(s)]);
  }
  return out;
}

Rgb default_palette(Species s) {
  static constexpr std::array<Rgb, 8> kColors = {{
      {245, 245, 245},  // vacant: near-white
      {31, 119, 180},   // blue
      {214, 39, 40},    // red
      {44, 160, 44},    // green
      {255, 127, 14},   // orange
      {148, 103, 189},  // purple
      {140, 86, 75},    // brown
      {23, 190, 207},   // cyan
  }};
  // Only the genuinely vacant species may render near-white: cycling the
  // whole table would hand species 8, 16, ... the vacant color and make
  // occupied sites vanish from the image. Occupied species cycle over the
  // seven saturated colors instead.
  return s == 0 ? kColors[0] : kColors[1 + (s - 1) % (kColors.size() - 1)];
}

void write_ppm(const std::string& path, const Configuration& config,
               Rgb (*palette)(Species)) {
  if (palette == nullptr) palette = default_palette;
  std::ostringstream out;
  const Lattice& lat = config.lattice();
  out << "P6\n" << lat.width() << ' ' << lat.height() << "\n255\n";
  std::vector<char> row(static_cast<std::size_t>(lat.width()) * 3);
  for (std::int32_t y = 0; y < lat.height(); ++y) {
    for (std::int32_t x = 0; x < lat.width(); ++x) {
      const Rgb c = palette(config.get(lat.index({x, y})));
      row[3 * x + 0] = static_cast<char>(c.r);
      row[3 * x + 1] = static_cast<char>(c.g);
      row[3 * x + 2] = static_cast<char>(c.b);
    }
    out.write(row.data(), static_cast<std::streamsize>(row.size()));
  }
  atomic_write_file(path, out.view());
}

}  // namespace casurf::io
