#pragma once

#include <array>
#include <string>
#include <vector>

#include "lattice/configuration.hpp"
#include "lattice/species.hpp"

namespace casurf::io {

/// A saved lattice state: the configuration plus the species names it was
/// written with (so a loader can re-map or validate against its model).
struct Snapshot {
  Configuration config;
  std::vector<std::string> species;
};

/// Write a configuration to the simple text snapshot format:
///
///   casurf-snapshot 1
///   lattice <width> <height>
///   species <n> <name...>
///   data
///   <height rows of width space-separated species indices>
///
/// Throws std::runtime_error on I/O failure.
void save_snapshot(const std::string& path, const Configuration& config,
                   const SpeciesSet& species);

/// Load a snapshot written by save_snapshot. Throws std::runtime_error on
/// I/O or format errors (with a description of what was malformed).
[[nodiscard]] Snapshot load_snapshot(const std::string& path);

/// Re-index a loaded snapshot onto `target`'s species domain by NAME: a
/// snapshot whose species list is a (possibly reordered) subset of the
/// model's loads cleanly, with every site translated to the model's index
/// for the same name. Throws std::runtime_error naming the offending
/// species when the snapshot mentions one the model does not have.
[[nodiscard]] Configuration remap_species(const Snapshot& snap, const SpeciesSet& target);

/// 8-bit RGB color.
struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
};

/// A default qualitative palette: near-white for the vacant species, seven
/// saturated colors for the rest. Models with more than eight species cycle
/// deterministically over the seven occupied colors only — the vacant color
/// is never reused, so occupied sites stay visible in the image.
[[nodiscard]] Rgb default_palette(Species s);

/// Render a configuration to a binary PPM (P6) image, one pixel per site,
/// colored by species through `palette` (nullptr = default_palette).
/// Handy for looking at reaction fronts and poisoning domains.
void write_ppm(const std::string& path, const Configuration& config,
               Rgb (*palette)(Species) = nullptr);

}  // namespace casurf::io
