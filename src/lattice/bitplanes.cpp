#include "lattice/bitplanes.hpp"

#include <bit>
#include <cassert>

namespace casurf {

SpeciesBitplanes::SpeciesBitplanes(const Configuration& config)
    : width_(config.lattice().width()),
      height_(config.lattice().height()),
      words_per_row_((static_cast<std::size_t>(config.lattice().width()) + 63) / 64),
      num_species_(config.num_species()),
      full_mask_(num_species_ == 32 ? ~SpeciesMask{0}
                                    : (SpeciesMask{1} << num_species_) - 1u),
      bits_(num_species_ * height_ * words_per_row_, 0) {
  rebuild(config);
}

void SpeciesBitplanes::rebuild(const Configuration& config) {
  assert(config.lattice().width() == width_ &&
         config.lattice().height() == height_ &&
         config.num_species() == num_species_);
  std::fill(bits_.begin(), bits_.end(), 0);
  const std::span<const Species> state = config.raw();
  for (std::int32_t y = 0; y < height_; ++y) {
    const std::size_t row_base = static_cast<std::size_t>(y) * width_;
    for (std::int32_t x = 0; x < width_; ++x) {
      const Species sp = state[row_base + x];
      plane_row(sp, y)[static_cast<std::size_t>(x) >> 6] |=
          std::uint64_t{1} << (static_cast<std::uint32_t>(x) & 63u);
    }
  }
}

void SpeciesBitplanes::resync_site(const Configuration& config, SiteIndex s) {
  const std::int32_t x = static_cast<std::int32_t>(s % static_cast<SiteIndex>(width_));
  const std::int32_t y = static_cast<std::int32_t>(s / static_cast<SiteIndex>(width_));
  const std::size_t word = static_cast<std::size_t>(x) >> 6;
  const std::uint64_t mask = std::uint64_t{1} << (static_cast<std::uint32_t>(x) & 63u);
  for (Species sp = 0; sp < num_species_; ++sp) plane_row(sp, y)[word] &= ~mask;
  plane_row(config.get(s), y)[word] |= mask;
}

std::uint64_t SpeciesBitplanes::window(Species sp, std::int32_t y,
                                       std::int32_t x0) const {
  const std::uint64_t* row = plane_row(sp, wrap_y(y));
  std::int32_t x = wrap_x(x0);
  std::uint64_t out = 0;
  // Gather 64 bits starting at column x, wrapping at the row's end. Each
  // pass copies one run of `take` bits; the common interior case (wide
  // lattice, no seam in sight) completes in a single pass of two shifts.
  for (std::uint32_t filled = 0; filled < 64;) {
    const auto take = static_cast<std::uint32_t>(
        std::min<std::int64_t>(64 - filled, width_ - x));
    const std::size_t word = static_cast<std::size_t>(x) >> 6;
    const std::uint32_t shift = static_cast<std::uint32_t>(x) & 63u;
    std::uint64_t piece = row[word] >> shift;
    if (shift != 0 && word + 1 < words_per_row_) {
      piece |= row[word + 1] << (64 - shift);
    }
    if (take < 64) piece &= (std::uint64_t{1} << take) - 1;
    out |= piece << filled;
    filled += take;
    x = 0;
  }
  return out;
}

std::uint64_t SpeciesBitplanes::mask_window(SpeciesMask mask, std::int32_t y,
                                            std::int32_t x0) const {
  SpeciesMask m = mask & full_mask_;
  // Every site holds exactly one species, so a full-domain mask matches
  // everywhere — the common "any occupant / any state" wildcard is free.
  if (m == full_mask_) return ~std::uint64_t{0};
  std::uint64_t out = 0;
  while (m != 0) {
    const auto sp = static_cast<Species>(std::countr_zero(m));
    out |= window(sp, y, x0);
    m &= m - 1;
  }
  return out;
}

bool SpeciesBitplanes::mask_bit(SpeciesMask mask, std::int32_t x,
                                std::int32_t y) const {
  SpeciesMask m = mask & full_mask_;
  if (m == full_mask_) return true;
  const std::int32_t xw = wrap_x(x);
  const std::int32_t yw = wrap_y(y);
  const std::size_t word = static_cast<std::size_t>(xw) >> 6;
  const std::uint64_t bit_mask = std::uint64_t{1}
                                 << (static_cast<std::uint32_t>(xw) & 63u);
  while (m != 0) {
    const auto sp = static_cast<Species>(std::countr_zero(m));
    if (plane_row(sp, yw)[word] & bit_mask) return true;
    m &= m - 1;
  }
  return false;
}

bool SpeciesBitplanes::matches(const Configuration& config) const {
  if (config.lattice().width() != width_ || config.lattice().height() != height_ ||
      config.num_species() != num_species_) {
    return false;
  }
  for (std::int32_t y = 0; y < height_; ++y) {
    for (std::int32_t x = 0; x < width_; ++x) {
      const Species truth =
          config.get(static_cast<SiteIndex>(y) * static_cast<SiteIndex>(width_) +
                     static_cast<SiteIndex>(x));
      for (Species sp = 0; sp < num_species_; ++sp) {
        if (bit(sp, x, y) != (sp == truth)) return false;
      }
    }
  }
  return true;
}

}  // namespace casurf
