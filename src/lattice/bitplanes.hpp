#pragma once

#include <cstdint>
#include <vector>

#include "lattice/configuration.hpp"
#include "lattice/lattice.hpp"
#include "lattice/species.hpp"

namespace casurf {

/// Structure-of-arrays view of a Configuration: one bitplane per species,
/// one bit per site, rows padded to whole 64-bit words. Where the AoS
/// `Configuration` answers "what species is at site s?", the bitplanes
/// answer "which of these 64 consecutive sites hold a species in mask m?"
/// in a handful of word operations — the primitive behind the batched
/// (SIMD-friendly) trial loop of the PNDCA family.
///
/// The planes are a *derived* structure: they are rebuilt from the
/// configuration on construction/restore and kept in sync by resyncing
/// every written site after a reaction commits. `matches()` is the audit
/// ground truth.
class SpeciesBitplanes {
 public:
  SpeciesBitplanes() = default;
  explicit SpeciesBitplanes(const Configuration& config);

  [[nodiscard]] std::int32_t width() const { return width_; }
  [[nodiscard]] std::int32_t height() const { return height_; }
  [[nodiscard]] std::size_t num_species() const { return num_species_; }

  /// Re-derive every bit from `config` (construction, checkpoint restore,
  /// audit repair). The lattice shape and species count must match.
  void rebuild(const Configuration& config);

  /// Resync the bits of one site from the configuration: clears the site's
  /// bit in every plane, then sets it in the plane of the current species.
  /// Idempotent, so a batch of writes can be replayed in any order (the
  /// same property the rate cache's rechecks rely on).
  void resync_site(const Configuration& config, SiteIndex s);

  [[nodiscard]] bool bit(Species sp, std::int32_t x, std::int32_t y) const {
    const std::uint64_t* row = plane_row(sp, y);
    return (row[static_cast<std::size_t>(x) >> 6] >>
            (static_cast<std::uint32_t>(x) & 63u)) & 1u;
  }

  /// 64 occupancy bits of species `sp` along row `y` (wrapped): bit f
  /// corresponds to column (x0 + f) mod width — the torus wrap is folded
  /// in, so callers can shift anchors by arbitrary transform offsets.
  [[nodiscard]] std::uint64_t window(Species sp, std::int32_t y,
                                     std::int32_t x0) const;

  /// OR of window() over every species in `mask`: bit f set when column
  /// (x0 + f) mod width of row y holds any species of the mask. A mask
  /// covering the whole domain short-circuits to all-ones (every site
  /// holds exactly one species).
  [[nodiscard]] std::uint64_t mask_window(SpeciesMask mask, std::int32_t y,
                                          std::int32_t x0) const;

  /// True when the site at column (x + dx) mod width, row (y + dy) mod
  /// height holds a species of `mask` — the single-anchor counterpart of
  /// mask_window() for scattered sites.
  [[nodiscard]] bool mask_bit(SpeciesMask mask, std::int32_t x, std::int32_t y) const;

  /// Audit ground truth: true when every bit agrees with `config`.
  [[nodiscard]] bool matches(const Configuration& config) const;

 private:
  [[nodiscard]] const std::uint64_t* plane_row(Species sp, std::int32_t y) const {
    return bits_.data() + (static_cast<std::size_t>(sp) * height_ + y) * words_per_row_;
  }
  [[nodiscard]] std::uint64_t* plane_row(Species sp, std::int32_t y) {
    return bits_.data() + (static_cast<std::size_t>(sp) * height_ + y) * words_per_row_;
  }
  [[nodiscard]] std::int32_t wrap_x(std::int32_t x) const {
    const std::int32_t r = x % width_;
    return r < 0 ? r + width_ : r;
  }
  [[nodiscard]] std::int32_t wrap_y(std::int32_t y) const {
    const std::int32_t r = y % height_;
    return r < 0 ? r + height_ : r;
  }

  std::int32_t width_ = 0;
  std::int32_t height_ = 0;
  std::size_t words_per_row_ = 0;
  std::size_t num_species_ = 0;
  SpeciesMask full_mask_ = 0;
  std::vector<std::uint64_t> bits_;  // [species][row][word], row-padded
};

}  // namespace casurf
