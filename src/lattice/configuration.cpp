#include "lattice/configuration.hpp"

#include <algorithm>
#include <stdexcept>

namespace casurf {

Configuration::Configuration(Lattice lattice, std::size_t num_species, Species fill)
    : lattice_(lattice),
      state_(lattice.size(), fill),
      counts_(num_species, 0) {
  if (num_species == 0 || num_species > 32) {
    throw std::invalid_argument("Configuration: species count must be in [1, 32]");
  }
  if (fill >= num_species) {
    throw std::invalid_argument("Configuration: fill species out of range");
  }
  counts_[fill] = lattice.size();
}

void Configuration::fill(Species s) {
  if (s >= counts_.size()) {
    throw std::invalid_argument("Configuration::fill: species out of range");
  }
  std::ranges::fill(state_, s);
  std::ranges::fill(counts_, 0);
  counts_[s] = state_.size();
}

void Configuration::assign(std::span<const Species> state) {
  if (state.size() != state_.size()) {
    throw std::invalid_argument("Configuration::assign: site count mismatch");
  }
  for (const Species s : state) {
    if (s >= counts_.size()) {
      throw std::invalid_argument("Configuration::assign: species out of range");
    }
  }
  std::copy(state.begin(), state.end(), state_.begin());
  recount();
}

void Configuration::recount() {
  std::ranges::fill(counts_, 0);
  for (const Species s : state_) ++counts_[s];
}

bool Configuration::counts_consistent() const {
  std::vector<std::uint64_t> fresh(counts_.size(), 0);
  for (const Species s : state_) ++fresh[s];
  return fresh == counts_;
}

std::string Configuration::render(std::span<const char> glyphs) const {
  std::string out;
  out.reserve((lattice_.width() + 1) * lattice_.height());
  for (std::int32_t y = 0; y < lattice_.height(); ++y) {
    for (std::int32_t x = 0; x < lattice_.width(); ++x) {
      const Species s = get(lattice_.index({x, y}));
      out.push_back(s < glyphs.size() ? glyphs[s] : '?');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace casurf
