#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lattice/lattice.hpp"
#include "lattice/species.hpp"

namespace casurf {

/// A system state (the paper's "configuration"): a total assignment of
/// species to lattice sites, Omega -> D. Per-species site counts are
/// maintained incrementally so coverage observables are O(1).
class Configuration {
 public:
  /// All sites initialised to `fill` (default: species 0, conventionally
  /// the vacant site '*').
  Configuration(Lattice lattice, std::size_t num_species, Species fill = 0);

  [[nodiscard]] const Lattice& lattice() const { return lattice_; }
  [[nodiscard]] SiteIndex size() const { return lattice_.size(); }
  [[nodiscard]] std::size_t num_species() const { return counts_.size(); }

  [[nodiscard]] Species get(SiteIndex i) const {
    assert(i < state_.size());
    return state_[i];
  }
  [[nodiscard]] Species get(Vec2 p) const { return get(lattice_.index(lattice_.wrap(p))); }

  void set(SiteIndex i, Species s) {
    assert(i < state_.size());
    assert(s < counts_.size());
    Species& cur = state_[i];
    if (cur == s) return;
    --counts_[cur];
    ++counts_[s];
    cur = s;
  }
  void set(Vec2 p, Species s) { set(lattice_.index(lattice_.wrap(p)), s); }

  /// Write a site WITHOUT maintaining the per-species counts. For parallel
  /// chunk execution: threads write disjoint sites race-free (the shared
  /// count array would be a data race), accumulate per-species deltas
  /// privately, and the caller merges them via apply_count_delta().
  void set_raw(SiteIndex i, Species s) {
    assert(i < state_.size());
    assert(s < counts_.size());
    state_[i] = s;
  }

  /// Merge externally-accumulated per-species count changes (one entry per
  /// species) after a batch of set_raw() writes.
  void apply_count_delta(const std::int64_t* delta) {
    for (std::size_t sp = 0; sp < counts_.size(); ++sp) {
      counts_[sp] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(counts_[sp]) + delta[sp]);
    }
  }

  /// Number of sites currently holding species `s`.
  [[nodiscard]] std::uint64_t count(Species s) const { return counts_.at(s); }

  /// Fraction of sites holding species `s` (the paper's "coverage").
  [[nodiscard]] double coverage(Species s) const {
    return static_cast<double>(count(s)) / static_cast<double>(size());
  }

  /// Reset every site to `fill`.
  void fill(Species s);

  /// Replace the full site assignment (same lattice) and recompute the
  /// per-species counts. Throws std::invalid_argument on a size mismatch or
  /// an out-of-domain species value — the checkpoint-restore entry point,
  /// which must never accept a corrupt state silently.
  void assign(std::span<const Species> state);

  /// Recompute the per-species counts from the raw state (audit repair).
  void recount();

  /// True when the incremental per-species counts agree with a fresh
  /// recount of the raw state (the audit ground truth).
  [[nodiscard]] bool counts_consistent() const;

  /// Test hook: skew one per-species count without touching any site —
  /// simulated memory corruption for the auditor tests.
  void corrupt_count_for_test(Species s, std::int64_t delta) {
    counts_.at(s) = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(counts_.at(s)) + delta);
  }

  [[nodiscard]] std::span<const Species> raw() const { return state_; }

  /// Render as text, one row per lattice row, using the given per-species
  /// glyphs (for examples and debugging; not a hot path).
  [[nodiscard]] std::string render(std::span<const char> glyphs) const;

  friend bool operator==(const Configuration& a, const Configuration& b) {
    return a.lattice_ == b.lattice_ && a.state_ == b.state_;
  }

 private:
  Lattice lattice_;
  std::vector<Species> state_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace casurf
