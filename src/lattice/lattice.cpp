#include "lattice/lattice.hpp"

namespace casurf {

std::vector<SiteIndex> Lattice::neighbors(SiteIndex base,
                                          const std::vector<Vec2>& offs) const {
  std::vector<SiteIndex> out;
  out.reserve(offs.size());
  for (const Vec2 o : offs) out.push_back(neighbor(base, o));
  return out;
}

const std::vector<Vec2>& Lattice::von_neumann_offsets() {
  static const std::vector<Vec2> offs = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  return offs;
}

}  // namespace casurf
