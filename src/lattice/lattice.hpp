#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "lattice/vec2.hpp"

namespace casurf {

/// Index of a site in row-major order; 32 bits cover lattices up to
/// 65536 x 65536, far beyond what the simulators here target.
using SiteIndex = std::uint32_t;

/// A two-dimensional rectangular lattice L0 x L1 with periodic boundary
/// conditions (a torus). This is the spatial substrate of the paper's model
/// (section 2): the surface is a lattice Omega of N = L0 x L1 sites.
///
/// The lattice itself is geometry only; occupation state lives in
/// `Configuration`. One-dimensional systems are modelled as L1 == 1.
class Lattice {
 public:
  Lattice(std::int32_t width, std::int32_t height)
      : width_(width), height_(height) {
    assert(width > 0 && height > 0);
  }

  [[nodiscard]] std::int32_t width() const { return width_; }
  [[nodiscard]] std::int32_t height() const { return height_; }
  [[nodiscard]] SiteIndex size() const {
    return static_cast<SiteIndex>(width_) * static_cast<SiteIndex>(height_);
  }

  /// Row-major index of an in-range coordinate.
  [[nodiscard]] SiteIndex index(Vec2 p) const {
    assert(p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_);
    return static_cast<SiteIndex>(p.y) * static_cast<SiteIndex>(width_) +
           static_cast<SiteIndex>(p.x);
  }

  [[nodiscard]] Vec2 coord(SiteIndex i) const {
    assert(i < size());
    return {static_cast<std::int32_t>(i % static_cast<SiteIndex>(width_)),
            static_cast<std::int32_t>(i / static_cast<SiteIndex>(width_))};
  }

  /// Wrap an arbitrary coordinate onto the torus.
  [[nodiscard]] Vec2 wrap(Vec2 p) const {
    return {mod(p.x, width_), mod(p.y, height_)};
  }

  /// Index of site `base + offset`, periodic. This is the hot path of every
  /// enabled-check; offsets are small so the mod is cheap and branch-free
  /// on the common in-range case is not worth the complexity.
  [[nodiscard]] SiteIndex neighbor(SiteIndex base, Vec2 offset) const {
    const Vec2 c = coord(base);
    return index(wrap(c + offset));
  }

  /// All site indices at offsets `offs` from `base`, periodic.
  [[nodiscard]] std::vector<SiteIndex> neighbors(SiteIndex base,
                                                 const std::vector<Vec2>& offs) const;

  /// The four von Neumann unit offsets (+x, +y, -x, -y).
  static const std::vector<Vec2>& von_neumann_offsets();

  friend bool operator==(const Lattice& a, const Lattice& b) {
    return a.width_ == b.width_ && a.height_ == b.height_;
  }

 private:
  static std::int32_t mod(std::int32_t v, std::int32_t m) {
    const std::int32_t r = v % m;
    return r < 0 ? r + m : r;
  }

  std::int32_t width_;
  std::int32_t height_;
};

}  // namespace casurf
