#include "lattice/species.hpp"

#include <stdexcept>

namespace casurf {

SpeciesSet::SpeciesSet(std::vector<std::string> names) {
  for (auto& n : names) add(std::move(n));
}

Species SpeciesSet::add(std::string name) {
  if (names_.size() >= 32) {
    throw std::invalid_argument("SpeciesSet: at most 32 species are supported");
  }
  if (find(name).has_value()) {
    throw std::invalid_argument("SpeciesSet: duplicate species name '" + name + "'");
  }
  names_.push_back(std::move(name));
  return static_cast<Species>(names_.size() - 1);
}

std::optional<Species> SpeciesSet::find(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<Species>(i);
  }
  return std::nullopt;
}

Species SpeciesSet::require(std::string_view name) const {
  if (auto s = find(name)) return *s;
  throw std::out_of_range("SpeciesSet: unknown species '" + std::string(name) + "'");
}

}  // namespace casurf
