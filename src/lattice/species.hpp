#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace casurf {

/// A species is a small integer index into a `SpeciesSet`. The domain D of
/// the paper ({*, A, B, ...}) maps to indices 0..n-1; by convention index 0
/// is the vacant site '*' unless the model says otherwise.
using Species = std::uint8_t;

/// Bitmask over species indices, used for wildcard source patterns
/// ("this transform matches any of these species"). Limits a model to 32
/// species, ample for surface chemistry.
using SpeciesMask = std::uint32_t;

[[nodiscard]] constexpr SpeciesMask species_bit(Species s) {
  return SpeciesMask{1} << s;
}

[[nodiscard]] constexpr bool mask_contains(SpeciesMask m, Species s) {
  return (m >> s) & 1u;
}

/// The finite domain D of particle types: an ordered list of named species.
/// Names are unique; lookups by name are for model construction and I/O,
/// never on the simulation hot path.
class SpeciesSet {
 public:
  SpeciesSet() = default;
  explicit SpeciesSet(std::vector<std::string> names);

  /// Add a species and return its index. Throws std::invalid_argument on a
  /// duplicate name or when the 32-species mask capacity is exhausted.
  Species add(std::string name);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const std::string& name(Species s) const { return names_.at(s); }

  /// Index of a named species, if present.
  [[nodiscard]] std::optional<Species> find(std::string_view name) const;

  /// Index of a named species; throws std::out_of_range when absent.
  [[nodiscard]] Species require(std::string_view name) const;

  /// Mask with every species bit set.
  [[nodiscard]] SpeciesMask all_mask() const {
    return names_.empty() ? 0u
                          : (names_.size() == 32
                                 ? ~SpeciesMask{0}
                                 : (SpeciesMask{1} << names_.size()) - 1u);
  }

  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace casurf
