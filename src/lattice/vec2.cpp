#include "lattice/vec2.hpp"

#include <ostream>

namespace casurf {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ',' << v.y << ')';
}

}  // namespace casurf
