#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>

namespace casurf {

/// Integer 2-D vector used for lattice coordinates and reaction-pattern
/// offsets. Offsets are small (a few sites), coordinates fit easily in
/// 32 bits for any lattice this library targets.
struct Vec2 {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) = default;
  friend constexpr auto operator<=>(Vec2 a, Vec2 b) = default;

  /// L1 (Manhattan) norm, the natural metric for von Neumann neighborhoods.
  [[nodiscard]] constexpr std::int32_t l1() const {
    return (x < 0 ? -x : x) + (y < 0 ? -y : y);
  }
};

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace casurf

template <>
struct std::hash<casurf::Vec2> {
  std::size_t operator()(casurf::Vec2 v) const noexcept {
    // Pack the two 32-bit components into one 64-bit word, then mix.
    std::uint64_t k = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.x)) << 32) |
                      static_cast<std::uint32_t>(v.y);
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }
};
