#include "me/master_equation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace casurf {

MasterEquation::MasterEquation(const ReactionModel& model, Lattice lattice,
                               std::size_t max_states)
    : model_(model), lattice_(lattice) {
  model.validate();
  const std::size_t n_species = model.species().size();
  const SiteIndex n_sites = lattice.size();

  // num_states = n_species ^ n_sites with overflow guard.
  std::size_t states = 1;
  for (SiteIndex i = 0; i < n_sites; ++i) {
    if (states > max_states / n_species + 1) {
      throw std::invalid_argument(
          "MasterEquation: state space exceeds max_states; use a smaller lattice");
    }
    states *= n_species;
  }
  if (states > max_states) {
    throw std::invalid_argument(
        "MasterEquation: state space exceeds max_states; use a smaller lattice");
  }
  num_states_ = states;

  // Enumerate states; emit transitions for every enabled (type, site).
  exit_rate_.assign(num_states_, 0.0);
  coverage_.assign(n_species * num_states_, 0.0f);
  Configuration cfg(lattice, n_species, 0);
  for (std::size_t idx = 0; idx < num_states_; ++idx) {
    // Decode mixed-radix in place.
    std::size_t rem = idx;
    for (SiteIndex s = 0; s < n_sites; ++s) {
      cfg.set(s, static_cast<Species>(rem % n_species));
      rem /= n_species;
    }
    for (Species sp = 0; sp < n_species; ++sp) {
      coverage_[sp * num_states_ + idx] = static_cast<float>(cfg.coverage(sp));
    }
    for (ReactionIndex r = 0; r < model.num_reactions(); ++r) {
      const ReactionType& rt = model.reaction(r);
      for (SiteIndex s = 0; s < n_sites; ++s) {
        if (!rt.enabled(cfg, s)) continue;
        Configuration next = cfg;
        rt.execute(next, s);
        transitions_.push_back(Transition{static_cast<std::uint32_t>(idx),
                                          static_cast<std::uint32_t>(state_index(next)),
                                          rt.rate()});
        exit_rate_[idx] += rt.rate();
      }
    }
    max_exit_rate_ = std::max(max_exit_rate_, exit_rate_[idx]);
  }
}

std::size_t MasterEquation::state_index(const Configuration& cfg) const {
  const std::size_t n_species = model_.species().size();
  std::size_t idx = 0;
  for (SiteIndex s = cfg.size(); s-- > 0;) {
    idx = idx * n_species + cfg.get(s);
  }
  return idx;
}

Configuration MasterEquation::state(std::size_t index) const {
  const std::size_t n_species = model_.species().size();
  Configuration cfg(lattice_, n_species, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    cfg.set(s, static_cast<Species>(index % n_species));
    index /= n_species;
  }
  return cfg;
}

std::vector<double> MasterEquation::delta(const Configuration& cfg) const {
  std::vector<double> p(num_states_, 0.0);
  p[state_index(cfg)] = 1.0;
  return p;
}

void MasterEquation::apply_generator(const std::vector<double>& p,
                                     std::vector<double>& out) const {
  out.assign(num_states_, 0.0);
  // Outflow: -exit_rate(i) p(i); inflow: +rate p(from) at `to`. A self-loop
  // (reaction that maps a state to itself, e.g. a no-op flip) cancels
  // exactly, as it must.
  for (std::size_t i = 0; i < num_states_; ++i) out[i] = -exit_rate_[i] * p[i];
  for (const Transition& t : transitions_) out[t.to] += t.rate * p[t.from];
}

std::vector<double> MasterEquation::evolve(std::vector<double> p, double t,
                                           double dt) const {
  if (p.size() != num_states_) {
    throw std::invalid_argument("MasterEquation::evolve: wrong distribution size");
  }
  if (!(t >= 0) || !(dt > 0)) {
    throw std::invalid_argument("MasterEquation::evolve: need t >= 0 and dt > 0");
  }
  // RK4 stability for a linear ODE with eigenvalues up to ~max exit rate.
  const double step_cap = max_exit_rate_ > 0 ? 0.1 / max_exit_rate_ : t;
  const double step = std::min(dt, step_cap);
  std::vector<double> k1, k2, k3, k4, tmp(num_states_);

  double remaining = t;
  while (remaining > 1e-15) {
    const double h = std::min(step, remaining);
    apply_generator(p, k1);
    for (std::size_t i = 0; i < num_states_; ++i) tmp[i] = p[i] + 0.5 * h * k1[i];
    apply_generator(tmp, k2);
    for (std::size_t i = 0; i < num_states_; ++i) tmp[i] = p[i] + 0.5 * h * k2[i];
    apply_generator(tmp, k3);
    for (std::size_t i = 0; i < num_states_; ++i) tmp[i] = p[i] + h * k3[i];
    apply_generator(tmp, k4);
    for (std::size_t i = 0; i < num_states_; ++i) {
      p[i] += h / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] + k4[i]);
    }
    remaining -= h;
  }
  // Renormalize against accumulated roundoff; clamp tiny negatives.
  double total = 0;
  for (double& v : p) {
    if (v < 0 && v > -1e-9) v = 0;
    total += v;
  }
  if (total > 0) {
    for (double& v : p) v /= total;
  }
  return p;
}

std::vector<double> MasterEquation::stationary(double tol,
                                               std::size_t max_iter) const {
  std::vector<double> p(num_states_, 1.0 / static_cast<double>(num_states_));
  if (max_exit_rate_ <= 0) return p;  // no dynamics at all
  // Uniformization: P = I + Q / Lambda is a stochastic matrix with the
  // same stationary vector as Q; iterate p <- P p.
  const double lambda = max_exit_rate_ * 1.05;
  std::vector<double> q(num_states_);
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    apply_generator(p, q);
    double change = 0;
    for (std::size_t i = 0; i < num_states_; ++i) {
      const double next = p[i] + q[i] / lambda;
      change += std::abs(next - p[i]);
      p[i] = next;
    }
    if (change < tol) break;
  }
  // Clean up roundoff.
  double total = 0;
  for (double& v : p) {
    if (v < 0) v = 0;
    total += v;
  }
  if (total > 0) {
    for (double& v : p) v /= total;
  }
  return p;
}

double MasterEquation::expected_coverage(const std::vector<double>& p,
                                         Species s) const {
  if (p.size() != num_states_ || s >= model_.species().size()) {
    throw std::invalid_argument("MasterEquation::expected_coverage: bad arguments");
  }
  double e = 0;
  const float* cov = &coverage_[static_cast<std::size_t>(s) * num_states_];
  for (std::size_t i = 0; i < num_states_; ++i) e += p[i] * cov[i];
  return e;
}

}  // namespace casurf
