#pragma once

#include <cstdint>
#include <vector>

#include "lattice/configuration.hpp"
#include "model/reaction_model.hpp"

namespace casurf {

/// Exact Master Equation integrator (paper section 2, Eq. 1):
///
///   dP(S,t)/dt = sum_S' [ k_{S S'} P(S', t) - k_{S' S} P(S, t) ]
///
/// for lattices small enough to enumerate the full state space
/// (|D|^N states; the constructor refuses anything above `max_states`).
/// This is the ground truth every stochastic simulator in the library is
/// an estimator of — the tests and the `me_exact_check` bench compare
/// simulated ensembles against it.
class MasterEquation {
 public:
  /// Enumerate the state space and build the sparse transition list.
  /// Throws std::invalid_argument when |D|^N exceeds max_states.
  MasterEquation(const ReactionModel& model, Lattice lattice,
                 std::size_t max_states = 1u << 20);

  [[nodiscard]] std::size_t num_states() const { return num_states_; }
  [[nodiscard]] std::size_t num_transitions() const { return transitions_.size(); }
  [[nodiscard]] const Lattice& lattice() const { return lattice_; }

  /// Index of a configuration in the state enumeration (mixed-radix).
  [[nodiscard]] std::size_t state_index(const Configuration& cfg) const;

  /// Decode a state index into a configuration.
  [[nodiscard]] Configuration state(std::size_t index) const;

  /// Distribution concentrated on one configuration.
  [[nodiscard]] std::vector<double> delta(const Configuration& cfg) const;

  /// Integrate dP/dt = Q P from `p0` for duration `t` with RK4 steps of at
  /// most `dt` (clamped further by stiffness: dt <= 0.1 / max exit rate).
  /// The result is renormalized against roundoff drift.
  [[nodiscard]] std::vector<double> evolve(std::vector<double> p0, double t,
                                           double dt = 1e-2) const;

  /// E[coverage of species s] under distribution p.
  [[nodiscard]] double expected_coverage(const std::vector<double>& p, Species s) const;

  /// Stationary distribution by repeated squaring of the uniformized
  /// transition kernel (power iteration on P = I + Q / Lambda). Converges
  /// for any irreducible model; for reducible chains it returns the
  /// stationary mixture reachable from the uniform start. `tol` bounds the
  /// L1 change per iteration at exit.
  [[nodiscard]] std::vector<double> stationary(double tol = 1e-12,
                                               std::size_t max_iter = 200000) const;

  /// Apply the generator once: out = Q p (exposed for tests).
  void apply_generator(const std::vector<double>& p, std::vector<double>& out) const;

 private:
  struct Transition {
    std::uint32_t from;
    std::uint32_t to;
    double rate;
  };

  const ReactionModel& model_;
  Lattice lattice_;
  std::size_t num_states_;
  std::vector<Transition> transitions_;
  std::vector<double> exit_rate_;  // total outflow per state
  // coverage_[s * num_states + i] = coverage of species s in state i
  std::vector<float> coverage_;
  double max_exit_rate_ = 0;
};

}  // namespace casurf
