#include "model/parser.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

namespace casurf {

namespace {

/// How many 90-degree rotations of a pattern to emit.
enum class Orientations { kNone = 1, kXy = 2, kAll = 4 };

struct Tokenizer {
  std::string_view line;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
  }

  [[nodiscard]] bool done() {
    skip_ws();
    return pos >= line.size();
  }

  /// Next whitespace-delimited token ("" when exhausted).
  std::string_view next() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < line.size() && !std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    return line.substr(start, pos - start);
  }
};

std::string_view strip_comment(std::string_view line) {
  const std::size_t hash = line.find('#');
  return hash == std::string_view::npos ? line : line.substr(0, hash);
}

constexpr Vec2 rotate90(Vec2 v) { return {-v.y, v.x}; }

struct PendingReaction {
  std::string name;
  double rate = 0;
  Orientations orientations = Orientations::kNone;
  std::vector<Transform> transforms;
  std::size_t line = 0;
};

double parse_rate(std::string_view token, std::size_t line) {
  double value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() || !(value > 0)) {
    throw ModelParseError(line, "rate must be a positive number, got '" +
                                    std::string(token) + "'");
  }
  return value;
}

Vec2 parse_offset(std::string_view token, std::size_t line) {
  // "(dx,dy)" with optional internal spaces already excluded by tokenizing.
  if (token.size() < 5 || token.front() != '(' || token.back() != ')') {
    throw ModelParseError(line, "expected offset '(dx,dy)', got '" +
                                    std::string(token) + "'");
  }
  const std::string_view inner = token.substr(1, token.size() - 2);
  const std::size_t comma = inner.find(',');
  if (comma == std::string_view::npos) {
    throw ModelParseError(line, "offset missing comma: '" + std::string(token) + "'");
  }
  const auto parse_int = [&](std::string_view s) {
    int v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size()) {
      throw ModelParseError(line, "bad offset component '" + std::string(s) + "'");
    }
    return v;
  };
  return {parse_int(inner.substr(0, comma)), parse_int(inner.substr(comma + 1))};
}

SpeciesMask parse_source(std::string_view token, const SpeciesSet& species,
                         std::size_t line) {
  if (token == "any") return species.all_mask();
  SpeciesMask mask = 0;
  std::size_t start = 0;
  while (start <= token.size()) {
    const std::size_t bar = token.find('|', start);
    const std::string_view name =
        token.substr(start, bar == std::string_view::npos ? bar : bar - start);
    const auto s = species.find(name);
    if (!s) {
      throw ModelParseError(line, "unknown species '" + std::string(name) +
                                      "' in source pattern");
    }
    mask |= species_bit(*s);
    if (bar == std::string_view::npos) break;
    start = bar + 1;
  }
  return mask;
}

Species parse_target(std::string_view token, const SpeciesSet& species,
                     std::size_t line) {
  if (token == "keep") return kKeep;
  const auto s = species.find(token);
  if (!s) {
    throw ModelParseError(line, "unknown species '" + std::string(token) +
                                    "' in target pattern");
  }
  return *s;
}

void emit(ReactionModel& model, const PendingReaction& pending) {
  const int variants = static_cast<int>(pending.orientations);
  for (int v = 0; v < variants; ++v) {
    std::vector<Transform> transforms = pending.transforms;
    for (Transform& t : transforms) {
      for (int r = 0; r < v; ++r) t.offset = rotate90(t.offset);
    }
    std::string name = pending.name;
    if (variants > 1) name += "_" + std::to_string(v);
    try {
      model.add(ReactionType(std::move(name), pending.rate, std::move(transforms)));
    } catch (const std::invalid_argument& e) {
      throw ModelParseError(pending.line, e.what());
    }
  }
}

}  // namespace

ReactionModel parse_model(std::string_view text) {
  std::optional<ReactionModel> model;
  std::optional<PendingReaction> pending;
  std::size_t reactions_emitted = 0;

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    ++line_no;
    const std::size_t nl = text.find('\n', start);
    std::string_view raw =
        text.substr(start, nl == std::string_view::npos ? nl : nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    Tokenizer tok{strip_comment(raw)};
    if (tok.done()) continue;
    const std::string_view head = tok.next();

    if (head == "species") {
      if (model) throw ModelParseError(line_no, "duplicate 'species' line");
      SpeciesSet species;
      while (!tok.done()) {
        try {
          species.add(std::string(tok.next()));
        } catch (const std::invalid_argument& e) {
          throw ModelParseError(line_no, e.what());
        }
      }
      if (species.size() == 0) {
        throw ModelParseError(line_no, "'species' line names no species");
      }
      model.emplace(std::move(species));
      continue;
    }

    if (head == "reaction") {
      if (!model) {
        throw ModelParseError(line_no, "'reaction' before 'species'");
      }
      if (pending) {
        throw ModelParseError(line_no, "nested 'reaction' (missing 'end'?)");
      }
      PendingReaction r;
      r.line = line_no;
      const std::string_view name = tok.next();
      if (name.empty()) throw ModelParseError(line_no, "reaction needs a name");
      r.name = std::string(name);
      bool have_rate = false;
      while (!tok.done()) {
        const std::string_view opt = tok.next();
        if (opt.starts_with("rate=")) {
          r.rate = parse_rate(opt.substr(5), line_no);
          have_rate = true;
        } else if (opt.starts_with("orientations=")) {
          const std::string_view v = opt.substr(13);
          if (v == "none") {
            r.orientations = Orientations::kNone;
          } else if (v == "xy") {
            r.orientations = Orientations::kXy;
          } else if (v == "all") {
            r.orientations = Orientations::kAll;
          } else {
            throw ModelParseError(line_no, "orientations must be none|xy|all, got '" +
                                               std::string(v) + "'");
          }
        } else {
          throw ModelParseError(line_no, "unknown reaction option '" +
                                             std::string(opt) + "'");
        }
      }
      if (!have_rate) throw ModelParseError(line_no, "reaction needs rate=<value>");
      pending = std::move(r);
      continue;
    }

    if (head == "end") {
      if (!pending) throw ModelParseError(line_no, "'end' without 'reaction'");
      if (!tok.done()) throw ModelParseError(line_no, "trailing tokens after 'end'");
      emit(*model, *pending);
      ++reactions_emitted;
      pending.reset();
      continue;
    }

    // Anything else must be a transform line inside a reaction block.
    if (!pending) {
      throw ModelParseError(line_no, "unexpected token '" + std::string(head) +
                                         "' outside a reaction block");
    }
    const Vec2 offset = parse_offset(head, line_no);
    const std::string_view src = tok.next();
    const std::string_view arrow = tok.next();
    const std::string_view tg = tok.next();
    if (src.empty() || arrow != "->" || tg.empty() || !tok.done()) {
      throw ModelParseError(line_no, "expected '(dx,dy) SRC -> TG'");
    }
    pending->transforms.push_back(Transform{
        offset, parse_source(src, model->species(), line_no),
        parse_target(tg, model->species(), line_no)});
  }

  if (pending) {
    throw ModelParseError(pending->line, "reaction '" + pending->name +
                                             "' not closed with 'end'");
  }
  if (!model) throw ModelParseError(line_no, "no 'species' line found");
  if (reactions_emitted == 0) throw ModelParseError(line_no, "no reactions defined");
  model->validate();
  return std::move(*model);
}

ReactionModel parse_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("parse_model_file: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_model(ss.str());
}

}  // namespace casurf
