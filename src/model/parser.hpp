#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "model/reaction_model.hpp"

namespace casurf {

/// Error from `parse_model`, carrying the 1-based line number.
class ModelParseError : public std::runtime_error {
 public:
  ModelParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parse a reaction model from the line-oriented text format:
///
///   # ZGB CO oxidation (paper Table I)
///   species * CO O
///
///   reaction CO_ads rate=1.0
///     (0,0) * -> CO
///   end
///
///   reaction O2_ads rate=0.5 orientations=xy
///     (0,0) * -> O
///     (1,0) * -> O
///   end
///
///   reaction CO2_form rate=0.5 orientations=all
///     (0,0) CO -> *
///     (1,0) O  -> *
///   end
///
/// Grammar:
///  - `species NAME...` (exactly one, before any reaction; at most 32).
///  - `reaction NAME rate=R [orientations=none|xy|all]` ... `end`.
///    `xy` emits the pattern and its 90-degree rotation ("_0", "_1");
///    `all` emits all four rotations. R is the rate of EACH variant.
///  - transform lines `(dx,dy) SRC -> TG`, where SRC is a species name, an
///    alternation `A|B|C` (wildcard mask), or `any`; TG is a species name
///    or `keep` (precondition-only site).
///  - `#` starts a comment; blank lines are ignored.
///
/// Throws ModelParseError with the offending line on any syntax or
/// semantic error (unknown species, missing anchor, duplicate offsets...).
[[nodiscard]] ReactionModel parse_model(std::string_view text);

/// Convenience: read the file at `path` and parse it.
[[nodiscard]] ReactionModel parse_model_file(const std::string& path);

}  // namespace casurf
