#include "model/reaction_model.hpp"

#include <cmath>
#include <stdexcept>

namespace casurf {

ReactionModel::ReactionModel(SpeciesSet species) : species_(std::move(species)) {
  if (species_.size() == 0) {
    throw std::invalid_argument("ReactionModel: species set must be non-empty");
  }
}

ReactionIndex ReactionModel::add(ReactionType rt) {
  total_rate_ += rt.rate();
  if (rt.radius_l1() > max_radius_) max_radius_ = rt.radius_l1();
  reactions_.push_back(std::move(rt));
  alias_dirty_ = true;
  return static_cast<ReactionIndex>(reactions_.size() - 1);
}

void ReactionModel::rebuild_alias() const {
  std::vector<double> weights;
  weights.reserve(reactions_.size());
  for (const ReactionType& rt : reactions_) weights.push_back(rt.rate());
  alias_ = AliasTable(weights);
  alias_dirty_ = false;
}

void ReactionModel::validate() const {
  if (reactions_.empty()) {
    throw std::invalid_argument("ReactionModel: no reaction types");
  }
  const SpeciesMask domain = species_.all_mask();
  for (const ReactionType& rt : reactions_) {
    for (const Transform& t : rt.transforms()) {
      if ((t.src & ~domain) != 0) {
        throw std::invalid_argument("ReactionModel: reaction '" + rt.name() +
                                    "' source mask references unknown species");
      }
      if (t.tg != kKeep && t.tg >= species_.size()) {
        throw std::invalid_argument("ReactionModel: reaction '" + rt.name() +
                                    "' target species out of range");
      }
    }
  }
}

double arrhenius_rate(double prefactor_nu, double activation_energy_ev,
                      double temperature_k) {
  constexpr double kBoltzmannEvPerK = 8.617333262e-5;
  if (!(prefactor_nu > 0) || !(temperature_k > 0)) {
    throw std::invalid_argument("arrhenius_rate: nu and T must be positive");
  }
  return prefactor_nu * std::exp(-activation_energy_ev / (kBoltzmannEvPerK * temperature_k));
}

}  // namespace casurf
