#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/species.hpp"
#include "model/reaction_type.hpp"
#include "rng/distributions.hpp"

namespace casurf {

/// Index of a reaction type within a model.
using ReactionIndex = std::uint32_t;

/// The set of reaction types T plus the species domain D: everything that
/// defines a surface-reaction model apart from the lattice geometry and the
/// current configuration. Owns an alias table over the rate constants so
/// "select a reaction type i with probability k_i / K" (the first step of
/// every RSM/NDCA/PNDCA trial) is O(1).
class ReactionModel {
 public:
  explicit ReactionModel(SpeciesSet species);

  /// Add a reaction type; returns its index. Invalidate-and-rebuild of the
  /// sampling tables happens lazily on first use after a change.
  ReactionIndex add(ReactionType rt);

  [[nodiscard]] const SpeciesSet& species() const { return species_; }
  [[nodiscard]] std::size_t num_reactions() const { return reactions_.size(); }
  [[nodiscard]] const ReactionType& reaction(ReactionIndex i) const {
    return reactions_.at(i);
  }
  [[nodiscard]] const std::vector<ReactionType>& reactions() const { return reactions_; }

  /// K = sum of all rate constants.
  [[nodiscard]] double total_rate() const { return total_rate_; }

  /// Largest neighborhood radius over all reaction types.
  [[nodiscard]] std::int32_t max_radius_l1() const { return max_radius_; }

  /// O(1) sample of a reaction-type index with probability k_i / K,
  /// given two uniforms in [0,1).
  [[nodiscard]] ReactionIndex sample_type(double u_slot, double u_flip) const {
    return static_cast<ReactionIndex>(alias().sample(u_slot, u_flip));
  }

  /// The alias table behind sample_type, for samplers that draw whole lanes
  /// at once (the batched trial kernel gathers from its raw arrays).
  [[nodiscard]] const AliasTable& alias_table() const { return alias(); }

  template <class Rng>
  [[nodiscard]] ReactionIndex sample_type(Rng& rng) const {
    return static_cast<ReactionIndex>(alias().sample(rng));
  }

  /// For each reaction type, the offsets whose change may flip the
  /// enabledness of this type anchored *elsewhere*: if site z changed, the
  /// anchors to recheck for type i are { z - o : o in influence(i) }.
  /// Used by the event-driven DMC simulators (VSSM/FRM).
  [[nodiscard]] const std::vector<Vec2>& influence(ReactionIndex i) const {
    return reactions_.at(i).neighborhood();
  }

  /// Throws std::invalid_argument if any transform references a species
  /// outside the domain; called by simulators on construction.
  void validate() const;

 private:
  /// Inline fast path — one predictable branch on the trial hot loop; the
  /// rebuild after a model edit stays out of line.
  [[nodiscard]] const AliasTable& alias() const {
    if (alias_dirty_) rebuild_alias();
    return alias_;
  }
  void rebuild_alias() const;

  SpeciesSet species_;
  std::vector<ReactionType> reactions_;
  double total_rate_ = 0.0;
  std::int32_t max_radius_ = 0;
  mutable AliasTable alias_;
  mutable bool alias_dirty_ = true;
};

/// Arrhenius rate constant k = nu * exp(-E / (kB T)). Energies in eV,
/// temperature in K (kB in eV/K). Provided because the paper defines rate
/// constants this way (section 2).
[[nodiscard]] double arrhenius_rate(double prefactor_nu, double activation_energy_ev,
                                    double temperature_k);

}  // namespace casurf
