#include "model/reaction_type.hpp"

#include <algorithm>
#include <stdexcept>

namespace casurf {

ReactionType::ReactionType(std::string name, double rate,
                           std::vector<Transform> transforms)
    : name_(std::move(name)), rate_(rate), transforms_(std::move(transforms)) {
  if (!(rate_ > 0.0)) {
    throw std::invalid_argument("ReactionType '" + name_ + "': rate must be positive");
  }
  if (transforms_.empty()) {
    throw std::invalid_argument("ReactionType '" + name_ + "': no transforms");
  }
  bool has_anchor = false;
  for (const Transform& t : transforms_) {
    if (t.src == 0) {
      throw std::invalid_argument("ReactionType '" + name_ + "': empty source mask");
    }
    if (t.offset == Vec2{0, 0}) has_anchor = true;
    if (std::ranges::find(neighborhood_, t.offset) != neighborhood_.end()) {
      throw std::invalid_argument("ReactionType '" + name_ +
                                  "': duplicate transform offset");
    }
    neighborhood_.push_back(t.offset);
    radius_l1_ = std::max(radius_l1_, t.offset.l1());
  }
  if (!has_anchor) {
    throw std::invalid_argument("ReactionType '" + name_ +
                                "': neighborhood must include the anchor (0,0)");
  }
}

bool ReactionType::writes_offset(Vec2 o) const {
  for (const Transform& t : transforms_) {
    if (t.offset == o && t.tg != kKeep) return true;
  }
  return false;
}

}  // namespace casurf
