#pragma once

#include <string>
#include <vector>

#include "lattice/configuration.hpp"
#include "model/transform.hpp"

namespace casurf {

/// A reaction type Rt (paper section 2): a translation-invariant rule that,
/// anchored at a site s, matches a source pattern over a small neighborhood
/// and rewrites it to a target pattern, proceeding at rate constant k.
///
/// Translation invariance is inherent to the representation: the transforms
/// store *offsets* from the anchor, so Rt(s + t) = Rt(s) + t by
/// construction. The anchor must be part of its own neighborhood
/// (s in Nb(s)); the constructor enforces a transform at offset (0,0).
class ReactionType {
 public:
  ReactionType(std::string name, double rate, std::vector<Transform> transforms);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] const std::vector<Transform>& transforms() const { return transforms_; }

  /// The neighborhood Nb(0): offsets of all sites the rule reads or writes.
  [[nodiscard]] const std::vector<Vec2>& neighborhood() const { return neighborhood_; }

  /// Largest L1 distance of any neighborhood offset from the anchor.
  [[nodiscard]] std::int32_t radius_l1() const { return radius_l1_; }

  /// True when the source pattern matches at anchor `s` in `cfg`
  /// ("Rt is enabled at s in state S").
  [[nodiscard]] bool enabled(const Configuration& cfg, SiteIndex s) const {
    const Lattice& lat = cfg.lattice();
    for (const Transform& t : transforms_) {
      if (!mask_contains(t.src, cfg.get(lat.neighbor(s, t.offset)))) return false;
    }
    return true;
  }

  /// Apply the target pattern at anchor `s`. Precondition: enabled(cfg, s).
  void execute(Configuration& cfg, SiteIndex s) const {
    const Lattice& lat = cfg.lattice();
    for (const Transform& t : transforms_) {
      if (t.tg != kKeep) cfg.set(lat.neighbor(s, t.offset), t.tg);
    }
  }

  /// Apply the target pattern via raw (count-less) writes, accumulating the
  /// per-species population change into `deltas` (array of one entry per
  /// species). Used by the threaded chunk engine; see Configuration::set_raw.
  void execute_raw(Configuration& cfg, SiteIndex s, std::int64_t* deltas) const {
    const Lattice& lat = cfg.lattice();
    for (const Transform& t : transforms_) {
      if (t.tg == kKeep) continue;
      const SiteIndex z = lat.neighbor(s, t.offset);
      const Species old = cfg.get(z);
      if (old == t.tg) continue;
      cfg.set_raw(z, t.tg);
      --deltas[old];
      ++deltas[t.tg];
    }
  }

  /// True if executing this rule can ever change the species at relative
  /// offset `o` (i.e. `o` is in the *write set*, not merely a precondition).
  [[nodiscard]] bool writes_offset(Vec2 o) const;

 private:
  std::string name_;
  double rate_;
  std::vector<Transform> transforms_;
  std::vector<Vec2> neighborhood_;
  std::int32_t radius_l1_ = 0;
};

}  // namespace casurf
