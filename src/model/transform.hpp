#pragma once

#include "lattice/species.hpp"
#include "lattice/vec2.hpp"

namespace casurf {

/// Sentinel target meaning "leave the site's species unchanged". Lets a
/// transform participate in the pattern (and thus the neighborhood /
/// conflict analysis) as a pure precondition, e.g. "an adjacent site must
/// already be in the 1x1 phase" in the Pt(100) reconstruction model.
inline constexpr Species kKeep = 0xFF;

/// One element of a reaction type's triple set (paper section 2): the site
/// at `offset` from the anchor must currently hold a species in `src`
/// (a mask, so wildcards are expressible) and is rewritten to `tg` when the
/// reaction fires. The paper's exact-match triples are the special case of
/// a single-bit mask.
struct Transform {
  Vec2 offset;
  SpeciesMask src = 0;
  Species tg = kKeep;

  friend constexpr bool operator==(const Transform&, const Transform&) = default;
};

/// Convenience constructor for the common exact-match triple
/// (offset, src, tg) of the paper.
[[nodiscard]] constexpr Transform exact(Vec2 offset, Species src, Species tg) {
  return Transform{offset, species_bit(src), tg};
}

/// Precondition-only transform: requires the site to match `src_mask` but
/// never writes it.
[[nodiscard]] constexpr Transform require(Vec2 offset, SpeciesMask src_mask) {
  return Transform{offset, src_mask, kKeep};
}

}  // namespace casurf
