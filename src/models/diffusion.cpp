#include "models/diffusion.hpp"

#include <stdexcept>
#include <string>

namespace casurf::models {

namespace {

DiffusionModel build(double hop_rate, const std::vector<Vec2>& dirs) {
  if (!(hop_rate > 0)) {
    throw std::invalid_argument("diffusion model: hop rate must be positive");
  }
  SpeciesSet species({"*", "A"});
  const Species vac = species.require("*");
  const Species a = species.require("A");

  ReactionModel model(std::move(species));
  const double per_dir = hop_rate / static_cast<double>(dirs.size());
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    model.add(ReactionType("hop_" + std::to_string(i), per_dir,
                           {exact({0, 0}, a, vac), exact(dirs[i], vac, a)}));
  }
  return DiffusionModel{std::move(model), vac, a};
}

}  // namespace

DiffusionModel make_diffusion(double hop_rate) {
  return build(hop_rate, {{1, 0}, {0, 1}, {-1, 0}, {0, -1}});
}

DiffusionModel make_single_file(double hop_rate) {
  return build(hop_rate, {{1, 0}, {-1, 0}});
}

}  // namespace casurf::models
