#pragma once

#include "model/reaction_model.hpp"

namespace casurf::models {

/// A built surface-diffusion model: particles of one species hopping to
/// vacant neighbor sites. This is the paper's Fig 2 system — the canonical
/// example of a CA update conflict (two particles simultaneously jumping
/// into the same empty site), and therefore the canonical test for the
/// partition machinery.
struct DiffusionModel {
  ReactionModel model;
  Species vacant;
  Species particle;
};

/// 2-D diffusion: 4 hop orientations, total channel rate `hop_rate`.
[[nodiscard]] DiffusionModel make_diffusion(double hop_rate = 1.0);

/// 1-D single-file diffusion (lattice height must be 1): hops only along
/// +x/-x, so particles can never pass each other. The system on which NDCA
/// "gives degenerate results" (paper section 4): a raster-order sweep lets
/// a particle cascade rightward several times within one step, producing a
/// spurious drift that RSM does not have.
[[nodiscard]] DiffusionModel make_single_file(double hop_rate = 1.0);

}  // namespace casurf::models
