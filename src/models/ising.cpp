#include "models/ising.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace casurf::models {

namespace {

/// Glauber flip rate for a spin whose flip changes the energy by
/// dE = 2 J (2h - 4), h = aligned neighbors.
double glauber_rate(double beta_j, int aligned, double attempt_rate) {
  const double de_over_j = 2.0 * (2.0 * aligned - 4.0);
  return attempt_rate / (1.0 + std::exp(beta_j * de_over_j));
}

}  // namespace

IsingModel make_ising(double beta_j, double attempt_rate) {
  if (!(beta_j >= 0) || !(attempt_rate > 0)) {
    throw std::invalid_argument("make_ising: need beta_j >= 0 and attempt_rate > 0");
  }
  SpeciesSet species({"-", "+"});
  const Species down = species.require("-");
  const Species up = species.require("+");

  ReactionModel model(std::move(species));
  const Vec2 dirs[] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};

  // For each spin value and each of the 16 neighbor arrangements, one
  // reaction type whose rate is the Glauber rate for that arrangement's
  // aligned-neighbor count. The 16 arrangements of a count h are disjoint
  // patterns, so the *effective* flip rate at any site is exactly w(dE).
  for (const Species spin : {up, down}) {
    const Species flipped = spin == up ? down : up;
    for (unsigned arrangement = 0; arrangement < 16; ++arrangement) {
      int aligned = 0;
      std::vector<Transform> transforms = {exact({0, 0}, spin, flipped)};
      for (int d = 0; d < 4; ++d) {
        const bool neighbor_aligned = (arrangement >> d) & 1u;
        if (neighbor_aligned) ++aligned;
        transforms.push_back(
            require(dirs[d], species_bit(neighbor_aligned ? spin : flipped)));
      }
      model.add(ReactionType(
          std::string("flip_") + (spin == up ? "up_" : "down_") +
              std::to_string(arrangement),
          glauber_rate(beta_j, aligned, attempt_rate), std::move(transforms)));
    }
  }
  return IsingModel{std::move(model), down, up, beta_j};
}

double IsingModel::staggered_magnetization(const Configuration& cfg) const {
  const Lattice& lat = cfg.lattice();
  std::int64_t sum = 0;
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    const Vec2 p = lat.coord(s);
    const int spin = cfg.get(s) == up ? 1 : -1;
    sum += ((p.x + p.y) % 2 == 0) ? spin : -spin;
  }
  return static_cast<double>(sum) / static_cast<double>(cfg.size());
}

double IsingModel::energy_per_site(const Configuration& cfg) const {
  const Lattice& lat = cfg.lattice();
  std::int64_t sum = 0;
  // Count each bond once via the +x and +y neighbors.
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    const int spin = cfg.get(s) == up ? 1 : -1;
    const int right = cfg.get(lat.neighbor(s, {1, 0})) == up ? 1 : -1;
    const int below = cfg.get(lat.neighbor(s, {0, 1})) == up ? 1 : -1;
    sum += spin * (right + below);
  }
  return -static_cast<double>(sum) / static_cast<double>(cfg.size());
}

SynchronousHeatBathIsing::SynchronousHeatBathIsing(const IsingModel& model,
                                                   Configuration initial,
                                                   std::uint64_t seed)
    : model_(model), current_(initial), next_(std::move(initial)), seed_(seed) {}

void SynchronousHeatBathIsing::step() {
  const Lattice& lat = current_.lattice();
  const SiteIndex n = current_.size();
  for (SiteIndex s = 0; s < n; ++s) {
    int field = 0;  // sum of neighbor spins
    for (const Vec2 d : Lattice::von_neumann_offsets()) {
      field += current_.get(lat.neighbor(s, d)) == model_.up ? 1 : -1;
    }
    // Heat bath: P(sigma = +1 | field) = 1 / (1 + exp(-2 beta J field)).
    const double p_up = 1.0 / (1.0 + std::exp(-2.0 * model_.beta_j * field));
    CounterRng rng(seed_, CounterRng::key(steps_, s));
    next_.set(s, rng.next_double() < p_up ? model_.up : model_.down);
  }
  std::swap(current_, next_);
  ++steps_;
}

void SynchronousHeatBathIsing::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) step();
}

}  // namespace casurf::models
