#pragma once

#include <cstdint>

#include "lattice/configuration.hpp"
#include "model/reaction_model.hpp"
#include "rng/counter_rng.hpp"

namespace casurf::models {

/// Glauber (heat-bath) single-spin-flip kinetics of the 2-D Ising model,
/// expressed as surface-reaction types. This is the system for which the
/// paper (section 4, citing Vichniac, Physica D 10, 96 (1984)) notes that
/// naive CA updating "gives degenerate results": fully synchronous
/// heat-bath dynamics decouples the two sublattices and locks into a
/// checkerboard flip-flop instead of the Gibbs state.
///
/// Spin flips depend on the neighborhood through the aligned-neighbor
/// count, which the constant-rate reaction-type formalism expresses by
/// enumerating the C(4,h) neighbor arrangements per count h: 2 spin
/// directions x 16 arrangements = 32 reaction types, each with the Glauber
/// rate w(dE) = attempt_rate / (1 + exp(beta dE)), dE = 2 J (2h - 4).
struct IsingModel {
  ReactionModel model;
  Species down;  ///< spin -1
  Species up;    ///< spin +1
  double beta_j; ///< J / kT used to build the rates

  /// Mean magnetization m = <sigma> in [-1, 1].
  [[nodiscard]] double magnetization(const Configuration& cfg) const {
    return 2.0 * cfg.coverage(up) - 1.0;
  }

  /// Staggered magnetization: the checkerboard order parameter that the
  /// synchronous-CA artifact drives to +-1 while the Gibbs state (above
  /// the AF transition of the *ferromagnet*: always) keeps it near 0.
  [[nodiscard]] double staggered_magnetization(const Configuration& cfg) const;

  /// Energy per site in units of J: -(1/N) sum_<ij> sigma_i sigma_j.
  [[nodiscard]] double energy_per_site(const Configuration& cfg) const;
};

/// Build the 32-type Glauber model at inverse temperature beta_j = J / kT.
/// (The 2-D critical point is beta_j ~ 0.4407.)
[[nodiscard]] IsingModel make_ising(double beta_j, double attempt_rate = 1.0);

/// The degenerate dynamics itself: fully synchronous heat-bath Ising CA.
/// Every site simultaneously resamples its spin from the heat-bath
/// distribution given the *previous* step's neighbors — the textbook CA
/// parallelization, and exactly what the paper's partitioning is designed
/// to avoid. Deterministic given (seed, steps) via counter RNG.
class SynchronousHeatBathIsing {
 public:
  SynchronousHeatBathIsing(const IsingModel& model, Configuration initial,
                           std::uint64_t seed);

  void step();
  void run(std::uint64_t steps);

  [[nodiscard]] const Configuration& configuration() const { return current_; }
  [[nodiscard]] Configuration& configuration() { return current_; }
  [[nodiscard]] std::uint64_t steps_done() const { return steps_; }

 private:
  const IsingModel& model_;
  Configuration current_;
  Configuration next_;
  std::uint64_t seed_;
  std::uint64_t steps_ = 0;
};

}  // namespace casurf::models
