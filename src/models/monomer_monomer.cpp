#include "models/monomer_monomer.hpp"

#include <stdexcept>
#include <string>

namespace casurf::models {

MonomerMonomerModel make_monomer_monomer(const MonomerMonomerParams& p) {
  if (!(p.k_a > 0) || !(p.k_b > 0) || !(p.k_rea > 0)) {
    throw std::invalid_argument(
        "make_monomer_monomer: all rate constants must be positive");
  }
  SpeciesSet species({"*", "A", "B"});
  const Species vac = species.require("*");
  const Species a = species.require("A");
  const Species b = species.require("B");

  ReactionModel model(std::move(species));
  model.add(ReactionType("A_ads", p.k_a, {exact({0, 0}, vac, a)}));
  model.add(ReactionType("B_ads", p.k_b, {exact({0, 0}, vac, b)}));
  const Vec2 dirs[] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  for (std::size_t i = 0; i < 4; ++i) {
    model.add(ReactionType("AB_rea_" + std::to_string(i), p.k_rea / 4.0,
                           {exact({0, 0}, a, vac), exact(dirs[i], b, vac)}));
  }
  return MonomerMonomerModel{std::move(model), vac, a, b};
}

}  // namespace casurf::models
