#pragma once

#include "model/reaction_model.hpp"

namespace casurf::models {

/// The monomer-monomer (A + B -> 0) surface reaction: both species adsorb
/// on single vacant sites and adjacent A-B pairs react and desorb. The
/// classic companion of ZGB in the kinetic-phase-transition literature
/// (Ziff/Fichthorn): for equal adsorption rates the 2-D surface develops
/// growing A- and B-domains (reactant segregation) and any finite lattice
/// eventually poisons by fluctuation; any rate asymmetry poisons it
/// quickly with the majority species. A second realistic workload for the
/// partition machinery (same von Neumann pair patterns as ZGB) and for
/// the segregation observables in stats/correlations.
struct MonomerMonomerParams {
  double k_a = 0.5;     ///< A adsorption on a vacant site
  double k_b = 0.5;     ///< B adsorption on a vacant site
  double k_rea = 2.0;   ///< A + B -> 0 for adjacent pairs (channel total)
};

struct MonomerMonomerModel {
  ReactionModel model;
  Species vacant;
  Species a;
  Species b;
};

/// Six reaction types: A ads, B ads, and four orientations of the pair
/// reaction anchored at the A site.
[[nodiscard]] MonomerMonomerModel make_monomer_monomer(
    const MonomerMonomerParams& params = {});

}  // namespace casurf::models
