#include "models/pt100.hpp"

#include <stdexcept>
#include <string>

namespace casurf::models {

Pt100Model make_pt100(const Pt100Params& p) {
  for (const double k : {p.co_ads, p.o2_ads, p.co_des, p.reaction, p.diffusion,
                         p.v_lift, p.v_restore}) {
    if (!(k > 0)) {
      throw std::invalid_argument("make_pt100: all rate constants must be positive");
    }
  }

  SpeciesSet species({"*h", "COh", "*s", "COs", "Os"});
  const Species hv = species.require("*h");
  const Species hc = species.require("COh");
  const Species sv = species.require("*s");
  const Species sc = species.require("COs");
  const Species so = species.require("Os");

  ReactionModel model(std::move(species));
  const Vec2 dirs[] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  const Vec2 pair_dirs[] = {{1, 0}, {0, 1}};

  // CO adsorption, phase-preserving (both phases accept CO).
  model.add(ReactionType("CO_ads_hex", p.co_ads / 2.0, {exact({0, 0}, hv, hc)}));
  model.add(ReactionType("CO_ads_sq", p.co_ads / 2.0, {exact({0, 0}, sv, sc)}));

  // O2 dissociative adsorption: only on adjacent vacant 1x1 pairs.
  for (std::size_t i = 0; i < 2; ++i) {
    model.add(ReactionType("O2_ads_" + std::to_string(i), p.o2_ads / 2.0,
                           {exact({0, 0}, sv, so), exact(pair_dirs[i], sv, so)}));
  }

  // CO desorption, phase-preserving.
  model.add(ReactionType("CO_des_hex", p.co_des / 2.0, {exact({0, 0}, hc, hv)}));
  model.add(ReactionType("CO_des_sq", p.co_des / 2.0, {exact({0, 0}, sc, sv)}));

  // CO + O -> CO2 (desorbs): anchored at the CO site, which may sit in
  // either phase; the O partner is always 1x1. Eight types: 2 CO phases x 4
  // orientations.
  for (std::size_t i = 0; i < 4; ++i) {
    model.add(ReactionType("CO2_hex_" + std::to_string(i), p.reaction / 8.0,
                           {exact({0, 0}, hc, hv), exact(dirs[i], so, sv)}));
    model.add(ReactionType("CO2_sq_" + std::to_string(i), p.reaction / 8.0,
                           {exact({0, 0}, sc, sv), exact(dirs[i], so, sv)}));
  }

  // CO diffusion: hop to a vacant neighbor; both sites keep their phases.
  // Sixteen types: (from-phase x to-phase) x 4 orientations.
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string sfx = std::to_string(i);
    model.add(ReactionType("CO_hop_hh_" + sfx, p.diffusion / 16.0,
                           {exact({0, 0}, hc, hv), exact(dirs[i], hv, hc)}));
    model.add(ReactionType("CO_hop_hs_" + sfx, p.diffusion / 16.0,
                           {exact({0, 0}, hc, hv), exact(dirs[i], sv, sc)}));
    model.add(ReactionType("CO_hop_sh_" + sfx, p.diffusion / 16.0,
                           {exact({0, 0}, sc, sv), exact(dirs[i], hv, hc)}));
    model.add(ReactionType("CO_hop_ss_" + sfx, p.diffusion / 16.0,
                           {exact({0, 0}, sc, sv), exact(dirs[i], sv, sc)}));
  }

  // Surface reconstruction: CO lifts hex -> 1x1; an empty 1x1 site relaxes
  // back to hex.
  if (p.front_propagation) {
    if (!(p.nucleation > 0)) {
      throw std::invalid_argument("make_pt100: nucleation rate must be positive");
    }
    // Neighbor-assisted transitions: one reaction type per direction, each
    // requiring (but not modifying) a neighbor already in the target phase,
    // so the total per-site rate scales with the local phase-boundary
    // length and the transitions sweep across the lattice as fronts.
    const SpeciesMask sq_any = species_bit(sv) | species_bit(sc) | species_bit(so);
    const SpeciesMask hex_any = species_bit(hv) | species_bit(hc);
    for (std::size_t i = 0; i < 4; ++i) {
      const std::string sfx = std::to_string(i);
      model.add(ReactionType("lift_front_" + sfx, p.v_lift,
                             {exact({0, 0}, hc, sc), require(dirs[i], sq_any)}));
      model.add(ReactionType("restore_front_" + sfx, p.v_restore,
                             {exact({0, 0}, sv, hv), require(dirs[i], hex_any)}));
    }
    model.add(ReactionType("lift_nucleation", p.nucleation, {exact({0, 0}, hc, sc)}));
  } else {
    model.add(ReactionType("lift_hex", p.v_lift, {exact({0, 0}, hc, sc)}));
    model.add(ReactionType("restore_hex", p.v_restore, {exact({0, 0}, sv, hv)}));
  }

  return Pt100Model{std::move(model), hv, hc, sv, sc, so};
}

}  // namespace casurf::models
