#pragma once

#include "model/reaction_model.hpp"

namespace casurf::models {

/// Parameters of the Pt(100) CO-oxidation model with surface
/// reconstruction, in the spirit of Kuzovkov, Kortlüke & von Niessen
/// (J. Chem. Phys. 108, 5571 (1998)) — the oscillatory workload of the
/// paper's Figs 8-10. Mechanism (paper section 6): CO adsorbs on both the
/// hexagonal and the square (1x1) phase of the top layer; adsorbed CO lifts
/// the reconstruction (hex -> 1x1); O2 adsorbs dissociatively only on 1x1
/// pairs; CO + O forms CO2 and desorbs, liberating the surface; empty 1x1
/// sites reconstruct back to hex — and the cycle repeats, producing
/// coverage oscillations. Fast CO diffusion synchronises the lattice.
///
/// The original parameter values are not given in the paper; these defaults
/// were tuned to put a 100x100 lattice in the oscillatory regime (see
/// EXPERIMENTS.md). Channel rates are distributed evenly over orientations.
struct Pt100Params {
  double co_ads = 1.0;      ///< CO adsorption (both phases), ~ y partial pressure
  double o2_ads = 1.0;      ///< O2 dissociative adsorption on 1x1 vacant pairs
  double co_des = 0.2;      ///< CO desorption (both phases)
  double reaction = 100.0;  ///< CO + O -> CO2 (fast, near-instantaneous)
  double diffusion = 100.0; ///< CO hopping to vacant neighbors (fast)
  double v_lift = 1.0;      ///< hex+CO -> 1x1+CO, per 1x1 neighbor (front speed)
  double v_restore = 1.0;   ///< empty 1x1 -> empty hex, per hex neighbor

  /// Front propagation (Kuzovkov-style): when true, the phase transitions
  /// are neighbor-assisted — a hex site converts per 1x1 *neighbor* (rate
  /// v_lift each), an empty 1x1 site reverts per hex neighbor (v_restore
  /// each) — so phase boundaries move as fronts instead of sites flipping
  /// independently. Spatial fronts synchronize the lattice and produce the
  /// large-amplitude oscillations of the paper's Figs 9-10.
  bool front_propagation = true;
  /// Spontaneous hexCO -> sqCO nucleation rate (front mode only; without it
  /// an all-hex surface could never start converting).
  double nucleation = 0.01;
};

/// A built Pt(100) model with its five species handles:
/// hex-vacant, hex-CO, 1x1-vacant, 1x1-CO, 1x1-O.
struct Pt100Model {
  ReactionModel model;
  Species hex_vac;
  Species hex_co;
  Species sq_vac;
  Species sq_co;
  Species sq_o;

  /// Total CO coverage (both phases) in a configuration.
  [[nodiscard]] double co_coverage(const Configuration& cfg) const {
    return cfg.coverage(hex_co) + cfg.coverage(sq_co);
  }
  /// O coverage.
  [[nodiscard]] double o_coverage(const Configuration& cfg) const {
    return cfg.coverage(sq_o);
  }
  /// Fraction of the surface in the square (1x1) phase.
  [[nodiscard]] double sq_fraction(const Configuration& cfg) const {
    return cfg.coverage(sq_vac) + cfg.coverage(sq_co) + cfg.coverage(sq_o);
  }
};

[[nodiscard]] Pt100Model make_pt100(const Pt100Params& params = {});

}  // namespace casurf::models
