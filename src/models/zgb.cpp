#include "models/zgb.hpp"

#include <stdexcept>

namespace casurf::models {

ZgbModel make_zgb(const ZgbParams& params) {
  if (!(params.k_co > 0) || !(params.k_o2 > 0) || !(params.k_rea > 0)) {
    throw std::invalid_argument("make_zgb: all rate constants must be positive");
  }

  SpeciesSet species({"*", "CO", "O"});
  const Species vac = species.require("*");
  const Species co = species.require("CO");
  const Species o = species.require("O");

  ReactionModel model(std::move(species));

  // Rt_CO: CO adsorption on a vacant site.
  model.add(ReactionType("CO_ads", params.k_co, {exact({0, 0}, vac, co)}));

  // Rt_O2: dissociative adsorption on an adjacent vacant pair. Two
  // orientations (+x, +y) cover every unordered pair exactly once
  // (Table I: "RtO2 has only two").
  const Vec2 o2_dirs[] = {{1, 0}, {0, 1}};
  for (std::size_t i = 0; i < 2; ++i) {
    model.add(ReactionType("O2_ads_" + std::to_string(i), params.k_o2 / 2.0,
                           {exact({0, 0}, vac, o), exact(o2_dirs[i], vac, o)}));
  }

  // Rt_CO+O: CO2 formation and desorption, anchored at the CO site; four
  // orientations for the O neighbor (Table I lists all four; its last entry
  // reads "CO" in the source pattern, an obvious typo for "O").
  const Vec2 rea_dirs[] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  for (std::size_t i = 0; i < 4; ++i) {
    model.add(ReactionType("CO2_form_" + std::to_string(i), params.k_rea / 4.0,
                           {exact({0, 0}, co, vac), exact(rea_dirs[i], o, vac)}));
  }

  return ZgbModel{std::move(model), vac, co, o};
}

}  // namespace casurf::models
