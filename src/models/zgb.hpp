#pragma once

#include "model/reaction_model.hpp"

namespace casurf::models {

/// Parameters of the Ziff-Gulari-Barshad CO-oxidation model, exactly the
/// paper's example system (Fig 1 / Table I): CO adsorption, dissociative O2
/// adsorption on adjacent vacant pairs, and CO + O -> CO2 formation +
/// desorption. Each parameter is the total rate constant of its reaction
/// *channel*; the builder distributes it evenly over the channel's
/// orientations (2 for O2, 4 for CO+O), so K = k_co + k_o2 + k_rea.
struct ZgbParams {
  double k_co = 1.0;   ///< k_CO: CO adsorption on a vacant site
  double k_o2 = 1.0;   ///< k_O2: dissociative O2 adsorption on a vacant pair
  double k_rea = 2.0;  ///< k_CO2: CO + O -> CO2 formation and desorption

  /// Classic ZGB parameterization: CO arrives with probability y, O2 with
  /// 1 - y, and the surface reaction is fast (rate `reaction` >> 1
  /// approximates the original instantaneous-reaction model).
  static ZgbParams from_y(double y, double reaction = 50.0) {
    return ZgbParams{y, 1.0 - y, reaction};
  }
};

/// A built ZGB model: the ReactionModel plus the species handles tests and
/// observers need.
struct ZgbModel {
  ReactionModel model;
  Species vacant;
  Species co;
  Species o;
};

/// Build the seven reaction types of Table I:
///   Rt_CO (1 version), Rt_O2 (2 orientations), Rt_CO+O (4 orientations).
[[nodiscard]] ZgbModel make_zgb(const ZgbParams& params = {});

}  // namespace casurf::models
