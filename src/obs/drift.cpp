#include "obs/drift.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/simulator.hpp"
#include "io/atomic_file.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "stats/correlations.hpp"

namespace casurf::obs {

namespace {

constexpr const char* kProfileSchema = "casurf-drift-profile/1";

/// Variance of the window mean from the within-window sample variance.
double mean_se2(double var, std::uint64_t n) {
  return n == 0 ? 0.0 : var / static_cast<double>(n);
}

void emit_number_array(json::Writer& j, const char* key,
                       const std::vector<double>& v) {
  j.key(key);
  j.begin_array();
  for (const double x : v) j.number(x);
  j.end_array();
}

/// Optional per-window array: absent/null means "not tracked".
std::vector<double> parse_optional_numbers(const json::Value& obj, const char* key) {
  std::vector<double> out;
  const json::Value* v = obj.find(key);
  if (v != nullptr && !v->is_null()) {
    for (const auto& x : v->items()) out.push_back(x.as_number());
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- profile

const DriftWindow* DriftProfile::find_window(std::uint64_t index) const {
  const auto it = std::lower_bound(
      windows.begin(), windows.end(), index,
      [](const DriftWindow& w, std::uint64_t i) { return w.index < i; });
  return (it != windows.end() && it->index == index) ? &*it : nullptr;
}

std::string DriftProfile::to_json() const {
  json::Writer j;
  j.begin_object();
  j.key("schema");
  j.string(kProfileSchema);
  j.key("algorithm");
  j.string(algorithm);
  j.key("model");
  j.string(model);
  j.key("window");
  j.number(window);
  j.key("species");
  j.begin_array();
  for (const auto& s : species) j.string(s);
  j.end_array();
  // Correlation metadata only when tracked, so scalar-only profiles keep
  // the exact shape older readers expect.
  if (!corr_pairs.empty()) {
    j.key("corr_pairs");
    j.begin_array();
    for (const auto& [a, b] : corr_pairs) {
      j.begin_array();
      j.string(a);
      j.string(b);
      j.end_array();
    }
    j.end_array();
    j.key("corr_max_r");
    j.i64(corr_max_r);
  }
  j.key("windows");
  j.begin_array();
  for (const DriftWindow& w : windows) {
    j.begin_object();
    j.key("index");
    j.u64(w.index);
    j.key("t0");
    j.number(w.t0);
    j.key("t1");
    j.number(w.t1);
    j.key("samples");
    j.u64(w.samples);
    j.key("coverage_mean");
    j.begin_array();
    for (const double v : w.coverage_mean) j.number(v);
    j.end_array();
    j.key("coverage_var");
    j.begin_array();
    for (const double v : w.coverage_var) j.number(v);
    j.end_array();
    j.key("rate_mean");
    j.number(w.rate_mean);
    j.key("rate_var");
    j.number(w.rate_var);
    j.key("rate_samples");
    j.u64(w.rate_samples);
    if (!w.corr_mean.empty()) {
      emit_number_array(j, "corr_mean", w.corr_mean);
      emit_number_array(j, "corr_var", w.corr_var);
    }
    if (!w.decay_mean.empty()) {
      emit_number_array(j, "decay_mean", w.decay_mean);
      emit_number_array(j, "decay_var", w.decay_var);
    }
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::string out = std::move(j).str();
  out += '\n';
  return out;
}

DriftProfile DriftProfile::from_json(std::string_view text) {
  const json::Value doc = json::Value::parse(text);
  if (doc.string_or("schema", "") != kProfileSchema) {
    throw std::runtime_error("drift profile: missing or unknown schema (want " +
                             std::string(kProfileSchema) + ")");
  }
  DriftProfile p;
  p.algorithm = doc.string_or("algorithm", "");
  p.model = doc.string_or("model", "");
  p.window = doc.at("window").as_number();
  if (!(p.window > 0)) throw std::runtime_error("drift profile: window must be > 0");
  for (const auto& s : doc.at("species").items()) p.species.push_back(s.as_string());
  if (const json::Value* pairs = doc.find("corr_pairs");
      pairs != nullptr && !pairs->is_null()) {
    for (const auto& pv : pairs->items()) {
      if (pv.items().size() != 2) {
        throw std::runtime_error("drift profile: corr_pairs entries must be [a, b]");
      }
      p.corr_pairs.emplace_back(pv.items()[0].as_string(), pv.items()[1].as_string());
    }
    p.corr_max_r = static_cast<std::int32_t>(doc.number_or("corr_max_r", 0));
    const std::size_t want = p.species.size() * (p.species.size() + 1) / 2;
    if (p.corr_pairs.size() != want) {
      throw std::runtime_error(
          "drift profile: corr_pairs does not cover every unordered species pair");
    }
  }
  for (const auto& wv : doc.at("windows").items()) {
    DriftWindow w;
    w.index = wv.at("index").as_u64();
    w.t0 = wv.at("t0").as_number();
    w.t1 = wv.at("t1").as_number();
    w.samples = wv.at("samples").as_u64();
    for (const auto& v : wv.at("coverage_mean").items()) {
      w.coverage_mean.push_back(v.as_number());
    }
    for (const auto& v : wv.at("coverage_var").items()) {
      w.coverage_var.push_back(v.as_number());
    }
    if (w.coverage_mean.size() != p.species.size() ||
        w.coverage_var.size() != p.species.size()) {
      throw std::runtime_error("drift profile: coverage arrays do not match species");
    }
    w.rate_mean = wv.number_or("rate_mean", 0.0);
    w.rate_var = wv.number_or("rate_var", 0.0);
    w.rate_samples = wv.at("rate_samples").as_u64();
    w.corr_mean = parse_optional_numbers(wv, "corr_mean");
    w.corr_var = parse_optional_numbers(wv, "corr_var");
    w.decay_mean = parse_optional_numbers(wv, "decay_mean");
    w.decay_var = parse_optional_numbers(wv, "decay_var");
    if (w.corr_mean.size() != w.corr_var.size() ||
        (!w.corr_mean.empty() && w.corr_mean.size() != p.corr_pairs.size())) {
      throw std::runtime_error("drift profile: corr arrays do not match corr_pairs");
    }
    if (w.decay_mean.size() != w.decay_var.size() ||
        (!w.decay_mean.empty() && w.decay_mean.size() != p.species.size())) {
      throw std::runtime_error("drift profile: decay arrays do not match species");
    }
    if (!p.windows.empty() && w.index <= p.windows.back().index) {
      throw std::runtime_error("drift profile: windows must ascend by index");
    }
    p.windows.push_back(std::move(w));
  }
  return p;
}

void DriftProfile::write(const std::string& path) const {
  io::atomic_write_file(path, to_json());
}

DriftProfile DriftProfile::load(const std::string& path) {
  return from_json(io::read_file(path));
}

// ---------------------------------------------------------------- sampler

DriftSampler::DriftSampler(double window_width, CorrelationOptions corr)
    : width_(window_width), corr_opts_(corr) {
  if (!(width_ > 0)) {
    throw std::invalid_argument("drift: window width must be > 0");
  }
  if (corr_opts_.enabled && corr_opts_.max_r < 1) {
    throw std::invalid_argument("drift: correlation max_r must be at least 1");
  }
}

void DriftSampler::sample(const Simulator& sim) {
  const double t = sim.time();
  if (started_ && t <= last_t_) return;  // dedupe repeated grid observations
  const auto idx = static_cast<std::uint64_t>(std::floor(t / width_));
  if (!started_) {
    species_ = sim.model().species().names();
    cov_.assign(species_.size(), Welford{});
    if (corr_opts_.enabled) {
      corr_.assign(stats::pair_count(species_.size()), Welford{});
      decay_.assign(species_.size(), Welford{});
    }
    cur_index_ = idx;
    started_ = true;
  } else if (idx != cur_index_) {
    if (cur_samples_ > 0) on_window(snapshot());
    for (Welford& w : cov_) w.reset();
    rate_.reset();
    for (Welford& w : corr_) w.reset();
    for (Welford& w : decay_) w.reset();
    cur_samples_ = 0;
    cur_index_ = idx;
  }
  const std::uint64_t executed = sim.counters().executed;
  // The first observation ever has no predecessor to difference against.
  if (have_prev_) {
    const double dt = t - last_t_;
    if (dt > 0) {
      const double de = static_cast<double>(executed - last_executed_);
      rate_.add(de / (dt * static_cast<double>(sim.configuration().size())));
    }
  }
  for (std::size_t s = 0; s < cov_.size(); ++s) {
    cov_[s].add(sim.configuration().coverage(static_cast<Species>(s)));
  }
  if (corr_opts_.enabled) {
    const std::vector<double> g = stats::pair_correlation_matrix(sim.configuration());
    for (std::size_t p = 0; p < corr_.size(); ++p) corr_[p].add(g[p]);
    for (std::size_t s = 0; s < decay_.size(); ++s) {
      decay_[s].add(stats::axial_decay_length(
          sim.configuration(), static_cast<Species>(s), corr_opts_.max_r));
    }
  }
  ++cur_samples_;
  last_t_ = t;
  last_executed_ = executed;
  have_prev_ = true;
}

DriftWindow DriftSampler::snapshot() const {
  DriftWindow w;
  w.index = cur_index_;
  w.t0 = static_cast<double>(cur_index_) * width_;
  w.t1 = w.t0 + width_;
  w.samples = cur_samples_;
  w.coverage_mean.reserve(cov_.size());
  w.coverage_var.reserve(cov_.size());
  for (const Welford& c : cov_) {
    w.coverage_mean.push_back(c.mean());
    w.coverage_var.push_back(c.variance());
  }
  w.rate_mean = rate_.mean();
  w.rate_var = rate_.variance();
  w.rate_samples = rate_.count();
  w.corr_mean.reserve(corr_.size());
  w.corr_var.reserve(corr_.size());
  for (const Welford& c : corr_) {
    w.corr_mean.push_back(c.mean());
    w.corr_var.push_back(c.variance());
  }
  w.decay_mean.reserve(decay_.size());
  w.decay_var.reserve(decay_.size());
  for (const Welford& d : decay_) {
    w.decay_mean.push_back(d.mean());
    w.decay_var.push_back(d.variance());
  }
  return w;
}

void DriftSampler::close_pending(std::uint64_t min_samples) {
  if (cur_samples_ >= min_samples && min_samples > 0) on_window(snapshot());
  for (Welford& w : cov_) w.reset();
  rate_.reset();
  for (Welford& w : corr_) w.reset();
  for (Welford& w : decay_) w.reset();
  cur_samples_ = 0;
}

// --------------------------------------------------------------- recorder

DriftProfile DriftRecorder::take_profile(std::string algorithm, std::string model) {
  close_pending(1);
  DriftProfile p;
  p.algorithm = std::move(algorithm);
  p.model = std::move(model);
  p.window = window_width();
  p.species = species();
  if (correlations().enabled) {
    for (std::size_t a = 0; a < p.species.size(); ++a) {
      for (std::size_t b = a; b < p.species.size(); ++b) {
        p.corr_pairs.emplace_back(p.species[a], p.species[b]);
      }
    }
    p.corr_max_r = correlations().max_r;
  }
  p.windows = std::move(windows_);
  windows_.clear();
  return p;
}

// ---------------------------------------------------------------- monitor

// Correlation tracking switches on automatically when the reference carries
// correlation data: the profile IS the request, and tracking the statistics
// the reference lacks would be wasted work.
DriftMonitor::DriftMonitor(DriftProfile reference, DriftConfig config)
    : DriftSampler(reference.window,
                   CorrelationOptions{!reference.corr_pairs.empty(),
                                      reference.corr_max_r > 0 ? reference.corr_max_r
                                                               : 8}),
      ref_(std::move(reference)),
      config_(config) {}

void DriftMonitor::finish() { close_pending(2); }

void DriftMonitor::on_window(const DriftWindow& run) {
  const DriftWindow* ref = ref_.find_window(run.index);
  if (ref == nullptr) {
    ++unmatched_;
    return;
  }
  // A 1-sample window has no variance estimate: the z-score would be pure
  // epsilon division. Such windows are neither checked nor alarmed.
  if (run.samples < 2 || ref->samples < 2) return;
  ++checked_;
  check(run, *ref);
}

void DriftMonitor::check(const DriftWindow& run, const DriftWindow& ref) {
  const std::size_t ns = std::min(run.coverage_mean.size(), ref.coverage_mean.size());
  for (std::size_t s = 0; s < ns; ++s) {
    const double diff = std::abs(run.coverage_mean[s] - ref.coverage_mean[s]);
    const double se2 = mean_se2(ref.coverage_var[s], ref.samples) +
                       mean_se2(run.coverage_var[s], run.samples);
    const double z = diff / std::sqrt(se2 + 1e-12);
    max_z_ = std::max(max_z_, z);
    if (diff > config_.coverage_abs_tol && z > config_.z_threshold) {
      const std::string name =
          s < ref_.species.size() ? ref_.species[s] : std::to_string(s);
      raise(run, "coverage:" + name, run.coverage_mean[s], ref.coverage_mean[s], z);
    }
  }
  if (run.rate_samples >= 2 && ref.rate_samples >= 2) {
    const double diff = std::abs(run.rate_mean - ref.rate_mean);
    const double rel = diff / std::max(std::abs(ref.rate_mean), config_.rate_floor);
    const double se2 = mean_se2(ref.rate_var, ref.rate_samples) +
                       mean_se2(run.rate_var, run.rate_samples);
    const double z = diff / std::sqrt(se2 + 1e-12);
    max_z_ = std::max(max_z_, z);
    if (rel > config_.rate_rel_tol && z > config_.z_threshold) {
      raise(run, "rate", run.rate_mean, ref.rate_mean, z);
    }
  }
  // Spatial statistics: pair correlations and decay lengths, present only
  // when both sides tracked them (a scalar-only run against a correlation
  // reference, or vice versa, silently skips — the scalar checks above
  // still apply either way).
  const std::size_t np = std::min(run.corr_mean.size(), ref.corr_mean.size());
  for (std::size_t p = 0; p < np; ++p) {
    const double diff = std::abs(run.corr_mean[p] - ref.corr_mean[p]);
    const double se2 = mean_se2(ref.corr_var[p], ref.samples) +
                       mean_se2(run.corr_var[p], run.samples);
    const double z = diff / std::sqrt(se2 + 1e-12);
    max_z_ = std::max(max_z_, z);
    if (diff > config_.corr_abs_tol && z > config_.z_threshold) {
      const std::string name = p < ref_.corr_pairs.size()
                                   ? ref_.corr_pairs[p].first + "," +
                                         ref_.corr_pairs[p].second
                                   : std::to_string(p);
      raise(run, "corr:" + name, run.corr_mean[p], ref.corr_mean[p], z);
    }
  }
  const std::size_t nd = std::min(run.decay_mean.size(), ref.decay_mean.size());
  for (std::size_t s = 0; s < nd; ++s) {
    const double diff = std::abs(run.decay_mean[s] - ref.decay_mean[s]);
    const double se2 = mean_se2(ref.decay_var[s], ref.samples) +
                       mean_se2(run.decay_var[s], run.samples);
    const double z = diff / std::sqrt(se2 + 1e-12);
    max_z_ = std::max(max_z_, z);
    if (diff > config_.decay_abs_tol && z > config_.z_threshold) {
      const std::string name =
          s < ref_.species.size() ? ref_.species[s] : std::to_string(s);
      raise(run, "decay:" + name, run.decay_mean[s], ref.decay_mean[s], z);
    }
  }
}

void DriftMonitor::raise(const DriftWindow& run, std::string what, double observed,
                         double expected, double z) {
  DriftAlarm a;
  a.window = run.index;
  a.t0 = run.t0;
  a.t1 = run.t1;
  a.what = std::move(what);
  a.observed = observed;
  a.expected = expected;
  a.z = z;
  if (trace_ != nullptr) trace_->instant("drift/alarm", run.t1, run.index);
  alarms_.push_back(std::move(a));
}

}  // namespace casurf::obs
