#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/observer.hpp"

namespace casurf::obs {

class TraceRing;

/// Online accuracy-drift monitoring: the paper's central trade is accuracy
/// vs. parallelism — PNDCA buys concurrency by coarsening the partition and
/// raising the trial budget L, and a coarse run can drift away from the
/// exact Master-Equation kinetics (DMC). This layer records a reference
/// profile from an exact run (windowed Welford mean/variance of per-species
/// coverages and the executed-event rate) and compares a later run against
/// it online, raising alarms when the deviation is both material (absolute
/// / relative tolerance) and statistically significant (z-score).
///
/// All statistics are functions of simulated time and the configuration,
/// never of wall clock, so drift monitoring works identically under
/// CASURF_METRICS=OFF and is itself observation-only (bit-exact
/// trajectories with or without a monitor attached).

/// Streaming mean/variance (Welford's algorithm): numerically stable, no
/// sample storage.
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when n < 2.
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  void reset() { *this = Welford{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

/// Aggregates of one sim-time window [index*width, (index+1)*width).
struct DriftWindow {
  std::uint64_t index = 0;
  double t0 = 0, t1 = 0;   ///< window bounds (t1 = t0 + width)
  std::uint64_t samples = 0;
  std::vector<double> coverage_mean;  ///< per species, model order
  std::vector<double> coverage_var;
  /// Executed events per site per unit sim time, estimated between
  /// consecutive samples; mean/variance over the window's estimates.
  double rate_mean = 0, rate_var = 0;
  std::uint64_t rate_samples = 0;
  /// Windowed nearest-neighbor pair correlations g_ab, one entry per
  /// unordered species pair in stats::pair_index packing. Empty when
  /// correlation tracking is off (scalar-only profiles stay loadable).
  std::vector<double> corr_mean;
  std::vector<double> corr_var;
  /// Axial decay length per species (coverage arity). Empty when off.
  std::vector<double> decay_mean;
  std::vector<double> decay_var;
};

/// A recorded reference: what an exact run looked like, window by window.
/// Serialized as JSON (schema "casurf-drift-profile/1") through the atomic
/// write path.
struct DriftProfile {
  std::string algorithm;
  std::string model;
  double window = 0;  ///< sim-time width of each window (> 0)
  std::vector<std::string> species;
  /// Species-name pairs behind the per-window corr_* arrays, in
  /// stats::pair_index order; empty when correlations were not tracked.
  std::vector<std::pair<std::string, std::string>> corr_pairs;
  std::int32_t corr_max_r = 0;  ///< decay-length truncation radius (0 = off)
  std::vector<DriftWindow> windows;  ///< ascending by index (gaps allowed)

  [[nodiscard]] std::string to_json() const;
  /// Parse; throws std::runtime_error on malformed input or wrong schema.
  static DriftProfile from_json(std::string_view text);
  void write(const std::string& path) const;
  static DriftProfile load(const std::string& path);

  [[nodiscard]] const DriftWindow* find_window(std::uint64_t index) const;
};

/// Shared windowed accumulation driven by Observer::sample: coverage of
/// every species plus the inter-sample executed-event rate, folded into the
/// window owning each sample's timestamp (absolute index floor(t/width), so
/// a resumed run lines up with the reference regardless of start time).
/// Optional spatial statistics for the drift layer. Pair correlations and
/// decay lengths cost O(N) to O(N * max_r) per observation — cheap next to
/// a simulation step, but not free, hence opt-in.
struct CorrelationOptions {
  bool enabled = false;
  std::int32_t max_r = 8;  ///< truncation radius for the decay length
};

class DriftSampler : public Observer {
 public:
  explicit DriftSampler(double window_width, CorrelationOptions corr = {});

  void sample(const Simulator& sim) override;

  [[nodiscard]] double window_width() const { return width_; }
  [[nodiscard]] const CorrelationOptions& correlations() const { return corr_opts_; }
  [[nodiscard]] const std::vector<std::string>& species() const { return species_; }

 protected:
  /// Called each time a window completes (the next sample crossed its upper
  /// bound) and once from close_pending() for a trailing partial window.
  virtual void on_window(const DriftWindow& w) = 0;

  /// Flush the in-progress window, if it holds at least `min_samples`.
  void close_pending(std::uint64_t min_samples);

 private:
  [[nodiscard]] DriftWindow snapshot() const;

  double width_;
  CorrelationOptions corr_opts_;
  std::vector<std::string> species_;  // captured at first sample
  bool started_ = false;
  bool have_prev_ = false;
  double last_t_ = 0;
  std::uint64_t last_executed_ = 0;
  std::uint64_t cur_index_ = 0;
  std::uint64_t cur_samples_ = 0;
  std::vector<Welford> cov_;
  Welford rate_;
  std::vector<Welford> corr_;   // pair_index packing; empty when off
  std::vector<Welford> decay_;  // per species; empty when off
};

/// Records a reference profile (wire as `casurf_run --drift-record`).
class DriftRecorder final : public DriftSampler {
 public:
  explicit DriftRecorder(double window_width, CorrelationOptions corr = {})
      : DriftSampler(window_width, corr) {}

  /// Close the trailing window and hand over the profile, labelled with
  /// the producing algorithm/model. Call once, after the run (windows
  /// holding a single sample are kept: better a noisy reference window
  /// than a silent gap).
  [[nodiscard]] DriftProfile take_profile(std::string algorithm, std::string model);

 private:
  void on_window(const DriftWindow& w) override { windows_.push_back(w); }

  std::vector<DriftWindow> windows_;
};

/// Alarm thresholds. An alarm fires only when a deviation is BOTH material
/// (abs/rel tolerance — guards against significance without relevance) and
/// significant (z-score against the combined standard errors — guards
/// against noise on tiny windows).
struct DriftConfig {
  double z_threshold = 6.0;
  double coverage_abs_tol = 0.02;  ///< minimum |Δcoverage| that can alarm
  double rate_rel_tol = 0.15;      ///< minimum relative rate error
  double rate_floor = 1e-9;        ///< reference rate magnitude floor
  /// Minimum |Δg_ab| that can alarm. g is a ratio against random mixing
  /// (1 = uncorrelated); 0.10 corresponds to a 10-point shift in local
  /// ordering — far above the window-to-window noise on lattices ≥ 64².
  double corr_abs_tol = 0.10;
  /// Minimum |Δxi| (in sites) of the axial decay length.
  double decay_abs_tol = 0.5;
};

struct DriftAlarm {
  std::uint64_t window = 0;  ///< window index
  double t0 = 0, t1 = 0;
  std::string what;  ///< "coverage:<species>", "rate", "corr:<a>,<b>", "decay:<species>"
  double observed = 0, expected = 0;
  double z = 0;
};

/// Compares a live run window-by-window against a recorded reference
/// (wire as `casurf_run --drift-ref`). Window width comes from the profile.
class DriftMonitor final : public DriftSampler {
 public:
  explicit DriftMonitor(DriftProfile reference, DriftConfig config = {});

  /// Close the trailing window (compared only when it has ≥ 2 samples, so a
  /// single straggling sample cannot fake a variance-free alarm) — call
  /// once, after the run.
  void finish();

  /// Emit an instant trace event per alarm into `ring` (nullptr = off).
  void set_trace(TraceRing* ring) { trace_ = ring; }

  [[nodiscard]] const DriftProfile& reference() const { return ref_; }
  [[nodiscard]] const DriftConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<DriftAlarm>& alarms() const { return alarms_; }
  /// Windows compared against a matching reference window.
  [[nodiscard]] std::uint64_t windows_checked() const { return checked_; }
  /// Closed windows with no reference counterpart (run outlived the ref).
  [[nodiscard]] std::uint64_t windows_unmatched() const { return unmatched_; }
  [[nodiscard]] double max_z() const { return max_z_; }

 private:
  void on_window(const DriftWindow& w) override;
  void check(const DriftWindow& run, const DriftWindow& ref);
  void raise(const DriftWindow& run, std::string what, double observed,
             double expected, double z);

  DriftProfile ref_;
  DriftConfig config_;
  TraceRing* trace_ = nullptr;
  std::vector<DriftAlarm> alarms_;
  std::uint64_t checked_ = 0;
  std::uint64_t unmatched_ = 0;
  double max_z_ = 0;
};

}  // namespace casurf::obs
