#include "obs/json.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace casurf::obs::json {

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Writer::u64(std::uint64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
}

void Writer::i64(std::int64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
}

void Writer::number(double v) {
  comma();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
}

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::runtime_error("json: " + what + " at byte " + std::to_string(pos));
}

}  // namespace

/// Recursive-descent parser over a string_view; depth-limited so a hostile
/// file cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    Value v;
    const char c = text_[pos_];
    switch (c) {
      case '{': parse_object(v, depth); break;
      case '[': parse_array(v, depth); break;
      case '"':
        v.kind_ = Value::Kind::kString;
        v.str_ = parse_string();
        break;
      case 't':
        expect("true");
        v.kind_ = Value::Kind::kBool;
        v.bool_ = true;
        break;
      case 'f':
        expect("false");
        v.kind_ = Value::Kind::kBool;
        v.bool_ = false;
        break;
      case 'n':
        expect("null");
        v.kind_ = Value::Kind::kNull;
        break;
      default:
        v.kind_ = Value::Kind::kNumber;
        v.num_ = parse_number();
    }
    return v;
  }

  void parse_object(Value& v, int depth) {
    v.kind_ = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail(pos_, "expected object key");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail(pos_, "expected ':'");
      ++pos_;
      skip_ws();
      v.obj_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return;
      }
      fail(pos_, "expected ',' or '}'");
    }
  }

  void parse_array(Value& v, int depth) {
    v.kind_ = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_ws();
      v.arr_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return;
      }
      fail(pos_, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v += static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "bad hex digit in \\u escape");
      }
    }
    return v;
  }

  void append_codepoint(std::string& out, unsigned cp) {
    // Surrogate pair: a high surrogate must be followed by \uDC00..\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail(pos_, "unpaired surrogate");
      }
      pos_ += 2;
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail(pos_, "bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail(pos_, "unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(start, "expected value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail(start, "bad number");
    return v;
  }

  void expect(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail(pos_, "expected literal");
    }
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return num_;
}

std::uint64_t Value::as_u64() const {
  const double v = as_number();
  if (v < 0 || std::floor(v) != v) throw std::runtime_error("json: not a u64");
  return static_cast<std::uint64_t>(v);
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return str_;
}

const std::vector<Value>& Value::items() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json: not an array");
  return arr_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  return obj_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key \"" + std::string(key) + '"');
  }
  return *v;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v == nullptr || v->is_null()) ? fallback : v->as_number();
}

std::string Value::string_or(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  return (v == nullptr || v->is_null()) ? fallback : v->as_string();
}

}  // namespace casurf::obs::json
