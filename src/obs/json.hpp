#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace casurf::obs::json {

/// Minimal JSON layer shared by the run report, the trace writer, and the
/// `casurf_report` CLI: one emitter (`Writer`), one escaper, and one
/// recursive-descent parser (`Value::parse`). No external dependency; only
/// what the observability formats need.

/// Append the JSON string-escaped form of `s` to `out`, surrounding quotes
/// included. Escapes `"`, `\`, and every control byte < 0x20 (so hostile
/// reaction/species names can never break the document).
void append_quoted(std::string& out, std::string_view s);

/// Streaming emitter. Caller is responsible for balanced begin/end calls;
/// commas are inserted automatically.
class Writer {
 public:
  [[nodiscard]] std::string str() && { return std::move(out_); }

  void raw(const char* s) {
    comma();
    out_ += s;
  }
  void key(std::string_view name) {
    comma();
    append_quoted(out_, name);
    out_ += ':';
    fresh_ = true;
  }
  void begin_object() {
    comma();
    out_ += '{';
    fresh_ = true;
  }
  void end_object() {
    out_ += '}';
    fresh_ = false;
  }
  void begin_array() {
    comma();
    out_ += '[';
    fresh_ = true;
  }
  void end_array() {
    out_ += ']';
    fresh_ = false;
  }
  void string(std::string_view s) {
    comma();
    append_quoted(out_, s);
  }
  void boolean(bool v) { raw(v ? "true" : "false"); }
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// Finite doubles round-trip (%.17g); NaN/Inf become null (JSON has no NaN).
  void number(double v);

 private:
  void comma() {
    if (!fresh_ && !out_.empty() && out_.back() != '{' && out_.back() != '[' &&
        out_.back() != ':') {
      out_ += ',';
    }
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
};

/// Parsed JSON value. Numbers are doubles (the report formats stay within
/// the 2^53 exactly-representable range); objects preserve member order.
/// Parse errors throw std::runtime_error with a byte offset.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  /// Parse a complete document; trailing non-whitespace is an error.
  static Value parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// Like find, but throws std::runtime_error naming the missing key.
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// Convenience: member `key` as number/string, or `fallback` when the
  /// member is absent/null (kind mismatch still throws).
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;

 private:
  friend class Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

}  // namespace casurf::obs::json
