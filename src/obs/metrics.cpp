#include "obs/metrics.hpp"

#include <map>
#include <memory>
#include <mutex>

namespace casurf::obs {

// std::map keeps node addresses stable across inserts (hot code caches the
// probe pointers) and iterates in name order (deterministic reports).
struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Timer>> timers;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(impl_->mutex);
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard lock(impl_->mutex);
  auto& slot = impl_->timers[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(impl_->mutex);
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(impl_->mutex);
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::vector<MetricsRegistry::CounterSample> MetricsRegistry::counters() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<CounterSample> out;
  out.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters) out.push_back({name, c->value()});
  return out;
}

std::vector<MetricsRegistry::TimerSample> MetricsRegistry::timers() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<TimerSample> out;
  out.reserve(impl_->timers.size());
  for (const auto& [name, t] : impl_->timers) {
    out.push_back({name, t->total_ns(), t->count(), t->max_ns()});
  }
  return out;
}

std::vector<MetricsRegistry::HistogramSample> MetricsRegistry::histograms() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<HistogramSample> out;
  out.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) s.buckets[b] = h->bucket(b);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<MetricsRegistry::GaugeSample> MetricsRegistry::gauges() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<GaugeSample> out;
  out.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges) out.push_back({name, g->value()});
  return out;
}

}  // namespace casurf::obs
