#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace casurf::obs {

/// Low-overhead counters/timers/histograms for the simulation hot paths.
///
/// Usage discipline: a `MetricsRegistry` owns every probe and hands out
/// stable references; hot code resolves each probe by name ONCE (at
/// `Simulator::set_metrics` time) and keeps the pointer. A null pointer
/// means "metrics off" — every probe call degrades to a single branch, so
/// the instrumented trajectory is bit-identical with and without metrics
/// (probes never touch RNG or simulation state) and the disabled overhead
/// stays under the noise floor.
///
/// Compile-out mode: building with -DCASURF_NO_METRICS (CMake option
/// CASURF_METRICS=OFF) turns the clock reads into constants so even an
/// attached registry records zero durations; counters still count.

/// Monotonic clock read in nanoseconds (0 in the compiled-out build).
inline std::uint64_t now_ns() {
#ifdef CASURF_NO_METRICS
  return 0;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Monotonic event counter. Relaxed atomics: workers of the threaded
/// engine may bump the same counter concurrently; totals are exact, only
/// inter-counter ordering is unspecified.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulating wall-clock timer: total/count/max of recorded spans.
class Timer {
 public:
  void add_ns(std::uint64_t ns) {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
    while (ns > cur && !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean_ns() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(total_ns()) / static_cast<double>(n);
  }

 private:
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// RAII span recorder; a null timer makes construction and destruction a
/// branch each — the "metrics off" fast path.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) : timer_(timer), start_(timer ? now_ns() : 0) {}
  ~ScopedTimer() {
    if (timer_ != nullptr) timer_->add_ns(now_ns() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::uint64_t start_;
};

/// Power-of-two histogram of nonnegative integer samples (bucket b counts
/// values v with bit_width(v) == b, i.e. [2^(b-1), 2^b); bucket 0 counts
/// zeros). 65 buckets cover the whole uint64 range — coarse, fixed-size,
/// and allocation-free on the record path.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  /// Inclusive upper bound of bucket b (2^b - 1; bucket 0 holds only 0).
  [[nodiscard]] static std::uint64_t bucket_limit(std::size_t b) {
    return b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Point-in-time level (queue depth, RSS bytes, jobs per state). Unlike a
/// Counter a gauge can move both ways; stored as a double so derived
/// rates (trials/s) and byte totals share one primitive. set()/add() are
/// relaxed-atomic: last write wins, which is the Prometheus gauge
/// contract.
class Gauge {
 public:
  void set(double v) { bits_.store(encode(v), std::memory_order_relaxed); }
  void add(double d) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, encode(decode(cur) + d),
                                        std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return decode(bits_.load(std::memory_order_relaxed));
  }

 private:
  // Bit-pattern punning keeps the field a plain atomic<uint64_t>, which
  // every target lowers to lock-free loads/stores (atomic<double> RMW
  // support is spottier).
  static std::uint64_t encode(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double decode(std::uint64_t bits) {
    double v = 0;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Owns every probe of one run, keyed by slash-separated names (see
/// docs/OBSERVABILITY.md for the taxonomy). Registration is mutex-guarded
/// and idempotent; returned references stay valid for the registry's
/// lifetime, so hot paths hold the pointer instead of re-resolving.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Timer& timer(const std::string& name);
  Histogram& histogram(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// Point-in-time copies, sorted by name (deterministic report order).
  struct CounterSample {
    std::string name;
    std::uint64_t value;
  };
  struct TimerSample {
    std::string name;
    std::uint64_t total_ns, count, max_ns;
  };
  struct HistogramSample {
    std::string name;
    std::uint64_t count, sum;
    std::uint64_t buckets[Histogram::kBuckets];
  };
  struct GaugeSample {
    std::string name;
    double value;
  };
  [[nodiscard]] std::vector<CounterSample> counters() const;
  [[nodiscard]] std::vector<TimerSample> timers() const;
  [[nodiscard]] std::vector<HistogramSample> histograms() const;
  [[nodiscard]] std::vector<GaugeSample> gauges() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace casurf::obs
