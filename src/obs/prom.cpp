#include "obs/prom.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

namespace casurf::obs::prom {
namespace {

bool is_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool is_name_char(char c) { return is_name_start(c) || (c >= '0' && c <= '9'); }

/// Registry keys may carry the slash taxonomy of the simulation probes
/// ("trial/attempts"); exposition names may not. Deterministic repair.
std::string sanitize(std::string_view base) {
  std::string out;
  out.reserve(base.size());
  for (const char c : base) out += is_name_char(c) ? c : '_';
  if (out.empty() || !is_name_start(out[0])) out.insert(out.begin(), '_');
  return out;
}

/// Split a registry key into base name and verbatim label block (the
/// `{...}` suffix series() appended, "" when unlabeled).
std::pair<std::string_view, std::string_view> split_key(std::string_view key) {
  const std::size_t brace = key.find('{');
  if (brace == std::string_view::npos) return {key, {}};
  return {key.substr(0, brace), key.substr(brace)};
}

std::string fmt_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  if (v == std::rint(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

/// `labels` is "" or "{...}"; weave one more pair into the block.
std::string with_label(std::string_view labels, std::string_view name,
                       std::string_view value) {
  std::string out;
  if (labels.empty()) {
    out += '{';
  } else {
    out.append(labels.substr(0, labels.size() - 1));
    out += ',';
  }
  out += name;
  out += "=\"";
  append_escaped_label(out, value);
  out += "\"}";
  return out;
}

struct PendingFamily {
  std::string type;
  std::vector<std::string> lines;
};

}  // namespace

void append_escaped_label(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

std::string series(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string key(base);
  if (labels.size() == 0) return key;
  key += '{';
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) key += ',';
    first = false;
    key += name;
    key += "=\"";
    append_escaped_label(key, value);
    key += '"';
  }
  key += '}';
  return key;
}

#ifdef CASURF_NO_METRICS

std::string render(const MetricsRegistry& registry) {
  (void)registry;
  return {};
}

#else

std::string render(const MetricsRegistry& registry) {
  // Kind order fixes who wins a sanitised-base collision (header contract).
  std::map<std::string, PendingFamily> families;
  const auto claim = [&families](std::string_view key,
                                 const char* type) -> PendingFamily* {
    PendingFamily& fam = families[sanitize(split_key(key).first)];
    if (fam.type.empty()) fam.type = type;
    return fam.type == type ? &fam : nullptr;
  };

  for (const auto& s : registry.counters()) {
    const auto [base, labels] = split_key(s.name);
    if (PendingFamily* fam = claim(s.name, "counter")) {
      fam->lines.push_back(sanitize(base) + std::string(labels) + ' ' +
                           fmt_u64(s.value));
    }
  }
  for (const auto& s : registry.gauges()) {
    const auto [base, labels] = split_key(s.name);
    if (PendingFamily* fam = claim(s.name, "gauge")) {
      fam->lines.push_back(sanitize(base) + std::string(labels) + ' ' +
                           fmt_value(s.value));
    }
  }
  for (const auto& s : registry.timers()) {
    const auto [base, labels] = split_key(s.name);
    if (PendingFamily* fam = claim(s.name, "summary")) {
      const std::string name = sanitize(base);
      fam->lines.push_back(name + "_sum" + std::string(labels) + ' ' +
                           fmt_u64(s.total_ns));
      fam->lines.push_back(name + "_count" + std::string(labels) + ' ' +
                           fmt_u64(s.count));
    }
  }
  for (const auto& s : registry.histograms()) {
    const auto [base, labels] = split_key(s.name);
    if (PendingFamily* fam = claim(s.name, "histogram")) {
      const std::string name = sanitize(base);
      std::size_t last = 0;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (s.buckets[b] != 0) last = b;
      }
      std::uint64_t cum = 0;
      for (std::size_t b = 0; s.count != 0 && b <= last; ++b) {
        cum += s.buckets[b];
        fam->lines.push_back(
            name + "_bucket" +
            with_label(labels, "le",
                       fmt_value(static_cast<double>(
                           Histogram::bucket_limit(b)))) +
            ' ' + fmt_u64(cum));
      }
      fam->lines.push_back(name + "_bucket" + with_label(labels, "le", "+Inf") +
                           ' ' + fmt_u64(s.count));
      fam->lines.push_back(name + "_sum" + std::string(labels) + ' ' +
                           fmt_u64(s.sum));
      fam->lines.push_back(name + "_count" + std::string(labels) + ' ' +
                           fmt_u64(s.count));
    }
  }

  std::string out;
  for (const auto& [name, fam] : families) {
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += fam.type;
    out += '\n';
    for (const std::string& line : fam.lines) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

#endif  // CASURF_NO_METRICS

namespace {

struct ParseCursor {
  std::string_view line;
  std::size_t pos = 0;
  std::size_t lineno = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("prom parse: line " + std::to_string(lineno) +
                             ": " + what);
  }
  [[nodiscard]] bool done() const { return pos >= line.size(); }
  [[nodiscard]] char peek() const { return line[pos]; }

  std::string_view take_name() {
    const std::size_t start = pos;
    while (!done() && is_name_char(peek())) ++pos;
    if (pos == start || !is_name_start(line[start])) fail("expected a name");
    return line.substr(start, pos - start);
  }

  void expect(char c, const char* what) {
    if (done() || peek() != c) fail(std::string("expected ") + what);
    ++pos;
  }

  std::string take_label_value() {
    expect('"', "'\"'");
    std::string out;
    while (!done() && peek() != '"') {
      char c = peek();
      ++pos;
      if (c == '\\') {
        if (done()) fail("dangling escape in label value");
        const char esc = peek();
        ++pos;
        if (esc == '\\' || esc == '"') {
          c = esc;
        } else if (esc == 'n') {
          c = '\n';
        } else {
          fail("invalid escape in label value");
        }
      }
      out += c;
    }
    expect('"', "closing '\"'");
    return out;
  }

  double take_value() {
    const std::string token(line.substr(pos));
    if (token.empty()) fail("missing sample value");
    if (token.find(' ') != std::string::npos) {
      fail("trailing token after value (timestamps are rejected)");
    }
    const char* begin = token.c_str();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end != begin + token.size()) fail("bad sample value: " + token);
    pos = line.size();
    return v;
  }
};

std::string signature_without_le(const Sample& s, double* le_out) {
  std::string sig;
  bool saw_le = false;
  for (const auto& [name, value] : s.labels) {
    if (name == "le") {
      if (le_out != nullptr) {
        const char* begin = value.c_str();
        char* end = nullptr;
        *le_out = std::strtod(begin, &end);
        if (*begin == '\0' || end != begin + value.size()) {
          throw std::runtime_error("prom parse: bad le value: " + value);
        }
      }
      saw_le = true;
      continue;
    }
    sig += name;
    sig += '=';
    sig += value;
    sig += ';';
  }
  if (le_out != nullptr && !saw_le) {
    throw std::runtime_error("prom parse: _bucket sample without an le label");
  }
  return sig;
}

/// Histogram invariants checked at family close: per label set, strictly
/// ascending le, non-decreasing cumulative counts, a final +Inf bucket
/// that matches the _count sample.
void check_histogram(const Family& fam) {
  struct Group {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    double count = -1;
  };
  std::map<std::string, Group> groups;
  for (const Sample& s : fam.samples) {
    if (s.name == fam.name + "_bucket") {
      double le = 0;
      const std::string sig = signature_without_le(s, &le);
      groups[sig].buckets.emplace_back(le, s.value);
    } else if (s.name == fam.name + "_count") {
      groups[signature_without_le(s, nullptr)].count = s.value;
    }
  }
  for (const auto& [sig, g] : groups) {
    const auto bad = [&fam, &sig = sig](const std::string& what) {
      throw std::runtime_error("prom parse: histogram " + fam.name +
                               (sig.empty() ? "" : "{" + sig + "}") + ": " +
                               what);
    };
    if (g.buckets.empty()) bad("has a _count but no _bucket samples");
    double prev_le = -std::numeric_limits<double>::infinity();
    double prev_cum = 0;
    for (const auto& [le, cum] : g.buckets) {
      if (le <= prev_le) bad("le values are not strictly ascending");
      if (cum < prev_cum) bad("cumulative bucket counts decrease");
      prev_le = le;
      prev_cum = cum;
    }
    if (!std::isinf(prev_le)) bad("missing the +Inf bucket");
    if (g.count < 0) bad("missing the _count sample");
    if (g.count != prev_cum) bad("_count disagrees with the +Inf bucket");
  }
}

}  // namespace

std::vector<Family> parse(std::string_view text) {
  if (!text.empty() && text.back() != '\n') {
    throw std::runtime_error("prom parse: missing final newline");
  }
  std::vector<Family> out;
  std::set<std::string> seen;
  Family* open = nullptr;
  const auto close_open = [&out, &open] {
    if (open != nullptr && open->type == "histogram") check_histogram(*open);
    open = nullptr;
  };

  ParseCursor cur;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    cur.line = text.substr(pos, nl - pos);
    cur.pos = 0;
    ++cur.lineno;
    pos = nl + 1;

    if (cur.line.empty()) cur.fail("empty line");
    if (cur.line[0] == '#') {
      const bool is_type = cur.line.rfind("# TYPE ", 0) == 0;
      const bool is_help = cur.line.rfind("# HELP ", 0) == 0;
      if (!is_type && !is_help) cur.fail("unrecognised comment line");
      cur.pos = 7;
      const std::string name(cur.take_name());
      if (is_help) continue;  // accepted, no structural effect
      cur.expect(' ', "' '");
      const std::string_view type = cur.line.substr(cur.pos);
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        cur.fail("unknown metric type \"" + std::string(type) + '"');
      }
      close_open();
      if (!seen.insert(name).second) {
        cur.fail("family \"" + name + "\" reopened");
      }
      out.push_back(Family{name, std::string(type), {}});
      open = &out.back();
      continue;
    }

    // Sample line: name[{labels}] value
    Sample sample;
    sample.name = std::string(cur.take_name());
    if (!cur.done() && cur.peek() == '{') {
      ++cur.pos;
      while (true) {
        const std::string lname(cur.take_name());
        cur.expect('=', "'='");
        sample.labels.emplace_back(lname, cur.take_label_value());
        if (cur.done()) cur.fail("unterminated label block");
        if (cur.peek() == '}') {
          ++cur.pos;
          break;
        }
        cur.expect(',', "',' or '}'");
      }
    }
    cur.expect(' ', "' ' before the value");
    sample.value = cur.take_value();

    if (open == nullptr) cur.fail("sample before any # TYPE line");
    const bool suffixed =
        (open->type == "histogram" &&
         (sample.name == open->name + "_bucket" ||
          sample.name == open->name + "_sum" ||
          sample.name == open->name + "_count")) ||
        (open->type == "summary" && (sample.name == open->name + "_sum" ||
                                     sample.name == open->name + "_count"));
    if (sample.name != open->name && !suffixed) {
      cur.fail("sample \"" + sample.name + "\" outside family \"" +
               open->name + '"');
    }
    open->samples.push_back(std::move(sample));
  }
  close_open();
  return out;
}

double quantile(const Family& family, double q) {
  if (family.type != "histogram") {
    throw std::runtime_error("prom quantile: family " + family.name +
                             " is not a histogram");
  }
  // Convert every label set's cumulative grid to per-bucket mass keyed by
  // upper edge, merge, and re-accumulate — grids may differ per set (the
  // renderer truncates after the last occupied bucket).
  std::map<std::string, double> prev_cum;
  std::map<double, double> mass;
  for (const Sample& s : family.samples) {
    if (s.name != family.name + "_bucket") continue;
    double le = 0;
    const std::string sig = signature_without_le(s, &le);
    double& prev = prev_cum[sig];
    mass[le] += s.value - prev;
    prev = s.value;
  }
  double total = 0;
  for (const auto& [le, m] : mass) total += m;
  if (total <= 0) return 0;
  const double rank = std::min(1.0, std::max(0.0, q)) * total;
  double cum = 0;
  double prev_le = 0;
  for (const auto& [le, m] : mass) {
    const double next = cum + m;
    if (m > 0 && next >= rank) {
      if (std::isinf(le)) return prev_le;
      return prev_le + (le - prev_le) * ((rank - cum) / m);
    }
    cum = next;
    if (!std::isinf(le)) prev_le = le;
  }
  return prev_le;
}

}  // namespace casurf::obs::prom
