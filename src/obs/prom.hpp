#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace casurf::obs::prom {

/// Prometheus text exposition (format 0.0.4) over a MetricsRegistry, plus
/// the strict parser the tests and `casurf_report --serve` use to consume
/// it. The registry stays the single source of truth: labels are encoded
/// into registry keys by series() as `base{l1="v1",l2="v2"}`, and render()
/// groups keys back into metric families.
///
/// Kind mapping:
///   Counter   → counter                 (value as an integer)
///   Gauge     → gauge                   (value %.17g)
///   Timer     → summary                 (base_sum = total_ns, base_count)
///   Histogram → histogram               (cumulative le buckets from
///               Histogram::bucket_limit — power-of-two grid — truncated
///               after the last occupied bucket, then +Inf, _sum, _count)
///
/// Compile-out: under CASURF_METRICS=OFF (-DCASURF_NO_METRICS) render()
/// returns the empty string and the daemon's /metrics route 404s; parse()
/// and series() stay available (they are pure string code the tooling
/// still links).

#ifdef CASURF_NO_METRICS
inline constexpr bool kPromCompiled = false;
#else
inline constexpr bool kPromCompiled = true;
#endif

/// Content-Type of a 0.0.4 exposition body.
inline constexpr const char* kContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/// Append the label-value-escaped form of `s` (backslash, quote, newline).
void append_escaped_label(std::string& out, std::string_view s);

/// Build a registry key carrying labels: series("casurf_http_requests_total",
/// {{"route", "/jobs"}, {"status", "200"}}) →
/// `casurf_http_requests_total{route="/jobs",status="200"}`. Label ORDER is
/// part of the key: call sites must use one canonical order per family or
/// they will mint distinct series.
[[nodiscard]] std::string series(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>> labels);

/// Render every probe of `registry` as exposition text. Deterministic:
/// families sorted by name, series within a family in registry (key) order.
/// Base names are sanitised to the metric-name alphabet (`trial/attempts`
/// → `trial_attempts`); if two probe kinds collide on one sanitised base,
/// the first kind rendered (counter < gauge < summary < histogram) keeps
/// the name and the rest are dropped rather than emitting an invalid
/// exposition. Returns "" when compiled out.
[[nodiscard]] std::string render(const MetricsRegistry& registry);

/// One parsed sample (`casurf_jobs{state="running"} 3` →
/// name="casurf_jobs", labels=[{state,running}], value=3).
struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
};

/// One metric family: the `# TYPE` line plus every sample under it.
struct Family {
  std::string name;
  std::string type;  ///< counter | gauge | histogram | summary | untyped
  std::vector<Sample> samples;
};

/// Strict 0.0.4 parser; throws std::runtime_error (with a line number) on
/// any violation. Stricter than Prometheus itself — this is the round-trip
/// gate for render() output, so it also rejects what we never emit:
/// samples before their `# TYPE`, interleaved or reopened families,
/// timestamps, trailing garbage, a missing final newline — and checks
/// histogram invariants (ascending le, non-decreasing cumulative counts,
/// mandatory +Inf bucket equal to the family's _count).
[[nodiscard]] std::vector<Family> parse(std::string_view text);

/// Estimate the q-quantile (0 ≤ q ≤ 1) of a parsed histogram family by
/// linear interpolation inside its cumulative buckets (label sets are
/// merged first). Returns 0 for an empty histogram; the top bucket's lower
/// edge when the quantile lands in the +Inf bucket. Throws if `family` is
/// not a histogram.
[[nodiscard]] double quantile(const Family& family, double q);

}  // namespace casurf::obs::prom
