#include "obs/run_report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "core/simulator.hpp"
#include "io/atomic_file.hpp"
#include "obs/drift.hpp"
#include "obs/json.hpp"
#include "obs/spatial.hpp"

namespace casurf::obs {

namespace {

// The emitter (and, crucially, its escaper — reaction/species names are
// user-supplied and may contain anything) is shared with the trace writer
// and the drift profile: obs/json.hpp.
using Json = json::Writer;

void emit_run(Json& j, const RunInfo& info) {
  j.key("run");
  j.begin_object();
  j.key("algorithm");
  j.string(info.algorithm);
  j.key("model");
  j.string(info.model);
  j.key("width");
  j.i64(info.width);
  j.key("height");
  j.i64(info.height);
  j.key("seed");
  j.u64(info.seed);
  j.key("t_end");
  j.number(info.t_end);
  j.key("dt");
  j.number(info.dt);
  j.key("threads");
  j.u64(info.threads);
  j.key("wall_seconds");
  j.number(info.wall_seconds);
  j.key("trace_id");
  j.string(info.trace_id);
  j.key("trace_drops");
  j.u64(info.trace_drops);
  j.end_object();
}

void emit_counters(Json& j, const Simulator* sim) {
  j.key("counters");
  j.begin_object();
  if (sim != nullptr) {
    const SimCounters& c = sim->counters();
    j.key("time");
    j.number(sim->time());
    j.key("trials");
    j.u64(c.trials);
    j.key("executed");
    j.u64(c.executed);
    j.key("steps");
    j.u64(c.steps);
    j.key("acceptance");
    j.number(c.acceptance());
    j.key("per_reaction");
    j.begin_array();
    for (ReactionIndex i = 0; i < sim->model().num_reactions(); ++i) {
      j.begin_object();
      j.key("name");
      j.string(sim->model().reaction(i).name());
      j.key("rate");
      j.number(sim->model().reaction(i).rate());
      j.key("executed");
      j.u64(c.executed_per_type[i]);
      j.end_object();
    }
    j.end_array();
  }
  j.end_object();
}

void emit_registry(Json& j, const MetricsRegistry* reg) {
  j.key("metrics");
  j.begin_object();
  j.key("counters");
  j.begin_object();
  if (reg != nullptr) {
    for (const auto& c : reg->counters()) {
      j.key(c.name.c_str());
      j.u64(c.value);
    }
  }
  j.end_object();
  j.key("timers");
  j.begin_object();
  if (reg != nullptr) {
    for (const auto& t : reg->timers()) {
      j.key(t.name.c_str());
      j.begin_object();
      j.key("count");
      j.u64(t.count);
      j.key("total_ns");
      j.u64(t.total_ns);
      j.key("mean_ns");
      j.number(t.count == 0 ? 0.0
                            : static_cast<double>(t.total_ns) /
                                  static_cast<double>(t.count));
      j.key("max_ns");
      j.u64(t.max_ns);
      j.end_object();
    }
  }
  j.end_object();
  j.key("histograms");
  j.begin_object();
  if (reg != nullptr) {
    for (const auto& h : reg->histograms()) {
      j.key(h.name.c_str());
      j.begin_object();
      j.key("count");
      j.u64(h.count);
      j.key("sum");
      j.u64(h.sum);
      j.key("buckets");
      j.begin_array();
      // Sparse emission: [upper_bound, count] pairs for nonempty buckets.
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (h.buckets[b] == 0) continue;
        j.begin_array();
        j.u64(Histogram::bucket_limit(b));
        j.u64(h.buckets[b]);
        j.end_array();
      }
      j.end_array();
      j.end_object();
    }
  }
  j.end_object();
  j.key("gauges");
  j.begin_object();
  if (reg != nullptr) {
    for (const auto& g : reg->gauges()) {
      j.key(g.name.c_str());
      j.number(g.value);
    }
  }
  j.end_object();
  j.end_object();
}

/// Thread balance, derived from the per-worker busy timers the threaded
/// engine registers as "threads/busy/worker<k>". Imbalance is max/mean of
/// the busy totals (1.0 = perfectly balanced); null when fewer than one
/// worker reported.
void emit_threads(Json& j, const MetricsRegistry* reg) {
  j.key("thread_balance");
  std::vector<std::uint64_t> busy;
  if (reg != nullptr) {
    for (const auto& t : reg->timers()) {
      if (t.name.rfind("threads/busy/worker", 0) == 0) busy.push_back(t.total_ns);
    }
  }
  if (busy.empty()) {
    j.raw("null");
    return;
  }
  std::uint64_t max = 0, total = 0;
  for (const std::uint64_t b : busy) {
    max = std::max(max, b);
    total += b;
  }
  const double mean = static_cast<double>(total) / static_cast<double>(busy.size());
  j.begin_object();
  j.key("workers");
  j.u64(busy.size());
  j.key("busy_ns");
  j.begin_array();
  for (const std::uint64_t b : busy) j.u64(b);
  j.end_array();
  j.key("imbalance");
  j.number(mean > 0 ? static_cast<double>(max) / mean : 1.0);
  j.end_object();
}

/// Drift-monitor verdict: null when no monitor was attached. Alarms carry
/// enough to act on without the reference file at hand.
void emit_drift(Json& j, const DriftMonitor* drift) {
  j.key("drift");
  if (drift == nullptr) {
    j.raw("null");
    return;
  }
  j.begin_object();
  j.key("reference_algorithm");
  j.string(drift->reference().algorithm);
  j.key("window");
  j.number(drift->reference().window);
  j.key("z_threshold");
  j.number(drift->config().z_threshold);
  j.key("coverage_abs_tol");
  j.number(drift->config().coverage_abs_tol);
  j.key("rate_rel_tol");
  j.number(drift->config().rate_rel_tol);
  j.key("windows_checked");
  j.u64(drift->windows_checked());
  j.key("windows_unmatched");
  j.u64(drift->windows_unmatched());
  j.key("max_z");
  j.number(drift->max_z());
  j.key("alarms");
  j.begin_array();
  for (const DriftAlarm& a : drift->alarms()) {
    j.begin_object();
    j.key("window");
    j.u64(a.window);
    j.key("t0");
    j.number(a.t0);
    j.key("t1");
    j.number(a.t1);
    j.key("what");
    j.string(a.what);
    j.key("observed");
    j.number(a.observed);
    j.key("expected");
    j.number(a.expected);
    j.key("z");
    j.number(a.z);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

/// Spatial activity summary: null when no activity map was attached (or the
/// algorithm has no partition to aggregate on).
void emit_spatial(Json& j, const SpatialSummary* spatial) {
  j.key("spatial");
  if (spatial == nullptr) {
    j.raw("null");
    return;
  }
  append_summary_json(j, *spatial);
}

/// Supervised-recovery history: null for an undisturbed, unsupervised run,
/// so existing report consumers never see the section unless something
/// actually went wrong (or a supervisor was watching).
void emit_recovery(Json& j, const RecoveryLog* recovery) {
  j.key("recovery");
  if (recovery == nullptr || recovery->empty()) {
    j.raw("null");
    return;
  }
  j.begin_object();
  j.key("supervised");
  j.raw(recovery->supervised ? "true" : "false");
  j.key("retries_allowed");
  j.u64(recovery->retries_allowed);
  j.key("restarts");
  j.u64(recovery->records.size());
  j.key("checkpoint_write_failures");
  j.u64(recovery->checkpoint_write_failures);
  j.key("checkpoint_rotate_failures");
  j.u64(recovery->checkpoint_rotate_failures);
  j.key("records");
  j.begin_array();
  for (const RecoveryRecord& r : recovery->records) {
    j.begin_object();
    j.key("cause");
    j.string(r.cause);
    j.key("detail");
    j.i64(r.detail);
    j.key("attempt");
    j.u64(r.attempt);
    j.key("resume_time");
    j.number(r.resume_time);
    j.key("restore_source");
    j.string(r.restore_source);
    j.key("wall_seconds");
    j.number(r.wall_seconds);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

void emit_comm(Json& j, const Communicator::Stats* comm) {
  j.key("communicator");
  const Communicator::Stats zero{};
  const Communicator::Stats& s = comm != nullptr ? *comm : zero;
  j.begin_object();
  j.key("messages");
  j.u64(s.messages);
  j.key("bytes");
  j.u64(s.bytes);
  j.key("barriers");
  j.u64(s.barriers);
  j.end_object();
}

/// Detailed communication section, assembled from the registry's
/// "comm/..." probes (CommProbes, msgpass.hpp) plus the run's Stats
/// totals. Null when the run had no communicator. Per-edge totals
/// reconcile exactly with the Stats totals as long as the registry served
/// a single Communicator::run (the standard one-run-per-report usage).
void emit_comm_detail(Json& j, const MetricsRegistry* reg,
                      const Communicator::Stats* comm, const CommModel* model) {
  j.key("comm");
  if (comm == nullptr) {
    j.raw("null");
    return;
  }
  struct Edge {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  struct RankRow {
    std::uint64_t recv_ns = 0;
    std::uint64_t recv_count = 0;
    std::uint64_t barrier_ns = 0;
    std::uint64_t allreduce_ns = 0;
    double queue_high_water = 0;
  };
  std::map<std::pair<int, int>, Edge> edges;
  std::map<int, RankRow> ranks;
  const MetricsRegistry::HistogramSample* skew = nullptr;
  std::vector<MetricsRegistry::HistogramSample> hists;
  if (reg != nullptr) {
    for (const auto& c : reg->counters()) {
      int s = 0, d = 0;
      char kind[16] = {};
      if (std::sscanf(c.name.c_str(), "comm/edge/%d->%d/%15s", &s, &d, kind) == 3) {
        if (std::strcmp(kind, "messages") == 0) {
          edges[{s, d}].messages = c.value;
        } else if (std::strcmp(kind, "bytes") == 0) {
          edges[{s, d}].bytes = c.value;
        }
      }
    }
    for (const auto& t : reg->timers()) {
      int r = 0;
      if (std::sscanf(t.name.c_str(), "comm/wait/recv/rank%d", &r) == 1) {
        ranks[r].recv_ns = t.total_ns;
        ranks[r].recv_count = t.count;
      } else if (std::sscanf(t.name.c_str(), "comm/wait/barrier/rank%d", &r) == 1) {
        ranks[r].barrier_ns = t.total_ns;
      } else if (std::sscanf(t.name.c_str(), "comm/wait/allreduce/rank%d", &r) ==
                 1) {
        ranks[r].allreduce_ns = t.total_ns;
      }
    }
    for (const auto& g : reg->gauges()) {
      int r = 0;
      if (std::sscanf(g.name.c_str(), "comm/queue_high_water/rank%d", &r) == 1) {
        ranks[r].queue_high_water = g.value;
      }
    }
    hists = reg->histograms();
    for (const auto& h : hists) {
      if (h.name == "comm/barrier_skew_ns") skew = &h;
    }
  }
  j.begin_object();
  j.key("messages");
  j.u64(comm->messages);
  j.key("bytes");
  j.u64(comm->bytes);
  j.key("barriers");
  j.u64(comm->barriers);
  j.key("edges");
  j.begin_array();
  for (const auto& [key, e] : edges) {
    if (e.messages == 0 && e.bytes == 0) continue;  // quiet edges stay out
    j.begin_object();
    j.key("src");
    j.i64(key.first);
    j.key("dst");
    j.i64(key.second);
    j.key("messages");
    j.u64(e.messages);
    j.key("bytes");
    j.u64(e.bytes);
    j.end_object();
  }
  j.end_array();
  j.key("ranks");
  j.begin_array();
  for (const auto& [r, row] : ranks) {
    j.begin_object();
    j.key("rank");
    j.i64(r);
    j.key("wait_recv_ns");
    j.u64(row.recv_ns);
    j.key("wait_recv_count");
    j.u64(row.recv_count);
    j.key("wait_barrier_ns");
    j.u64(row.barrier_ns);
    j.key("wait_allreduce_ns");
    j.u64(row.allreduce_ns);
    j.key("wait_ns");
    j.u64(row.recv_ns + row.barrier_ns + row.allreduce_ns);
    j.key("queue_high_water");
    j.number(row.queue_high_water);
    j.end_object();
  }
  j.end_array();
  j.key("barrier_skew");
  if (skew == nullptr) {
    j.raw("null");
  } else {
    j.begin_object();
    j.key("count");
    j.u64(skew->count);
    j.key("mean_ns");
    j.number(skew->count == 0 ? 0.0
                              : static_cast<double>(skew->sum) /
                                    static_cast<double>(skew->count));
    std::uint64_t max_bucket_ns = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (skew->buckets[b] != 0) max_bucket_ns = Histogram::bucket_limit(b);
    }
    j.key("max_ns_bucket");
    j.u64(max_bucket_ns);
    j.end_object();
  }
  j.key("model");
  if (model == nullptr) {
    j.raw("null");
  } else {
    j.begin_object();
    j.key("messages");
    j.number(model->messages);
    j.key("bytes");
    j.number(model->bytes);
    j.end_object();
  }
  j.end_object();
}

}  // namespace

std::string run_report_json(const RunInfo& info, const Simulator* sim,
                            const MetricsRegistry* registry,
                            const Communicator::Stats* comm,
                            const DriftMonitor* drift,
                            const SpatialSummary* spatial,
                            const RecoveryLog* recovery,
                            const CommModel* comm_model) {
  Json j;
  j.begin_object();
  j.key("schema");
  j.string("casurf-run-report/1");
  emit_run(j, info);
  emit_counters(j, sim);
  emit_registry(j, registry);
  emit_threads(j, registry);
  emit_drift(j, drift);
  emit_spatial(j, spatial);
  emit_recovery(j, recovery);
  emit_comm(j, comm);
  emit_comm_detail(j, registry, comm, comm_model);
  j.end_object();
  std::string out = std::move(j).str();
  out += '\n';
  return out;
}

void write_run_report(const std::string& path, const RunInfo& info,
                      const Simulator* sim, const MetricsRegistry* registry,
                      const Communicator::Stats* comm, const DriftMonitor* drift,
                      const SpatialSummary* spatial, const RecoveryLog* recovery,
                      const CommModel* comm_model) {
  io::atomic_write_file(path, run_report_json(info, sim, registry, comm, drift,
                                              spatial, recovery, comm_model));
}

}  // namespace casurf::obs
