#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/msgpass.hpp"

namespace casurf {
class Simulator;
}

namespace casurf::obs {

/// Run-level metadata embedded in the report header (everything the
/// registry cannot know: what was simulated, with which knobs).
struct RunInfo {
  std::string algorithm;
  std::string model;
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::uint64_t seed = 0;
  double t_end = 0;
  double dt = 0;
  unsigned threads = 0;
  double wall_seconds = 0;
  std::string trace_id;           ///< cross-process correlation id ("" = none)
  std::uint64_t trace_drops = 0;  ///< trace events lost to ring wrap-around
};

/// Paper cost-model prediction for the same run (the per-message/per-byte
/// communication model `bench/fig7_speedup.cpp` reproduces): what the model
/// says the run should have cost. Stored in the report's "comm" section so
/// `casurf_report --comm` can print measured-vs-model columns.
struct CommModel {
  double messages = 0;
  double bytes = 0;
};

class DriftMonitor;
struct SpatialSummary;

/// One supervised restart: why the previous attempt died, and where the new
/// one resumed (docs/ROBUSTNESS.md). The supervisor appends the record with
/// cause/attempt/wall_seconds plus a resume estimate from peeking the
/// checkpoint chain; the replacement worker overwrites the estimate with
/// the restore's actual outcome. Only the final worker's log reaches the
/// report (earlier generations die with their copy), so intermediate
/// records carry the supervisor's estimate.
struct RecoveryRecord {
  std::string cause;           ///< "crash" | "signal" | "watchdog"
  int detail = 0;              ///< exit status ("crash") or signal number
  std::uint64_t attempt = 0;   ///< 1-based restart index
  double resume_time = 0;      ///< simulated time the replacement resumed at
  std::string restore_source;  ///< "primary" | "backup" | "clean"
  double wall_seconds = 0;     ///< wall time since supervised start at restart
};

/// Everything the "recovery" report section carries: the restart history of
/// a supervised run plus the graceful-degradation counters (checkpoint
/// writes/rotations that failed but did not stop the run). The section is
/// emitted as null unless the run was supervised or a degradation counter
/// is nonzero — an undisturbed run's report is unchanged.
struct RecoveryLog {
  bool supervised = false;
  std::uint64_t retries_allowed = 0;
  std::vector<RecoveryRecord> records;
  std::uint64_t checkpoint_write_failures = 0;
  std::uint64_t checkpoint_rotate_failures = 0;

  [[nodiscard]] bool empty() const {
    return !supervised && checkpoint_write_failures == 0 &&
           checkpoint_rotate_failures == 0;
  }
};

/// Serialize one run as a structured JSON report (schema
/// "casurf-run-report/1", documented in docs/OBSERVABILITY.md): run
/// metadata, the simulator's execution counters with per-reaction
/// breakdown, every registry probe, a thread-balance section derived from
/// the `threads/busy/worker<k>` timers, the drift-monitor verdict, the
/// spatial activity summary (per-chunk imbalance and seam-vs-interior
/// accounting), the communicator stats, and the supervised-recovery
/// history. `sim`, `registry`, `comm`, `drift`, `spatial`, and `recovery`
/// may each be null; the corresponding sections are emitted empty
/// (drift/spatial/recovery: null). A non-null but empty() recovery log is
/// also emitted as null.
///
/// When `comm` is non-null a detailed "comm" section is emitted alongside
/// the legacy "communicator" totals: per-edge message/byte counts, per-rank
/// wait breakdowns, queue high-waters, and the barrier-skew histogram — all
/// scanned from the registry's "comm/..." probes (CommProbes, msgpass.hpp)
/// — plus the optional `comm_model` prediction. With `comm` null the
/// section is null.
[[nodiscard]] std::string run_report_json(const RunInfo& info, const Simulator* sim,
                                          const MetricsRegistry* registry,
                                          const Communicator::Stats* comm = nullptr,
                                          const DriftMonitor* drift = nullptr,
                                          const SpatialSummary* spatial = nullptr,
                                          const RecoveryLog* recovery = nullptr,
                                          const CommModel* comm_model = nullptr);

/// Write the report through the crash-safe atomic-write path, so a report
/// refreshed periodically (--metrics-every) is never observed truncated.
void write_run_report(const std::string& path, const RunInfo& info,
                      const Simulator* sim, const MetricsRegistry* registry,
                      const Communicator::Stats* comm = nullptr,
                      const DriftMonitor* drift = nullptr,
                      const SpatialSummary* spatial = nullptr,
                      const RecoveryLog* recovery = nullptr,
                      const CommModel* comm_model = nullptr);

}  // namespace casurf::obs
