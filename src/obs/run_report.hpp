#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "parallel/msgpass.hpp"

namespace casurf {
class Simulator;
}

namespace casurf::obs {

/// Run-level metadata embedded in the report header (everything the
/// registry cannot know: what was simulated, with which knobs).
struct RunInfo {
  std::string algorithm;
  std::string model;
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::uint64_t seed = 0;
  double t_end = 0;
  double dt = 0;
  unsigned threads = 0;
  double wall_seconds = 0;
};

class DriftMonitor;
struct SpatialSummary;

/// Serialize one run as a structured JSON report (schema
/// "casurf-run-report/1", documented in docs/OBSERVABILITY.md): run
/// metadata, the simulator's execution counters with per-reaction
/// breakdown, every registry probe, a thread-balance section derived from
/// the `threads/busy/worker<k>` timers, the drift-monitor verdict, the
/// spatial activity summary (per-chunk imbalance and seam-vs-interior
/// accounting), and the communicator stats. `sim`, `registry`, `comm`,
/// `drift`, and `spatial` may each be null; the corresponding sections are
/// emitted empty (drift/spatial: null).
[[nodiscard]] std::string run_report_json(const RunInfo& info, const Simulator* sim,
                                          const MetricsRegistry* registry,
                                          const Communicator::Stats* comm = nullptr,
                                          const DriftMonitor* drift = nullptr,
                                          const SpatialSummary* spatial = nullptr);

/// Write the report through the crash-safe atomic-write path, so a report
/// refreshed periodically (--metrics-every) is never observed truncated.
void write_run_report(const std::string& path, const RunInfo& info,
                      const Simulator* sim, const MetricsRegistry* registry,
                      const Communicator::Stats* comm = nullptr,
                      const DriftMonitor* drift = nullptr,
                      const SpatialSummary* spatial = nullptr);

}  // namespace casurf::obs
