#include "obs/spatial.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "io/atomic_file.hpp"
#include "obs/json.hpp"
#include "partition/partition.hpp"

namespace casurf::obs {

namespace {

constexpr const char* kHeatmapSchema = "casurf-heatmap/1";

std::uint64_t channel_value(const SpatialMap& map, SiteIndex s,
                            ActivityChannel channel) {
  switch (channel) {
    case ActivityChannel::kAttempts: return map.attempts(s);
    case ActivityChannel::kFires: return map.fires(s);
    case ActivityChannel::kRejects: return map.rejects(s);
  }
  return 0;
}

/// Classic "hot" colormap: black -> red -> yellow -> white over t in [0,1].
void heat_color(double t, std::uint8_t* rgb) {
  const auto ramp = [](double v) {
    return static_cast<std::uint8_t>(std::lround(255.0 * std::clamp(v, 0.0, 1.0)));
  };
  rgb[0] = ramp(3.0 * t);
  rgb[1] = ramp(3.0 * t - 1.0);
  rgb[2] = ramp(3.0 * t - 2.0);
}

void append_u64_array(json::Writer& j, const std::vector<std::uint64_t>& v) {
  j.begin_array();
  for (const std::uint64_t x : v) j.u64(x);
  j.end_array();
}

}  // namespace

std::uint64_t SpatialMap::total_attempts() const {
  std::uint64_t total = 0;
  for (const std::uint64_t a : attempts_) total += a;
  return total;
}

std::uint64_t SpatialMap::total_fires() const {
  std::uint64_t total = 0;
  for (const std::uint64_t f : fires_) total += f;
  return total;
}

void SpatialMap::reset() {
  std::fill(attempts_.begin(), attempts_.end(), 0);
  std::fill(fires_.begin(), fires_.end(), 0);
}

std::vector<std::uint8_t> seam_mask(const Partition& part,
                                    const std::vector<Vec2>& offsets) {
  const Lattice& lat = part.lattice();
  std::vector<std::uint8_t> mask(lat.size(), 0);
  for (SiteIndex s = 0; s < lat.size(); ++s) {
    const ChunkId c = part.chunk_of(s);
    for (const Vec2 d : offsets) {
      if (part.chunk_of(lat.neighbor(s, d)) != c) {
        mask[s] = 1;
        break;
      }
    }
  }
  return mask;
}

SpatialSummary summarize(const SpatialMap& map, const Partition& part,
                         const std::vector<Vec2>& offsets) {
  if (map.size() != part.size()) {
    throw std::invalid_argument("spatial: map/partition site count mismatch");
  }
  SpatialSummary out;
  out.per_chunk.resize(part.num_chunks());
  for (SiteIndex s = 0; s < map.size(); ++s) {
    ChunkActivity& c = out.per_chunk[part.chunk_of(s)];
    ++c.sites;
    c.attempts += map.attempts(s);
    c.fires += map.fires(s);
  }
  double max_rate = 0, rate_sum = 0;
  for (const ChunkActivity& c : out.per_chunk) {
    const double rate =
        c.sites == 0 ? 0.0
                     : static_cast<double>(c.fires) / static_cast<double>(c.sites);
    max_rate = std::max(max_rate, rate);
    rate_sum += rate;
  }
  const double mean_rate =
      out.per_chunk.empty() ? 0.0 : rate_sum / static_cast<double>(out.per_chunk.size());
  out.chunk_fire_imbalance = mean_rate > 0 ? max_rate / mean_rate : 1.0;

  const std::vector<std::uint8_t> seam = seam_mask(part, offsets);
  for (SiteIndex s = 0; s < map.size(); ++s) {
    if (seam[s] != 0) {
      ++out.seam_sites;
      out.seam_attempts += map.attempts(s);
      out.seam_fires += map.fires(s);
    } else {
      ++out.interior_sites;
      out.interior_attempts += map.attempts(s);
      out.interior_fires += map.fires(s);
    }
  }
  if (out.seam_sites > 0 && out.interior_sites > 0 && out.interior_fires > 0) {
    const double seam_rate = static_cast<double>(out.seam_fires) /
                             static_cast<double>(out.seam_sites);
    const double interior_rate = static_cast<double>(out.interior_fires) /
                                 static_cast<double>(out.interior_sites);
    out.seam_interior_fire_ratio = seam_rate / interior_rate;
  }
  return out;
}

void append_summary_json(json::Writer& j, const SpatialSummary& summary) {
  j.begin_object();
  j.key("chunks");
  j.u64(summary.per_chunk.size());
  j.key("chunk_fire_imbalance");
  j.number(summary.chunk_fire_imbalance);
  j.key("seam_sites");
  j.u64(summary.seam_sites);
  j.key("interior_sites");
  j.u64(summary.interior_sites);
  j.key("seam_attempts");
  j.u64(summary.seam_attempts);
  j.key("seam_fires");
  j.u64(summary.seam_fires);
  j.key("interior_attempts");
  j.u64(summary.interior_attempts);
  j.key("interior_fires");
  j.u64(summary.interior_fires);
  j.key("seam_interior_fire_ratio");
  j.number(summary.seam_interior_fire_ratio);
  j.key("per_chunk");
  j.begin_array();
  for (const ChunkActivity& c : summary.per_chunk) {
    j.begin_object();
    j.key("sites");
    j.u64(c.sites);
    j.key("attempts");
    j.u64(c.attempts);
    j.key("fires");
    j.u64(c.fires);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

std::string heatmap_json(const Configuration& cfg,
                         const std::vector<std::string>& species, double sim_time,
                         const SpatialMap* map, const SpatialSummary* summary) {
  if (map != nullptr && map->size() != cfg.size()) {
    throw std::invalid_argument("spatial: map/configuration site count mismatch");
  }
  json::Writer j;
  j.begin_object();
  j.key("schema");
  j.string(kHeatmapSchema);
  j.key("width");
  j.i64(cfg.lattice().width());
  j.key("height");
  j.i64(cfg.lattice().height());
  j.key("time");
  j.number(sim_time);
  j.key("species");
  j.begin_array();
  for (const auto& s : species) j.string(s);
  j.end_array();
  j.key("occupancy");
  j.begin_array();
  for (SiteIndex s = 0; s < cfg.size(); ++s) j.u64(cfg.get(s));
  j.end_array();
  j.key("attempts");
  if (map != nullptr) {
    append_u64_array(j, map->attempts());
  } else {
    j.raw("null");
  }
  j.key("fires");
  if (map != nullptr) {
    append_u64_array(j, map->fires());
  } else {
    j.raw("null");
  }
  j.key("summary");
  if (summary != nullptr) {
    append_summary_json(j, *summary);
  } else {
    j.raw("null");
  }
  j.end_object();
  std::string out = std::move(j).str();
  out += '\n';
  return out;
}

void write_heatmap_json(const std::string& path, const Configuration& cfg,
                        const std::vector<std::string>& species, double sim_time,
                        const SpatialMap* map, const SpatialSummary* summary) {
  io::atomic_write_file(path, heatmap_json(cfg, species, sim_time, map, summary));
}

void write_activity_ppm(const std::string& path, const SpatialMap& map,
                        const Lattice& lat, ActivityChannel channel) {
  if (map.size() != lat.size()) {
    throw std::invalid_argument("spatial: map/lattice site count mismatch");
  }
  std::uint64_t max_v = 0;
  for (SiteIndex s = 0; s < map.size(); ++s) {
    max_v = std::max(max_v, channel_value(map, s, channel));
  }
  std::string body = "P6\n" + std::to_string(lat.width()) + " " +
                     std::to_string(lat.height()) + "\n255\n";
  body.reserve(body.size() + 3u * map.size());
  for (SiteIndex s = 0; s < map.size(); ++s) {
    std::uint8_t rgb[3] = {0, 0, 0};
    if (max_v > 0) {
      heat_color(static_cast<double>(channel_value(map, s, channel)) /
                     static_cast<double>(max_v),
                 rgb);
    }
    body.push_back(static_cast<char>(rgb[0]));
    body.push_back(static_cast<char>(rgb[1]));
    body.push_back(static_cast<char>(rgb[2]));
  }
  io::atomic_write_file(path, body);
}

}  // namespace casurf::obs
