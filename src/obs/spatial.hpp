#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "lattice/configuration.hpp"

namespace casurf {
class Partition;
}

namespace casurf::obs {

namespace json {
class Writer;
}

/// Spatial observability: per-site event-activity accumulators and the
/// seam/chunk accounting derived from them. The paper's PNDCA accuracy
/// trade-off shows up first as *spatial* artifacts — reactions suppressed
/// across chunk boundaries, distorted adsorbate islands — long before the
/// scalar coverages move, so the scalar drift monitor alone can pass a run
/// whose lattice is visibly striped along partition seams.
///
/// Same discipline as the metrics/trace probes: simulators hold a
/// `SpatialProbe` resolved ONCE at `Simulator::set_spatial`; a null map
/// means "off" — one branch per trial, never touching RNG or simulation
/// state, so the instrumented trajectory is bit-identical to the bare run.
/// Under -DCASURF_NO_METRICS the record paths compile out and the probe
/// becomes an empty type (checked by a static_assert below).

/// Per-site attempt/fire tallies over a run. "Attempt" is one trial landing
/// on the site (or one DMC event selection); "fire" is an executed
/// reaction anchored there; rejects = attempts - fires.
///
/// Counters are plain (non-atomic) words: within one parallel chunk
/// execution every worker touches a disjoint site set (the paper's
/// non-overlap rule — same reason `Configuration::set_raw` is race-free),
/// and the thread-pool join orders successive chunks, so recording needs no
/// synchronization.
class SpatialMap {
 public:
  explicit SpatialMap(SiteIndex num_sites)
      : attempts_(num_sites, 0), fires_(num_sites, 0) {}

  void record_attempt(SiteIndex s) {
#ifndef CASURF_NO_METRICS
    ++attempts_[s];
#else
    (void)s;
#endif
  }

  void record_fire(SiteIndex s) {
#ifndef CASURF_NO_METRICS
    ++fires_[s];
#else
    (void)s;
#endif
  }

  [[nodiscard]] SiteIndex size() const {
    return static_cast<SiteIndex>(attempts_.size());
  }
  [[nodiscard]] std::uint64_t attempts(SiteIndex s) const { return attempts_.at(s); }
  [[nodiscard]] std::uint64_t fires(SiteIndex s) const { return fires_.at(s); }
  [[nodiscard]] std::uint64_t rejects(SiteIndex s) const {
    return attempts_.at(s) - fires_.at(s);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& attempts() const { return attempts_; }
  [[nodiscard]] const std::vector<std::uint64_t>& fires() const { return fires_; }
  [[nodiscard]] std::uint64_t total_attempts() const;
  [[nodiscard]] std::uint64_t total_fires() const;

  void reset();

 private:
  std::vector<std::uint64_t> attempts_;
  std::vector<std::uint64_t> fires_;
};

/// The handle simulators hold. Mirrors the TraceRing/ScopedSpan pattern:
/// with metrics compiled out it is an empty no-op type, otherwise a nullable
/// pointer whose null state is the "off" fast path.
#ifdef CASURF_NO_METRICS
class SpatialProbe {
 public:
  void attach(SpatialMap* /*map*/) {}
  void attempt(SiteIndex /*s*/) const {}
  void fire(SiteIndex /*s*/) const {}
  [[nodiscard]] const SpatialMap* map() const { return nullptr; }
};
/// The zero-cost-when-off guarantee: with CASURF_METRICS=OFF the site
/// accumulator handle must compile down to nothing a trajectory (or a
/// profile) could notice.
static_assert(std::is_empty_v<SpatialProbe>,
              "SpatialProbe must compile out to a no-op under CASURF_NO_METRICS");
#else
class SpatialProbe {
 public:
  void attach(SpatialMap* map) { map_ = map; }
  void attempt(SiteIndex s) const {
    if (map_ != nullptr) map_->record_attempt(s);
  }
  void fire(SiteIndex s) const {
    if (map_ != nullptr) map_->record_fire(s);
  }
  [[nodiscard]] const SpatialMap* map() const { return map_; }

 private:
  SpatialMap* map_ = nullptr;
};
#endif

/// Per-site seam classification: mask[s] != 0 when some conflict offset d
/// takes s into a different chunk (periodic), i.e. reactions anchored at s
/// can couple across a partition boundary. With the paper's non-overlap
/// rule every in-chunk trial is seam-safe by construction; the seam sites
/// are exactly where the *scheduling* bias of coarse chunk updates can
/// suppress or delay reactions.
[[nodiscard]] std::vector<std::uint8_t> seam_mask(const Partition& part,
                                                  const std::vector<Vec2>& offsets);

struct ChunkActivity {
  std::uint64_t sites = 0;
  std::uint64_t attempts = 0;
  std::uint64_t fires = 0;
};

/// Partition-level aggregation of a SpatialMap, derived at export time so
/// the hot path stays a pair of increments.
struct SpatialSummary {
  std::vector<ChunkActivity> per_chunk;
  /// max over chunks of (fires / sites), divided by the mean over chunks;
  /// 1 = perfectly balanced. 1 when nothing fired anywhere.
  double chunk_fire_imbalance = 1.0;
  std::uint64_t seam_sites = 0, interior_sites = 0;
  std::uint64_t seam_attempts = 0, seam_fires = 0;
  std::uint64_t interior_attempts = 0, interior_fires = 0;
  /// (seam fires per seam site) / (interior fires per interior site);
  /// 1 = no seam bias, < 1 = reactions suppressed along partition
  /// boundaries. 0 when undefined (no interior sites, or a silent
  /// interior).
  double seam_interior_fire_ratio = 0.0;
};

/// Aggregate `map` over `part` with seam classification from the model's
/// conflict offsets. Throws std::invalid_argument when the map and the
/// partition disagree on the site count.
[[nodiscard]] SpatialSummary summarize(const SpatialMap& map, const Partition& part,
                                       const std::vector<Vec2>& offsets);

/// Emit the summary as a JSON object into an open writer (shared between
/// the heatmap document and the run report's "spatial" section).
void append_summary_json(json::Writer& j, const SpatialSummary& summary);

/// A complete spatial snapshot as JSON, schema "casurf-heatmap/1":
/// lattice dimensions, sim time, species names, the row-major occupancy
/// grid, per-site attempt/fire grids (null when `map` is null), and the
/// partition summary (null when `summary` is null).
[[nodiscard]] std::string heatmap_json(const Configuration& cfg,
                                       const std::vector<std::string>& species,
                                       double sim_time, const SpatialMap* map,
                                       const SpatialSummary* summary);

/// heatmap_json through the crash-safe atomic write path.
void write_heatmap_json(const std::string& path, const Configuration& cfg,
                        const std::vector<std::string>& species, double sim_time,
                        const SpatialMap* map, const SpatialSummary* summary);

enum class ActivityChannel { kAttempts, kFires, kRejects };

/// Render one activity channel as a binary PPM (P6) heat image, one pixel
/// per site, black -> red -> yellow -> white normalized to the channel's
/// maximum count (all-black when nothing was recorded). Atomic write, same
/// as io::write_ppm.
void write_activity_ppm(const std::string& path, const SpatialMap& map,
                        const Lattice& lat, ActivityChannel channel);

}  // namespace casurf::obs
