#include "obs/trace.hpp"

#include <map>
#include <memory>
#include <mutex>

#include "io/atomic_file.hpp"
#include "obs/json.hpp"

namespace casurf::obs {

std::vector<TraceEvent> TraceRing::events() const {
  std::vector<TraceEvent> out;
  out.reserve(buf_.size());
  // Once wrapped, next_ is the oldest slot; before that, slot 0 is.
  const std::size_t n = buf_.size();
  const std::size_t first = (n == capacity_) ? next_ : 0;
  for (std::size_t i = 0; i < n; ++i) out.push_back(buf_[(first + i) % n]);
  return out;
}

// std::map keeps ring addresses stable across inserts (simulators cache the
// ring pointers) and iterates in tid order (deterministic export).
struct Tracer::Impl {
  mutable std::mutex mutex;
  std::map<unsigned, std::unique_ptr<TraceRing>> rings;
  std::map<unsigned, std::string> names;
  std::string trace_id;
};

Tracer::Tracer(std::size_t ring_capacity)
    : impl_(new Impl),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      t0_ns_(now_ns()) {}

Tracer::~Tracer() { delete impl_; }

TraceRing& Tracer::ring(unsigned tid) {
  std::lock_guard lock(impl_->mutex);
  auto& slot = impl_->rings[tid];
  if (!slot) slot = std::make_unique<TraceRing>(tid, ring_capacity_);
  return *slot;
}

void Tracer::set_thread_name(unsigned tid, std::string name) {
  std::lock_guard lock(impl_->mutex);
  impl_->names[tid] = std::move(name);
}

void Tracer::set_trace_id(std::string id) {
  std::lock_guard lock(impl_->mutex);
  impl_->trace_id = std::move(id);
}

std::string Tracer::trace_id() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->trace_id;
}

std::uint64_t Tracer::total_recorded() const {
  std::lock_guard lock(impl_->mutex);
  std::uint64_t total = 0;
  for (const auto& [tid, ring] : impl_->rings) total += ring->recorded();
  return total;
}

std::uint64_t Tracer::total_dropped() const {
  std::lock_guard lock(impl_->mutex);
  std::uint64_t total = 0;
  for (const auto& [tid, ring] : impl_->rings) total += ring->dropped();
  return total;
}

std::string Tracer::chrome_trace_json() const {
  std::lock_guard lock(impl_->mutex);
  json::Writer j;
  j.begin_object();
  j.key("traceEvents");
  j.begin_array();
  for (const auto& [tid, name] : impl_->names) {
    j.begin_object();
    j.key("name");
    j.string("thread_name");
    j.key("ph");
    j.string("M");
    j.key("pid");
    j.u64(1);
    j.key("tid");
    j.u64(tid);
    j.key("args");
    j.begin_object();
    j.key("name");
    j.string(name);
    j.end_object();
    j.end_object();
  }
  for (const auto& [tid, ring] : impl_->rings) {
    for (const TraceEvent& e : ring->events()) {
      j.begin_object();
      j.key("name");
      j.string(e.name != nullptr ? e.name : "?");
      j.key("cat");
      j.string("casurf");
      j.key("ph");
      j.string(e.kind == TraceEvent::Kind::kSpan ? "X" : "i");
      if (e.kind == TraceEvent::Kind::kInstant) {
        j.key("s");
        j.string("t");  // instant scope: thread
      }
      j.key("pid");
      j.u64(1);
      j.key("tid");
      j.u64(tid);
      // Chrome trace timestamps are microseconds; keep sub-µs precision
      // as a fraction, relative to tracer construction.
      j.key("ts");
      j.number(static_cast<double>(e.start_ns - t0_ns_) / 1000.0);
      if (e.kind == TraceEvent::Kind::kSpan) {
        j.key("dur");
        j.number(static_cast<double>(e.dur_ns) / 1000.0);
      }
      j.key("args");
      j.begin_object();
      if (e.src >= 0) {
        j.key("src");
        j.i64(e.src);
        j.key("dst");
        j.i64(e.dst);
        j.key("tag");
        j.i64(e.tag);
        j.key("bytes");
        j.u64(e.bytes);
      } else {
        j.key("sim_time");
        j.number(e.sim_time);
        j.key("step");
        j.u64(e.step);
      }
      j.end_object();
      j.end_object();
    }
  }
  j.end_array();
  // Footer: wrap-around loss is reported, never silent.
  j.key("otherData");
  j.begin_object();
  j.key("schema");
  j.string("casurf-trace/1");
  // Steady-clock origin + correlation id: what --merge-traces needs to
  // stitch this file into a multi-process timeline.
  j.key("t0_ns");
  j.u64(t0_ns_);
  j.key("trace_id");
  j.string(impl_->trace_id);
  std::uint64_t recorded = 0, dropped = 0;
  for (const auto& [tid, ring] : impl_->rings) {
    recorded += ring->recorded();
    dropped += ring->dropped();
  }
  j.key("recorded_events");
  j.u64(recorded);
  j.key("dropped_events");
  j.u64(dropped);
  j.key("ring_capacity");
  j.u64(ring_capacity_);
  j.key("rings");
  j.begin_array();
  for (const auto& [tid, ring] : impl_->rings) {
    j.begin_object();
    j.key("tid");
    j.u64(tid);
    const auto it = impl_->names.find(tid);
    j.key("name");
    j.string(it != impl_->names.end() ? it->second : std::string());
    j.key("recorded");
    j.u64(ring->recorded());
    j.key("retained");
    j.u64(ring->size());
    j.key("dropped");
    j.u64(ring->dropped());
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.end_object();
  std::string out = std::move(j).str();
  out += '\n';
  return out;
}

void Tracer::write(const std::string& path) const {
  io::atomic_write_file(path, chrome_trace_json());
}

}  // namespace casurf::obs
