#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"

namespace casurf::obs {

/// Structured event tracing: fixed-capacity per-thread ring buffers of
/// timestamped spans, exported as Chrome Trace Event Format JSON
/// (chrome://tracing / Perfetto).
///
/// Same discipline as the metrics probes (metrics.hpp): the simulator
/// resolves its ring ONCE at `Simulator::set_tracer` and holds a raw
/// pointer; a null ring means "tracing off" — one branch per span site,
/// never touching RNG or simulation state, so the traced trajectory is
/// bit-identical to the bare run. Each ring has exactly one writer (its
/// logical thread), so recording is lock- and atomic-free; when a ring
/// wraps, the oldest events are overwritten and a drop counter keeps the
/// loss visible in the exported footer (no silent truncation).
///
/// Under -DCASURF_NO_METRICS the record paths compile out entirely and
/// `ScopedSpan` becomes an empty type (checked by a static_assert below).

/// One recorded event. `name` must point at a string with static storage
/// duration (phase names are literals) — recording never allocates.
struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan, kInstant };

  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< steady-clock ns (same epoch as now_ns()).
  std::uint64_t dur_ns = 0;    ///< 0 for instants.
  double sim_time = 0;         ///< simulated time when the event began.
  std::uint64_t step = 0;      ///< step/sweep index when the event began.
  Kind kind = Kind::kSpan;
  // Communication args, set only by comm_span()/comm_instant(). src < 0
  // marks a non-comm event and keeps these keys out of the export.
  std::int32_t src = -1;       ///< sending rank
  std::int32_t dst = -1;       ///< receiving rank
  std::int32_t tag = 0;        ///< message tag
  std::uint64_t bytes = 0;     ///< payload bytes
};

/// Chrome-trace lane (tid) of communicator rank k is kRankLaneBase + k, so
/// rank lanes never collide with the simulator lanes (tid 0 = main thread,
/// tid k+1 = threaded-engine worker k).
inline constexpr unsigned kRankLaneBase = 1000;

/// Fixed-capacity overwrite-oldest ring of TraceEvents. Single-writer:
/// only the owning thread may call span()/instant(); readers (export) run
/// after the run, or between steps on the coordinating thread.
class TraceRing {
 public:
  TraceRing(unsigned tid, std::size_t capacity)
      : tid_(tid), capacity_(capacity == 0 ? 1 : capacity) {
    buf_.reserve(capacity_);
  }

  void span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
            double sim_time, std::uint64_t step) {
#ifndef CASURF_NO_METRICS
    push({name, start_ns, dur_ns, sim_time, step, TraceEvent::Kind::kSpan});
#else
    (void)name, (void)start_ns, (void)dur_ns, (void)sim_time, (void)step;
#endif
  }

  void instant(const char* name, double sim_time, std::uint64_t step) {
#ifndef CASURF_NO_METRICS
    push({name, now_ns(), 0, sim_time, step, TraceEvent::Kind::kInstant});
#else
    (void)name, (void)sim_time, (void)step;
#endif
  }

  /// Comm-layer span: like span(), but the exported event's args carry
  /// (src,dst,tag,bytes) so the edge and payload are identifiable.
  void comm_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
                 int src, int dst, int tag, std::uint64_t bytes) {
#ifndef CASURF_NO_METRICS
    TraceEvent e{name, start_ns, dur_ns, 0.0, 0, TraceEvent::Kind::kSpan};
    e.src = src;
    e.dst = dst;
    e.tag = tag;
    e.bytes = bytes;
    push(e);
#else
    (void)name, (void)start_ns, (void)dur_ns, (void)src, (void)dst, (void)tag,
        (void)bytes;
#endif
  }

  /// Comm-layer instant (e.g. a non-blocking send) with edge args.
  void comm_instant(const char* name, int src, int dst, int tag,
                    std::uint64_t bytes) {
#ifndef CASURF_NO_METRICS
    TraceEvent e{name, now_ns(), 0, 0.0, 0, TraceEvent::Kind::kInstant};
    e.src = src;
    e.dst = dst;
    e.tag = tag;
    e.bytes = bytes;
    push(e);
#else
    (void)name, (void)src, (void)dst, (void)tag, (void)bytes;
#endif
  }

  [[nodiscard]] unsigned tid() const { return tid_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events currently retained (≤ capacity).
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  /// Total events offered to the ring since construction.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Events lost to wrap-around (recorded − retained).
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ - static_cast<std::uint64_t>(buf_.size());
  }
  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

 private:
  void push(const TraceEvent& e) {
    if (buf_.size() < capacity_) {
      buf_.push_back(e);
    } else {
      buf_[next_] = e;  // overwrite the oldest
      next_ = (next_ + 1) % capacity_;
    }
    ++recorded_;
  }

  unsigned tid_;
  std::size_t capacity_;
  std::vector<TraceEvent> buf_;
  std::size_t next_ = 0;  ///< index of the oldest event once wrapped
  std::uint64_t recorded_ = 0;
};

/// RAII span: records [construction, destruction) into a ring. A null ring
/// costs one branch — the "tracing off" fast path mirroring ScopedTimer.
#ifdef CASURF_NO_METRICS
class ScopedSpan {
 public:
  ScopedSpan(TraceRing* /*ring*/, const char* /*name*/, double /*sim_time*/,
             std::uint64_t /*step*/) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};
/// The zero-cost-when-off guarantee: with CASURF_METRICS=OFF a span site
/// must compile down to nothing a trajectory (or profile) could notice.
static_assert(std::is_empty_v<ScopedSpan>,
              "ScopedSpan must compile out to a no-op under CASURF_NO_METRICS");
#else
class ScopedSpan {
 public:
  ScopedSpan(TraceRing* ring, const char* name, double sim_time, std::uint64_t step)
      : ring_(ring), name_(name), sim_time_(sim_time), step_(step),
        start_(ring != nullptr ? now_ns() : 0) {}
  ~ScopedSpan() {
    if (ring_ != nullptr) {
      ring_->span(name_, start_, now_ns() - start_, sim_time_, step_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRing* ring_;
  const char* name_;
  double sim_time_;
  std::uint64_t step_;
  std::uint64_t start_;
};
#endif

/// Owns one ring per logical thread (tid 0 = the simulation/coordinator
/// thread, tid k+1 = threaded-engine worker k). Ring creation is
/// mutex-guarded with stable references, mirroring MetricsRegistry;
/// recording into a ring is uncontended single-writer.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit Tracer(std::size_t ring_capacity = kDefaultCapacity);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The ring for logical thread `tid`, created on first use. The
  /// reference stays valid for the tracer's lifetime.
  TraceRing& ring(unsigned tid);
  /// Label a ring in the exported trace ("main", "worker3", "rank2", ...).
  void set_thread_name(unsigned tid, std::string name);
  /// Cross-process correlation id stamped into the exported footer; the
  /// serve daemon hands each worker one ("job-<id>") so `casurf_report
  /// --merge-traces` can label the stitched lanes.
  void set_trace_id(std::string id);
  [[nodiscard]] std::string trace_id() const;

  [[nodiscard]] std::size_t ring_capacity() const { return ring_capacity_; }
  /// Steady-clock origin of this trace's relative timestamps. On Linux the
  /// steady clock is CLOCK_MONOTONIC (shared epoch across processes on one
  /// host), which is what lets --merge-traces clock-align trace files from
  /// different processes.
  [[nodiscard]] std::uint64_t t0_ns() const { return t0_ns_; }
  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::uint64_t total_dropped() const;

  /// The whole trace as Chrome Trace Event Format JSON: "X" complete
  /// events (ts/dur in microseconds relative to tracer construction),
  /// "i" instants, "M" thread_name metadata, and an `otherData` footer
  /// (schema "casurf-trace/1") carrying per-ring recorded/retained/dropped
  /// counts so wrap-around loss is never silent.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Write chrome_trace_json() through the atomic tmp+fsync+rename path.
  void write(const std::string& path) const;

 private:
  struct Impl;
  Impl* impl_;
  std::size_t ring_capacity_;
  std::uint64_t t0_ns_;
};

}  // namespace casurf::obs
