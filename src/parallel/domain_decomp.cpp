#include "parallel/domain_decomp.hpp"

#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {

namespace {

constexpr int kTagHaloRight = 1;  // right neighbor's boundary columns -> seam owner
constexpr int kTagSeamBack = 2;   // seam owner's updates -> right neighbor

/// Copy `count` wrapped columns starting at `x_begin` into a flat buffer
/// (column-major: count * height species).
void pack_columns(const Configuration& cfg, std::int32_t x_begin, std::int32_t count,
                  std::vector<Species>& buf) {
  const Lattice& lat = cfg.lattice();
  buf.resize(static_cast<std::size_t>(count) * lat.height());
  std::size_t k = 0;
  for (std::int32_t c = 0; c < count; ++c) {
    for (std::int32_t y = 0; y < lat.height(); ++y) {
      buf[k++] = cfg.get(Vec2{x_begin + c, y});
    }
  }
}

void unpack_columns(Configuration& cfg, std::int32_t x_begin, std::int32_t count,
                    const std::vector<Species>& buf) {
  const Lattice& lat = cfg.lattice();
  std::size_t k = 0;
  for (std::int32_t c = 0; c < count; ++c) {
    for (std::int32_t y = 0; y < lat.height(); ++y) {
      cfg.set(Vec2{x_begin + c, y}, buf[k++]);
    }
  }
}

}  // namespace

DomainDecompResult run_domain_decomp(const ReactionModel& model,
                                     const Configuration& initial,
                                     const DomainDecompParams& params) {
  model.validate();
  // Build the lazily-rebuilt alias table before the rank threads spawn:
  // they share the model, and a first-use rebuild from several ranks at
  // once would race.
  (void)model.alias_table();
  const Lattice& lat = initial.lattice();
  const int p = params.ranks;
  const std::int32_t r = model.max_radius_l1();
  if (p < 1) throw std::invalid_argument("run_domain_decomp: ranks must be >= 1");
  if (lat.width() % p != 0) {
    throw std::invalid_argument("run_domain_decomp: rank count must divide lattice width");
  }
  const std::int32_t w = lat.width() / p;
  if (p > 1 && w <= 4 * r) {
    throw std::invalid_argument(
        "run_domain_decomp: strips too narrow for the model radius (need width > 4r)");
  }

  const double total_k = model.total_rate();
  const auto rounds = static_cast<std::uint64_t>(std::ceil(params.t_end * total_k));
  const auto sample_every = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(params.sample_dt * total_k)));

  DomainDecompResult result;
  result.rounds = rounds;
  result.coverage.assign(model.species().size(), {});
  std::mutex result_mutex;
  std::atomic<std::uint64_t> total_trials{0};

  const CommObs comm_obs{params.metrics, params.tracer};
  result.comm = Communicator::run(p, [&](Communicator::Rank& rank) {
    const int me = rank.rank();
    obs::TraceRing* lane = rank.trace();
    const std::int32_t x0 = me * w;
    const std::int32_t x1 = x0 + w;
    const int right = (me + 1) % p;
    const int left = (me + p - 1) % p;

    Configuration cfg = initial;  // full-lattice copy; authoritative for [x0, x1)
    Xoshiro256 rng(params.seed ^ mix64(static_cast<std::uint64_t>(me) + 1));
    std::vector<Species> halo_buf, seam_buf;
    std::uint64_t my_trials = 0;

    const auto trial_in = [&](std::int32_t col_begin, std::int32_t col_count) {
      const auto x = static_cast<std::int32_t>(
          col_begin + static_cast<std::int32_t>(uniform_below(rng, col_count)));
      const auto y = static_cast<std::int32_t>(uniform_below(rng, lat.height()));
      const SiteIndex s = lat.index(lat.wrap({x, y}));
      const ReactionIndex rt = model.sample_type(rng);
      const ReactionType& reaction = model.reaction(rt);
      if (reaction.enabled(cfg, s)) reaction.execute(cfg, s);
      ++my_trials;
    };

    for (std::uint64_t round = 0; round < rounds; ++round) {
      if (p == 1) {
        // Degenerate case: plain RSM, one trial per site.
        for (SiteIndex i = 0; i < lat.size(); ++i) trial_in(0, lat.width());
      } else {
        // Phase 1: strip interior, anchors in [x0 + r, x1 - r); their
        // neighborhoods stay inside the strip, so all ranks run freely.
        {
          obs::ScopedSpan span(lane, "dd/interior",
                               static_cast<double>(round) / total_k, round);
          const std::int32_t interior = w - 2 * r;
          for (std::int32_t i = 0; i < interior * lat.height(); ++i) {
            trial_in(x0 + r, interior);
          }
        }
        rank.barrier();

        // Phase 2: seams. Each rank owns the seam at its right boundary.
        // Push my left-boundary columns [x0, x0 + 2r) to the left neighbor,
        // then simulate my seam with the fresh halo from the right.
        pack_columns(cfg, x0, 2 * r, halo_buf);
        rank.send_span(left, kTagHaloRight, halo_buf.data(), halo_buf.size());
        halo_buf.assign(static_cast<std::size_t>(2 * r) * lat.height(), 0);
        rank.recv_span(right, kTagHaloRight, halo_buf.data(), halo_buf.size());
        unpack_columns(cfg, x1, 2 * r, halo_buf);

        // Seam anchors: columns [x1 - r, x1 + r); touch [x1 - 2r, x1 + 2r).
        {
          obs::ScopedSpan span(lane, "dd/seam",
                               static_cast<double>(round) / total_k, round);
          for (std::int32_t i = 0; i < 2 * r * lat.height(); ++i) {
            trial_in(x1 - r, 2 * r);
          }
        }

        // Return the neighbor's updated columns [x1, x1 + 2r).
        pack_columns(cfg, x1, 2 * r, seam_buf);
        rank.send_span(right, kTagSeamBack, seam_buf.data(), seam_buf.size());
        seam_buf.assign(static_cast<std::size_t>(2 * r) * lat.height(), 0);
        rank.recv_span(left, kTagSeamBack, seam_buf.data(), seam_buf.size());
        unpack_columns(cfg, x0, 2 * r, seam_buf);
        rank.barrier();
      }

      // Sampling: global coverage from the authoritative columns only.
      if (round % sample_every == 0 || round + 1 == rounds) {
        std::vector<std::uint64_t> local(model.species().size(), 0);
        for (std::int32_t x = x0; x < x1; ++x) {
          for (std::int32_t y = 0; y < lat.height(); ++y) {
            ++local[cfg.get(Vec2{x, y})];
          }
        }
        std::vector<double> fractions(local.size());
        for (std::size_t sp = 0; sp < local.size(); ++sp) {
          fractions[sp] = static_cast<double>(rank.allreduce_sum(local[sp])) /
                          static_cast<double>(lat.size());
        }
        if (me == 0) {
          std::lock_guard lock(result_mutex);
          result.times.push_back(static_cast<double>(round + 1) / total_k);
          for (std::size_t sp = 0; sp < fractions.size(); ++sp) {
            result.coverage[sp].push_back(fractions[sp]);
          }
        }
      }
    }
    total_trials.fetch_add(my_trials, std::memory_order_relaxed);
  }, comm_obs);

  result.total_trials = total_trials.load();
  return result;
}

}  // namespace casurf
