#pragma once

#include <cstdint>
#include <vector>

#include "lattice/configuration.hpp"
#include "model/reaction_model.hpp"
#include "parallel/msgpass.hpp"

namespace casurf {

/// Parameters of the Segers-style chunked parallel DMC baseline (paper
/// section 3): the lattice is cut into `ranks` vertical strips, each
/// simulated by RSM on its own rank; strip seams are simulated by the
/// left-hand rank after a fresh halo exchange every round.
struct DomainDecompParams {
  int ranks = 2;
  std::uint64_t seed = 1;
  double t_end = 10.0;
  double sample_dt = 1.0;
  /// Observability sinks, forwarded to Communicator::run (null = off; see
  /// CommObs). The tracer additionally gets dd/interior and dd/seam
  /// compute spans on each rank's lane, so the exported timeline shows
  /// compute and communication interleaved per rank. Probes never touch
  /// RNG or lattice state: trajectories are bit-identical either way.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// Output of a domain-decomposed run: the coverage time series (one row per
/// species) plus the communication counters the overhead analysis needs —
/// this is the "amount of work vs amount of communication" trade-off
/// (volume/boundary ratio) the paper attributes to Segers.
struct DomainDecompResult {
  std::vector<double> times;
  std::vector<std::vector<double>> coverage;  ///< [species][sample]
  Communicator::Stats comm;
  std::uint64_t total_trials = 0;
  std::uint64_t rounds = 0;
};

/// Run the strip-decomposed RSM to `t_end`. Strip width must be a multiple
/// of the rank count and wide enough (> 4 * model radius) that seam zones
/// of neighboring strips cannot conflict. Every round is one MC step:
/// strip interiors run concurrently, then all seams run concurrently after
/// a halo exchange (each seam owned by the rank on its left), so no two
/// concurrent reactions ever touch a common site.
[[nodiscard]] DomainDecompResult run_domain_decomp(const ReactionModel& model,
                                                   const Configuration& initial,
                                                   const DomainDecompParams& params);

}  // namespace casurf
