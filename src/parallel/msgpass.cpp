#include "parallel/msgpass.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

namespace casurf {

Communicator::Communicator(int world_size) : boxes_(world_size) {
  if (world_size < 1) {
    throw std::invalid_argument("Communicator: world size must be >= 1");
  }
}

namespace {

bool is_comm_aborted(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const CommAborted&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

Communicator::Stats Communicator::run(int world_size,
                                      const std::function<void(Rank&)>& rank_main) {
  Communicator comm(world_size);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(world_size);
  threads.reserve(world_size);
  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&comm, &rank_main, &errors, r] {
      Rank handle(&comm, r);
      try {
        rank_main(handle);
      } catch (...) {
        errors[r] = std::current_exception();
        // Wake every peer blocked on a message or collective this rank
        // will never complete; they throw CommAborted and unwind, so the
        // join loop below always terminates.
        comm.abort_world();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Rethrow the root cause, not the CommAborted cascade it triggered.
  for (const std::exception_ptr& e : errors) {
    if (e && !is_comm_aborted(e)) std::rethrow_exception(e);
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return Stats{comm.messages_.load(), comm.bytes_.load(), comm.barriers_.load()};
}

void Communicator::abort_world() {
  aborted_.store(true);
  // Lock-then-notify per cv: a waiter either checks the flag before
  // releasing its mutex (and sees the store), or is already parked when
  // this acquires the mutex — in which case the notify reaches it. Without
  // taking the lock, the store could land between a waiter's check and its
  // wait(), and the notify would be lost forever.
  for (Mailbox& box : boxes_) {
    { std::lock_guard lock(box.mutex); }
    box.arrived.notify_all();
  }
  { std::lock_guard lock(coll_mutex_); }
  coll_cv_.notify_all();
}

void Communicator::Rank::send(int dest, int tag, std::vector<std::byte> payload) {
  if (dest < 0 || dest >= world_size()) {
    throw std::out_of_range("Communicator::send: bad destination rank");
  }
  Mailbox& box = comm_->boxes_[dest];
  comm_->messages_.fetch_add(1, std::memory_order_relaxed);
  comm_->bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(Message{rank_, tag, std::move(payload)});
  }
  box.arrived.notify_all();
}

std::vector<std::byte> Communicator::Rank::recv(int src, int tag) {
  Mailbox& box = comm_->boxes_[rank_];
  std::unique_lock lock(box.mutex);
  for (;;) {
    // Checked on entry and after every wakeup: a pending message from a
    // now-dead world is no longer deliverable in any meaningful order.
    if (comm_->aborted_.load()) throw CommAborted();
    const auto it = std::ranges::find_if(box.queue, [&](const Message& m) {
      return m.src == src && m.tag == tag;
    });
    if (it != box.queue.end()) {
      std::vector<std::byte> payload = std::move(it->payload);
      box.queue.erase(it);
      return payload;
    }
    box.arrived.wait(lock);
  }
}

void Communicator::Rank::barrier() {
  std::unique_lock lock(comm_->coll_mutex_);
  if (comm_->aborted_.load()) throw CommAborted();
  const std::uint64_t gen = comm_->coll_generation_;
  if (++comm_->coll_arrived_ == world_size()) {
    comm_->coll_arrived_ = 0;
    ++comm_->coll_generation_;
    comm_->barriers_.fetch_add(1, std::memory_order_relaxed);
    comm_->coll_cv_.notify_all();
  } else {
    comm_->coll_cv_.wait(lock, [&] {
      return comm_->coll_generation_ != gen || comm_->aborted_.load();
    });
    // Epoch never released: woken by abort_world, not by the last arrival.
    if (comm_->coll_generation_ == gen) throw CommAborted();
  }
}

template <class T>
T Communicator::allreduce_impl(int, T value) {
  // Accumulate under the collective lock; last arrival publishes the total
  // and releases the epoch. Two barrier-like phases folded into one
  // generation step because the accumulator is reset by the releaser.
  T* slot;
  T* out;
  if constexpr (std::is_same_v<T, double>) {
    slot = &reduce_double_;
    out = &reduce_double_out_;
  } else {
    slot = &reduce_u64_;
    out = &reduce_u64_out_;
  }
  std::unique_lock lock(coll_mutex_);
  if (aborted_.load()) throw CommAborted();
  const std::uint64_t gen = coll_generation_;
  *slot += value;
  if (++coll_arrived_ == static_cast<int>(boxes_.size())) {
    coll_arrived_ = 0;
    *out = *slot;
    *slot = T{};
    ++coll_generation_;
    barriers_.fetch_add(1, std::memory_order_relaxed);
    coll_cv_.notify_all();
  } else {
    coll_cv_.wait(lock,
                  [&] { return coll_generation_ != gen || aborted_.load(); });
    if (coll_generation_ == gen) throw CommAborted();
  }
  return *out;
}

double Communicator::Rank::allreduce_sum(double value) {
  return comm_->allreduce_impl<double>(rank_, value);
}

std::uint64_t Communicator::Rank::allreduce_sum(std::uint64_t value) {
  return comm_->allreduce_impl<std::uint64_t>(rank_, value);
}

}  // namespace casurf
