#include "parallel/msgpass.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

namespace casurf {

Communicator::Communicator(int world_size) : boxes_(world_size) {
  if (world_size < 1) {
    throw std::invalid_argument("Communicator: world size must be >= 1");
  }
}

namespace {

bool is_comm_aborted(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const CommAborted&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

#ifndef CASURF_NO_METRICS

void CommProbes::arm(int world_size, const CommObs& obs) {
  world_ = world_size;
  if (obs.metrics == nullptr && obs.tracer == nullptr) return;
  armed_ = true;
  lanes_.assign(world_size, nullptr);
  high_water_.assign(world_size, 0);
  if (obs.tracer != nullptr) {
    for (int r = 0; r < world_size; ++r) {
      const unsigned tid = obs::kRankLaneBase + static_cast<unsigned>(r);
      obs.tracer->set_thread_name(tid, "rank" + std::to_string(r));
      lanes_[r] = &obs.tracer->ring(tid);
    }
  }
  if (obs.metrics != nullptr) {
    obs::MetricsRegistry& reg = *obs.metrics;
    edge_messages_.assign(static_cast<std::size_t>(world_size) * world_size,
                          nullptr);
    edge_bytes_.assign(edge_messages_.size(), nullptr);
    for (int s = 0; s < world_size; ++s) {
      for (int d = 0; d < world_size; ++d) {
        const std::string edge = "comm/edge/" + std::to_string(s) + "->" +
                                 std::to_string(d);
        edge_messages_[s * world_size + d] = &reg.counter(edge + "/messages");
        edge_bytes_[s * world_size + d] = &reg.counter(edge + "/bytes");
      }
    }
    wait_recv_.resize(world_size);
    wait_barrier_.resize(world_size);
    wait_allreduce_.resize(world_size);
    queue_high_water_.resize(world_size);
    for (int r = 0; r < world_size; ++r) {
      const std::string rank = "rank" + std::to_string(r);
      wait_recv_[r] = &reg.timer("comm/wait/recv/" + rank);
      wait_barrier_[r] = &reg.timer("comm/wait/barrier/" + rank);
      wait_allreduce_[r] = &reg.timer("comm/wait/allreduce/" + rank);
      queue_high_water_[r] = &reg.gauge("comm/queue_high_water/" + rank);
    }
    barrier_skew_ = &reg.histogram("comm/barrier_skew_ns");
  }
}

void CommProbes::on_send(int src, int dst, int tag, std::size_t bytes) {
  if (!armed_) return;
  if (!edge_messages_.empty()) {
    const std::size_t edge = static_cast<std::size_t>(src) * world_ + dst;
    edge_messages_[edge]->add();
    edge_bytes_[edge]->add(bytes);
  }
  if (lanes_[src] != nullptr) {
    lanes_[src]->comm_instant("comm/send", src, dst, tag, bytes);
  }
}

void CommProbes::note_queue_depth(int dst, std::size_t depth) {
  // Called under the dst mailbox's mutex, which also guards high_water_.
  if (queue_high_water_.empty() || depth <= high_water_[dst]) return;
  high_water_[dst] = depth;
  queue_high_water_[dst]->set(static_cast<double>(depth));
}

void CommProbes::on_recv(int rank, int src, int tag, std::size_t bytes,
                         std::uint64_t t0) {
  if (!armed_) return;
  const std::uint64_t end = obs::now_ns();
  if (!wait_recv_.empty()) wait_recv_[rank]->add_ns(end - t0);
  if (lanes_[rank] != nullptr) {
    lanes_[rank]->comm_span("comm/recv", t0, end - t0, src, rank, tag, bytes);
  }
}

void CommProbes::on_coll_arrival(int arrived_before) {
  // Under the collective mutex: the first arrival of an epoch stamps the
  // skew origin.
  if (barrier_skew_ != nullptr && arrived_before == 0) {
    epoch_first_ns_ = obs::now_ns();
  }
}

void CommProbes::on_coll_release() {
  // Under the collective mutex, in the releasing (last-arrival) rank.
  if (barrier_skew_ != nullptr) {
    barrier_skew_->record(obs::now_ns() - epoch_first_ns_);
  }
}

void CommProbes::finish_coll(int rank, std::uint64_t t0,
                             std::uint64_t generation, bool allreduce) {
  if (!armed_) return;
  const std::uint64_t end = obs::now_ns();
  if (!wait_barrier_.empty()) {
    (allreduce ? wait_allreduce_ : wait_barrier_)[rank]->add_ns(end - t0);
  }
  if (lanes_[rank] != nullptr) {
    lanes_[rank]->span(allreduce ? "comm/allreduce" : "comm/barrier", t0,
                       end - t0, 0.0, generation);
  }
}

#endif  // CASURF_NO_METRICS

Communicator::Stats Communicator::run(int world_size,
                                      const std::function<void(Rank&)>& rank_main) {
  return run(world_size, rank_main, CommObs{});
}

Communicator::Stats Communicator::run(int world_size,
                                      const std::function<void(Rank&)>& rank_main,
                                      const CommObs& obs) {
  Communicator comm(world_size);
  comm.probes_.arm(world_size, obs);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(world_size);
  threads.reserve(world_size);
  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&comm, &rank_main, &errors, r] {
      Rank handle(&comm, r);
      try {
        rank_main(handle);
      } catch (...) {
        errors[r] = std::current_exception();
        // Wake every peer blocked on a message or collective this rank
        // will never complete; they throw CommAborted and unwind, so the
        // join loop below always terminates.
        comm.abort_world();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Rethrow the root cause, not the CommAborted cascade it triggered.
  for (const std::exception_ptr& e : errors) {
    if (e && !is_comm_aborted(e)) std::rethrow_exception(e);
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return Stats{comm.messages_.load(), comm.bytes_.load(), comm.barriers_.load()};
}

void Communicator::abort_world() {
  aborted_.store(true);
  // Lock-then-notify per cv: a waiter either checks the flag before
  // releasing its mutex (and sees the store), or is already parked when
  // this acquires the mutex — in which case the notify reaches it. Without
  // taking the lock, the store could land between a waiter's check and its
  // wait(), and the notify would be lost forever.
  for (Mailbox& box : boxes_) {
    { std::lock_guard lock(box.mutex); }
    box.arrived.notify_all();
  }
  { std::lock_guard lock(coll_mutex_); }
  coll_cv_.notify_all();
}

void Communicator::Rank::send(int dest, int tag, std::vector<std::byte> payload) {
  if (dest < 0 || dest >= world_size()) {
    throw std::out_of_range("Communicator::send: bad destination rank");
  }
  const std::size_t nbytes = payload.size();
  Mailbox& box = comm_->boxes_[dest];
  comm_->messages_.fetch_add(1, std::memory_order_relaxed);
  comm_->bytes_.fetch_add(nbytes, std::memory_order_relaxed);
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(Message{rank_, tag, std::move(payload)});
    comm_->probes_.note_queue_depth(dest, box.queue.size());
  }
  box.arrived.notify_all();
  comm_->probes_.on_send(rank_, dest, tag, nbytes);
}

std::vector<std::byte> Communicator::Rank::recv(int src, int tag) {
  const std::uint64_t t0 = comm_->probes_.begin_wait();
  Mailbox& box = comm_->boxes_[rank_];
  std::unique_lock lock(box.mutex);
  for (;;) {
    // Checked on entry and after every wakeup: a pending message from a
    // now-dead world is no longer deliverable in any meaningful order.
    if (comm_->aborted_.load()) throw CommAborted();
    const auto it = std::ranges::find_if(box.queue, [&](const Message& m) {
      return m.src == src && m.tag == tag;
    });
    if (it != box.queue.end()) {
      std::vector<std::byte> payload = std::move(it->payload);
      box.queue.erase(it);
      lock.unlock();
      comm_->probes_.on_recv(rank_, src, tag, payload.size(), t0);
      return payload;
    }
    box.arrived.wait(lock);
  }
}

void Communicator::Rank::barrier() {
  const std::uint64_t t0 = comm_->probes_.begin_wait();
  std::uint64_t gen = 0;
  {
    std::unique_lock lock(comm_->coll_mutex_);
    if (comm_->aborted_.load()) throw CommAborted();
    gen = comm_->coll_generation_;
    comm_->probes_.on_coll_arrival(comm_->coll_arrived_);
    if (++comm_->coll_arrived_ == world_size()) {
      comm_->coll_arrived_ = 0;
      comm_->probes_.on_coll_release();
      ++comm_->coll_generation_;
      comm_->barriers_.fetch_add(1, std::memory_order_relaxed);
      comm_->coll_cv_.notify_all();
    } else {
      comm_->coll_cv_.wait(lock, [&] {
        return comm_->coll_generation_ != gen || comm_->aborted_.load();
      });
      // Epoch never released: woken by abort_world, not by the last arrival.
      if (comm_->coll_generation_ == gen) throw CommAborted();
    }
  }
  comm_->probes_.finish_coll(rank_, t0, gen, /*allreduce=*/false);
}

template <class T>
T Communicator::allreduce_impl(int rank, T value) {
  // Accumulate under the collective lock; last arrival publishes the total
  // and releases the epoch. Two barrier-like phases folded into one
  // generation step because the accumulator is reset by the releaser.
  T* slot;
  T* out;
  if constexpr (std::is_same_v<T, double>) {
    slot = &reduce_double_;
    out = &reduce_double_out_;
  } else {
    slot = &reduce_u64_;
    out = &reduce_u64_out_;
  }
  const std::uint64_t t0 = probes_.begin_wait();
  T result;
  std::uint64_t gen = 0;
  {
    std::unique_lock lock(coll_mutex_);
    if (aborted_.load()) throw CommAborted();
    gen = coll_generation_;
    probes_.on_coll_arrival(coll_arrived_);
    *slot += value;
    if (++coll_arrived_ == static_cast<int>(boxes_.size())) {
      coll_arrived_ = 0;
      probes_.on_coll_release();
      *out = *slot;
      *slot = T{};
      ++coll_generation_;
      barriers_.fetch_add(1, std::memory_order_relaxed);
      coll_cv_.notify_all();
    } else {
      coll_cv_.wait(lock,
                    [&] { return coll_generation_ != gen || aborted_.load(); });
      if (coll_generation_ == gen) throw CommAborted();
    }
    result = *out;
  }
  probes_.finish_coll(rank, t0, gen, /*allreduce=*/true);
  return result;
}

double Communicator::Rank::allreduce_sum(double value) {
  return comm_->allreduce_impl<double>(rank_, value);
}

std::uint64_t Communicator::Rank::allreduce_sum(std::uint64_t value) {
  return comm_->allreduce_impl<std::uint64_t>(rank_, value);
}

}  // namespace casurf
