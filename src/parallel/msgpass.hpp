#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace casurf {

/// Thrown out of a blocking Communicator call (recv, barrier, allreduce)
/// when a peer rank has failed: the world is aborting, so the message or
/// collective this rank is waiting for can never complete. Surviving ranks
/// should let it propagate; Communicator::run treats it as a secondary
/// casualty and rethrows the peer's original exception instead.
class CommAborted : public std::runtime_error {
 public:
  CommAborted()
      : std::runtime_error(
            "communicator: world aborted (a peer rank failed before "
            "completing this exchange)") {}
};

/// Observability sinks for one Communicator::run(): a registry for the
/// per-edge / wait / skew comm metrics and a tracer for the per-rank trace
/// lanes. Either may be null ("off") — same null-probe-off discipline as
/// Simulator::set_metrics, so an unobserved world pays one branch per
/// record site and the trajectory is bit-identical either way.
struct CommObs {
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

#ifdef CASURF_NO_METRICS
/// Compiled-out comm probes: every record site vanishes (the empty-type
/// contract below mirrors ScopedSpan), so a CASURF_METRICS=OFF build's
/// communicator touches no registry and records no spans even when a
/// CommObs is attached.
class CommProbes {
 public:
  void arm(int /*world_size*/, const CommObs& /*obs*/) {}
  [[nodiscard]] obs::TraceRing* ring(int /*rank*/) const { return nullptr; }
  [[nodiscard]] std::uint64_t begin_wait() const { return 0; }
  void on_send(int /*src*/, int /*dst*/, int /*tag*/, std::size_t /*bytes*/) {}
  void note_queue_depth(int /*dst*/, std::size_t /*depth*/) {}
  void on_recv(int /*rank*/, int /*src*/, int /*tag*/, std::size_t /*bytes*/,
               std::uint64_t /*t0*/) {}
  void on_coll_arrival(int /*arrived_before*/) {}
  void on_coll_release() {}
  void finish_coll(int /*rank*/, std::uint64_t /*t0*/,
                   std::uint64_t /*generation*/, bool /*allreduce*/) {}
};
/// The zero-cost-when-off guarantee for the comm layer: with
/// CASURF_METRICS=OFF a probe site must compile down to nothing a
/// trajectory (or profile) could notice.
static_assert(std::is_empty_v<CommProbes>,
              "CommProbes must compile out to a no-op under CASURF_NO_METRICS");
#else
/// Pre-resolved comm probes for one Communicator world. arm() resolves
/// every registry probe and trace lane ONCE, before the rank threads
/// start; record sites then cost one branch when disarmed and touch only
/// atomics (or the caller rank's own single-writer lane) when armed.
///
/// Metric names (see docs/OBSERVABILITY.md):
///   comm/edge/<src>-><dst>/messages   counter, per directed edge
///   comm/edge/<src>-><dst>/bytes      counter, per directed edge
///   comm/wait/recv/rank<k>            timer, blocked in recv()
///   comm/wait/barrier/rank<k>         timer, blocked in barrier()
///   comm/wait/allreduce/rank<k>       timer, blocked in allreduce_sum()
///   comm/queue_high_water/rank<k>     gauge, mailbox depth high-water
///   comm/barrier_skew_ns              histogram, first→last arrival/epoch
class CommProbes {
 public:
  /// Resolve every probe once. Safe with an all-null CommObs: the probes
  /// stay disarmed and every record site below is a single branch.
  void arm(int world_size, const CommObs& obs);

  /// Rank k's trace lane (tid obs::kRankLaneBase + k); null when no tracer
  /// is attached.
  [[nodiscard]] obs::TraceRing* ring(int rank) const {
    return armed_ ? lanes_[static_cast<std::size_t>(rank)] : nullptr;
  }
  /// Timestamp for a blocking call's wait timer (0 when disarmed).
  [[nodiscard]] std::uint64_t begin_wait() const {
    return armed_ ? obs::now_ns() : 0;
  }

  /// Point-to-point probes. note_queue_depth runs under the destination
  /// mailbox's mutex (the high-water bookkeeping shares that lock); the
  /// others touch only atomics and the calling rank's own lane.
  void on_send(int src, int dst, int tag, std::size_t bytes);
  void note_queue_depth(int dst, std::size_t depth);
  void on_recv(int rank, int src, int tag, std::size_t bytes, std::uint64_t t0);

  /// Collective probes. on_coll_arrival/on_coll_release run under the
  /// communicator's collective mutex, which guards the first-arrival
  /// timestamp; finish_coll runs after release on the caller's own lane.
  void on_coll_arrival(int arrived_before);
  void on_coll_release();
  void finish_coll(int rank, std::uint64_t t0, std::uint64_t generation,
                   bool allreduce);

 private:
  bool armed_ = false;
  int world_ = 0;
  std::vector<obs::TraceRing*> lanes_;        ///< per rank; null = no tracer
  std::vector<obs::Counter*> edge_messages_;  ///< [src*world_+dst]; empty = no registry
  std::vector<obs::Counter*> edge_bytes_;
  std::vector<obs::Timer*> wait_recv_;
  std::vector<obs::Timer*> wait_barrier_;
  std::vector<obs::Timer*> wait_allreduce_;
  std::vector<obs::Gauge*> queue_high_water_;
  std::vector<std::size_t> high_water_;  ///< guarded by each mailbox's mutex
  obs::Histogram* barrier_skew_ = nullptr;
  std::uint64_t epoch_first_ns_ = 0;  ///< guarded by the collective mutex
};
#endif

/// In-process message-passing substrate, MPI-flavored: a fixed world of
/// ranks (one thread each) exchanging tagged point-to-point messages plus
/// barrier and allreduce collectives. Stands in for the MPI layer of
/// Segers' chunked parallel DMC (paper section 3) on machines without an
/// MPI installation; the communication *pattern* — and the per-message /
/// per-byte counts the cost model consumes — is the same.
class Communicator {
 public:
  class Rank;

  /// Totals of one run(): point-to-point messages, payload bytes, and
  /// collective epochs (barriers + allreduces).
  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t barriers = 0;
  };

  /// Spawn `world_size` ranks, run `rank_main` on each (rank 0 included),
  /// join, and return this run's communication totals. Stats are
  /// per-instance — concurrent run() calls (e.g. two simulations on
  /// different threads) never see each other's counts.
  ///
  /// Failure semantics: a rank that throws aborts the whole world. Every
  /// peer blocked in (or later entering) recv/barrier/allreduce wakes and
  /// throws CommAborted instead of waiting for a message or a collective
  /// that can never complete, so run() always returns: it joins every
  /// rank and rethrows the first *original* exception — the CommAborted
  /// cascade it triggered in the survivors is not reported.
  static Stats run(int world_size, const std::function<void(Rank&)>& rank_main);

  /// Same, with observability attached: per-edge message/byte counters,
  /// blocked-wait timers, queue-depth high-water gauges, and a
  /// barrier-skew histogram into `obs.metrics`; per-rank trace lanes (tid
  /// obs::kRankLaneBase + rank) into `obs.tracer`. Probes are resolved
  /// once before the rank threads start and are per-instance — concurrent
  /// worlds with different sinks never cross-contaminate.
  static Stats run(int world_size, const std::function<void(Rank&)>& rank_main,
                   const CommObs& obs);

  /// A rank's endpoint: the handle `rank_main` receives.
  class Rank {
   public:
    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] int world_size() const { return static_cast<int>(comm_->boxes_.size()); }

    /// Asynchronous (buffered) send; never blocks.
    void send(int dest, int tag, std::vector<std::byte> payload);

    /// Blocking receive of the oldest pending message matching (src, tag).
    [[nodiscard]] std::vector<std::byte> recv(int src, int tag);

    /// Typed convenience wrappers for trivially-copyable payloads.
    template <class T>
    void send_value(int dest, int tag, const T& value) {
      static_assert(std::is_trivially_copyable_v<T>);
      std::vector<std::byte> buf(sizeof(T));
      std::memcpy(buf.data(), &value, sizeof(T));
      send(dest, tag, std::move(buf));
    }
    template <class T>
    [[nodiscard]] T recv_value(int src, int tag) {
      static_assert(std::is_trivially_copyable_v<T>);
      const std::vector<std::byte> buf = recv(src, tag);
      check_payload_size("recv_value", src, tag, buf.size(), 1, sizeof(T));
      T value{};
      std::memcpy(&value, buf.data(), sizeof(T));
      return value;
    }
    template <class T>
    void send_span(int dest, int tag, const T* data, std::size_t count) {
      static_assert(std::is_trivially_copyable_v<T>);
      std::vector<std::byte> buf(count * sizeof(T));
      std::memcpy(buf.data(), data, buf.size());
      send(dest, tag, std::move(buf));
    }
    template <class T>
    void recv_span(int src, int tag, T* data, std::size_t count) {
      static_assert(std::is_trivially_copyable_v<T>);
      const std::vector<std::byte> buf = recv(src, tag);
      // A size mismatch is a protocol bug (sender and receiver disagree on
      // the exchange) — fail loudly instead of silently truncating or
      // zero-padding the halo.
      check_payload_size("recv_span", src, tag, buf.size(), count, sizeof(T));
      std::memcpy(data, buf.data(), buf.size());
    }

    /// Synchronize all ranks (sense-reversing generation barrier).
    void barrier();

    /// Sum a value across all ranks; every rank receives the total.
    [[nodiscard]] double allreduce_sum(double value);
    [[nodiscard]] std::uint64_t allreduce_sum(std::uint64_t value);

    /// This rank's trace lane, for compute spans between exchanges
    /// (null when the world runs without a tracer or under
    /// CASURF_METRICS=OFF). Single-writer: only this rank's thread may
    /// record into it.
    [[nodiscard]] obs::TraceRing* trace() const {
      return comm_->probes_.ring(rank_);
    }

   private:
    friend class Communicator;
    Rank(Communicator* comm, int rank) : comm_(comm), rank_(rank) {}

    /// Throws std::runtime_error when a typed receive's payload size does
    /// not match the expected element count.
    static void check_payload_size(const char* what, int src, int tag,
                                   std::size_t got, std::size_t count,
                                   std::size_t elem_size) {
      const std::size_t expected = count * elem_size;
      if (got == expected) return;
      throw std::runtime_error(
          std::string("Communicator::") + what +
          ": payload size mismatch from rank " + std::to_string(src) +
          " tag " + std::to_string(tag) + ": got " + std::to_string(got) +
          " bytes, expected " + std::to_string(expected) + " (" +
          std::to_string(count) + " x " + std::to_string(elem_size) +
          "-byte elements)");
    }

    Communicator* comm_;
    int rank_;
  };

 private:
  struct Message {
    int src;
    int tag;
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::deque<Message> queue;
  };

  explicit Communicator(int world_size);

  template <class T>
  T allreduce_impl(int rank, T value);

  /// Poison every mailbox and the collective state: set the abort flag and
  /// wake all waiters, which then throw CommAborted. Called from run()'s
  /// catch path; safe to call from multiple failing ranks concurrently.
  void abort_world();

  std::vector<Mailbox> boxes_;
  std::atomic<bool> aborted_{false};
  // Barrier + reduction state.
  std::mutex coll_mutex_;
  std::condition_variable coll_cv_;
  int coll_arrived_ = 0;
  std::uint64_t coll_generation_ = 0;
  double reduce_double_ = 0;
  std::uint64_t reduce_u64_ = 0;
  double reduce_double_out_ = 0;
  std::uint64_t reduce_u64_out_ = 0;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> barriers_{0};
  CommProbes probes_;
};

}  // namespace casurf
