#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace casurf {

/// Thrown out of a blocking Communicator call (recv, barrier, allreduce)
/// when a peer rank has failed: the world is aborting, so the message or
/// collective this rank is waiting for can never complete. Surviving ranks
/// should let it propagate; Communicator::run treats it as a secondary
/// casualty and rethrows the peer's original exception instead.
class CommAborted : public std::runtime_error {
 public:
  CommAborted()
      : std::runtime_error(
            "communicator: world aborted (a peer rank failed before "
            "completing this exchange)") {}
};

/// In-process message-passing substrate, MPI-flavored: a fixed world of
/// ranks (one thread each) exchanging tagged point-to-point messages plus
/// barrier and allreduce collectives. Stands in for the MPI layer of
/// Segers' chunked parallel DMC (paper section 3) on machines without an
/// MPI installation; the communication *pattern* — and the per-message /
/// per-byte counts the cost model consumes — is the same.
class Communicator {
 public:
  class Rank;

  /// Totals of one run(): point-to-point messages, payload bytes, and
  /// collective epochs (barriers + allreduces).
  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t barriers = 0;
  };

  /// Spawn `world_size` ranks, run `rank_main` on each (rank 0 included),
  /// join, and return this run's communication totals. Stats are
  /// per-instance — concurrent run() calls (e.g. two simulations on
  /// different threads) never see each other's counts.
  ///
  /// Failure semantics: a rank that throws aborts the whole world. Every
  /// peer blocked in (or later entering) recv/barrier/allreduce wakes and
  /// throws CommAborted instead of waiting for a message or a collective
  /// that can never complete, so run() always returns: it joins every
  /// rank and rethrows the first *original* exception — the CommAborted
  /// cascade it triggered in the survivors is not reported.
  static Stats run(int world_size, const std::function<void(Rank&)>& rank_main);

  /// A rank's endpoint: the handle `rank_main` receives.
  class Rank {
   public:
    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] int world_size() const { return static_cast<int>(comm_->boxes_.size()); }

    /// Asynchronous (buffered) send; never blocks.
    void send(int dest, int tag, std::vector<std::byte> payload);

    /// Blocking receive of the oldest pending message matching (src, tag).
    [[nodiscard]] std::vector<std::byte> recv(int src, int tag);

    /// Typed convenience wrappers for trivially-copyable payloads.
    template <class T>
    void send_value(int dest, int tag, const T& value) {
      static_assert(std::is_trivially_copyable_v<T>);
      std::vector<std::byte> buf(sizeof(T));
      std::memcpy(buf.data(), &value, sizeof(T));
      send(dest, tag, std::move(buf));
    }
    template <class T>
    [[nodiscard]] T recv_value(int src, int tag) {
      static_assert(std::is_trivially_copyable_v<T>);
      const std::vector<std::byte> buf = recv(src, tag);
      T value{};
      std::memcpy(&value, buf.data(), sizeof(T));
      return value;
    }
    template <class T>
    void send_span(int dest, int tag, const T* data, std::size_t count) {
      static_assert(std::is_trivially_copyable_v<T>);
      std::vector<std::byte> buf(count * sizeof(T));
      std::memcpy(buf.data(), data, buf.size());
      send(dest, tag, std::move(buf));
    }
    template <class T>
    void recv_span(int src, int tag, T* data, std::size_t count) {
      static_assert(std::is_trivially_copyable_v<T>);
      const std::vector<std::byte> buf = recv(src, tag);
      std::memcpy(data, buf.data(), std::min(buf.size(), count * sizeof(T)));
    }

    /// Synchronize all ranks (sense-reversing generation barrier).
    void barrier();

    /// Sum a value across all ranks; every rank receives the total.
    [[nodiscard]] double allreduce_sum(double value);
    [[nodiscard]] std::uint64_t allreduce_sum(std::uint64_t value);

   private:
    friend class Communicator;
    Rank(Communicator* comm, int rank) : comm_(comm), rank_(rank) {}
    Communicator* comm_;
    int rank_;
  };

 private:
  struct Message {
    int src;
    int tag;
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::deque<Message> queue;
  };

  explicit Communicator(int world_size);

  template <class T>
  T allreduce_impl(int rank, T value);

  /// Poison every mailbox and the collective state: set the abort flag and
  /// wake all waiters, which then throw CommAborted. Called from run()'s
  /// catch path; safe to call from multiple failing ranks concurrently.
  void abort_world();

  std::vector<Mailbox> boxes_;
  std::atomic<bool> aborted_{false};
  // Barrier + reduction state.
  std::mutex coll_mutex_;
  std::condition_variable coll_cv_;
  int coll_arrived_ = 0;
  std::uint64_t coll_generation_ = 0;
  double reduce_double_ = 0;
  std::uint64_t reduce_u64_ = 0;
  double reduce_double_out_ = 0;
  std::uint64_t reduce_u64_out_ = 0;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> barriers_{0};
};

}  // namespace casurf
