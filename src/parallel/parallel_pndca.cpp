#include "parallel/parallel_pndca.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/trace.hpp"
#include "partition/conflict.hpp"

namespace casurf {

ParallelPndcaEngine::ParallelPndcaEngine(const ReactionModel& model,
                                         Configuration config,
                                         std::vector<Partition> partitions,
                                         std::uint64_t seed, unsigned num_threads,
                                         ChunkPolicy policy, TimeMode time_mode)
    : PndcaSimulator(model, std::move(config), std::move(partitions), seed, policy,
                     time_mode),
      pool_(num_threads) {
  // Thread safety rests entirely on the non-overlap rule; refuse partitions
  // that violate it rather than silently racing.
  const std::vector<Vec2> offsets = conflict_offsets(model);
  for (const Partition& p : this->partitions()) {
    if (!verify_partition(p, offsets)) {
      throw std::invalid_argument(
          "ParallelPndcaEngine: partition violates the non-overlap rule for "
          "this model; parallel chunk execution would race");
    }
  }
  deltas_.assign(pool_.size(), std::vector<std::int64_t>(model.species().size(), 0));
  tallies_.assign(pool_.size(), std::vector<std::uint64_t>(model.num_reactions(), 0));
  fired_.assign(pool_.size(), {});
}

void ParallelPndcaEngine::set_metrics(obs::MetricsRegistry* registry) {
  PndcaSimulator::set_metrics(registry);
  busy_timers_.clear();
  wait_timers_.clear();
  if (registry != nullptr) {
    for (unsigned tid = 0; tid < pool_.size(); ++tid) {
      busy_timers_.push_back(&registry->timer("threads/busy/worker" + std::to_string(tid)));
      wait_timers_.push_back(&registry->timer("threads/wait/worker" + std::to_string(tid)));
    }
    busy_scratch_.assign(pool_.size(), 0);
  }
  merge_timer_ = registry ? &registry->timer("threads/merge") : nullptr;
  recheck_timer_ = registry ? &registry->timer("threads/recheck") : nullptr;
}

void ParallelPndcaEngine::set_tracer(obs::Tracer* tracer) {
  PndcaSimulator::set_tracer(tracer);  // resolves ring 0 for the coordinator
  worker_rings_.clear();
  if (tracer != nullptr) {
    for (unsigned tid = 0; tid < pool_.size(); ++tid) {
      worker_rings_.push_back(&tracer->ring(tid + 1));
      tracer->set_thread_name(tid + 1, "worker" + std::to_string(tid));
    }
    trace_busy_end_.assign(pool_.size(), 0);
  }
}

bool ParallelPndcaEngine::set_fast_path(bool on) {
  const bool engaged = PndcaSimulator::set_fast_path(on);
  fast_hits_.clear();
  if (engaged) fast_hits_.resize(pool_.size());
  return engaged;
}

void ParallelPndcaEngine::execute_chunk(std::uint64_t sweep, ChunkId chunk,
                                        const std::vector<SiteIndex>& sites) {
  (void)chunk;
  const bool fast = fast_path_active();
  // Fired executions are replayed at the barrier by the rate cache AND by
  // the bitplane resync, so either consumer turns the tracking on.
  const bool track_fired = rate_cache_active() || fast;
  const bool timed = !busy_timers_.empty();
  const bool traced = !worker_rings_.empty();
  const bool clocked = timed || traced;
  for (auto& d : deltas_) std::ranges::fill(d, 0);
  for (auto& t : tallies_) std::ranges::fill(t, 0);
  if (track_fired) {
    for (auto& f : fired_) f.clear();
  }
  if (timed) std::ranges::fill(busy_scratch_, 0);
  if (traced) std::ranges::fill(trace_busy_end_, 0);
  const std::uint64_t wall_start = clocked ? obs::now_ns() : 0;

  // Both modes fork over the site list; in fast mode each worker runs the
  // batched trial kernel on its slice. Work items are independent either
  // way (the non-overlap rule keeps same-chunk writes disjoint).
  pool_.parallel_for(sites.size(), [&](unsigned tid, std::size_t begin, std::size_t end) {
    const std::uint64_t busy_start = clocked ? obs::now_ns() : 0;
    std::int64_t* deltas = deltas_[tid].data();
    std::uint64_t* tally = tallies_[tid].data();
    if (fast) {
      // Workers read the frozen pre-sweep bitset; the non-overlap rule
      // keeps it exact for every anchor of this sweep, and the coordinator
      // replays the fired lists into it at the barrier.
      std::vector<TrialHit>& hits = fast_hits_[tid];
      hits.resize(end - begin);
      const std::size_t cnt =
          batch_trials(sweep, fast_->seed_hash, sites.data() + begin,
                       end - begin, model_.alias_table(), fast_->enabled,
                       hits.data());
      if (spatial_.map() != nullptr) {
        for (std::size_t i = begin; i < end; ++i) spatial_.attempt(sites[i]);
      }
      for (std::size_t k = 0; k < cnt; ++k) {
        const SiteIndex s = sites[begin + hits[k].index];
        const ReactionIndex rt = hits[k].type;
        spatial_.fire(s);
        model_.reaction(rt).execute_raw(config_, s, deltas);
        ++tally[rt];
        fired_[tid].push_back({s, rt});
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        const std::int32_t fired = trial_at(sweep, sites[i], deltas);
        if (fired != kNoReaction) {
          ++tally[fired];
          if (track_fired) {
            fired_[tid].push_back({sites[i], static_cast<ReactionIndex>(fired)});
          }
        }
      }
    }
    if (clocked) {
      const std::uint64_t busy_end = obs::now_ns();
      if (timed) busy_scratch_[tid] = busy_end - busy_start;
      if (traced) {
        // Each worker writes its own ring: single-writer, race-free.
        worker_rings_[tid]->span("threads/busy", busy_start, busy_end - busy_start,
                                 time_, sweep);
        trace_busy_end_[tid] = busy_end;
      }
    }
  });

  if (clocked) {
    // Busy is each worker's own span; wait is the rest of the fork-join
    // wall time — the time it spent idle at the implicit sweep barrier
    // (surplus workers of a small chunk count as all-wait). The report's
    // load-imbalance figure is max/mean over the busy set.
    const std::uint64_t wall_end = obs::now_ns();
    if (timed) {
      const std::uint64_t wall = wall_end - wall_start;
      for (unsigned tid = 0; tid < pool_.size(); ++tid) {
        busy_timers_[tid]->add_ns(busy_scratch_[tid]);
        wait_timers_[tid]->add_ns(wall - std::min(wall, busy_scratch_[tid]));
      }
    }
    if (traced) {
      // The join happened-before this point, so appending the wait span to
      // each worker's ring from the coordinator cannot race the worker.
      for (unsigned tid = 0; tid < pool_.size(); ++tid) {
        const std::uint64_t from =
            trace_busy_end_[tid] != 0 ? trace_busy_end_[tid] : wall_start;
        worker_rings_[tid]->span("threads/wait", from,
                                 wall_end - std::min(wall_end, from), time_, sweep);
      }
    }
  }

  // Deterministic merge: integer sums are order-independent.
  {
    const obs::ScopedTimer merge_span(merge_timer_);
    const obs::ScopedSpan merge_trace(trace_, "threads/merge", time_, sweep);
    for (unsigned tid = 0; tid < pool_.size(); ++tid) {
      config_.apply_count_delta(deltas_[tid].data());
      for (ReactionIndex rt = 0; rt < model_.num_reactions(); ++rt) {
        const std::uint64_t n = tallies_[tid][rt];
        counters_.executed += n;
        counters_.executed_per_type[rt] += n;
      }
    }
  }

  // The bitplanes and the enabled-type bitset are frozen during the sweep
  // (workers only read them); replay the fired lists at the barrier. All
  // plane resyncs land first so that every probe recheck afterwards reads a
  // fully synced mirror of the post-sweep configuration; the rechecks are
  // idempotent functions of that configuration, so the bitset, the rate
  // cache, and the recheck counters land exactly where the sequential
  // simulator's per-event updates put them.
  if (fast) {
    const obs::ScopedTimer recheck_span(recheck_timer_);
    const obs::ScopedSpan recheck_trace(trace_, "threads/recheck", time_, sweep);
    for (unsigned tid = 0; tid < pool_.size(); ++tid) {
      for (const FiredReaction& f : fired_[tid]) {
        resync_written(fast_->planes, config_, model_.reaction(f.type), f.site);
      }
    }
    for (unsigned tid = 0; tid < pool_.size(); ++tid) {
      for (const FiredReaction& f : fired_[tid]) {
        fast_after_fire(model_.reaction(f.type), f.site, /*resync=*/false);
      }
    }
  } else if (rate_cache_active()) {
    // Scalar threaded mode: only the enabled-rate cache needs the replay.
    const obs::ScopedTimer recheck_span(recheck_timer_);
    const obs::ScopedSpan recheck_trace(trace_, "threads/recheck", time_, sweep);
    for (unsigned tid = 0; tid < pool_.size(); ++tid) {
      for (const FiredReaction& f : fired_[tid]) {
        refresh_rate_cache(model_.reaction(f.type), f.site);
      }
    }
  }
}

}  // namespace casurf
