#include "parallel/parallel_pndca.hpp"

#include <algorithm>
#include <stdexcept>

#include "partition/conflict.hpp"

namespace casurf {

ParallelPndcaEngine::ParallelPndcaEngine(const ReactionModel& model,
                                         Configuration config,
                                         std::vector<Partition> partitions,
                                         std::uint64_t seed, unsigned num_threads,
                                         ChunkPolicy policy, TimeMode time_mode)
    : PndcaSimulator(model, std::move(config), std::move(partitions), seed, policy,
                     time_mode),
      pool_(num_threads) {
  // Thread safety rests entirely on the non-overlap rule; refuse partitions
  // that violate it rather than silently racing.
  const std::vector<Vec2> offsets = conflict_offsets(model);
  for (const Partition& p : this->partitions()) {
    if (!verify_partition(p, offsets)) {
      throw std::invalid_argument(
          "ParallelPndcaEngine: partition violates the non-overlap rule for "
          "this model; parallel chunk execution would race");
    }
  }
  deltas_.assign(pool_.size(), std::vector<std::int64_t>(model.species().size(), 0));
  tallies_.assign(pool_.size(), std::vector<std::uint64_t>(model.num_reactions(), 0));
  fired_.assign(pool_.size(), {});
}

void ParallelPndcaEngine::execute_chunk(std::uint64_t sweep,
                                        const std::vector<SiteIndex>& sites) {
  const bool track_fired = rate_cache_active();
  for (auto& d : deltas_) std::ranges::fill(d, 0);
  for (auto& t : tallies_) std::ranges::fill(t, 0);
  if (track_fired) {
    for (auto& f : fired_) f.clear();
  }

  pool_.parallel_for(sites.size(), [&](unsigned tid, std::size_t begin, std::size_t end) {
    std::int64_t* deltas = deltas_[tid].data();
    std::uint64_t* tally = tallies_[tid].data();
    for (std::size_t i = begin; i < end; ++i) {
      const std::int32_t fired = trial_at(sweep, sites[i], deltas);
      if (fired != kNoReaction) {
        ++tally[fired];
        if (track_fired) {
          fired_[tid].push_back({sites[i], static_cast<ReactionIndex>(fired)});
        }
      }
    }
  });

  // Deterministic merge: integer sums are order-independent.
  for (unsigned tid = 0; tid < pool_.size(); ++tid) {
    config_.apply_count_delta(deltas_[tid].data());
    for (ReactionIndex rt = 0; rt < model_.num_reactions(); ++rt) {
      const std::uint64_t n = tallies_[tid][rt];
      counters_.executed += n;
      counters_.executed_per_type[rt] += n;
    }
  }

  // Enabled-rate cache deltas merge at the same barrier. Rechecks run
  // against the post-sweep configuration and are idempotent, so the counts
  // land exactly where the sequential simulator's per-event updates do.
  if (track_fired) {
    for (unsigned tid = 0; tid < pool_.size(); ++tid) {
      for (const FiredReaction& f : fired_[tid]) {
        refresh_rate_cache(model_.reaction(f.type), f.site);
      }
    }
  }
}

}  // namespace casurf
