#pragma once

#include <memory>

#include "ca/pndca.hpp"
#include "parallel/thread_pool.hpp"

namespace casurf {

/// Threaded PNDCA: identical algorithm and — by construction — identical
/// trajectory to the sequential `PndcaSimulator` with the same seed, but
/// each chunk sweep is executed fork-join across a thread pool. This is
/// sound because the partition satisfies the paper's non-overlap rule
/// (same-chunk reactions touch disjoint sites) and because every
/// (sweep, site) trial draws from its own counter-RNG stream, so outcomes
/// do not depend on scheduling.
///
/// Shared-state discipline: threads write lattice sites directly (disjoint
/// by the non-overlap rule) but never the shared species counts; each
/// thread accumulates per-species deltas and per-type execution tallies,
/// merged after the join. Determinism is verified by the test suite
/// (parallel == sequential, any thread count).
class ParallelPndcaEngine final : public PndcaSimulator {
 public:
  ParallelPndcaEngine(const ReactionModel& model, Configuration config,
                      std::vector<Partition> partitions, std::uint64_t seed,
                      unsigned num_threads,
                      ChunkPolicy policy = ChunkPolicy::kRandomOrder,
                      TimeMode time_mode = TimeMode::kStochastic);

  [[nodiscard]] std::string name() const override { return "PNDCA(threads)"; }
  [[nodiscard]] unsigned num_threads() const { return pool_.size(); }

  /// Adds the threading probes on top of PNDCA's: per-worker busy and
  /// barrier-wait timers (threads/busy/worker<k>, threads/wait/worker<k> —
  /// the run report derives load imbalance from the busy set), the
  /// post-join merge (threads/merge), and the rate-cache replay
  /// (threads/recheck).
  void set_metrics(obs::MetricsRegistry* registry) override;

  /// Adds per-worker trace rings on top of PNDCA's ring 0: worker k writes
  /// its threads/busy spans into ring k+1 (single-writer, race-free); the
  /// coordinator appends the matching threads/wait span after the join and
  /// records threads/merge + threads/recheck on ring 0.
  void set_tracer(obs::Tracer* tracer) override;

  /// The threaded batched path runs the trial kernel per worker slice.
  /// Workers read the enabled bitset and bitplanes only (they reflect the
  /// pre-sweep state — exactly what the non-overlap rule licenses) and
  /// never write them: both pack many sites per word, so concurrent
  /// per-site updates would race. The coordinator replays the fired lists
  /// into them at the sweep barrier, the same pattern the rate cache uses.
  bool set_fast_path(bool on) override;

 protected:
  void execute_chunk(std::uint64_t sweep, ChunkId chunk,
                     const std::vector<SiteIndex>& sites) override;

 private:
  ThreadPool pool_;
  std::vector<std::vector<TrialHit>> fast_hits_;  // kernel output, per worker
  // Per-thread scratch, reused every sweep: [species deltas..., type tallies...]
  std::vector<std::vector<std::int64_t>> deltas_;
  std::vector<std::vector<std::uint64_t>> tallies_;
  // Under kRateWeighted, each worker also records its executed (site, type)
  // pairs; the enabled-rate cache deltas are folded in at the sweep barrier
  // in worker order — like the species deltas, this keeps the trajectory
  // bit-identical across thread counts.
  struct FiredReaction {
    SiteIndex site;
    ReactionIndex type;
  };
  std::vector<std::vector<FiredReaction>> fired_;
  // Threading probes; empty/null when no registry is attached. Workers
  // write only busy_scratch_ (their own slot); the coordinator folds the
  // scratch into the timers after the join.
  std::vector<obs::Timer*> busy_timers_;
  std::vector<obs::Timer*> wait_timers_;
  obs::Timer* merge_timer_ = nullptr;
  obs::Timer* recheck_timer_ = nullptr;
  std::vector<std::uint64_t> busy_scratch_;
  // Per-worker trace rings (empty when no tracer). Workers record their own
  // busy span and leave the busy-end timestamp in trace_busy_end_ (own slot
  // only); the coordinator turns it into the wait span after the join, so
  // ring writes stay single-writer.
  std::vector<obs::TraceRing*> worker_rings_;
  std::vector<std::uint64_t> trace_busy_end_;
};

}  // namespace casurf
