#include "parallel/simulated_machine.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

namespace casurf {

SpeedupPoint SimulatedMachine::predict(const Partition& partition, int processors,
                                       std::uint64_t steps) const {
  if (processors < 1) {
    throw std::invalid_argument("SimulatedMachine::predict: processors must be >= 1");
  }
  const double t_site = params_.t_site_seconds;
  const double sigma = params_.serial_fraction;
  const double p = processors;

  double t1_step = 0;
  double tp_step = 0;
  for (ChunkId c = 0; c < partition.num_chunks(); ++c) {
    const auto n = static_cast<double>(partition.chunk(c).size());
    t1_step += n * t_site;
    if (processors == 1) {
      tp_step += n * t_site;
    } else {
      const double per_proc = std::ceil(n / p);
      tp_step += per_proc * t_site * (1.0 - sigma) + n * t_site * sigma +
                 params_.barrier_alpha + params_.barrier_beta * std::log2(p);
    }
  }

  SpeedupPoint point;
  point.side = partition.lattice().width();
  point.processors = processors;
  point.t1_seconds = static_cast<double>(steps) * t1_step;
  point.tp_seconds = static_cast<double>(steps) * tp_step;
  return point;
}

MachineParams SimulatedMachine::calibrate(PndcaSimulator& sim, std::uint64_t steps,
                                          MachineParams base) {
  const std::uint64_t trials_before = sim.counters().trials;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < steps; ++i) sim.mc_step();
  const auto stop = std::chrono::steady_clock::now();
  const std::uint64_t trials = sim.counters().trials - trials_before;
  if (trials > 0) {
    base.t_site_seconds =
        std::chrono::duration<double>(stop - start).count() / static_cast<double>(trials);
  }
  return base;
}

}  // namespace casurf
