#pragma once

#include <cstdint>
#include <vector>

#include "ca/pndca.hpp"

namespace casurf {

/// Cost parameters of the simulated parallel machine used to reproduce the
/// paper's Fig 7 on a single-core host (see DESIGN.md, substitutions).
/// Values are representative of the early-2000s clusters the paper targets;
/// `t_site_seconds` should be calibrated to the real measured per-trial
/// cost so absolute times are honest for this host.
struct MachineParams {
  double t_site_seconds = 1e-7;      ///< one PNDCA site trial
  double serial_fraction = 0.02;     ///< schedule planning + time bookkeeping
  double barrier_alpha = 4e-5;       ///< per-sweep synchronization, fixed part
  double barrier_beta = 1.5e-5;      ///< per-sweep synchronization, * log2(p)
};

/// Predicted execution times for one parameter point of the speedup study.
struct SpeedupPoint {
  std::int32_t side = 0;  ///< lattice side length (the paper's N axis)
  int processors = 1;
  double t1_seconds = 0;  ///< T(1, N)
  double tp_seconds = 0;  ///< T(p, N)
  [[nodiscard]] double speedup() const { return t1_seconds / tp_seconds; }
};

/// Analytic PRAM-with-barriers model of the PNDCA chunk engine: each chunk
/// sweep distributes its sites over p processors (perfect static balance up
/// to the ceiling term, which is what the real engine does), pays one
/// barrier per sweep, and a serial fraction per trial for the parts the
/// algorithm keeps on one processor (chunk scheduling, time advance).
///
///   T(p) = steps * sum_chunks [ ceil(|c| / p) * t_site * (1 - sigma)
///                               + |c| * t_site * sigma
///                               + alpha + beta * log2(p) ]     (p > 1)
///   T(1) = steps * sum_chunks [ |c| * t_site ]                 (no barrier)
///
/// The chunk sizes come from the *actual* partition, so load imbalance of
/// irregular partitions is captured, not assumed away.
class SimulatedMachine {
 public:
  explicit SimulatedMachine(MachineParams params) : params_(params) {}

  [[nodiscard]] const MachineParams& params() const { return params_; }

  /// Predict T(1) and T(p) for running `steps` PNDCA steps over the given
  /// partition (all chunks once per step).
  [[nodiscard]] SpeedupPoint predict(const Partition& partition, int processors,
                                     std::uint64_t steps) const;

  /// Measure the real sequential per-trial cost of PNDCA on this host by
  /// running `steps` steps of the given simulator and return a parameter
  /// set with `t_site_seconds` replaced by the measurement.
  [[nodiscard]] static MachineParams calibrate(PndcaSimulator& sim,
                                               std::uint64_t steps,
                                               MachineParams base = {});

 private:
  MachineParams params_;
};

}  // namespace casurf
