#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/failpoint.hpp"

namespace casurf {

namespace {

// Fault injection (docs/ROBUSTNESS.md): a worker that dies mid-slice and a
// worker that straggles. Both are evaluated per executed slice.
constexpr fail::Failpoint kWorkerThrow{"thread_pool/worker_throw"};
constexpr fail::Failpoint kWorkerStall{"thread_pool/worker_stall"};

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_main(unsigned id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned, std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    unsigned active = 0;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      body = body_;
      n = job_n_;
      active = active_;
    }
    // Surplus worker for a small job: not counted in remaining_, nothing
    // to run — go straight back to waiting for the next generation.
    if (id >= active) continue;
    // Contiguous slice for this worker; n >= active, so begin < end always.
    const std::size_t per = n / active;
    const std::size_t extra = n % active;
    const std::size_t begin = id * per + std::min<std::size_t>(id, extra);
    const std::size_t end = begin + per + (id < extra ? 1 : 0);
    std::exception_ptr thrown;
    try {
      if (kWorkerStall.fire()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
      if (kWorkerThrow.fire()) {
        throw std::runtime_error(
            "thread_pool: injected worker failure "
            "(failpoint thread_pool/worker_throw)");
      }
      (*body)(id, begin, end);
    } catch (...) {
      thrown = std::current_exception();
    }
    bool last;
    {
      std::lock_guard lock(mutex_);
      if (thrown != nullptr && error_ == nullptr) error_ = thrown;
      last = --remaining_ == 0;
    }
    // Notify after unlocking so the coordinator wakes into a free mutex
    // instead of immediately blocking on the one we still hold.
    if (last) done_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(unsigned, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  // One submission owns the pool end to end (publish, barrier, error
  // collection); a concurrent caller blocks here until the barrier below
  // has completed and the job state is quiescent again.
  std::lock_guard submission(submit_mutex_);
  {
    std::lock_guard lock(mutex_);
    body_ = &body;
    job_n_ = n;
    active_ = static_cast<unsigned>(std::min<std::size_t>(n, workers_.size()));
    remaining_ = active_;
    ++generation_;
  }
  // Wake with the mutex released: workers woken by notify_all would
  // otherwise immediately block re-acquiring the lock we hold.
  wake_.notify_all();
  std::unique_lock lock(mutex_);
  done_.wait(lock, [&] { return remaining_ == 0; });
  body_ = nullptr;
  if (error_ != nullptr) {
    // Rethrow only after the barrier: every slice has finished, so the
    // caller's data structures are not being touched concurrently and the
    // pool is immediately reusable for the next parallel_for.
    const std::exception_ptr e = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace casurf
