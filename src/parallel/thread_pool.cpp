#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace casurf {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_main(unsigned id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned, std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      body = body_;
      n = job_n_;
    }
    // Contiguous slice for this worker.
    const std::size_t per = n / workers_.size();
    const std::size_t extra = n % workers_.size();
    const std::size_t begin = id * per + std::min<std::size_t>(id, extra);
    const std::size_t end = begin + per + (id < extra ? 1 : 0);
    if (begin < end) (*body)(id, begin, end);
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(unsigned, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  std::unique_lock lock(mutex_);
  body_ = &body;
  job_n_ = n;
  remaining_ = static_cast<unsigned>(workers_.size());
  ++generation_;
  wake_.notify_all();
  done_.wait(lock, [&] { return remaining_ == 0; });
  body_ = nullptr;
}

}  // namespace casurf
