#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace casurf {

/// A small fork-join worker pool for data-parallel chunk execution.
/// parallel_for splits an index range into one contiguous slice per worker
/// and blocks until every slice has run — the execution model of one PNDCA
/// chunk sweep. Workers persist across calls (no per-step thread spawn).
///
/// A body that throws does not take the process down: the first exception
/// is captured, the barrier still completes (every other slice finishes),
/// and parallel_for rethrows it on the calling thread — so a failing sweep
/// surfaces as an ordinary exception the run loop (or the supervisor's
/// worker process) can handle. The pool stays usable afterwards.
///
/// Deliberately minimal: static partitioning (PNDCA trials are uniform
/// cost), no work stealing, no task queue.
class ThreadPool {
 public:
  /// `threads` workers; 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Run body(worker_id, begin, end) for a balanced split of [0, n) across
  /// min(n, size()) workers; returns when every slice completed. When
  /// n < size() the surplus workers never run the body (no empty slices),
  /// so every invoked worker receives at least one index. Worker ids are
  /// 0..size()-1 and stable, so callers can index per-thread scratch
  /// buffers. The calling thread only coordinates; re-entrant calls from
  /// within a body are not allowed (a slice submitting to its own pool
  /// self-deadlocks on the submission lock). If any slice threw, the first
  /// captured exception is rethrown here after all slices finished.
  ///
  /// Thread safety: concurrent parallel_for calls from DIFFERENT threads
  /// are safe — submissions serialize on an internal mutex held for the
  /// whole fork-join, so the second job starts only after the first's
  /// barrier completes. A daemon multiplexing simulations should still
  /// give each concurrent run its own pool: serialization preserves
  /// correctness, not parallel throughput.
  void parallel_for(std::size_t n,
                    const std::function<void(unsigned, std::size_t, std::size_t)>& body);

 private:
  void worker_main(unsigned id);

  std::vector<std::thread> workers_;
  /// Serializes whole parallel_for invocations. Without it, two concurrent
  /// submitters clobber body_/job_n_/remaining_/generation_ and corrupt
  /// both jobs (workers run a mix of the two bodies against one barrier
  /// count). Always acquired before, and released after, mutex_.
  std::mutex submit_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(unsigned, std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t job_n_ = 0;
  std::uint64_t generation_ = 0;
  unsigned active_ = 0;  // workers participating in the current job
  unsigned remaining_ = 0;
  std::exception_ptr error_;  // first exception thrown by a slice this job
  bool stopping_ = false;
};

}  // namespace casurf
