#include "partition/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "partition/coloring.hpp"

namespace casurf {

double PartitionReport::granularity_speedup_bound(int processors) const {
  if (processors <= 1 || num_chunks == 0) return 1.0;
  // Per sweep, p processors need ceil(|c| / p) rounds of site trials.
  double serial = 0;
  double parallel = 0;
  // Only sizes matter; reconstruct from the stored aggregate is impossible,
  // so this bound uses max/mean (exact when all chunks are equal, which the
  // linear-form partitions are). Conservative otherwise.
  serial = static_cast<double>(total_sites);
  parallel = static_cast<double>(num_chunks) *
             std::ceil(static_cast<double>(max_chunk) / processors);
  return parallel > 0 ? serial / parallel : 1.0;
}

PartitionReport analyse_partition(const Partition& partition,
                                  const ReactionModel& model, ConflictPolicy policy) {
  PartitionReport report;
  report.num_chunks = partition.num_chunks();
  report.total_sites = partition.size();
  report.min_chunk = partition.size();
  for (ChunkId c = 0; c < partition.num_chunks(); ++c) {
    const std::size_t size = partition.chunk(c).size();
    report.min_chunk = std::min(report.min_chunk, size);
    report.max_chunk = std::max(report.max_chunk, size);
  }
  report.mean_chunk = static_cast<double>(partition.size()) /
                      static_cast<double>(partition.num_chunks());
  report.balance = static_cast<double>(report.max_chunk) / report.mean_chunk;

  const auto offsets = conflict_offsets(model, policy);
  report.valid = verify_partition(partition, offsets);
  const std::size_t bound = chunk_lower_bound(offsets);
  report.optimality_ratio = bound > 0 ? static_cast<double>(report.num_chunks) /
                                            static_cast<double>(bound)
                                      : 1.0;
  return report;
}

std::string to_string(const PartitionReport& r) {
  std::ostringstream os;
  os << "partition: " << r.num_chunks << " chunks over " << r.total_sites
     << " sites\n";
  os << "  chunk sizes: min " << r.min_chunk << ", max " << r.max_chunk << ", mean "
     << r.mean_chunk << " (balance " << r.balance << ")\n";
  os << "  non-overlap rule: " << (r.valid ? "satisfied" : "VIOLATED") << "\n";
  os << "  chunk count vs clique bound: " << r.optimality_ratio
     << (r.optimality_ratio <= 1.0 ? " (optimal)" : "") << "\n";
  os << "  granularity speedup bound: p=4 -> " << r.granularity_speedup_bound(4)
     << ", p=16 -> " << r.granularity_speedup_bound(16) << "\n";
  return os.str();
}

}  // namespace casurf
