#pragma once

#include <iosfwd>
#include <string>

#include "partition/conflict.hpp"
#include "partition/partition.hpp"

namespace casurf {

/// Quality metrics of a partition for a given model: the numbers that
/// decide how well the PNDCA chunk engine will scale on it.
struct PartitionReport {
  std::size_t num_chunks = 0;
  std::size_t min_chunk = 0;
  std::size_t max_chunk = 0;
  double mean_chunk = 0;

  /// max_chunk / mean_chunk: 1.0 = perfectly balanced. The per-sweep
  /// parallel time is governed by the largest chunk, so imbalance directly
  /// becomes lost speedup.
  double balance = 1.0;

  /// Whether the partition satisfies the model's non-overlap rule.
  bool valid = false;

  /// num_chunks / lower bound from the conflict clique: 1.0 = provably
  /// optimal chunk count.
  double optimality_ratio = 1.0;

  /// Upper bound on achievable speedup with p processors from chunk
  /// granularity alone (no communication costs): sum |c| / sum ceil(|c|/p).
  [[nodiscard]] double granularity_speedup_bound(int processors) const;

  std::size_t total_sites = 0;
};

/// Analyse `partition` against `model`'s conflict structure.
[[nodiscard]] PartitionReport analyse_partition(const Partition& partition,
                                                const ReactionModel& model,
                                                ConflictPolicy policy =
                                                    ConflictPolicy::kFullNeighborhood);

/// Human-readable multi-line rendering of the report.
[[nodiscard]] std::string to_string(const PartitionReport& report);

}  // namespace casurf
