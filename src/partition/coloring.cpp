#include "partition/coloring.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace casurf {

std::optional<LinearForm> find_linear_form(const Lattice& lattice,
                                           const std::vector<Vec2>& offsets,
                                           std::int32_t max_m) {
  if (offsets.empty()) return LinearForm{0, 0, 1};
  const auto mod = [](std::int32_t v, std::int32_t m) {
    const std::int32_t r = v % m;
    return r < 0 ? r + m : r;
  };
  for (std::int32_t m = 2; m <= max_m; ++m) {
    for (std::int32_t a = 0; a < m; ++a) {
      if (mod(a * lattice.width(), m) != 0) continue;
      for (std::int32_t b = 0; b < m; ++b) {
        if (mod(b * lattice.height(), m) != 0) continue;
        const bool ok = std::ranges::all_of(offsets, [&](Vec2 d) {
          return mod(a * d.x + b * d.y, m) != 0;
        });
        if (ok) return LinearForm{a, b, m};
      }
    }
  }
  return std::nullopt;
}

Partition greedy_coloring(const Lattice& lattice, const std::vector<Vec2>& offsets) {
  constexpr ChunkId kUnassigned = static_cast<ChunkId>(-1);
  std::vector<ChunkId> assign(lattice.size(), kUnassigned);
  std::vector<char> used;
  for (SiteIndex s = 0; s < lattice.size(); ++s) {
    used.assign(offsets.size() + 1, 0);
    for (const Vec2 d : offsets) {
      const ChunkId c = assign[lattice.neighbor(s, d)];
      if (c != kUnassigned && c < used.size()) used[c] = 1;
    }
    ChunkId pick = 0;
    while (pick < used.size() && used[pick]) ++pick;
    assign[s] = pick;
  }
  // Chunk ids are dense by construction of "smallest free", but a hole can
  // appear in pathological cases; compact defensively.
  std::vector<ChunkId> remap;
  {
    std::vector<char> seen(offsets.size() + 2, 0);
    for (const ChunkId c : assign) seen[c] = 1;
    remap.resize(seen.size(), 0);
    ChunkId next = 0;
    for (std::size_t c = 0; c < seen.size(); ++c) {
      if (seen[c]) remap[c] = next++;
    }
  }
  for (ChunkId& c : assign) c = remap[c];
  return Partition(lattice, std::move(assign));
}

Partition make_partition(const Lattice& lattice, const ReactionModel& model,
                         ConflictPolicy policy) {
  const std::vector<Vec2> offsets = conflict_offsets(model, policy);
  Partition greedy = greedy_coloring(lattice, offsets);
  if (!verify_partition(greedy, offsets)) {
    // Symmetric-offset greedy is valid by construction; reaching this means
    // the offset set was not symmetric (caller bypassed conflict_offsets).
    throw std::logic_error("make_partition: greedy coloring failed verification");
  }
  // Prefer the balanced translation-invariant coloring, but only when it is
  // actually at least as small: on awkward lattice sizes the periodic seam
  // can force the linear form to a huge modulus (e.g. m = 31 on a 31x1
  // lattice) that greedy beats easily.
  if (const auto form = find_linear_form(lattice, offsets)) {
    Partition p = Partition::linear_form(lattice, form->a, form->b, form->m);
    if (verify_partition(p, offsets) && p.num_chunks() <= greedy.num_chunks()) {
      return p;
    }
  }
  return greedy;
}

std::size_t chunk_lower_bound(const std::vector<Vec2>& offsets) {
  // Grow a clique around the origin: vertices are {0} union offsets, and
  // u, v are adjacent when u - v is itself a conflict offset.
  const std::unordered_set<Vec2> set(offsets.begin(), offsets.end());
  std::vector<Vec2> clique = {{0, 0}};
  for (const Vec2 cand : offsets) {
    const bool adjacent_to_all = std::ranges::all_of(clique, [&](Vec2 v) {
      return cand == v || set.contains(cand - v);
    });
    if (adjacent_to_all) clique.push_back(cand);
  }
  return clique.size();
}

}  // namespace casurf
