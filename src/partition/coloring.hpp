#pragma once

#include <optional>

#include "partition/conflict.hpp"
#include "partition/partition.hpp"

namespace casurf {

/// A translation-invariant lattice coloring chunk(x,y) = (a x + b y) mod m.
struct LinearForm {
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t m = 1;
};

/// Search for the linear form with the fewest chunks m that separates all
/// conflict offsets: (a dx + b dy) % m != 0 for every d in `offsets`, and
/// that is consistent with the periodic lattice (m | a*W and m | b*H).
/// For von Neumann 2-site patterns this finds m = 5 — the paper's optimal
/// five-chunk partition of Fig 4. Returns nullopt if no form with
/// m <= max_m exists (then fall back to greedy_coloring).
[[nodiscard]] std::optional<LinearForm> find_linear_form(
    const Lattice& lattice, const std::vector<Vec2>& offsets, std::int32_t max_m = 64);

/// Sequential greedy coloring of the conflict graph in raster order: each
/// site takes the smallest chunk id not used by any already-colored site at
/// a conflict offset. Because the offset set is symmetric, the second site
/// of every conflicting pair always sees the first, so the result is a
/// valid partition with at most (degree + 1) chunks for any lattice size.
[[nodiscard]] Partition greedy_coloring(const Lattice& lattice,
                                        const std::vector<Vec2>& offsets);

/// Best-effort minimal partition for a model: try the linear-form search,
/// fall back to greedy. The result always satisfies verify_partition.
[[nodiscard]] Partition make_partition(const Lattice& lattice, const ReactionModel& model,
                                       ConflictPolicy policy = ConflictPolicy::kFullNeighborhood);

/// Lower bound on the number of chunks: 1 + size of the largest clique
/// found among {0} union offsets by greedy clique growth (not necessarily
/// tight, but exact for the von Neumann case).
[[nodiscard]] std::size_t chunk_lower_bound(const std::vector<Vec2>& offsets);

}  // namespace casurf
