#include "partition/conflict.hpp"

#include <algorithm>
#include <unordered_set>

#include "partition/partition.hpp"

namespace casurf {

namespace {

/// Offsets a type writes (target != keep) and all offsets it touches.
struct TypeFootprint {
  std::vector<Vec2> reads;   // full neighborhood
  std::vector<Vec2> writes;  // written subset
};

TypeFootprint footprint(const ReactionType& rt) {
  TypeFootprint f;
  for (const Transform& t : rt.transforms()) {
    f.reads.push_back(t.offset);
    if (t.tg != kKeep) f.writes.push_back(t.offset);
  }
  return f;
}

void accumulate_differences(const std::vector<Vec2>& a, const std::vector<Vec2>& b,
                            std::unordered_set<Vec2>& out) {
  for (const Vec2 u : a) {
    for (const Vec2 v : b) {
      const Vec2 d = u - v;
      if (d != Vec2{0, 0}) {
        out.insert(d);
        out.insert(-d);
      }
    }
  }
}

std::vector<Vec2> sorted(std::unordered_set<Vec2> set) {
  std::vector<Vec2> v(set.begin(), set.end());
  std::ranges::sort(v);
  return v;
}

}  // namespace

std::vector<Vec2> conflict_offsets(const ReactionModel& model, ConflictPolicy policy) {
  std::vector<TypeFootprint> fps;
  fps.reserve(model.num_reactions());
  for (const ReactionType& rt : model.reactions()) fps.push_back(footprint(rt));

  std::unordered_set<Vec2> out;
  for (const TypeFootprint& a : fps) {
    for (const TypeFootprint& b : fps) {
      if (policy == ConflictPolicy::kFullNeighborhood) {
        accumulate_differences(a.reads, b.reads, out);
      } else {
        // write/write and write/read in both orders; the symmetrisation in
        // accumulate_differences makes one order sufficient per pair kind.
        accumulate_differences(a.writes, b.writes, out);
        accumulate_differences(a.writes, b.reads, out);
      }
    }
  }
  // A reaction also conflicts with a second start of *itself* at the same
  // anchor, but identical anchors are excluded by construction (a site is
  // selected at most once per chunk sweep), so d = 0 stays excluded.
  return sorted(std::move(out));
}

std::vector<Vec2> self_conflict_offsets(const ReactionType& rt, ConflictPolicy policy) {
  const TypeFootprint f = footprint(rt);
  std::unordered_set<Vec2> out;
  if (policy == ConflictPolicy::kFullNeighborhood) {
    accumulate_differences(f.reads, f.reads, out);
  } else {
    accumulate_differences(f.writes, f.writes, out);
    accumulate_differences(f.writes, f.reads, out);
  }
  return sorted(std::move(out));
}

bool verify_partition(const Partition& p, const std::vector<Vec2>& offsets) {
  const Lattice& lat = p.lattice();
  for (SiteIndex s = 0; s < lat.size(); ++s) {
    for (const Vec2 d : offsets) {
      const SiteIndex t = lat.neighbor(s, d);
      if (t != s && p.chunk_of(s) == p.chunk_of(t)) return false;
    }
  }
  return true;
}

}  // namespace casurf
