#pragma once

#include <vector>

#include "model/reaction_model.hpp"

namespace casurf {

/// Which pairs of simultaneous reactions count as conflicting.
enum class ConflictPolicy {
  /// The paper's non-overlap rule: any intersection of the two reactions'
  /// neighborhoods Nb(s) and Nb'(t) is a conflict, reads included.
  kFullNeighborhood,
  /// Relaxed engineering rule: only write/write and read/write overlaps
  /// conflict; two reactions merely *reading* a common site commute. Yields
  /// fewer conflict offsets, hence fewer (larger) chunks.
  kReadWrite,
};

/// The set of anchor differences d != 0 such that a reaction anchored at s
/// and a reaction anchored at s + d could touch a common site:
///   d in Nb_rt (Minkowski-)minus Nb_rt'  for some pair of types.
/// A partition is conflict-free exactly when no two same-chunk sites differ
/// by one of these offsets. The result is symmetric (d in D <=> -d in D).
[[nodiscard]] std::vector<Vec2> conflict_offsets(
    const ReactionModel& model,
    ConflictPolicy policy = ConflictPolicy::kFullNeighborhood);

/// Conflict offsets for a single reaction type against itself (used by the
/// type-partitioned algorithm, which executes one type at a time).
[[nodiscard]] std::vector<Vec2> self_conflict_offsets(
    const ReactionType& rt, ConflictPolicy policy = ConflictPolicy::kFullNeighborhood);

class Partition;

/// Check the paper's non-overlap restriction: for every site s and every
/// conflict offset d, s and s + d (periodic) lie in different chunks.
[[nodiscard]] bool verify_partition(const Partition& p,
                                    const std::vector<Vec2>& offsets);

}  // namespace casurf
