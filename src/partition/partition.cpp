#include "partition/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace casurf {

Partition::Partition(Lattice lattice, std::vector<ChunkId> chunk_of_site)
    : lattice_(lattice), chunk_of_site_(std::move(chunk_of_site)) {
  if (chunk_of_site_.size() != lattice_.size()) {
    throw std::invalid_argument("Partition: assignment size != lattice size");
  }
  ChunkId max_chunk = 0;
  for (const ChunkId c : chunk_of_site_) max_chunk = std::max(max_chunk, c);
  chunks_.resize(static_cast<std::size_t>(max_chunk) + 1);
  for (SiteIndex s = 0; s < chunk_of_site_.size(); ++s) {
    chunks_[chunk_of_site_[s]].push_back(s);
  }
  for (const auto& c : chunks_) {
    if (c.empty()) {
      throw std::invalid_argument("Partition: chunk ids must be dense (empty chunk)");
    }
  }
}

std::size_t Partition::max_chunk_size() const {
  std::size_t m = 0;
  for (const auto& c : chunks_) m = std::max(m, c.size());
  return m;
}

Partition Partition::single_chunk(Lattice lattice) {
  return Partition(lattice, std::vector<ChunkId>(lattice.size(), 0));
}

Partition Partition::singletons(Lattice lattice) {
  std::vector<ChunkId> assign(lattice.size());
  for (SiteIndex s = 0; s < lattice.size(); ++s) assign[s] = s;
  return Partition(lattice, std::move(assign));
}

Partition Partition::linear_form(Lattice lattice, std::int32_t a, std::int32_t b,
                                 std::int32_t m) {
  if (m <= 0) throw std::invalid_argument("Partition::linear_form: m must be positive");
  if ((a * lattice.width()) % m != 0 || (b * lattice.height()) % m != 0) {
    throw std::invalid_argument(
        "Partition::linear_form: form is inconsistent across the periodic seam "
        "(need a*W and b*H divisible by m)");
  }
  std::vector<ChunkId> assign(lattice.size());
  for (std::int32_t y = 0; y < lattice.height(); ++y) {
    for (std::int32_t x = 0; x < lattice.width(); ++x) {
      const std::int32_t v = (a * x + b * y) % m;
      assign[lattice.index({x, y})] = static_cast<ChunkId>(v < 0 ? v + m : v);
    }
  }
  return Partition(lattice, std::move(assign));
}

Partition Partition::blocks(Lattice lattice, std::int32_t bw, std::int32_t bh,
                            Vec2 shift) {
  if (bw <= 0 || bh <= 0 || lattice.width() % bw != 0 || lattice.height() % bh != 0) {
    throw std::invalid_argument("Partition::blocks: block size must divide lattice size");
  }
  const std::int32_t nx = lattice.width() / bw;
  std::vector<ChunkId> assign(lattice.size());
  for (std::int32_t y = 0; y < lattice.height(); ++y) {
    for (std::int32_t x = 0; x < lattice.width(); ++x) {
      // Shift the block origin, not the site: site p belongs to the block
      // containing p - shift on the unshifted grid.
      const Vec2 q = lattice.wrap(Vec2{x, y} - shift);
      const ChunkId c = static_cast<ChunkId>((q.y / bh) * nx + (q.x / bw));
      assign[lattice.index({x, y})] = c;
    }
  }
  return Partition(lattice, std::move(assign));
}

}  // namespace casurf
