#pragma once

#include <cstdint>
#include <vector>

#include "lattice/lattice.hpp"

namespace casurf {

using ChunkId = std::uint32_t;

/// A partition P of the lattice into disjoint chunks P_i covering Omega
/// (paper section 5). Unlike BCA blocks, a chunk may be an arbitrary —
/// typically scattered — set of sites; the whole point is to assign
/// *non-adjacent* sites to the same chunk so that reactions started inside
/// one chunk can never conflict and the chunk can be updated concurrently.
class Partition {
 public:
  /// `chunk_of_site[i]` is the chunk of site i; values must be a prefix
  /// 0..num_chunks-1 with every chunk non-empty.
  Partition(Lattice lattice, std::vector<ChunkId> chunk_of_site);

  [[nodiscard]] const Lattice& lattice() const { return lattice_; }
  [[nodiscard]] std::size_t num_chunks() const { return chunks_.size(); }
  [[nodiscard]] ChunkId chunk_of(SiteIndex s) const { return chunk_of_site_[s]; }
  [[nodiscard]] const std::vector<SiteIndex>& chunk(ChunkId c) const {
    return chunks_.at(c);
  }
  [[nodiscard]] SiteIndex size() const { return lattice_.size(); }

  /// Size of the largest chunk; bounds the per-step parallel width.
  [[nodiscard]] std::size_t max_chunk_size() const;

  /// |P| = 1: the whole lattice in one chunk (PNDCA degenerates to a
  /// sequential sweep; with random site selection, to RSM).
  static Partition single_chunk(Lattice lattice);

  /// |P| = N: one site per chunk (PNDCA with random chunk selection is
  /// exactly RSM — paper section 5).
  static Partition singletons(Lattice lattice);

  /// Linear-form coloring: chunk(x, y) = (a x + b y) mod m. The paper's
  /// optimal five-chunk von Neumann partition (Fig 4) is (x + 3y) mod 5.
  /// Requires a*width % m == 0 and b*height % m == 0 so the form is
  /// consistent across the periodic seam; throws otherwise.
  static Partition linear_form(Lattice lattice, std::int32_t a, std::int32_t b,
                               std::int32_t m);

  /// Rectangular blocks of `bw` x `bh` sites, origin shifted by `shift`
  /// (periodic): the classic Block-CA partition (paper Fig 3). Block sizes
  /// must divide the lattice dimensions.
  static Partition blocks(Lattice lattice, std::int32_t bw, std::int32_t bh,
                          Vec2 shift = {0, 0});

 private:
  Lattice lattice_;
  std::vector<ChunkId> chunk_of_site_;
  std::vector<std::vector<SiteIndex>> chunks_;
};

}  // namespace casurf
