#include "partition/type_partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "partition/coloring.hpp"

namespace casurf {

namespace {

/// Classify a reaction type's neighborhood, translated so its minimum
/// corner is the origin: single site, a pair along +x or +y, or "other".
enum class PatternKind { kSingle, kPairX, kPairY, kOther };

PatternKind classify(const ReactionType& rt, Vec2& bond_out) {
  std::vector<Vec2> nb = rt.neighborhood();
  Vec2 mn = nb.front();
  for (const Vec2 v : nb) mn = {std::min(mn.x, v.x), std::min(mn.y, v.y)};
  for (Vec2& v : nb) v = v - mn;
  std::ranges::sort(nb);

  if (nb.size() == 1) {
    bond_out = {0, 0};
    return PatternKind::kSingle;
  }
  if (nb.size() == 2 && nb[0] == Vec2{0, 0}) {
    if (nb[1] == Vec2{1, 0}) {
      bond_out = {1, 0};
      return PatternKind::kPairX;
    }
    if (nb[1] == Vec2{0, 1}) {
      bond_out = {0, 1};
      return PatternKind::kPairY;
    }
  }
  bond_out = {0, 0};
  return PatternKind::kOther;
}

/// Two-chunk checkerboard: chunk = (x + y) mod 2 — the partition of the
/// paper's Fig 6 (P0 = {0, 2, 4, 7, 9, ...}). Valid for any single 2-site
/// unit-bond type executed alone, in both bond directions. Falls back to
/// greedy when a lattice dimension is odd (checkerboard breaks across the
/// periodic seam there).
Partition pair_partition(const Lattice& lattice, Vec2 bond) {
  if (lattice.width() % 2 == 0 && lattice.height() % 2 == 0) {
    return Partition::linear_form(lattice, 1, 1, 2);
  }
  return greedy_coloring(lattice, {bond, -bond});
}

}  // namespace

std::vector<TypeSubset> make_type_partition(const Lattice& lattice,
                                            const ReactionModel& model) {
  if (model.num_reactions() == 0) {
    throw std::invalid_argument("make_type_partition: model has no reactions");
  }

  std::vector<TypeSubset> subsets;
  auto subset_for = [&](PatternKind kind, Vec2 bond,
                        const ReactionType& rt) -> TypeSubset* {
    // Pair types go to the subset with matching bond; "other" types each
    // get their own subset with a partition built from their own self-
    // conflict offsets.
    if (kind == PatternKind::kPairX || kind == PatternKind::kPairY) {
      for (TypeSubset& s : subsets) {
        if (s.bond == bond) return &s;
      }
      TypeSubset fresh(pair_partition(lattice, bond));
      fresh.bond = bond;
      subsets.push_back(std::move(fresh));
      return &subsets.back();
    }
    if (kind == PatternKind::kOther) {
      TypeSubset fresh(greedy_coloring(lattice, self_conflict_offsets(rt)));
      fresh.bond = {0, 0};
      subsets.push_back(std::move(fresh));
      return &subsets.back();
    }
    return nullptr;  // kSingle handled by caller
  };

  std::vector<ReactionIndex> singles;
  for (ReactionIndex i = 0; i < model.num_reactions(); ++i) {
    Vec2 bond;
    const PatternKind kind = classify(model.reaction(i), bond);
    if (kind == PatternKind::kSingle) {
      singles.push_back(i);
      continue;
    }
    TypeSubset* s = subset_for(kind, bond, model.reaction(i));
    s->types.push_back(i);
    s->total_rate += model.reaction(i).rate();
  }

  // Single-site types never conflict with anything in their own sweep; the
  // paper folds them into the first subset (Table II puts Rt_CO in T0).
  if (subsets.empty() && !singles.empty()) {
    subsets.emplace_back(Partition::single_chunk(lattice));
  }
  if (!singles.empty()) {
    for (const ReactionIndex i : singles) {
      subsets.front().types.push_back(i);
      subsets.front().total_rate += model.reaction(i).rate();
    }
  }
  return subsets;
}

}  // namespace casurf
