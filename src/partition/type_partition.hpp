#pragma once

#include <vector>

#include "model/reaction_model.hpp"
#include "partition/partition.hpp"

namespace casurf {

/// One subset T_j of the reaction-type partition (paper section 5,
/// "Another approach using partitions" / Table II): reaction types whose
/// patterns all fit — up to translation — into a single site pair
/// {s, s + bond}, plus single-site types. Because the type-partitioned
/// algorithm executes ONE type at a time across a chunk, the chunks only
/// need to separate a type from itself, which a two-chunk partition
/// achieves for any 2-site pattern.
struct TypeSubset {
  std::vector<ReactionIndex> types;
  double total_rate = 0;  ///< K_Tj, the subset's selection weight
  Vec2 bond{0, 0};        ///< characteristic pair direction ((0,0) for 1-site)
  Partition chunks;       ///< partition valid for every type in the subset

  TypeSubset(Partition p) : chunks(std::move(p)) {}
};

/// Split the model's reaction types into subsets T = sum_j T_j by bond
/// direction and build each subset's two-chunk (checkerboard-style)
/// partition. Single-site types are merged into the first subset (as the
/// paper does with Rt_CO in Table II); types whose pattern spans more than
/// one pair direction get a dedicated subset with a greedy partition.
/// Throws if the model has no reactions.
[[nodiscard]] std::vector<TypeSubset> make_type_partition(const Lattice& lattice,
                                                          const ReactionModel& model);

}  // namespace casurf
