#pragma once

#include <cstdint>

#include "rng/splitmix64.hpp"

namespace casurf {

/// Counter-based (stateless) random number generator in the spirit of
/// Philox/Threefry: the n-th value of stream (seed, key) is a pure function
/// of (seed, key, n). This is what makes the threaded PNDCA engine
/// *deterministic*: every (step, site) pair owns its own stream, so the
/// trajectory is identical no matter how chunk sites are scheduled across
/// threads. Two rounds of the SplitMix64 finalizer over the packed words
/// give full avalanche between counter bits and output bits.
class CounterRng {
 public:
  /// `key` identifies the logical stream (e.g. packed step/site);
  /// consecutive `next()` calls walk the stream.
  constexpr CounterRng(std::uint64_t seed, std::uint64_t key)
      : base_(mix64(seed ^ 0x6a09e667f3bcc909ULL) ^ mix64(key)), counter_(0) {}

  constexpr std::uint64_t next() {
    return mix64(base_ + 0x9e3779b97f4a7c15ULL * ++counter_);
  }

  /// Uniform double in [0, 1). 53 random mantissa bits.
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) by Lemire's multiply-shift reduction
  /// (negligible bias for bounds << 2^64; exactness is irrelevant for
  /// stochastic simulation and the speed matters on the trial hot path).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>(
        (static_cast<u128>(next()) * static_cast<u128>(bound)) >> 64);
  }

  /// Pack a (step, site, salt) triple into a stream key. The salt runs
  /// through the finalizer like the other words: the previous `salt << 1`
  /// dropped the top salt bit (salts s and s | 2^63 collided outright) and
  /// left salts s and s ^ b one pre-finalization bit apart.
  static constexpr std::uint64_t key(std::uint64_t step, std::uint64_t site,
                                     std::uint64_t salt = 0) {
    return mix64(step * 0xd1342543de82ef95ULL + site) ^ mix64(salt);
  }

 private:
  std::uint64_t base_;
  std::uint64_t counter_;
};

}  // namespace casurf
