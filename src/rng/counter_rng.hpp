#pragma once

#include <cstdint>
#include <stdexcept>

#include "rng/splitmix64.hpp"

namespace casurf {

/// Counter-based (stateless) random number generator in the spirit of
/// Philox/Threefry: the n-th value of stream (seed, key) is a pure function
/// of (seed, key, n). This is what makes the threaded PNDCA engine
/// *deterministic*: every (step, site) pair owns its own stream, so the
/// trajectory is identical no matter how chunk sites are scheduled across
/// threads. Two rounds of the SplitMix64 finalizer over the packed words
/// give full avalanche between counter bits and output bits.
class CounterRng {
 public:
  /// `key` identifies the logical stream (e.g. packed step/site);
  /// consecutive `next()` calls walk the stream.
  constexpr CounterRng(std::uint64_t seed, std::uint64_t key)
      : base_(stream_base(seed, key)), counter_(0) {}

  constexpr std::uint64_t next() { return nth(base_, ++counter_); }

  /// Uniform double in [0, 1). 53 random mantissa bits.
  constexpr double next_double() { return to_unit(next()); }

  /// Uniform integer in [0, bound) by Lemire's multiply-shift reduction
  /// (negligible bias for bounds << 2^64; exactness is irrelevant for
  /// stochastic simulation and the speed matters on the trial hot path).
  /// A zero bound has no value to return — the multiply-shift would
  /// silently yield 0, masking an empty candidate set — so it throws.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) {
      throw std::invalid_argument("CounterRng::next_below: bound must be positive");
    }
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>(
        (static_cast<u128>(next()) * static_cast<u128>(bound)) >> 64);
  }

  /// Pack a (step, site, salt) triple into a stream key. The salt runs
  /// through the finalizer like the other words: the previous `salt << 1`
  /// dropped the top salt bit (salts s and s | 2^63 collided outright) and
  /// left salts s and s ^ b one pre-finalization bit apart.
  static constexpr std::uint64_t key(std::uint64_t step, std::uint64_t site,
                                     std::uint64_t salt = 0) {
    return mix64(step_word(step) + site) ^ mix64(salt);
  }

  /// The pre-finalizer counter word of key(step, site): key(step, site) ==
  /// mix64(step_word(step) + site). Exposed so the batched trial kernel can
  /// hoist the per-sweep half out of its lane loop.
  static constexpr std::uint64_t step_word(std::uint64_t step) {
    return step * 0xd1342543de82ef95ULL;
  }

  /// The seed half of every stream base: stream_base(seed, key) ==
  /// seed_hash(seed) ^ mix64(key). Hoistable the same way.
  static constexpr std::uint64_t seed_hash(std::uint64_t seed) {
    return mix64(seed ^ 0x6a09e667f3bcc909ULL);
  }

  /// The stream base of (seed, key) — what the constructor computes. Exposed
  /// so the batched trial path can evaluate whole rows of streams in closed
  /// form, bit-identically to per-site CounterRng instances.
  static constexpr std::uint64_t stream_base(std::uint64_t seed, std::uint64_t key) {
    return seed_hash(seed) ^ mix64(key);
  }

  /// The n-th raw output (n = 1, 2, ...) of the stream with base `base`:
  /// the closed form of next().
  static constexpr std::uint64_t nth(std::uint64_t base, std::uint64_t n) {
    return mix64(base + 0x9e3779b97f4a7c15ULL * n);
  }

  /// Map a raw output to the uniform double in [0, 1) next_double() yields.
  static constexpr double to_unit(std::uint64_t r) {
    return static_cast<double>(r >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t base_;
  std::uint64_t counter_;
};

}  // namespace casurf
