#include "rng/distributions.hpp"

#include <stdexcept>

namespace casurf {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weight vector");
  double total = 0;
  for (const double w : weights) {
    if (w < 0 || !std::isfinite(w)) {
      throw std::invalid_argument("AliasTable: weights must be finite and non-negative");
    }
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("AliasTable: total weight must be positive");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's algorithm: split scaled probabilities into "small" (< 1) and
  // "large" (>= 1) work lists, pair them up.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are 1.0 up to rounding.
  for (const std::uint32_t l : large) prob_[l] = 1.0;
  for (const std::uint32_t s : small) prob_[s] = 1.0;
}

std::size_t sample_cumulative(const std::vector<double>& cumulative, double u) {
  if (cumulative.empty()) {
    throw std::invalid_argument("sample_cumulative: empty table");
  }
  const double target = u * cumulative.back();
  // Binary search for the first entry > target.
  std::size_t lo = 0, hi = cumulative.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cumulative[mid] > target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // When target reaches cumulative.back() (u == 1.0 from a caller, or
  // u * total rounding up for subnormal totals), no entry compares greater
  // and the search falls through to the last index regardless of its
  // weight. Walk back over duplicate cumulative values so a zero-weight
  // band is never selected.
  while (lo > 0 && cumulative[lo] == cumulative[lo - 1]) --lo;
  return lo;
}

}  // namespace casurf
