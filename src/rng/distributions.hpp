#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace casurf {

/// Uniform double in [0, 1) from any 64-bit URBG.
template <class Rng>
[[nodiscard]] double uniform01(Rng& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform integer in [0, bound) via Lemire reduction.
template <class Rng>
[[nodiscard]] std::uint64_t uniform_below(Rng& rng, std::uint64_t bound) {
  assert(bound > 0);
  __extension__ using u128 = unsigned __int128;
  return static_cast<std::uint64_t>(
      (static_cast<u128>(rng()) * static_cast<u128>(bound)) >> 64);
}

/// Sample from Exp(rate): the waiting time of a Poisson process, i.e. the
/// paper's "draw from 1 - exp(-N K t)" with rate = N K. Guards against
/// log(0) by nudging u away from 0.
[[nodiscard]] inline double exponential_from_u(double u, double rate) {
  assert(rate > 0);
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return -std::log(u) / rate;
}

template <class Rng>
[[nodiscard]] double exponential(Rng& rng, double rate) {
  return exponential_from_u(uniform01(rng), rate);
}

/// Walker/Vose alias table: O(1) sampling from a fixed discrete
/// distribution. Used to pick a reaction type with probability k_i / K on
/// every trial of RSM/NDCA/PNDCA — the single hottest distribution in the
/// library, so constant-time sampling is worth the setup cost.
class AliasTable {
 public:
  AliasTable() = default;
  explicit AliasTable(const std::vector<double>& weights);

  [[nodiscard]] std::size_t size() const { return prob_.size(); }
  [[nodiscard]] bool empty() const { return prob_.empty(); }

  /// Sample an index given two independent uniforms in [0,1).
  [[nodiscard]] std::size_t sample(double u_slot, double u_flip) const {
    const auto slot = static_cast<std::size_t>(u_slot * static_cast<double>(prob_.size()));
    const std::size_t i = slot < prob_.size() ? slot : prob_.size() - 1;
    return u_flip < prob_[i] ? i : alias_[i];
  }

  template <class Rng>
  [[nodiscard]] std::size_t sample(Rng& rng) const {
    const double a = uniform01(rng);
    const double b = uniform01(rng);
    return sample(a, b);
  }

  /// Raw table access for samplers that evaluate many draws at once (the
  /// batched trial kernel gathers straight from both arrays; its lane
  /// arithmetic reproduces sample() exactly).
  [[nodiscard]] const double* prob_data() const { return prob_.data(); }
  [[nodiscard]] const std::uint32_t* alias_data() const { return alias_.data(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Linear-scan sampling from cumulative weights; O(n) but allocation-free
/// and exact. Used where n is tiny or weights change every draw (e.g.
/// rate-weighted chunk selection).
[[nodiscard]] std::size_t sample_cumulative(const std::vector<double>& cumulative,
                                            double u);

}  // namespace casurf
