#pragma once

#include <cstdint>

namespace casurf {

/// SplitMix64 (Steele, Lea, Flood 2014). Used for seeding the main
/// generators and as the mixing function of the counter-based RNG. Passes
/// BigCrush when used as a generator; here it is mostly a 64-bit finalizer.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless SplitMix64 finalizer: a high-quality 64-bit mix of one word.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace casurf
