#include "rng/xoshiro.hpp"

#include <stdexcept>

#include "rng/splitmix64.hpp"

namespace casurf {

void Xoshiro256::set_state(const std::array<std::uint64_t, 4>& s) {
  if (s[0] == 0 && s[1] == 0 && s[2] == 0 && s[3] == 0) {
    throw std::invalid_argument("Xoshiro256::set_state: all-zero state");
  }
  s_ = s;
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // Seed the 256-bit state from SplitMix64 per the authors' recommendation;
  // guarantees a non-zero state for any seed.
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

void Xoshiro256::long_jump() {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
      0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace casurf
