#pragma once

#include <array>
#include <cstdint>

#include "core/state_io.hpp"

namespace casurf {

/// xoshiro256** 1.0 (Blackman & Vigna). The library's workhorse sequential
/// generator: fast, 256-bit state, equidistributed in all dimensions up to 4.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Advance 2^128 steps: partitions the period into non-overlapping
  /// subsequences for independent parallel streams.
  void long_jump();

  /// The raw 256-bit state, for checkpointing. set_state with an all-zero
  /// array is rejected (the zero state is a fixed point of the generator).
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const { return s_; }
  void set_state(const std::array<std::uint64_t, 4>& s);

  /// Checkpoint the generator mid-stream: restore resumes the identical
  /// output sequence.
  void save(StateWriter& w) const {
    for (const std::uint64_t word : s_) w.u64(word);
  }
  void restore(StateReader& r) {
    std::array<std::uint64_t, 4> s;
    for (std::uint64_t& word : s) word = r.u64();
    set_state(s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace casurf
