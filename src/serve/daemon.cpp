#include "serve/daemon.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "io/atomic_file.hpp"
#include "obs/json.hpp"
#include "serve/spawn.hpp"

namespace casurf::serve {
namespace {

namespace fs = std::filesystem;
using obs::json::Value;
using obs::json::Writer;

// casurf_run's exit taxonomy (apps/casurf_run.cpp keeps the master copy).
constexpr int kWorkerOk = 0;
constexpr int kWorkerUsage = 2;
constexpr int kWorkerRestoreFailed = 3;
constexpr int kWorkerExecFailed = 127;

/// Terminal-state marker inside a job directory: written once when the job
/// reaches done/failed/stopped, consumed by daemon-restart recovery (a job
/// dir without one was in flight when the daemon died → requeue + resume).
constexpr const char* kExitFile = "exit.json";

HttpResponse json_response(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

HttpResponse error_response(int status, std::string_view message) {
  std::string body = R"({"error":)";
  obs::json::append_quoted(body, message);
  body += '}';
  return json_response(status, std::move(body));
}

bool parse_id(std::string_view s, std::uint64_t& id) {
  if (s.empty() || s.size() > 18) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), id);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

/// The worker half of spawn_supervised: point stdout+stderr at the job
/// log and exec the runner. Runs between fork and _Exit in the child of a
/// multithreaded parent, so only async-signal-safe calls — every string
/// here was materialised before the fork.
int exec_worker(const char* log_path, char* const* argv) {
  const int log_fd = ::open(log_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd >= 0) {
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    if (log_fd > STDERR_FILENO) ::close(log_fd);
  }
  ::execv(argv[0], argv);
  const char* msg = "casurf_serve: exec failed: ";
  (void)!::write(STDERR_FILENO, msg, std::strlen(msg));
  const char* err = std::strerror(errno);
  (void)!::write(STDERR_FILENO, err, std::strlen(err));
  (void)!::write(STDERR_FILENO, "\n", 1);
  return kWorkerExecFailed;
}

std::string describe_exit(int code) {
  if (code >= 128) {
    return "worker ended by signal " + std::to_string(code - 128);
  }
  switch (code) {
    case kWorkerUsage:
      return "worker rejected the configuration (exit 2)";
    case kWorkerRestoreFailed:
      return "checkpoint restore failed (exit 3)";
    case kWorkerExecFailed:
      return "could not exec the worker binary (exit 127)";
    default:
      return "worker exited with code " + std::to_string(code);
  }
}

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kStopped:
      return "stopped";
  }
  return "unknown";
}

Daemon::Daemon(DaemonOptions opt) : opt_(std::move(opt)) {
  if (opt_.runner.empty()) {
    throw std::runtime_error("daemon: runner binary path is required");
  }
  if (opt_.slots == 0) opt_.slots = 1;
  fs::create_directories(opt_.data_dir);
  recover_jobs();
  runners_.reserve(opt_.slots);
  for (unsigned i = 0; i < opt_.slots; ++i) {
    runners_.emplace_back([this] { runner_main(); });
  }
  server_ = std::make_unique<HttpServer>(
      opt_.port, [this](const HttpRequest& req) { return handle(req); },
      opt_.http_threads);
}

Daemon::~Daemon() { stop(); }

std::uint16_t Daemon::port() const { return server_->port(); }

void Daemon::recover_jobs() {
  // A daemon restarted over an existing data_dir owes its tenants the jobs
  // that were live when it went down: any job-<id> directory without a
  // terminal-state marker is requeued, and the worker's --resume picks the
  // run up from its checkpoint chain exactly like casurf_run --supervise.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opt_.data_dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    std::uint64_t id = 0;
    if (name.rfind("job-", 0) != 0 || !parse_id(name.substr(4), id)) continue;
    if (fs::exists(entry.path() / kExitFile)) continue;
    JobSpec spec;
    try {
      spec = JobSpec::from_json(Value::parse(
          io::read_file((entry.path() / kJobSpecFile).string())));
    } catch (const std::exception&) {
      continue;  // half-created directory; nothing recoverable
    }
    auto job = std::make_unique<Job>();
    job->id = id;
    job->seq = next_seq_++;
    job->spec = std::move(spec);
    job->dir = entry.path().string();
    queue_.push_back(job.get());
    jobs_.emplace(id, std::move(job));
    next_id_ = std::max(next_id_, id + 1);
  }
}

void Daemon::runner_main() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      if (draining_) return;
      job = pop_best_locked();
      if (job == nullptr) continue;
      job->state = JobState::kRunning;
    }
    run_job(*job);
  }
}

Daemon::Job* Daemon::pop_best_locked() {
  if (queue_.empty()) return nullptr;
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const Job& a = *queue_[i];
    const Job& b = *queue_[best];
    if (a.spec.priority > b.spec.priority ||
        (a.spec.priority == b.spec.priority && a.seq < b.seq)) {
      best = i;
    }
  }
  Job* job = queue_[best];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  return job;
}

int Daemon::supervise_worker(Job& job) {
  // Resume whenever a checkpoint chain exists — first attempt included, so
  // a requeued (preempted) job and daemon-restart recovery both continue
  // where the worker last checkpointed rather than starting over.
  bool resume = fs::exists(fs::path(job.dir) / kJobCheckpoint);
  const std::string log_path = job.dir + "/" + kJobLog;

  for (;;) {
    const std::vector<std::string> args =
        job.spec.to_argv(opt_.runner, job.dir, resume);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);

    // spawn_supervised wants a slot it can publish the pid into from the
    // fork window; the daemon's readers only ever look at job.pid under
    // the mutex, so a local slot suffices and the window is closed by the
    // locked re-check right below.
    volatile pid_t slot = 0;
    const pid_t pid = spawn_supervised(
        &slot, nullptr,
        [&] { return exec_worker(log_path.c_str(), argv.data()); });
    if (pid < 0) {
      // fork can fail transiently (EAGAIN under load); that is a retryable
      // condition like a crash, not a verdict on the job.
      std::uint64_t restarts;
      {
        std::lock_guard lock(mutex_);
        job.error = "fork failed: " + std::string(std::strerror(errno));
        if (job.restarts >= job.spec.retries) return kWorkerExecFailed;
        restarts = ++job.restarts;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50) * restarts);
      continue;
    }
    {
      // Publish the worker pid, and close the race spawn_supervised cannot
      // see: a stop or drain that landed before this point found pid == 0
      // and had nobody to signal. Re-check now that the pid is real and
      // deliver the signal by hand.
      std::lock_guard lock(mutex_);
      job.error.clear();
      job.pid = pid;
      if (job.stop_requested || draining_) ::kill(pid, SIGTERM);
    }

    int status = 0;
    int wait_errno = 0;
    while (::waitpid(pid, &status, 0) < 0) {
      if (errno != EINTR) {
        wait_errno = errno;
        break;
      }
    }
    std::uint64_t restarts = 0;
    {
      std::unique_lock lock(mutex_);
      job.pid = 0;
      if (wait_errno != 0) {
        job.error = "waitpid failed: " + std::string(std::strerror(wait_errno));
        return kWorkerExecFailed;
      }
      const int code = WIFEXITED(status) ? WEXITSTATUS(status)
                       : WIFSIGNALED(status) ? 128 + WTERMSIG(status)
                                             : kWorkerExecFailed;

      if (code == kWorkerOk || code == kWorkerUsage ||
          code == kWorkerExecFailed) {
        return code;
      }
      if (job.stop_requested || draining_) return code;  // deliberate yield
      if (code == kWorkerRestoreFailed) {
        // Same policy as casurf_run --supervise: a checkpoint that cannot
        // be restored gets one clean restart from t = 0 instead of a
        // futile resume loop. If the fresh start also fails we give up.
        if (!resume) return code;
        resume = false;
        ++job.restarts;
        continue;
      }
      // Crash (signal, exit 1, injected die-at, unforwarded SIGTERM...):
      // restart from the checkpoint chain until the retry budget is spent.
      if (job.restarts >= job.spec.retries) return code;
      restarts = ++job.restarts;
    }
    resume = fs::exists(fs::path(job.dir) / kJobCheckpoint);
    std::this_thread::sleep_for(std::chrono::milliseconds(20) * restarts);
  }
}

void Daemon::run_job(Job& job) {
  const int code = supervise_worker(job);
  const bool yielded = [&] {
    std::lock_guard lock(mutex_);
    return job.stop_requested || draining_;
  }();
  if (code == kWorkerOk) {
    finish(job, JobState::kDone, code, {});
  } else if (yielded && code >= 128) {
    finish(job, JobState::kStopped, code, {});
  } else {
    std::string why = job.error.empty() ? describe_exit(code) : job.error;
    if (code != kWorkerUsage && code != kWorkerExecFailed &&
        job.restarts >= job.spec.retries) {
      why += " after " + std::to_string(job.restarts) + " restart(s)";
    }
    finish(job, JobState::kFailed, code, std::move(why));
  }
}

void Daemon::finish(Job& job, JobState state, int code, std::string error) {
  // The marker is written before the state flips so a daemon crash in
  // between errs toward requeueing a finished job (idempotent: the worker
  // resumes a complete checkpoint and exits immediately) rather than
  // losing an unfinished one.
  Writer w;
  w.begin_object();
  w.key("state"), w.string(to_string(state));
  w.key("exit_code"), w.i64(code);
  if (!error.empty()) w.key("error"), w.string(error);
  w.end_object();
  try {
    io::atomic_write_file(job.dir + "/" + kExitFile, std::move(w).str());
  } catch (const std::exception&) {
    // Recovery marker only; the in-memory state below stays authoritative.
  }
  std::lock_guard lock(mutex_);
  job.state = state;
  job.exit_code = code;
  job.error = std::move(error);
  job.stop_requested = false;
  if (state == JobState::kDone) ++done_;
  if (state == JobState::kFailed) ++failed_;
  if (state == JobState::kStopped) ++stopped_;
}

void Daemon::drain(int sig) {
  std::lock_guard lock(mutex_);
  draining_ = true;
  work_cv_.notify_all();
  for (const auto& [id, job] : jobs_) {
    const pid_t pid = job->pid;
    if (job->state == JobState::kRunning && pid > 0) ::kill(pid, sig);
  }
}

void Daemon::stop() {
  drain(SIGTERM);
  for (std::thread& t : runners_) {
    if (t.joinable()) t.join();
  }
  runners_.clear();
  if (server_) server_->stop();
}

// ── HTTP surface ────────────────────────────────────────────────────────

HttpResponse Daemon::handle(const HttpRequest& req) {
  const std::string_view target(req.target);
  if (target == "/healthz") {
    if (req.method != "GET") return error_response(405, "method not allowed");
    std::lock_guard lock(mutex_);
    return json_response(200, draining_ ? R"({"ok":true,"draining":true})"
                                        : R"({"ok":true})");
  }
  if (target == "/stats") {
    if (req.method != "GET") return error_response(405, "method not allowed");
    return stats();
  }
  if (target == "/jobs") {
    if (req.method == "POST") return submit(req);
    if (req.method == "GET") return list_jobs();
    return error_response(405, "method not allowed");
  }
  if (target.rfind("/jobs/", 0) == 0) {
    std::string_view rest = target.substr(6);
    std::string_view suffix;
    if (const auto slash = rest.find('/'); slash != std::string_view::npos) {
      suffix = rest.substr(slash + 1);
      rest = rest.substr(0, slash);
    }
    std::uint64_t id = 0;
    if (!parse_id(rest, id)) return error_response(404, "no such job");
    if (suffix.empty()) {
      if (req.method != "GET") return error_response(405, "method not allowed");
      std::lock_guard lock(mutex_);
      Job* job = find_job(id);
      if (job == nullptr) return error_response(404, "no such job");
      return job_status(*job);
    }
    if (suffix == "stop") {
      if (req.method != "POST") return error_response(405, "method not allowed");
      return job_stop(id);
    }
    if (suffix == "start") {
      if (req.method != "POST") return error_response(405, "method not allowed");
      return job_start(id);
    }
    if (req.method != "GET") return error_response(405, "method not allowed");
    if (suffix == "report") {
      return job_file(id, kJobReport, "application/json");
    }
    if (suffix == "heatmap") {
      return job_file(id, std::string(kJobHeatmapPrefix) + ".json",
                      "application/json");
    }
    if (suffix == "drift") return job_file(id, kJobDrift, "application/json");
    if (suffix == "csv") return job_file(id, kJobCsv, "text/csv");
    if (suffix == "log") return job_file(id, kJobLog, "text/plain");
    return error_response(404, "unknown job resource");
  }
  return error_response(404, "unknown path");
}

HttpResponse Daemon::submit(const HttpRequest& req) {
  JobSpec spec;
  try {
    spec = JobSpec::from_json(Value::parse(req.body));
  } catch (const std::exception& e) {
    return error_response(400, e.what());
  }
  spec.threads = std::min(spec.threads, std::max(1u, opt_.max_threads_per_job));

  Job* job = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (draining_) return error_response(503, "daemon is draining");
    if (queue_.size() >= opt_.queue_cap) {
      HttpResponse resp = error_response(429, "job queue is full");
      resp.extra_headers.emplace_back("Retry-After", "1");
      return resp;
    }
    if (tenant_live_locked(spec.tenant) >= opt_.tenant_cap) {
      return error_response(
          403, "tenant \"" + spec.tenant + "\" is at its job quota");
    }
    auto owned = std::make_unique<Job>();
    job = owned.get();
    job->id = next_id_++;
    job->seq = next_seq_++;
    job->spec = std::move(spec);
    job->dir = opt_.data_dir + "/job-" + std::to_string(job->id);
    jobs_.emplace(job->id, std::move(owned));
  }

  try {
    fs::create_directories(job->dir);
    if (!job->spec.model_text.empty()) {
      io::atomic_write_file(job->dir + "/" + kJobModelFile,
                            job->spec.model_text);
    }
    io::atomic_write_file(job->dir + "/" + kJobSpecFile, job->spec.to_json());
  } catch (const std::exception& e) {
    std::lock_guard lock(mutex_);
    job->state = JobState::kFailed;
    job->error = e.what();
    ++failed_;
    return error_response(500, job->error);
  }

  {
    std::lock_guard lock(mutex_);
    queue_.push_back(job);
    work_cv_.notify_one();
    return job_status(*job);
  }
}

HttpResponse Daemon::job_status(const Job& job) {
  Writer w;
  w.begin_object();
  w.key("id"), w.u64(job.id);
  w.key("tenant"), w.string(job.spec.tenant);
  w.key("state"), w.string(to_string(job.state));
  w.key("priority"), w.i64(job.spec.priority);
  w.key("restarts"), w.u64(job.restarts);
  if (job.state == JobState::kDone || job.state == JobState::kFailed ||
      job.state == JobState::kStopped) {
    w.key("exit_code"), w.i64(job.exit_code);
  }
  if (!job.error.empty()) w.key("error"), w.string(job.error);
  // Progress straight from the worker's latest report snapshot — written
  // atomically every sample, so a torn read is impossible and the daemon
  // never has to interrogate a live worker.
  try {
    const Value report =
        Value::parse(io::read_file(job.dir + "/" + kJobReport));
    if (const Value* counters = report.find("counters")) {
      const double t = counters->number_or("time", 0);
      w.key("time"), w.number(t);
      w.key("progress"),
          w.number(std::min(1.0, job.spec.t_end > 0 ? t / job.spec.t_end : 0));
    }
  } catch (const std::exception&) {
    // No report yet (job still queued, or worker hasn't sampled).
  }
  w.end_object();
  const int status = job.state == JobState::kQueued ? 202 : 200;
  return json_response(status, std::move(w).str());
}

HttpResponse Daemon::job_stop(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  Job* job = find_job(id);
  if (job == nullptr) return error_response(404, "no such job");
  switch (job->state) {
    case JobState::kQueued: {
      queue_.erase(std::find(queue_.begin(), queue_.end(), job));
      job->state = JobState::kStopped;
      job->exit_code = 0;
      ++stopped_;
      return job_status(*job);
    }
    case JobState::kRunning: {
      job->stop_requested = true;
      const pid_t pid = job->pid;
      // pid == 0 means the runner is between fork and publication; its
      // post-publication re-check sees stop_requested and signals then.
      if (pid > 0) ::kill(pid, SIGTERM);
      HttpResponse resp = job_status(*job);
      resp.status = 202;
      return resp;
    }
    default:
      return error_response(409, "job already finished");
  }
}

HttpResponse Daemon::job_start(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  if (draining_) return error_response(503, "daemon is draining");
  Job* job = find_job(id);
  if (job == nullptr) return error_response(404, "no such job");
  if (job->state != JobState::kStopped && job->state != JobState::kFailed) {
    return error_response(409, "job is not stopped or failed");
  }
  if (tenant_live_locked(job->spec.tenant) >= opt_.tenant_cap) {
    return error_response(
        403, "tenant \"" + job->spec.tenant + "\" is at its job quota");
  }
  if (queue_.size() >= opt_.queue_cap) {
    HttpResponse resp = error_response(429, "job queue is full");
    resp.extra_headers.emplace_back("Retry-After", "1");
    return resp;
  }
  if (job->state == JobState::kStopped) --stopped_;
  if (job->state == JobState::kFailed) --failed_;
  job->state = JobState::kQueued;
  job->stop_requested = false;
  job->restarts = 0;
  job->error.clear();
  job->seq = next_seq_++;
  std::error_code ec;
  fs::remove(fs::path(job->dir) / kExitFile, ec);
  queue_.push_back(job);
  work_cv_.notify_one();
  return job_status(*job);
}

HttpResponse Daemon::job_file(std::uint64_t id, const std::string& name,
                              const char* content_type) {
  std::string dir;
  {
    std::lock_guard lock(mutex_);
    Job* job = find_job(id);
    if (job == nullptr) return error_response(404, "no such job");
    dir = job->dir;
  }
  try {
    HttpResponse resp;
    resp.content_type = content_type;
    resp.body = io::read_file(dir + "/" + name);
    return resp;
  } catch (const std::exception&) {
    return error_response(404, "artifact not available yet");
  }
}

HttpResponse Daemon::list_jobs() {
  std::lock_guard lock(mutex_);
  Writer w;
  w.begin_array();
  for (const auto& [id, job] : jobs_) {
    w.begin_object();
    w.key("id"), w.u64(job->id);
    w.key("tenant"), w.string(job->spec.tenant);
    w.key("state"), w.string(to_string(job->state));
    w.key("priority"), w.i64(job->spec.priority);
    w.end_object();
  }
  w.end_array();
  return json_response(200, std::move(w).str());
}

HttpResponse Daemon::stats() {
  std::lock_guard lock(mutex_);
  std::size_t running = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kRunning) ++running;
  }
  Writer w;
  w.begin_object();
  w.key("queued"), w.u64(queue_.size());
  w.key("running"), w.u64(running);
  w.key("done"), w.u64(done_);
  w.key("failed"), w.u64(failed_);
  w.key("stopped"), w.u64(stopped_);
  w.key("slots"), w.u64(opt_.slots);
  w.key("queue_cap"), w.u64(opt_.queue_cap);
  w.key("draining"), w.boolean(draining_);
  w.end_object();
  return json_response(200, std::move(w).str());
}

Daemon::Job* Daemon::find_job(std::uint64_t id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

std::size_t Daemon::tenant_live_locked(const std::string& tenant) const {
  std::size_t live = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->spec.tenant != tenant) continue;
    if (job->state == JobState::kQueued || job->state == JobState::kRunning) {
      ++live;
    }
  }
  return live;
}

}  // namespace casurf::serve
