#include "serve/daemon.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "io/atomic_file.hpp"
#include "obs/json.hpp"
#include "obs/prom.hpp"
#include "serve/events.hpp"
#include "serve/spawn.hpp"
#include "util/log.hpp"

namespace casurf::serve {
namespace {

namespace fs = std::filesystem;
using obs::json::Value;
using obs::json::Writer;

// casurf_run's exit taxonomy (apps/casurf_run.cpp keeps the master copy).
constexpr int kWorkerOk = 0;
constexpr int kWorkerUsage = 2;
constexpr int kWorkerRestoreFailed = 3;
constexpr int kWorkerExecFailed = 127;

/// Terminal-state marker inside a job directory: written once when the job
/// reaches done/failed/stopped, consumed by daemon-restart recovery (a job
/// dir without one was in flight when the daemon died → requeue + resume).
constexpr const char* kExitFile = "exit.json";

/// Daemon-level lifecycle journal in data_dir (per-job journals live in
/// each job directory under kJobEvents).
constexpr const char* kDaemonEvents = "events.jsonl";

constexpr const char* kLogComponent = "serve.daemon";

HttpResponse json_response(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

HttpResponse error_response(int status, std::string_view message) {
  std::string body = R"({"error":)";
  obs::json::append_quoted(body, message);
  body += '}';
  return json_response(status, std::move(body));
}

bool parse_id(std::string_view s, std::uint64_t& id) {
  if (s.empty() || s.size() > 18) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), id);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

/// The worker half of spawn_supervised: point stdout+stderr at the job
/// log and exec the runner. Runs between fork and _Exit in the child of a
/// multithreaded parent, so only async-signal-safe calls — every string
/// here was materialised before the fork.
int exec_worker(const char* log_path, char* const* argv) {
  const int log_fd = ::open(log_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd >= 0) {
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    if (log_fd > STDERR_FILENO) ::close(log_fd);
  }
  ::execv(argv[0], argv);
  const char* msg = "casurf_serve: exec failed: ";
  (void)!::write(STDERR_FILENO, msg, std::strlen(msg));
  const char* err = std::strerror(errno);
  (void)!::write(STDERR_FILENO, err, std::strlen(err));
  (void)!::write(STDERR_FILENO, "\n", 1);
  return kWorkerExecFailed;
}

std::string describe_exit(int code) {
  if (code >= 128) {
    return "worker ended by signal " + std::to_string(code - 128);
  }
  switch (code) {
    case kWorkerUsage:
      return "worker rejected the configuration (exit 2)";
    case kWorkerRestoreFailed:
      return "checkpoint restore failed (exit 3)";
    case kWorkerExecFailed:
      return "could not exec the worker binary (exit 127)";
    default:
      return "worker exited with code " + std::to_string(code);
  }
}

/// Sum RSS and CPU of one live worker from /proc/<pid> (Linux only; any
/// parse trouble — racing exit included — just skips the worker).
bool sample_proc(pid_t pid, double& rss_bytes, double& cpu_seconds) {
  try {
    const std::string base = "/proc/" + std::to_string(pid);
    const std::string statm = io::read_file(base + "/statm");
    const std::size_t sp = statm.find(' ');
    if (sp == std::string::npos) return false;
    char* end = nullptr;
    const double pages = std::strtod(statm.c_str() + sp + 1, &end);
    if (end == statm.c_str() + sp + 1) return false;
    rss_bytes = pages * static_cast<double>(::sysconf(_SC_PAGESIZE));

    // stat: fields after the last ')' start at state (field 3); utime and
    // stime are overall fields 14 and 15.
    const std::string stat = io::read_file(base + "/stat");
    const std::size_t paren = stat.rfind(')');
    if (paren == std::string::npos) return false;
    double utime = 0, stime = 0;
    int field = 2;  // ')' ends field 2 (comm)
    const char* p = stat.c_str() + paren + 1;
    while (*p != '\0' && field < 15) {
      while (*p == ' ') ++p;
      const char* tok = p;
      while (*p != '\0' && *p != ' ') ++p;
      ++field;
      if (field == 14) utime = std::strtod(tok, nullptr);
      if (field == 15) stime = std::strtod(tok, nullptr);
    }
    if (field < 15) return false;
    cpu_seconds = (utime + stime) / static_cast<double>(::sysconf(_SC_CLK_TCK));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kStopped:
      return "stopped";
  }
  return "unknown";
}

Daemon::Daemon(DaemonOptions opt) : opt_(std::move(opt)) {
  if (opt_.runner.empty()) {
    throw std::runtime_error("daemon: runner binary path is required");
  }
  if (opt_.slots == 0) opt_.slots = 1;
  fs::create_directories(opt_.data_dir);
  journal_path_ = opt_.data_dir + "/" + kDaemonEvents;
#ifdef CASURF_NO_FAILPOINTS
  constexpr const char* kFailpointsState = "off";
#else
  constexpr const char* kFailpointsState = "on";
#endif
#ifdef CASURF_NO_FASTPATH
  constexpr const char* kFastpathState = "off";
#else
  constexpr const char* kFastpathState = "on";
#endif
  registry_
      .gauge(obs::prom::series("casurf_build_info",
                               {{"metrics", "on"},
                                {"failpoints", kFailpointsState},
                                {"fastpath", kFastpathState}}))
      .set(1);
  const std::size_t recovered = recover_jobs();
  runners_.reserve(opt_.slots);
  for (unsigned i = 0; i < opt_.slots; ++i) {
    // Lane names are set before the runner threads exist, so the tracer's
    // name map is never written concurrently with a runner's recording.
    trace_.set_thread_name(i, "runner" + std::to_string(i));
    runners_.emplace_back([this, i] { runner_main(i); });
  }
  server_ = std::make_unique<HttpServer>(
      opt_.port, [this](const HttpRequest& req) { return handle(req); },
      opt_.http_threads);
  append_event(journal_path_, "daemon_started", [&](Writer& w) {
    w.key("slots"), w.u64(opt_.slots);
    w.key("port"), w.u64(server_->port());
    w.key("recovered"), w.u64(recovered);
  });
  log::Event(log::Level::kInfo, kLogComponent, "daemon_started")
      .u64("slots", opt_.slots)
      .u64("port", server_->port())
      .u64("recovered", recovered)
      .str("data_dir", opt_.data_dir);
}

Daemon::~Daemon() { stop(); }

std::uint16_t Daemon::port() const { return server_->port(); }

std::size_t Daemon::recover_jobs() {
  // A daemon restarted over an existing data_dir owes its tenants the jobs
  // that were live when it went down: any job-<id> directory without a
  // terminal-state marker is requeued, and the worker's --resume picks the
  // run up from its checkpoint chain exactly like casurf_run --supervise.
  std::size_t recovered = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opt_.data_dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    std::uint64_t id = 0;
    if (name.rfind("job-", 0) != 0 || !parse_id(name.substr(4), id)) continue;
    if (fs::exists(entry.path() / kExitFile)) continue;
    JobSpec spec;
    try {
      spec = JobSpec::from_json(Value::parse(
          io::read_file((entry.path() / kJobSpecFile).string())));
    } catch (const std::exception&) {
      continue;  // half-created directory; nothing recoverable
    }
    auto job = std::make_unique<Job>();
    job->id = id;
    job->seq = next_seq_++;
    job->spec = std::move(spec);
    job->dir = entry.path().string();
    job->submit_ns = obs::now_ns();
    queue_.push_back(job.get());
    registry_
        .counter(obs::prom::series("casurf_job_restarts_total",
                                   {{"cause", "daemon_restart"}}))
        .add();
    journal(*job, "restarted",
            [](Writer& w) { w.key("cause"), w.string("daemon_restart"); });
    log::Event(log::Level::kInfo, kLogComponent, "job_recovered")
        .u64("job", job->id)
        .str("tenant", job->spec.tenant);
    jobs_.emplace(id, std::move(job));
    next_id_ = std::max(next_id_, id + 1);
    ++recovered;
  }
  return recovered;
}

void Daemon::runner_main(unsigned runner) {
  obs::TraceRing& lane = trace_.ring(runner);
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      if (draining_) return;
      job = pop_best_locked();
      if (job == nullptr) continue;
      job->state = JobState::kRunning;
      job->sched_ns = obs::now_ns();
      if (job->submit_ns != 0 && job->sched_ns >= job->submit_ns) {
        registry_.histogram("casurf_job_queue_wait_ns")
            .record(job->sched_ns - job->submit_ns);
      }
    }
    journal(*job, "scheduled");
    log::Event(log::Level::kDebug, kLogComponent, "job_scheduled")
        .u64("job", job->id)
        .i64("priority", job->spec.priority);
    {
      // One span per supervised worker on this runner's lane; the job id
      // rides in args.step, matching the worker's "job-<id>" trace id.
      obs::ScopedSpan span(&lane, "serve/job", 0.0, job->id);
      run_job(*job);
    }
  }
}

Daemon::Job* Daemon::pop_best_locked() {
  if (queue_.empty()) return nullptr;
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const Job& a = *queue_[i];
    const Job& b = *queue_[best];
    if (a.spec.priority > b.spec.priority ||
        (a.spec.priority == b.spec.priority && a.seq < b.seq)) {
      best = i;
    }
  }
  Job* job = queue_[best];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  return job;
}

unsigned Daemon::retry_after_locked() const {
  // A draining daemon never accepts again: tell clients to go far away.
  // Otherwise scale the advertised backoff with how many scheduling turns
  // the backlog represents.
  if (draining_) return 30;
  const std::size_t turns = queue_.size() / std::max(1u, opt_.slots);
  return static_cast<unsigned>(std::clamp<std::size_t>(turns, 1, 30));
}

void Daemon::rotate_worker_log(const Job& job) {
  // Only called by the runner that owns the job, between worker spawns, so
  // no live writer holds the file. A worker that outgrew the cap mid-run
  // keeps appending to its (renamed) fd — rotation is about bounding what
  // the NEXT attempt inherits and what GET /jobs/<id>/log serves.
  if (opt_.worker_log_cap == 0) return;
  std::error_code ec;
  const fs::path log_path = fs::path(job.dir) / kJobLog;
  const std::uintmax_t size = fs::file_size(log_path, ec);
  if (ec || size <= opt_.worker_log_cap) return;
  fs::rename(log_path, fs::path(job.dir) / kJobLogRotated, ec);
  if (ec) return;
  registry_.counter("casurf_job_log_rotations_total").add();
  journal(job, "log_rotated", [&](Writer& w) { w.key("bytes"), w.u64(size); });
  log::Event(log::Level::kDebug, kLogComponent, "worker_log_rotated")
      .u64("job", job.id)
      .u64("bytes", size);
}

int Daemon::supervise_worker(Job& job) {
  // Resume whenever a checkpoint chain exists — first attempt included, so
  // a requeued (preempted) job and daemon-restart recovery both continue
  // where the worker last checkpointed rather than starting over.
  bool resume = fs::exists(fs::path(job.dir) / kJobCheckpoint);
  const std::string log_path = job.dir + "/" + kJobLog;
  bool announced_running = false;

  for (;;) {
    rotate_worker_log(job);
    const std::vector<std::string> args =
        job.spec.to_argv(opt_.runner, job.dir, resume);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);

    // spawn_supervised wants a slot it can publish the pid into from the
    // fork window; the daemon's readers only ever look at job.pid under
    // the mutex, so a local slot suffices and the window is closed by the
    // locked re-check right below.
    volatile pid_t slot = 0;
    const pid_t pid = spawn_supervised(
        &slot, nullptr,
        [&] { return exec_worker(log_path.c_str(), argv.data()); });
    if (pid < 0) {
      // fork can fail transiently (EAGAIN under load); that is a retryable
      // condition like a crash, not a verdict on the job.
      std::uint64_t restarts;
      {
        std::lock_guard lock(mutex_);
        job.error = "fork failed: " + std::string(std::strerror(errno));
        if (job.restarts >= job.spec.retries) {
          log::Event(log::Level::kError, kLogComponent, "restart_policy")
              .u64("job", job.id)
              .str("verdict", "give_up")
              .str("cause", "fork_failed");
          return kWorkerExecFailed;
        }
        restarts = ++job.restarts;
      }
      registry_
          .counter(obs::prom::series("casurf_job_restarts_total",
                                     {{"cause", "fork_failed"}}))
          .add();
      journal(job, "restarted", [&](Writer& w) {
        w.key("cause"), w.string("fork_failed");
        w.key("attempt"), w.u64(restarts);
      });
      static log::RateLimit fork_limit(1.0, 5.0);
      log::Event(log::Level::kWarn, kLogComponent, "restart_policy",
                 &fork_limit)
          .u64("job", job.id)
          .str("verdict", "retry")
          .str("cause", "fork_failed")
          .u64("attempt", restarts);
      std::this_thread::sleep_for(std::chrono::milliseconds(50) * restarts);
      continue;
    }
    std::uint64_t attempt;
    {
      // Publish the worker pid, and close the race spawn_supervised cannot
      // see: a stop or drain that landed before this point found pid == 0
      // and had nobody to signal. Re-check now that the pid is real and
      // deliver the signal by hand.
      std::lock_guard lock(mutex_);
      job.error.clear();
      job.pid = pid;
      attempt = job.restarts;
      if (job.stop_requested || draining_) ::kill(pid, SIGTERM);
    }
    journal(job, "spawned", [&](Writer& w) {
      w.key("pid"), w.i64(pid);
      w.key("attempt"), w.u64(attempt);
    });
    if (!announced_running) {
      announced_running = true;
      journal(job, "running");
    }
    log::Event(log::Level::kDebug, kLogComponent, "worker_spawned")
        .u64("job", job.id)
        .i64("pid", pid)
        .u64("attempt", attempt);

    int status = 0;
    int wait_errno = 0;
    while (::waitpid(pid, &status, 0) < 0) {
      if (errno != EINTR) {
        wait_errno = errno;
        break;
      }
    }
    std::uint64_t restarts = 0;
    const char* restart_cause = nullptr;
    int exit_code = 0;
    {
      std::unique_lock lock(mutex_);
      job.pid = 0;
      if (wait_errno != 0) {
        job.error = "waitpid failed: " + std::string(std::strerror(wait_errno));
        return kWorkerExecFailed;
      }
      const int code = WIFEXITED(status) ? WEXITSTATUS(status)
                       : WIFSIGNALED(status) ? 128 + WTERMSIG(status)
                                             : kWorkerExecFailed;
      exit_code = code;

      if (code == kWorkerOk || code == kWorkerUsage ||
          code == kWorkerExecFailed) {
        return code;
      }
      if (job.stop_requested || draining_) {
        log::Event(log::Level::kInfo, kLogComponent, "restart_policy")
            .u64("job", job.id)
            .str("verdict", "yield")
            .i64("exit", code);
        return code;  // deliberate yield
      }
      if (code == kWorkerRestoreFailed) {
        // Same policy as casurf_run --supervise: a checkpoint that cannot
        // be restored gets one clean restart from t = 0 instead of a
        // futile resume loop. If the fresh start also fails we give up.
        if (!resume) {
          log::Event(log::Level::kWarn, kLogComponent, "restart_policy")
              .u64("job", job.id)
              .str("verdict", "give_up")
              .str("cause", "restore_failed");
          return code;
        }
        resume = false;
        restarts = ++job.restarts;
        restart_cause = "restore_failed";
      } else {
        // Crash (signal, exit 1, injected die-at, unforwarded SIGTERM...):
        // restart from the checkpoint chain until the retry budget is
        // spent.
        if (job.restarts >= job.spec.retries) {
          log::Event(log::Level::kWarn, kLogComponent, "restart_policy")
              .u64("job", job.id)
              .str("verdict", "give_up")
              .str("cause", "retries_exhausted")
              .i64("exit", code);
          return code;
        }
        restarts = ++job.restarts;
        restart_cause = "crash";
      }
    }
    registry_
        .counter(obs::prom::series("casurf_job_restarts_total",
                                   {{"cause", restart_cause}}))
        .add();
    journal(job, "restarted", [&](Writer& w) {
      w.key("cause"), w.string(restart_cause);
      w.key("exit"), w.i64(exit_code);
      w.key("attempt"), w.u64(restarts);
    });
    log::Event(log::Level::kWarn, kLogComponent, "restart_policy")
        .u64("job", job.id)
        .str("verdict",
             restart_cause == std::string_view("restore_failed")
                 ? "clean_restart"
                 : "resume")
        .str("cause", restart_cause)
        .i64("exit", exit_code)
        .u64("attempt", restarts);
    if (restart_cause != std::string_view("restore_failed")) {
      resume = fs::exists(fs::path(job.dir) / kJobCheckpoint);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20) * restarts);
  }
}

void Daemon::run_job(Job& job) {
  const int code = supervise_worker(job);
  rotate_worker_log(job);
  harvest_report(job);
  const bool yielded = [&] {
    std::lock_guard lock(mutex_);
    return job.stop_requested || draining_;
  }();
  if (code == kWorkerOk) {
    finish(job, JobState::kDone, code, {});
  } else if (yielded && code >= 128) {
    finish(job, JobState::kStopped, code, {});
  } else {
    std::string why = job.error.empty() ? describe_exit(code) : job.error;
    if (code != kWorkerUsage && code != kWorkerExecFailed &&
        job.restarts >= job.spec.retries) {
      why += " after " + std::to_string(job.restarts) + " restart(s)";
    }
    finish(job, JobState::kFailed, code, std::move(why));
  }
}

void Daemon::harvest_report(Job& job) {
  // Roll the worker's final run-report up into fleet-level series. Reports
  // are trajectory-cumulative (a resumed worker continues its counters),
  // and a requeued job re-finishes with a newer report — so only the delta
  // beyond what this job already contributed is added.
  std::uint64_t trials = 0, executed = 0, alarms = 0, restarts = 0;
  std::uint64_t comm_messages = 0, comm_bytes = 0, trace_drops = 0;
  double wall = 0;
  try {
    const Value report = Value::parse(io::read_file(job.dir + "/" + kJobReport));
    if (const Value* counters = report.find("counters")) {
      trials = static_cast<std::uint64_t>(counters->number_or("trials", 0));
      executed = static_cast<std::uint64_t>(counters->number_or("executed", 0));
    }
    if (const Value* run = report.find("run")) {
      wall = run->number_or("wall_seconds", 0);
      trace_drops = static_cast<std::uint64_t>(run->number_or("trace_drops", 0));
    }
    if (const Value* comm = report.find("comm"); comm && comm->is_object()) {
      comm_messages = static_cast<std::uint64_t>(comm->number_or("messages", 0));
      comm_bytes = static_cast<std::uint64_t>(comm->number_or("bytes", 0));
    }
    if (const Value* drift = report.find("drift"); drift && drift->is_object()) {
      if (const Value* list = drift->find("alarms")) {
        alarms = list->items().size();
      }
    }
    if (const Value* rec = report.find("recovery"); rec && rec->is_object()) {
      restarts = static_cast<std::uint64_t>(rec->number_or("restarts", 0));
    }
  } catch (const std::exception&) {
    return;  // no report yet (never sampled, or usage failure)
  }
  const auto delta = [](std::uint64_t now, std::uint64_t& harvested) {
    const std::uint64_t d = now > harvested ? now - harvested : 0;
    harvested = std::max(harvested, now);
    return d;
  };
  std::uint64_t d_trials, d_executed, d_alarms, d_restarts;
  std::uint64_t d_comm_messages, d_comm_bytes, d_trace_drops;
  {
    std::lock_guard lock(mutex_);
    d_trials = delta(trials, job.harvested_trials);
    d_executed = delta(executed, job.harvested_executed);
    d_alarms = delta(alarms, job.harvested_alarms);
    d_restarts = delta(restarts, job.harvested_restarts);
    d_comm_messages = delta(comm_messages, job.harvested_comm_messages);
    d_comm_bytes = delta(comm_bytes, job.harvested_comm_bytes);
    d_trace_drops = delta(trace_drops, job.harvested_trace_drops);
  }
  if (d_trials != 0) registry_.counter("casurf_worker_trials_total").add(d_trials);
  if (d_executed != 0) {
    registry_.counter("casurf_worker_reactions_total").add(d_executed);
  }
  if (d_alarms != 0) {
    registry_.counter("casurf_worker_drift_alarms_total").add(d_alarms);
  }
  if (d_restarts != 0) {
    registry_
        .counter(obs::prom::series("casurf_worker_recoveries_total",
                                   {{"scope", "worker"}}))
        .add(d_restarts);
  }
  if (d_comm_messages != 0) {
    registry_.counter("casurf_worker_comm_messages_total").add(d_comm_messages);
  }
  if (d_comm_bytes != 0) {
    registry_.counter("casurf_worker_comm_bytes_total").add(d_comm_bytes);
  }
  if (d_trace_drops != 0) {
    registry_.counter("casurf_worker_trace_drops_total").add(d_trace_drops);
  }
  if (wall > 0 && trials > 0) {
    registry_.gauge("casurf_job_last_trials_per_second")
        .set(static_cast<double>(trials) / wall);
  }
}

void Daemon::finish(Job& job, JobState state, int code, std::string error) {
  // The marker is written before the state flips so a daemon crash in
  // between errs toward requeueing a finished job (idempotent: the worker
  // resumes a complete checkpoint and exits immediately) rather than
  // losing an unfinished one.
  Writer w;
  w.begin_object();
  w.key("state"), w.string(to_string(state));
  w.key("exit_code"), w.i64(code);
  if (!error.empty()) w.key("error"), w.string(error);
  w.end_object();
  try {
    io::atomic_write_file(job.dir + "/" + kExitFile, std::move(w).str());
  } catch (const std::exception&) {
    // Recovery marker only; the in-memory state below stays authoritative.
  }
  const std::string why = error;  // journal copy; job.error is moved below
  const char* event = state == JobState::kDone     ? "finished"
                      : state == JobState::kFailed ? "failed"
                                                   : "preempted";
  std::uint64_t duration_ns = 0;
  {
    std::lock_guard lock(mutex_);
    job.state = state;
    job.exit_code = code;
    job.error = std::move(error);
    job.stop_requested = false;
    if (state == JobState::kDone) ++done_;
    if (state == JobState::kFailed) ++failed_;
    if (state == JobState::kStopped) ++stopped_;
    if (job.sched_ns != 0) duration_ns = obs::now_ns() - job.sched_ns;
    // Recorded under the state-flipping lock so a scrape that sees the
    // terminal state also sees this finish's samples (reconciliation).
    if (duration_ns != 0) {
      registry_.histogram("casurf_job_duration_ns").record(duration_ns);
    }
    if (state == JobState::kStopped) {
      registry_.counter("casurf_job_preemptions_total").add();
    }
    // Journaled under the same lock: a racing requeue (POST /jobs/<id>/start
    // observes the terminal state under this mutex) must find its
    // "restarted" record AFTER this one, so every job's events.jsonl reads
    // as a valid lifecycle chain.
    journal(job, event, [&](Writer& jw) {
      jw.key("exit"), jw.i64(code);
      if (!why.empty()) jw.key("error"), jw.string(why);
    });
  }
  log::Event(state == JobState::kFailed ? log::Level::kWarn : log::Level::kInfo,
             kLogComponent, "job_finished")
      .u64("job", job.id)
      .str("state", to_string(state))
      .i64("exit", code)
      .f64("seconds", static_cast<double>(duration_ns) / 1e9)
      .str("error", why);
}

void Daemon::journal(const Job& job, std::string_view event,
                     const std::function<void(Writer&)>& fields) {
  append_event(job.dir + "/" + kJobEvents, event, [&](Writer& w) {
    w.key("job"), w.u64(job.id);
    if (fields) fields(w);
  });
}

void Daemon::drain(int sig) {
  bool first = false;
  std::size_t signalled = 0;
  {
    std::lock_guard lock(mutex_);
    first = !draining_;
    draining_ = true;
    work_cv_.notify_all();
    for (const auto& [id, job] : jobs_) {
      const pid_t pid = job->pid;
      if (job->state == JobState::kRunning && pid > 0) {
        ::kill(pid, sig);
        ++signalled;
      }
    }
  }
  if (first) {
    append_event(journal_path_, "draining", [&](Writer& w) {
      w.key("signal"), w.i64(sig);
      w.key("signalled"), w.u64(signalled);
    });
    log::Event(log::Level::kInfo, kLogComponent, "draining")
        .i64("signal", sig)
        .u64("signalled", signalled);
  }
}

void Daemon::stop() {
  drain(SIGTERM);
  const bool had_runners = !runners_.empty();
  for (std::thread& t : runners_) {
    if (t.joinable()) t.join();
  }
  runners_.clear();
  if (server_) server_->stop();
  // Runner lanes are quiet now (threads joined): export the daemon-side
  // timeline. Skipped when nothing recorded (e.g. CASURF_METRICS=OFF).
  if (trace_.total_recorded() > 0) {
    try {
      trace_.write(opt_.data_dir + "/trace.json");
    } catch (const std::exception&) {
      // Best-effort artifact; shutdown must not fail on a full disk.
    }
  }
  if (had_runners) {
    append_event(journal_path_, "daemon_stopped");
    log::Event(log::Level::kInfo, kLogComponent, "daemon_stopped");
  }
}

// ── HTTP surface ────────────────────────────────────────────────────────

HttpResponse Daemon::handle(const HttpRequest& req) {
  const std::uint64_t rid = next_req_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t t0 = obs::now_ns();
  RouteInfo info;
  HttpResponse resp;
  try {
    resp = route(req, info);
  } catch (const std::exception& e) {
    resp = error_response(500, e.what());
  }
  const std::uint64_t dur_ns = obs::now_ns() - t0;
  const std::string status = std::to_string(resp.status);
  registry_
      .counter(obs::prom::series(
          "casurf_http_requests_total",
          {{"method", req.method}, {"route", info.route}, {"status", status}}))
      .add();
  registry_
      .histogram(obs::prom::series("casurf_http_request_duration_ns",
                                   {{"route", info.route}}))
      .record(dur_ns);
  const log::Level level = resp.status >= 500 ? log::Level::kWarn
                           : info.backpressure != nullptr ? log::Level::kInfo
                                                          : log::Level::kDebug;
  log::Event ev(level, "serve.http", "request");
  ev.u64("id", rid)
      .str("method", req.method)
      .str("target", req.target)
      .i64("status", resp.status)
      .f64("ms", static_cast<double>(dur_ns) / 1e6)
      .u64("bytes", resp.body.size());
  if (info.backpressure != nullptr) {
    ev.str("backpressure", info.backpressure)
        .u64("retry_after", info.retry_after);
  }
  return resp;
}

HttpResponse Daemon::route(const HttpRequest& req, RouteInfo& info) {
  const std::string_view target(req.target);
  if (target == "/healthz") {
    info.route = "/healthz";
    if (req.method != "GET") return error_response(405, "method not allowed");
    std::lock_guard lock(mutex_);
    return json_response(200, draining_ ? R"({"ok":true,"draining":true})"
                                        : R"({"ok":true})");
  }
  if (target == "/stats") {
    info.route = "/stats";
    if (req.method != "GET") return error_response(405, "method not allowed");
    return stats();
  }
  if (target == "/metrics") {
    info.route = "/metrics";
    if (req.method != "GET") return error_response(405, "method not allowed");
    if (!obs::prom::kPromCompiled) {
      return error_response(404, "metrics are compiled out (CASURF_METRICS=OFF)");
    }
    return metrics();
  }
  if (target == "/jobs") {
    info.route = "/jobs";
    if (req.method == "POST") return submit(req, info);
    if (req.method == "GET") return list_jobs();
    return error_response(405, "method not allowed");
  }
  if (target.rfind("/jobs/", 0) == 0) {
    std::string_view rest = target.substr(6);
    std::string_view suffix;
    if (const auto slash = rest.find('/'); slash != std::string_view::npos) {
      suffix = rest.substr(slash + 1);
      rest = rest.substr(0, slash);
    }
    std::uint64_t id = 0;
    if (!parse_id(rest, id)) return error_response(404, "no such job");
    if (suffix.empty()) {
      info.route = "/jobs/{id}";
      if (req.method != "GET") return error_response(405, "method not allowed");
      std::lock_guard lock(mutex_);
      Job* job = find_job(id);
      if (job == nullptr) return error_response(404, "no such job");
      return job_status(*job);
    }
    if (suffix == "stop") {
      info.route = "/jobs/{id}/stop";
      if (req.method != "POST") return error_response(405, "method not allowed");
      return job_stop(id);
    }
    if (suffix == "start") {
      info.route = "/jobs/{id}/start";
      if (req.method != "POST") return error_response(405, "method not allowed");
      return job_start(id, info);
    }
    if (req.method != "GET") return error_response(405, "method not allowed");
    if (suffix == "report") {
      info.route = "/jobs/{id}/report";
      return job_file(id, kJobReport, "application/json");
    }
    if (suffix == "heatmap") {
      info.route = "/jobs/{id}/heatmap";
      return job_file(id, std::string(kJobHeatmapPrefix) + ".json",
                      "application/json");
    }
    if (suffix == "drift") {
      info.route = "/jobs/{id}/drift";
      return job_file(id, kJobDrift, "application/json");
    }
    if (suffix == "csv") {
      info.route = "/jobs/{id}/csv";
      return job_file(id, kJobCsv, "text/csv");
    }
    if (suffix == "log") {
      info.route = "/jobs/{id}/log";
      return job_file(id, kJobLog, "text/plain");
    }
    if (suffix == "trace") {
      info.route = "/jobs/{id}/trace";
      return job_file(id, kJobTrace, "application/json");
    }
    return error_response(404, "unknown job resource");
  }
  return error_response(404, "unknown path");
}

HttpResponse Daemon::submit(const HttpRequest& req, RouteInfo& info) {
  JobSpec spec;
  try {
    spec = JobSpec::from_json(Value::parse(req.body));
  } catch (const std::exception& e) {
    return error_response(400, e.what());
  }
  spec.threads = std::min(spec.threads, std::max(1u, opt_.max_threads_per_job));

  Job* job = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (draining_) {
      info.backpressure = "draining";
      info.retry_after = retry_after_locked();
      registry_
          .counter(obs::prom::series("casurf_http_backpressure_total",
                                     {{"reason", "draining"}}))
          .add();
      HttpResponse resp = error_response(503, "daemon is draining");
      resp.extra_headers.emplace_back("Retry-After",
                                      std::to_string(info.retry_after));
      return resp;
    }
    if (queue_.size() >= opt_.queue_cap) {
      info.backpressure = "queue_full";
      info.retry_after = retry_after_locked();
      registry_
          .counter(obs::prom::series("casurf_http_backpressure_total",
                                     {{"reason", "queue_full"}}))
          .add();
      HttpResponse resp = error_response(429, "job queue is full");
      resp.extra_headers.emplace_back("Retry-After",
                                      std::to_string(info.retry_after));
      return resp;
    }
    if (tenant_live_locked(spec.tenant) >= opt_.tenant_cap) {
      info.backpressure = "tenant_quota";
      registry_
          .counter(obs::prom::series("casurf_http_backpressure_total",
                                     {{"reason", "tenant_quota"}}))
          .add();
      return error_response(
          403, "tenant \"" + spec.tenant + "\" is at its job quota");
    }
    auto owned = std::make_unique<Job>();
    job = owned.get();
    job->id = next_id_++;
    job->seq = next_seq_++;
    job->spec = std::move(spec);
    job->dir = opt_.data_dir + "/job-" + std::to_string(job->id);
    jobs_.emplace(job->id, std::move(owned));
  }

  try {
    fs::create_directories(job->dir);
    if (!job->spec.model_text.empty()) {
      io::atomic_write_file(job->dir + "/" + kJobModelFile,
                            job->spec.model_text);
    }
    io::atomic_write_file(job->dir + "/" + kJobSpecFile, job->spec.to_json());
  } catch (const std::exception& e) {
    std::lock_guard lock(mutex_);
    job->state = JobState::kFailed;
    job->error = e.what();
    ++failed_;
    return error_response(500, job->error);
  }

  HttpResponse resp;
  {
    std::lock_guard lock(mutex_);
    job->submit_ns = obs::now_ns();
    // Journal before the queue push: once enqueued a runner can pick the
    // job up and journal "scheduled" the moment we unlock.
    journal(*job, "submitted", [&](Writer& w) {
      w.key("tenant"), w.string(job->spec.tenant);
      w.key("priority"), w.i64(job->spec.priority);
    });
    queue_.push_back(job);
    work_cv_.notify_one();
    resp = job_status(*job);
  }
  registry_.counter("casurf_job_submissions_total").add();
  log::Event(log::Level::kInfo, kLogComponent, "job_submitted")
      .u64("job", job->id)
      .str("tenant", job->spec.tenant)
      .i64("priority", job->spec.priority);
  return resp;
}

HttpResponse Daemon::job_status(const Job& job) {
  Writer w;
  w.begin_object();
  w.key("id"), w.u64(job.id);
  w.key("tenant"), w.string(job.spec.tenant);
  w.key("state"), w.string(to_string(job.state));
  w.key("priority"), w.i64(job.spec.priority);
  w.key("restarts"), w.u64(job.restarts);
  if (job.state == JobState::kDone || job.state == JobState::kFailed ||
      job.state == JobState::kStopped) {
    w.key("exit_code"), w.i64(job.exit_code);
  }
  if (!job.error.empty()) w.key("error"), w.string(job.error);
  // Progress straight from the worker's latest report snapshot — written
  // atomically every sample, so a torn read is impossible and the daemon
  // never has to interrogate a live worker.
  try {
    const Value report =
        Value::parse(io::read_file(job.dir + "/" + kJobReport));
    if (const Value* counters = report.find("counters")) {
      const double t = counters->number_or("time", 0);
      w.key("time"), w.number(t);
      w.key("progress"),
          w.number(std::min(1.0, job.spec.t_end > 0 ? t / job.spec.t_end : 0));
    }
  } catch (const std::exception&) {
    // No report yet (job still queued, or worker hasn't sampled).
  }
  w.end_object();
  const int status = job.state == JobState::kQueued ? 202 : 200;
  return json_response(status, std::move(w).str());
}

HttpResponse Daemon::job_stop(std::uint64_t id) {
  bool cancelled = false;
  const Job* journal_job = nullptr;
  HttpResponse resp;
  {
    std::lock_guard lock(mutex_);
    Job* job = find_job(id);
    if (job == nullptr) return error_response(404, "no such job");
    switch (job->state) {
      case JobState::kQueued: {
        queue_.erase(std::find(queue_.begin(), queue_.end(), job));
        job->state = JobState::kStopped;
        job->exit_code = 0;
        ++stopped_;
        cancelled = true;
        journal_job = job;
        journal(*job, "cancelled");  // under the state-flipping lock
        resp = job_status(*job);
        break;
      }
      case JobState::kRunning: {
        job->stop_requested = true;
        const pid_t pid = job->pid;
        // pid == 0 means the runner is between fork and publication; its
        // post-publication re-check sees stop_requested and signals then.
        if (pid > 0) ::kill(pid, SIGTERM);
        resp = job_status(*job);
        resp.status = 202;
        break;
      }
      default:
        return error_response(409, "job already finished");
    }
  }
  if (cancelled && journal_job != nullptr) {
    log::Event(log::Level::kInfo, kLogComponent, "job_cancelled")
        .u64("job", journal_job->id);
  }
  return resp;
}

HttpResponse Daemon::job_start(std::uint64_t id, RouteInfo& info) {
  Job* started = nullptr;
  HttpResponse resp;
  {
    std::lock_guard lock(mutex_);
    if (draining_) {
      info.backpressure = "draining";
      info.retry_after = retry_after_locked();
      registry_
          .counter(obs::prom::series("casurf_http_backpressure_total",
                                     {{"reason", "draining"}}))
          .add();
      HttpResponse r = error_response(503, "daemon is draining");
      r.extra_headers.emplace_back("Retry-After",
                                   std::to_string(info.retry_after));
      return r;
    }
    Job* job = find_job(id);
    if (job == nullptr) return error_response(404, "no such job");
    if (job->state != JobState::kStopped && job->state != JobState::kFailed) {
      return error_response(409, "job is not stopped or failed");
    }
    if (tenant_live_locked(job->spec.tenant) >= opt_.tenant_cap) {
      info.backpressure = "tenant_quota";
      registry_
          .counter(obs::prom::series("casurf_http_backpressure_total",
                                     {{"reason", "tenant_quota"}}))
          .add();
      return error_response(
          403, "tenant \"" + job->spec.tenant + "\" is at its job quota");
    }
    if (queue_.size() >= opt_.queue_cap) {
      info.backpressure = "queue_full";
      info.retry_after = retry_after_locked();
      registry_
          .counter(obs::prom::series("casurf_http_backpressure_total",
                                     {{"reason", "queue_full"}}))
          .add();
      HttpResponse r = error_response(429, "job queue is full");
      r.extra_headers.emplace_back("Retry-After",
                                   std::to_string(info.retry_after));
      return r;
    }
    if (job->state == JobState::kStopped) --stopped_;
    if (job->state == JobState::kFailed) --failed_;
    job->state = JobState::kQueued;
    job->stop_requested = false;
    job->restarts = 0;
    job->error.clear();
    job->seq = next_seq_++;
    job->submit_ns = obs::now_ns();
    std::error_code ec;
    fs::remove(fs::path(job->dir) / kExitFile, ec);
    // Journal before the queue push (same ordering argument as submit()).
    journal(*job, "restarted",
            [](Writer& w) { w.key("cause"), w.string("requeue"); });
    queue_.push_back(job);
    work_cv_.notify_one();
    started = job;
    resp = job_status(*job);
  }
  registry_
      .counter(obs::prom::series("casurf_job_restarts_total",
                                 {{"cause", "requeue"}}))
      .add();
  log::Event(log::Level::kInfo, kLogComponent, "job_requeued")
      .u64("job", started->id);
  return resp;
}

HttpResponse Daemon::job_file(std::uint64_t id, const std::string& name,
                              const char* content_type) {
  std::string dir;
  {
    std::lock_guard lock(mutex_);
    Job* job = find_job(id);
    if (job == nullptr) return error_response(404, "no such job");
    dir = job->dir;
  }
  try {
    HttpResponse resp;
    resp.content_type = content_type;
    resp.body = io::read_file(dir + "/" + name);
    return resp;
  } catch (const std::exception&) {
    return error_response(404, "artifact not available yet");
  }
}

HttpResponse Daemon::list_jobs() {
  std::lock_guard lock(mutex_);
  Writer w;
  w.begin_array();
  for (const auto& [id, job] : jobs_) {
    w.begin_object();
    w.key("id"), w.u64(job->id);
    w.key("tenant"), w.string(job->spec.tenant);
    w.key("state"), w.string(to_string(job->state));
    w.key("priority"), w.i64(job->spec.priority);
    w.end_object();
  }
  w.end_array();
  return json_response(200, std::move(w).str());
}

HttpResponse Daemon::stats() {
  std::lock_guard lock(mutex_);
  std::size_t running = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kRunning) ++running;
  }
  Writer w;
  w.begin_object();
  w.key("queued"), w.u64(queue_.size());
  w.key("running"), w.u64(running);
  w.key("done"), w.u64(done_);
  w.key("failed"), w.u64(failed_);
  w.key("stopped"), w.u64(stopped_);
  w.key("slots"), w.u64(opt_.slots);
  w.key("queue_cap"), w.u64(opt_.queue_cap);
  w.key("draining"), w.boolean(draining_);
  // The backoff POST /jobs would advertise right now (Retry-After).
  w.key("retry_after"), w.u64(retry_after_locked());
  w.end_object();
  return json_response(200, std::move(w).str());
}

HttpResponse Daemon::metrics() {
  // Scrape-time gauges, computed under mutex_ from exactly the fields
  // /stats reports so the two surfaces reconcile.
  std::vector<pid_t> pids;
  {
    std::lock_guard lock(mutex_);
    std::size_t running = 0;
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> tenants;
    for (const auto& [id, job] : jobs_) {
      auto& t = tenants[job->spec.tenant];
      if (job->state == JobState::kQueued) ++t.first;
      if (job->state == JobState::kRunning) {
        ++running;
        ++t.second;
        if (job->pid > 0) pids.push_back(job->pid);
      }
    }
    const auto set_state = [this](const char* state, double v) {
      registry_
          .gauge(obs::prom::series("casurf_jobs", {{"state", state}}))
          .set(v);
    };
    set_state("queued", static_cast<double>(queue_.size()));
    set_state("running", static_cast<double>(running));
    set_state("done", static_cast<double>(done_));
    set_state("failed", static_cast<double>(failed_));
    set_state("stopped", static_cast<double>(stopped_));
    registry_.gauge("casurf_queue_depth")
        .set(static_cast<double>(queue_.size()));
    registry_.gauge("casurf_slots").set(static_cast<double>(opt_.slots));
    registry_.gauge("casurf_draining").set(draining_ ? 1 : 0);
    registry_.gauge("casurf_retry_after_seconds")
        .set(static_cast<double>(retry_after_locked()));
    for (const auto& [tenant, counts] : tenants) {
      registry_
          .gauge(obs::prom::series("casurf_tenant_jobs",
                                   {{"tenant", tenant}, {"state", "queued"}}))
          .set(static_cast<double>(counts.first));
      registry_
          .gauge(obs::prom::series("casurf_tenant_jobs",
                                   {{"tenant", tenant}, {"state", "running"}}))
          .set(static_cast<double>(counts.second));
    }
  }
  // /proc reads happen outside the lock; a worker that exits mid-scrape is
  // simply skipped.
  double rss = 0, cpu = 0;
  for (const pid_t pid : pids) {
    double r = 0, c = 0;
    if (sample_proc(pid, r, c)) {
      rss += r;
      cpu += c;
    }
  }
  registry_.gauge("casurf_worker_rss_bytes").set(rss);
  registry_.gauge("casurf_worker_cpu_seconds").set(cpu);

  HttpResponse resp;
  resp.content_type = obs::prom::kContentType;
  resp.body = obs::prom::render(registry_);
  return resp;
}

Daemon::Job* Daemon::find_job(std::uint64_t id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

std::size_t Daemon::tenant_live_locked(const std::string& tenant) const {
  std::size_t live = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->spec.tenant != tenant) continue;
    if (job->state == JobState::kQueued || job->state == JobState::kRunning) {
      ++live;
    }
  }
  return live;
}

}  // namespace casurf::serve
