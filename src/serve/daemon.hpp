#pragma once

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/http.hpp"
#include "serve/job.hpp"

namespace casurf::serve {

/// Lifecycle of a served job (docs/SERVING.md):
///
///   queued ──▶ running ──▶ done
///      │          │  ├───▶ failed       (usage error / retries exhausted)
///      │          │  └───▶ stopped      (preempted; checkpoint retained)
///      └─────────▶ stopped              (cancelled before it ever ran)
///
/// stopped and failed jobs can be requeued (POST /jobs/<id>/start); a
/// requeued job resumes from its checkpoint chain, so preemption costs at
/// most one sampling interval of work.
enum class JobState { kQueued, kRunning, kDone, kFailed, kStopped };

[[nodiscard]] const char* to_string(JobState s);

struct DaemonOptions {
  std::string runner;    ///< path to the casurf_run binary workers exec
  std::string data_dir;  ///< job directories live at data_dir/job-<id>
  std::uint16_t port = 0;        ///< HTTP listen port; 0 picks ephemeral
  unsigned slots = 2;            ///< jobs running concurrently
  std::size_t queue_cap = 64;    ///< queued jobs before POST /jobs → 429
  std::size_t tenant_cap = 16;   ///< live (queued+running) jobs per tenant → 403
  unsigned max_threads_per_job = 4;  ///< clamp on spec.threads (the quota)
  unsigned http_threads = 4;     ///< HTTP worker pool size
  std::size_t worker_log_cap = 1 << 20;  ///< bytes before worker.log rotates
                                         ///< to worker.log.1 (0 = unbounded)
};

/// The casurf_serve daemon as a library: an HTTP front end over a
/// priority job queue whose runner threads execute every job as its own
/// supervised casurf_run worker process. Workers checkpoint as they go;
/// a crashed worker is restarted from its checkpoint chain (worker-level
/// recovery, same taxonomy as casurf_run --supervise), a stopped one is
/// SIGTERMed so it checkpoints and yields, and a daemon restart over the
/// same data_dir requeues every job that never reached a terminal state.
///
/// Thread-safety: handle() may be called from any number of HTTP worker
/// threads; all shared state sits behind one mutex. Runner threads never
/// hold it across fork/exec/waitpid.
class Daemon {
 public:
  explicit Daemon(DaemonOptions opt);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  [[nodiscard]] std::uint16_t port() const;

  /// Route one request. Public so tests can drive the API surface
  /// directly; the embedded HttpServer calls exactly this.
  [[nodiscard]] HttpResponse handle(const HttpRequest& req);

  /// Begin shutdown: refuse new work (503), deliver `sig` to every
  /// running worker (SIGTERM → checkpoint-and-yield), and stop handing
  /// queued jobs to runners. Idempotent; does not block.
  void drain(int sig = SIGTERM);

  /// drain() then wait: joins runner threads once their workers have
  /// exited (checkpoints flushed, exit states recorded) and shuts the
  /// HTTP server down. Run by the destructor as well.
  void stop();

 private:
  /// All mutable fields are guarded by mutex_ — including pid, which a
  /// runner thread publishes after fork and job_stop/drain read to signal
  /// the worker. spec/id/dir are immutable once the job is constructed.
  struct Job {
    std::uint64_t id = 0;
    std::uint64_t seq = 0;  ///< submission order; FIFO within a priority
    JobSpec spec;
    std::string dir;
    JobState state = JobState::kQueued;
    bool stop_requested = false;
    std::uint64_t restarts = 0;
    int exit_code = -1;  ///< last worker exit (valid in terminal states)
    std::string error;   ///< human-readable failure reason
    pid_t pid = 0;       ///< running worker, 0 otherwise
    std::uint64_t submit_ns = 0;  ///< mono ns at (re)enqueue; queue-wait base
    std::uint64_t sched_ns = 0;   ///< mono ns a runner picked it up
    std::uint64_t harvested_trials = 0;     ///< run-report totals already
    std::uint64_t harvested_executed = 0;   ///< rolled into the registry
    std::uint64_t harvested_alarms = 0;     ///< (deltas only: a requeued
    std::uint64_t harvested_restarts = 0;   ///< job's report is cumulative)
    std::uint64_t harvested_comm_messages = 0;  ///< worker "comm" section
    std::uint64_t harvested_comm_bytes = 0;     ///< totals, same delta rule
    std::uint64_t harvested_trace_drops = 0;    ///< run.trace_drops likewise
  };

  /// Per-request telemetry handle() threads through route(): the
  /// normalised route label plus any backpressure verdict for the access
  /// log.
  struct RouteInfo {
    const char* route = "other";
    const char* backpressure = nullptr;  ///< "queue_full"|"draining"|"tenant_quota"
    unsigned retry_after = 0;
  };

  std::size_t recover_jobs();  // requeue non-terminal job dirs in data_dir
  void runner_main(unsigned runner);
  void run_job(Job& job);
  int supervise_worker(Job& job);  // one spawn+wait cycle; returns exit code
  void finish(Job& job, JobState state, int code, std::string error);
  void rotate_worker_log(const Job& job);  // between spawns only
  void harvest_report(Job& job);           // report deltas → registry
  void journal(const Job& job, std::string_view event,
               const std::function<void(obs::json::Writer&)>& fields = {});

  [[nodiscard]] Job* find_job(std::uint64_t id);
  [[nodiscard]] Job* pop_best_locked();
  [[nodiscard]] std::size_t tenant_live_locked(const std::string& tenant) const;
  [[nodiscard]] unsigned retry_after_locked() const;

  HttpResponse route(const HttpRequest& req, RouteInfo& info);
  HttpResponse submit(const HttpRequest& req, RouteInfo& info);
  HttpResponse job_status(const Job& job);  // caller holds mutex_
  HttpResponse job_stop(std::uint64_t id);
  HttpResponse job_start(std::uint64_t id, RouteInfo& info);
  HttpResponse job_file(std::uint64_t id, const std::string& name,
                        const char* content_type);
  HttpResponse list_jobs();
  HttpResponse stats();
  HttpResponse metrics();

  DaemonOptions opt_;
  obs::MetricsRegistry registry_;
  /// Daemon-side trace: one lane per runner thread carrying a serve/job
  /// span per supervised worker (args.step = job id). Written to
  /// data_dir/trace.json at stop(); together with the workers' own traces
  /// (JobSpec::trace) and their "job-<id>" trace ids, `casurf_report
  /// --merge-traces` stitches the fleet into one clock-aligned timeline.
  obs::Tracer trace_;
  std::string journal_path_;  ///< daemon-level events.jsonl in data_dir
  std::atomic<std::uint64_t> next_req_{1};  ///< access-log request ids

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes runners: queue grew / draining
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::vector<Job*> queue_;  ///< pending jobs; scanned for best (prio, seq)
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t done_ = 0, failed_ = 0, stopped_ = 0;
  bool draining_ = false;

  std::vector<std::thread> runners_;
  std::unique_ptr<HttpServer> server_;  ///< last member: handle() needs the rest
};

}  // namespace casurf::serve
