#include "serve/events.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace casurf::serve {

void append_event(const std::string& path, std::string_view event,
                  const std::function<void(obs::json::Writer&)>& fields) {
  // Wall clock on purpose (not obs::now_ns): the journal outlives the
  // process and must stay meaningful under CASURF_METRICS=OFF.
  const double ts =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()) /
      1e6;
  obs::json::Writer w;
  w.begin_object();
  w.key("schema"), w.string(kEventsSchema);
  w.key("ts"), w.number(ts);
  w.key("event"), w.string(event);
  if (fields) fields(w);
  w.end_object();
  std::string line = std::move(w).str();
  line += '\n';

  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return;
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

}  // namespace casurf::serve
