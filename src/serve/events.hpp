#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace casurf::serve {

/// Durable lifecycle event journal (`events.jsonl`, one JSON object per
/// line, schema `casurf-events/1`). Two instances exist per daemon: a
/// per-job journal inside each job directory and a daemon-level journal in
/// data_dir. Unlike metrics this is durability plumbing, so it is NOT
/// compiled out under CASURF_METRICS=OFF — a recovered daemon still owes
/// its tenants the history of what happened to their jobs.
///
/// Job lifecycle grammar (validated by casurf_report --events and the
/// serve tests):
///
///   submitted → scheduled → spawned → running
///            → {preempted | restarted}* → {finished | failed | cancelled}
///
/// with `restarted` re-entering at `scheduled`. `log_rotated` may appear
/// anywhere after `spawned` (worker.log hit its cap).
inline constexpr const char* kEventsSchema = "casurf-events/1";

/// Append one event line to the journal at `path`. The file is opened
/// O_APPEND per call and the line lands in a single write(2), so daemon
/// threads (and a restarted daemon appending to history) never tear lines.
/// `fields` (optional) adds event-specific keys to the line. Errors are
/// swallowed: journaling must never take the serving path down.
void append_event(const std::string& path, std::string_view event,
                  const std::function<void(obs::json::Writer&)>& fields = {});

}  // namespace casurf::serve
