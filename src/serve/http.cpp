#include "serve/http.hpp"

#include "obs/json.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

namespace casurf::serve {

namespace {

std::string lowercase(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// Read from `fd` (with a poll timeout per read) until `stop_at` returns a
/// nonzero "done" length or the caps are blown. Returns false on EOF /
/// timeout / error before completion.
bool read_until(int fd, std::string& buf, int timeout_ms,
                const std::function<bool(const std::string&)>& complete,
                std::size_t cap) {
  char chunk[4096];
  while (!complete(buf)) {
    if (buf.size() > cap) return false;
    struct pollfd pfd {fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr <= 0) return false;  // timeout or error
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;  // EOF or error
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Parse headers out of `text` (everything between the start-line and the
/// blank line); returns false on a malformed field line.
bool parse_header_block(std::string_view text,
                        std::vector<std::pair<std::string, std::string>>& out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find("\r\n", pos);
    std::size_t next;
    if (eol == std::string_view::npos) {
      eol = text.find('\n', pos);  // tolerate bare-LF peers
      if (eol == std::string_view::npos) eol = text.size();
      next = eol + 1;
    } else {
      next = eol + 2;
    }
    const std::string_view line = text.substr(pos, eol - pos);
    pos = next;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    out.emplace_back(lowercase(trim(line.substr(0, colon))),
                     std::string(trim(line.substr(colon + 1))));
  }
  return true;
}

std::size_t header_end(const std::string& buf) {
  const std::size_t p = buf.find("\r\n\r\n");
  if (p != std::string::npos) return p + 4;
  const std::size_t q = buf.find("\n\n");
  if (q != std::string::npos) return q + 2;
  return std::string::npos;
}

bool parse_content_length(const std::vector<std::pair<std::string, std::string>>& headers,
                          std::size_t& length) {
  length = 0;
  for (const auto& [name, value] : headers) {
    if (name != "content-length") continue;
    const auto [end, ec] =
        std::from_chars(value.data(), value.data() + value.size(), length);
    return ec == std::errc{} && end == value.data() + value.size();
  }
  return true;  // no body
}

std::string serialize_response(const HttpResponse& r) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    HttpResponse::reason(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  for (const auto& [name, value] : r.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

constexpr int kServerReadTimeoutMs = 30000;

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  const std::string key = lowercase(name);
  for (const auto& [n, v] : headers) {
    if (n == key) return &v;
  }
  return nullptr;
}

const char* HttpResponse::reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

struct HttpServer::ConnQueue {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<int> fds;
  bool stopping = false;
};

HttpServer::HttpServer(std::uint16_t port, Handler handler, unsigned threads)
    : handler_(std::move(handler)), queue_(new ConnQueue) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    delete queue_;
    throw HttpError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    delete queue_;
    throw HttpError("bind 127.0.0.1:" + std::to_string(port) + ": " + err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  acceptor_ = std::thread([this] { accept_main(); });
}

HttpServer::~HttpServer() {
  stop();
  delete queue_;
}

void HttpServer::stop() {
  {
    std::lock_guard lock(queue_->mutex);
    if (queue_->stopping) return;
    queue_->stopping = true;
  }
  queue_->ready.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Drop connections that were accepted but never dispatched.
  for (const int fd : queue_->fds) ::close(fd);
  queue_->fds.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::accept_main() {
  for (;;) {
    {
      std::lock_guard lock(queue_->mutex);
      if (queue_->stopping) return;
    }
    // Poll with a short timeout so stop() is noticed without needing to
    // race a close() against a blocked accept().
    struct pollfd pfd {listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100);
    if (pr <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    {
      std::lock_guard lock(queue_->mutex);
      if (queue_->stopping) {
        ::close(fd);
        return;
      }
      queue_->fds.push_back(fd);
    }
    queue_->ready.notify_one();
  }
}

void HttpServer::worker_main() {
  for (;;) {
    int fd;
    {
      std::unique_lock lock(queue_->mutex);
      queue_->ready.wait(lock,
                         [&] { return queue_->stopping || !queue_->fds.empty(); });
      if (queue_->fds.empty()) return;  // stopping and drained
      fd = queue_->fds.front();
      queue_->fds.pop_front();
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  std::string buf;
  if (!read_until(fd, buf, kServerReadTimeoutMs,
                  [](const std::string& b) { return header_end(b) != std::string::npos; },
                  kMaxHeaderBytes)) {
    write_all(fd, serialize_response(
                      {400, "application/json",
                       R"({"error":"malformed or oversized request head"})", {}}));
    return;
  }
  const std::size_t head_len = header_end(buf);
  const std::string head = buf.substr(0, head_len);

  HttpRequest req;
  {
    std::size_t eol = head.find('\n');
    std::string_view line(head.data(), eol == std::string::npos ? head.size() : eol);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string_view::npos
                                ? std::string_view::npos
                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.substr(sp2 + 1).rfind("HTTP/1.", 0) != 0) {
      write_all(fd, serialize_response({400, "application/json",
                                        R"({"error":"malformed request line"})", {}}));
      return;
    }
    req.method = std::string(line.substr(0, sp1));
    req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    if (!parse_header_block(
            std::string_view(head).substr(eol + 1, head_len - eol - 1), req.headers)) {
      write_all(fd, serialize_response({400, "application/json",
                                        R"({"error":"malformed header field"})", {}}));
      return;
    }
  }

  std::size_t content_length = 0;
  if (!parse_content_length(req.headers, content_length)) {
    write_all(fd, serialize_response({400, "application/json",
                                      R"({"error":"bad content-length"})", {}}));
    return;
  }
  if (content_length > kMaxBodyBytes) {
    write_all(fd, serialize_response({413, "application/json",
                                      R"({"error":"body too large"})", {}}));
    return;
  }
  const std::size_t total = head_len + content_length;
  if (!read_until(fd, buf, kServerReadTimeoutMs,
                  [&](const std::string& b) { return b.size() >= total; },
                  total)) {
    write_all(fd, serialize_response({400, "application/json",
                                      R"({"error":"truncated body"})", {}}));
    return;
  }
  req.body = buf.substr(head_len, content_length);

  HttpResponse resp;
  try {
    resp = handler_(req);
  } catch (const std::exception& e) {
    resp.status = 500;
    resp.content_type = "application/json";
    // The shared report escaper guarantees hostile exception text can
    // never break the error document.
    resp.body = R"({"error":)";
    obs::json::append_quoted(resp.body, e.what());
    resp.body += '}';
  }
  write_all(fd, serialize_response(resp));
}

HttpResponse http_request(
    std::uint16_t port, const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers,
    int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw HttpError(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw HttpError("connect 127.0.0.1:" + std::to_string(port) + ": " + err);
  }

  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: 127.0.0.1:" + std::to_string(port) + "\r\n";
  bool has_content_type = false;
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
    if (lowercase(name) == "content-type") has_content_type = true;
  }
  if (!body.empty() && !has_content_type) {
    out += "Content-Type: application/json\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  if (!write_all(fd, out)) {
    ::close(fd);
    throw HttpError("send failed");
  }

  std::string buf;
  if (!read_until(fd, buf, timeout_ms,
                  [](const std::string& b) { return header_end(b) != std::string::npos; },
                  kMaxHeaderBytes)) {
    ::close(fd);
    throw HttpError("no complete response head within timeout");
  }
  const std::size_t head_len = header_end(buf);
  HttpResponse resp;
  std::vector<std::pair<std::string, std::string>> resp_headers;
  {
    const std::string head = buf.substr(0, head_len);
    std::size_t eol = head.find('\n');
    std::string_view line(head.data(), eol == std::string::npos ? head.size() : eol);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    // "HTTP/1.1 200 OK"
    const std::size_t sp1 = line.find(' ');
    if (line.rfind("HTTP/1.", 0) != 0 || sp1 == std::string_view::npos) {
      ::close(fd);
      throw HttpError("malformed status line: " + std::string(line));
    }
    resp.status = std::atoi(std::string(line.substr(sp1 + 1)).c_str());
    if (!parse_header_block(
            std::string_view(head).substr(eol + 1, head_len - eol - 1), resp_headers)) {
      ::close(fd);
      throw HttpError("malformed response headers");
    }
  }
  std::size_t content_length = 0;
  if (!parse_content_length(resp_headers, content_length) ||
      content_length > kMaxBodyBytes) {
    ::close(fd);
    throw HttpError("bad response content-length");
  }
  const std::size_t total = head_len + content_length;
  if (!read_until(fd, buf, timeout_ms,
                  [&](const std::string& b) { return b.size() >= total; }, total)) {
    ::close(fd);
    throw HttpError("truncated response body");
  }
  ::close(fd);
  resp.body = buf.substr(head_len, content_length);
  for (const auto& [name, value] : resp_headers) {
    if (name == "content-type") resp.content_type = value;
    else resp.extra_headers.emplace_back(name, value);
  }
  return resp;
}

}  // namespace casurf::serve
