#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace casurf::serve {

/// Minimal HTTP/1.1 layer for casurf_serve (docs/SERVING.md): enough of
/// the protocol for JSON job control over loopback — request-line +
/// headers + Content-Length bodies, one request per connection
/// (Connection: close), no TLS, no chunked encoding, no keep-alive. The
/// server is a small acceptor + worker-thread pool; the client is the
/// one-shot helper the tests and tools use. Anything a simulation daemon
/// does not need was deliberately left out.

/// Transport-level failure (connect/read/write/timeout) or a peer that
/// spoke something other than HTTP. Protocol-level errors from a working
/// peer are NOT exceptions — they come back as 4xx/5xx responses.
class HttpError : public std::runtime_error {
 public:
  explicit HttpError(const std::string& message)
      : std::runtime_error("http: " + message) {}
};

/// Hard limits on inbound messages; both sides enforce them. Oversized
/// requests are answered with 413 before the body is read.
inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

struct HttpRequest {
  std::string method;  ///< uppercase, e.g. "GET"
  std::string target;  ///< origin-form, e.g. "/jobs/7/report"
  std::vector<std::pair<std::string, std::string>> headers;  ///< names lowercased
  std::string body;

  /// First header named `name` (case-insensitive), or nullptr.
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;

  /// Standard reason phrase for `status` ("Unknown" when unmapped).
  [[nodiscard]] static const char* reason(int status);
};

/// A loopback HTTP server: binds 127.0.0.1:`port` (0 picks an ephemeral
/// port — query port() for the real one), accepts on a dedicated thread,
/// and dispatches complete requests to `handler` on a small worker pool.
/// The handler must be thread-safe; an exception escaping it becomes a
/// 500 with the exception text. Construction throws HttpError if the
/// socket cannot be bound; stop() (idempotent, also run by the
/// destructor) shuts the listener down and joins every thread.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(std::uint16_t port, Handler handler, unsigned threads = 4);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  void stop();

 private:
  void accept_main();
  void worker_main();
  void handle_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  struct ConnQueue;
  ConnQueue* queue_;  // owned; opaque to keep <mutex> machinery out of the header
};

/// One-shot client: connect to 127.0.0.1:`port`, send `method target`
/// with optional body/headers, return the parsed response. Content-Type
/// for bodies defaults to application/json. Throws HttpError on
/// transport failure or if no complete response arrives in `timeout_ms`.
[[nodiscard]] HttpResponse http_request(
    std::uint16_t port, const std::string& method, const std::string& target,
    const std::string& body = {},
    const std::vector<std::pair<std::string, std::string>>& headers = {},
    int timeout_ms = 30000);

}  // namespace casurf::serve
