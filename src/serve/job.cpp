#include "serve/job.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string_view>

namespace casurf::serve {
namespace {

using obs::json::Value;

[[noreturn]] void reject(const std::string& what) {
  throw std::runtime_error("job spec: " + what);
}

constexpr std::array<std::string_view, 5> kModels = {
    "zgb", "pt100", "diffusion", "single-file", "ising"};
constexpr std::array<std::string_view, 8> kAlgorithms = {
    "rsm", "vssm", "frm", "ndca", "pndca", "lpndca", "tpndca", "parallel"};

template <std::size_t N>
bool one_of(const std::array<std::string_view, N>& set, std::string_view s) {
  return std::find(set.begin(), set.end(), s) != set.end();
}

bool valid_tenant(std::string_view t) {
  if (t.empty() || t.size() > 64) return false;
  for (const char c : t) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

double finite_number(const Value& v, const char* key) {
  if (!v.is_number()) reject(std::string(key) + " must be a number");
  const double d = v.as_number();
  if (!std::isfinite(d)) reject(std::string(key) + " must be finite");
  return d;
}

double positive_number(const Value& v, const char* key) {
  const double d = finite_number(v, key);
  if (!(d > 0)) reject(std::string(key) + " must be positive");
  return d;
}

std::uint64_t non_negative_integer(const Value& v, const char* key) {
  const double d = finite_number(v, key);
  if (d < 0 || d != std::floor(d) || d > 9.007199254740992e15) {
    reject(std::string(key) + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

bool boolean(const Value& v, const char* key) {
  if (v.kind() != Value::Kind::kBool) {
    reject(std::string(key) + " must be true or false");
  }
  return v.as_bool();
}

const std::string& string_value(const Value& v, const char* key) {
  if (!v.is_string()) reject(std::string(key) + " must be a string");
  return v.as_string();
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

JobSpec JobSpec::from_json(const Value& v) {
  if (!v.is_object()) reject("body must be a JSON object");
  JobSpec spec;
  for (const auto& [key, value] : v.members()) {
    if (key == "tenant") {
      spec.tenant = string_value(value, "tenant");
    } else if (key == "priority") {
      const std::uint64_t p = non_negative_integer(value, "priority");
      if (p > 9) reject("priority must be 0..9");
      spec.priority = static_cast<int>(p);
    } else if (key == "retries") {
      spec.retries = non_negative_integer(value, "retries");
      if (spec.retries > 1000) reject("retries must be <= 1000");
    } else if (key == "model") {
      spec.model = string_value(value, "model");
    } else if (key == "model_text") {
      spec.model_text = string_value(value, "model_text");
      if (spec.model_text.size() > 256 * 1024) {
        reject("model_text must be under 256 KiB");
      }
    } else if (key == "algorithm") {
      spec.algorithm = string_value(value, "algorithm");
    } else if (key == "width") {
      const std::uint64_t w = non_negative_integer(value, "width");
      if (w == 0 || w > 1u << 14) reject("width must be 1..16384");
      spec.width = static_cast<std::int32_t>(w);
    } else if (key == "height") {
      const std::uint64_t h = non_negative_integer(value, "height");
      if (h == 0 || h > 1u << 14) reject("height must be 1..16384");
      spec.height = static_cast<std::int32_t>(h);
    } else if (key == "seed") {
      spec.seed = non_negative_integer(value, "seed");
    } else if (key == "t_end") {
      spec.t_end = positive_number(value, "t_end");
    } else if (key == "dt") {
      spec.dt = positive_number(value, "dt");
    } else if (key == "y") {
      spec.y = finite_number(value, "y");
      if (spec.y < 0 || spec.y > 1) reject("y must be within [0, 1]");
    } else if (key == "beta") {
      spec.beta = finite_number(value, "beta");
    } else if (key == "hop") {
      spec.hop = positive_number(value, "hop");
    } else if (key == "coverage0") {
      spec.coverage0 = finite_number(value, "coverage0");
      if (spec.coverage0 < 0 || spec.coverage0 > 1) {
        reject("coverage0 must be within [0, 1]");
      }
    } else if (key == "L") {
      const std::uint64_t l = non_negative_integer(value, "L");
      if (l == 0 || l > 1u << 20) reject("L must be 1..1048576");
      spec.l_trials = static_cast<std::uint32_t>(l);
    } else if (key == "threads") {
      const std::uint64_t t = non_negative_integer(value, "threads");
      if (t == 0 || t > 256) reject("threads must be 1..256");
      spec.threads = static_cast<unsigned>(t);
    } else if (key == "fast_path") {
      spec.fast_path = boolean(value, "fast_path");
    } else if (key == "checkpoint_every") {
      spec.checkpoint_every = finite_number(value, "checkpoint_every");
      if (spec.checkpoint_every < 0) {
        reject("checkpoint_every must be non-negative");
      }
    } else if (key == "heatmap") {
      spec.heatmap = boolean(value, "heatmap");
    } else if (key == "heatmap_every") {
      spec.heatmap_every = non_negative_integer(value, "heatmap_every");
    } else if (key == "drift_record") {
      spec.drift_record = boolean(value, "drift_record");
    } else if (key == "trace") {
      spec.trace = boolean(value, "trace");
    } else if (key == "failpoints") {
      spec.failpoints = string_value(value, "failpoints");
      if (spec.failpoints.size() > 4096) reject("failpoints spec too long");
    } else {
      reject("unknown member \"" + key + '"');
    }
  }

  if (!valid_tenant(spec.tenant)) {
    reject("tenant must match [A-Za-z0-9_.-]{1,64}");
  }
  if (spec.model.empty() == spec.model_text.empty()) {
    reject("exactly one of model or model_text is required");
  }
  if (!spec.model.empty() && !one_of(kModels, spec.model)) {
    reject("unknown model \"" + spec.model +
           "\" (expected zgb, pt100, diffusion, single-file, or ising)");
  }
  if (!one_of(kAlgorithms, spec.algorithm)) {
    reject("unknown algorithm \"" + spec.algorithm +
           "\" (expected rsm, vssm, frm, ndca, pndca, lpndca, tpndca, "
           "or parallel)");
  }
  if (spec.heatmap_every > 0 && !spec.heatmap) {
    reject("heatmap_every requires heatmap: true");
  }
  return spec;
}

std::string JobSpec::to_json() const {
  obs::json::Writer w;
  w.begin_object();
  w.key("tenant"), w.string(tenant);
  w.key("priority"), w.i64(priority);
  w.key("retries"), w.u64(retries);
  if (!model.empty()) w.key("model"), w.string(model);
  if (!model_text.empty()) w.key("model_text"), w.string(model_text);
  w.key("algorithm"), w.string(algorithm);
  w.key("width"), w.i64(width);
  w.key("height"), w.i64(height);
  w.key("seed"), w.u64(seed);
  w.key("t_end"), w.number(t_end);
  w.key("dt"), w.number(dt);
  w.key("y"), w.number(y);
  w.key("beta"), w.number(beta);
  w.key("hop"), w.number(hop);
  w.key("coverage0"), w.number(coverage0);
  w.key("L"), w.u64(l_trials);
  w.key("threads"), w.u64(threads);
  w.key("fast_path"), w.boolean(fast_path);
  w.key("checkpoint_every"), w.number(checkpoint_every);
  w.key("heatmap"), w.boolean(heatmap);
  w.key("heatmap_every"), w.u64(heatmap_every);
  w.key("drift_record"), w.boolean(drift_record);
  w.key("trace"), w.boolean(trace);
  if (!failpoints.empty()) w.key("failpoints"), w.string(failpoints);
  w.end_object();
  return std::move(w).str();
}

std::vector<std::string> JobSpec::to_argv(const std::string& runner,
                                          const std::string& dir,
                                          bool resume) const {
  std::vector<std::string> argv;
  argv.push_back(runner);
  auto flag = [&](const char* name, std::string value) {
    argv.emplace_back(name);
    argv.push_back(std::move(value));
  };
  if (!model_text.empty()) {
    flag("--model-file", dir + "/" + kJobModelFile);
  } else {
    flag("--model", model);
  }
  flag("--algorithm", algorithm);
  flag("--size", std::to_string(width) + "x" + std::to_string(height));
  flag("--seed", std::to_string(seed));
  flag("--t-end", format_double(t_end));
  flag("--dt", format_double(dt));
  flag("--y", format_double(y));
  flag("--beta", format_double(beta));
  flag("--hop", format_double(hop));
  if (coverage0 > 0) flag("--coverage0", format_double(coverage0));
  flag("--L", std::to_string(l_trials));
  flag("--threads", std::to_string(threads));
  if (fast_path) argv.emplace_back("--fast-path");
  flag("--checkpoint", dir + "/" + kJobCheckpoint);
  if (checkpoint_every > 0) {
    flag("--checkpoint-every", format_double(checkpoint_every));
  }
  if (resume) flag("--resume", dir + "/" + kJobCheckpoint);
  flag("--csv", dir + "/" + kJobCsv);
  flag("--metrics", dir + "/" + kJobReport);
  flag("--metrics-every", "1");
  if (heatmap) {
    flag("--heatmap", dir + "/" + kJobHeatmapPrefix);
    if (heatmap_every > 0) {
      flag("--heatmap-every", std::to_string(heatmap_every));
    }
  }
  if (drift_record) flag("--drift-record", dir + "/" + kJobDrift);
  if (trace) flag("--trace", dir + "/" + kJobTrace);
  // Cross-process trace correlation: the job-directory basename ("job-<id>")
  // is the trace id the worker stamps into its run report and trace footer,
  // which is what lets `casurf_report --merge-traces` label each worker's
  // lanes. Passed as a flag (not env): the exec happens on the
  // async-signal-safe path between fork and execv, where setenv is off
  // limits.
  const std::size_t slash = dir.find_last_of('/');
  flag("--trace-id", slash == std::string::npos ? dir : dir.substr(slash + 1));
  if (!failpoints.empty()) flag("--failpoints", failpoints);
  argv.emplace_back("--quiet");
  return argv;
}

}  // namespace casurf::serve
