#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace casurf::serve {

/// A submitted job's specification: which model to simulate, with which
/// algorithm and knobs, under which tenant and priority. Parsed from the
/// JSON body of POST /jobs (docs/SERVING.md has the schema) and compiled
/// into a casurf_run command line — the daemon executes every job as its
/// own supervised worker process, so one job's crash (or runaway memory)
/// can never take a neighbour down.
struct JobSpec {
  // Scheduling
  std::string tenant = "default";  ///< quota bucket; [A-Za-z0-9_.-], <= 64 chars
  int priority = 5;                ///< 0 (lowest) .. 9 (highest); FIFO within
  std::uint64_t retries = 3;       ///< worker restarts before the job fails

  // Model: exactly one of `model` (bundled name) or `model_text` (inline
  // model-DSL source, written to the job directory and parsed by the
  // worker with the ordinary --model-file path).
  std::string model;
  std::string model_text;

  // Run parameters (the casurf_run defaults, same semantics).
  std::string algorithm = "rsm";
  std::int32_t width = 64, height = 64;
  std::uint64_t seed = 1;
  double t_end = 10;
  double dt = 1;
  double y = 0.45;
  double beta = 0.5;
  double hop = 1.0;
  double coverage0 = 0;
  std::uint32_t l_trials = 1;
  unsigned threads = 1;  ///< parallel-engine workers; clamped by the quota
  bool fast_path = false;
  double checkpoint_every = 0;  ///< 0 = every sample

  // Streamed artifacts beyond the always-on report/CSV/checkpoint.
  bool heatmap = false;
  std::uint64_t heatmap_every = 0;  ///< 0 = only at the end
  bool drift_record = false;        ///< stream a drift profile too
  bool trace = false;               ///< worker writes a Chrome-trace JSON

  /// Deterministic fault injection forwarded to the worker (--failpoints
  /// grammar). Operational/testing aid; rejected by builds that compiled
  /// the failpoints out, exactly like the CLI.
  std::string failpoints;

  /// Parse and validate a spec. Unknown members are rejected (a typo in a
  /// knob must not silently run with the default). Throws
  /// std::runtime_error with a client-presentable message on any problem.
  static JobSpec from_json(const obs::json::Value& v);

  /// Re-serialize (spec.json in the job directory; also echoed by the API).
  [[nodiscard]] std::string to_json() const;

  /// Compile the worker command line: `runner` plus every flag this spec
  /// implies, rooted in job directory `dir` (checkpoint, CSV, report, and
  /// optional heatmap/drift artifacts live there). With `resume` the
  /// worker restores from the checkpoint chain first — the daemon passes
  /// it on every restart after a crash.
  [[nodiscard]] std::vector<std::string> to_argv(const std::string& runner,
                                                 const std::string& dir,
                                                 bool resume) const;
};

/// Fixed artifact names inside a job directory.
inline constexpr const char* kJobModelFile = "model.model";
inline constexpr const char* kJobSpecFile = "spec.json";
inline constexpr const char* kJobCheckpoint = "job.ck";
inline constexpr const char* kJobCsv = "coverage.csv";
inline constexpr const char* kJobReport = "report.json";
inline constexpr const char* kJobHeatmapPrefix = "heatmap";
inline constexpr const char* kJobDrift = "drift.json";
inline constexpr const char* kJobLog = "worker.log";
inline constexpr const char* kJobLogRotated = "worker.log.1";
inline constexpr const char* kJobEvents = "events.jsonl";
inline constexpr const char* kJobTrace = "trace.json";

}  // namespace casurf::serve
