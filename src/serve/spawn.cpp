#include "serve/spawn.hpp"

#include <unistd.h>

#include <cstdlib>

namespace casurf::serve {

pid_t spawn_supervised(volatile pid_t* pid_slot,
                       const volatile std::sig_atomic_t* signal_flag,
                       const std::function<int()>& child_main) {
  sigset_t forwarded;
  sigemptyset(&forwarded);
  sigaddset(&forwarded, SIGINT);
  sigaddset(&forwarded, SIGTERM);
  sigset_t previous;
  ::pthread_sigmask(SIG_BLOCK, &forwarded, &previous);

  const pid_t pid = ::fork();
  if (pid == 0) {
    // Worker: drop the block before any worker code runs — the supervisor
    // forwards these signals and a graceful shutdown depends on receiving
    // them. The handlers themselves are the worker's to install.
    ::pthread_sigmask(SIG_SETMASK, &previous, nullptr);
    std::_Exit(child_main());
  }

  if (pid > 0) *pid_slot = pid;
  // Unblock only after the slot is published: a signal that went pending
  // in the window is delivered now, and its forwarding handler sees the
  // real pid. (On fork failure the mask is simply restored.)
  ::pthread_sigmask(SIG_SETMASK, &previous, nullptr);
  if (pid > 0 && signal_flag != nullptr && *signal_flag != 0) {
    // A signal that landed BEFORE the block was recorded against the old
    // (or empty) pid slot and forwarded nowhere; deliver it by hand so the
    // fresh worker still observes the shutdown request.
    ::kill(pid, static_cast<int>(*signal_flag));
  }
  return pid;
}

}  // namespace casurf::serve
