#pragma once

#include <csignal>
#include <functional>
#include <sys/types.h>

namespace casurf::serve {

/// Fork a supervised worker with the SIGINT/SIGTERM forwarding window
/// closed.
///
/// The naive sequence `pid = fork(); g_child_pid = pid;` loses signals: a
/// SIGTERM delivered between fork() and the store runs the supervisor's
/// forwarding handler while its pid slot is still -1 (or stale), so nothing
/// reaches the worker — the supervisor later shuts down and the worker is
/// orphaned, still burning CPU. This helper hardens all three windows:
///
///  1. SIGINT/SIGTERM are BLOCKED in the calling thread across fork() and
///     the pid-slot store, so a signal arriving in the window stays pending
///     and its handler runs only after `*pid_slot` is valid — the handler's
///     forward then reaches the new worker.
///  2. The child restores the original mask before running `child_main`
///     (a worker must be able to receive the signals being forwarded).
///  3. After publication and unmasking, `*signal_flag` is RE-CHECKED: a
///     signal that arrived before the block (handler ran against the old
///     pid slot) is forwarded to the fresh worker by hand.
///
/// In the parent: publishes the child pid to `*pid_slot` and returns it,
/// or returns -1 with errno set if fork() failed (the mask is restored
/// either way). In the child: runs `child_main()` and _exits with its
/// return value; `child_main` may also never return (e.g. exec).
///
/// `signal_flag` is the sig_atomic_t the caller's handlers record into
/// (0 = none); may be null when the caller has no forwarding handlers and
/// only needs the publication ordering (e.g. casurf_serve, whose drain
/// logic re-checks its own flag after submission).
///
/// Thread-safe: uses pthread_sigmask, so a multi-threaded daemon can spawn
/// workers from several supervisor threads concurrently.
pid_t spawn_supervised(volatile pid_t* pid_slot,
                       const volatile std::sig_atomic_t* signal_flag,
                       const std::function<int()>& child_main);

}  // namespace casurf::serve
