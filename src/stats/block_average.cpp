#include "stats/block_average.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace casurf::stats {

BlockAverageResult block_average(const std::vector<double>& samples) {
  if (samples.size() < 8) {
    throw std::invalid_argument("block_average: need at least 8 samples");
  }
  BlockAverageResult result;
  result.mean = mean(samples);
  result.naive_error =
      std::sqrt(variance(samples) / static_cast<double>(samples.size()));

  std::vector<double> blocks = samples;
  while (blocks.size() >= 4) {
    const double err =
        std::sqrt(variance(blocks) / static_cast<double>(blocks.size()));
    result.error_per_level.push_back(err);
    // Halve: average adjacent pairs.
    std::vector<double> next;
    next.reserve(blocks.size() / 2);
    for (std::size_t i = 0; i + 1 < blocks.size(); i += 2) {
      next.push_back(0.5 * (blocks[i] + blocks[i + 1]));
    }
    blocks = std::move(next);
  }

  // Plateau: first level within 2% of its successor.
  result.plateau_level = result.error_per_level.size() - 1;
  for (std::size_t level = 0; level + 1 < result.error_per_level.size(); ++level) {
    const double a = result.error_per_level[level];
    const double b = result.error_per_level[level + 1];
    if (a > 0 && std::abs(b - a) <= 0.02 * a) {
      result.plateau_level = level;
      break;
    }
  }
  result.error = result.error_per_level[result.plateau_level];
  return result;
}

double integrated_autocorrelation_time(const std::vector<double>& samples) {
  if (samples.size() < 16) {
    throw std::invalid_argument(
        "integrated_autocorrelation_time: need at least 16 samples");
  }
  double tau = 0.5;
  const std::size_t max_lag = samples.size() / 4;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    tau += autocorrelation(samples, k);
    // Self-consistent window: stop once the summed lags exceed ~6 tau.
    if (static_cast<double>(k) >= 6.0 * tau) break;
  }
  return std::max(tau, 0.5);
}

}  // namespace casurf::stats
