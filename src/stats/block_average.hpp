#pragma once

#include <cstddef>
#include <vector>

namespace casurf::stats {

/// Flyvbjerg-Petersen block averaging: the standard error estimate for
/// *correlated* time-series samples (steady-state coverages sampled every
/// MC step are strongly autocorrelated, so the naive stderr is far too
/// small). The series is repeatedly halved by averaging adjacent pairs;
/// the blocked standard error grows until blocks are longer than the
/// correlation time and plateaus there.
struct BlockAverageResult {
  double mean = 0;
  double error = 0;            ///< plateau standard error of the mean
  double naive_error = 0;      ///< uncorrelated-assumption stderr, for contrast
  std::size_t plateau_level = 0;  ///< halvings needed to decorrelate
  /// stderr estimate at every blocking level (diagnostic).
  std::vector<double> error_per_level;

  /// Statistical inefficiency g ~ 1 + 2 tau: how many correlated samples
  /// equal one independent sample.
  [[nodiscard]] double statistical_inefficiency() const {
    if (naive_error <= 0) return 1.0;
    const double ratio = error / naive_error;
    return ratio * ratio;
  }
};

/// Block-average `samples` (at least 8 required). The plateau is detected
/// as the first level whose error estimate is within 2% of the next one;
/// if no plateau is reached the last level's (least biased) estimate is
/// used.
[[nodiscard]] BlockAverageResult block_average(const std::vector<double>& samples);

/// Integrated autocorrelation time tau_int = 1/2 + sum_k r(k), summed with
/// the standard self-consistent window cutoff (k <= 6 tau). In units of
/// the sampling interval.
[[nodiscard]] double integrated_autocorrelation_time(const std::vector<double>& samples);

}  // namespace casurf::stats
