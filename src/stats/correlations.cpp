#include "stats/correlations.hpp"

namespace casurf::stats {

double bond_fraction(const Configuration& cfg, Species a, Species b) {
  const Lattice& lat = cfg.lattice();
  std::uint64_t hits = 0;
  const std::uint64_t bonds = 2ull * lat.size();
  for (SiteIndex s = 0; s < lat.size(); ++s) {
    const Species here = cfg.get(s);
    for (const Vec2 d : {Vec2{1, 0}, Vec2{0, 1}}) {
      const Species there = cfg.get(lat.neighbor(s, d));
      if ((here == a && there == b) || (here == b && there == a)) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(bonds);
}

double pair_correlation(const Configuration& cfg, Species a, Species b) {
  const double ta = cfg.coverage(a);
  const double tb = cfg.coverage(b);
  const double random = a == b ? ta * ta : 2.0 * ta * tb;
  if (random <= 0) return 0.0;
  return bond_fraction(cfg, a, b) / random;
}

double axial_correlation(const Configuration& cfg, Species s, std::int32_t r) {
  const Lattice& lat = cfg.lattice();
  const double theta = cfg.coverage(s);
  const double var = theta - theta * theta;
  if (var <= 0) return 0.0;
  std::uint64_t both = 0;
  for (SiteIndex i = 0; i < lat.size(); ++i) {
    if (cfg.get(i) == s && cfg.get(lat.neighbor(i, {r, 0})) == s) ++both;
  }
  const double joint = static_cast<double>(both) / static_cast<double>(lat.size());
  return (joint - theta * theta) / var;
}

}  // namespace casurf::stats
