#include "stats/correlations.hpp"

#include <utility>

namespace casurf::stats {

namespace {

/// Normalized same-species covariance at lattice offset `step`.
double axial_correlation_dir(const Configuration& cfg, Species s, Vec2 step) {
  const Lattice& lat = cfg.lattice();
  const double theta = cfg.coverage(s);
  const double var = theta - theta * theta;
  if (var <= 0) return 0.0;
  std::uint64_t both = 0;
  for (SiteIndex i = 0; i < lat.size(); ++i) {
    if (cfg.get(i) == s && cfg.get(lat.neighbor(i, step)) == s) ++both;
  }
  const double joint = static_cast<double>(both) / static_cast<double>(lat.size());
  return (joint - theta * theta) / var;
}

}  // namespace

double bond_fraction(const Configuration& cfg, Species a, Species b) {
  const Lattice& lat = cfg.lattice();
  std::uint64_t hits = 0;
  const std::uint64_t bonds = 2ull * lat.size();
  for (SiteIndex s = 0; s < lat.size(); ++s) {
    const Species here = cfg.get(s);
    for (const Vec2 d : {Vec2{1, 0}, Vec2{0, 1}}) {
      const Species there = cfg.get(lat.neighbor(s, d));
      if ((here == a && there == b) || (here == b && there == a)) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(bonds);
}

double pair_correlation(const Configuration& cfg, Species a, Species b) {
  const double ta = cfg.coverage(a);
  const double tb = cfg.coverage(b);
  const double random = a == b ? ta * ta : 2.0 * ta * tb;
  if (random <= 0) return 0.0;
  return bond_fraction(cfg, a, b) / random;
}

double axial_correlation(const Configuration& cfg, Species s, std::int32_t r) {
  return axial_correlation_dir(cfg, s, {r, 0});
}

double axial_correlation_y(const Configuration& cfg, Species s, std::int32_t r) {
  return axial_correlation_dir(cfg, s, {0, r});
}

double axial_correlation_xy(const Configuration& cfg, Species s, std::int32_t r) {
  return 0.5 * (axial_correlation_dir(cfg, s, {r, 0}) +
                axial_correlation_dir(cfg, s, {0, r}));
}

std::size_t pair_index(std::size_t num_species, Species a, Species b) {
  auto i = static_cast<std::size_t>(a);
  auto j = static_cast<std::size_t>(b);
  if (i > j) std::swap(i, j);
  // Row-major over the upper triangle: rows 0..i-1 contribute
  // (num_species - k) entries each.
  return i * num_species - i * (i - 1) / 2 + (j - i);
}

std::vector<double> bond_fraction_matrix(const Configuration& cfg) {
  const Lattice& lat = cfg.lattice();
  const std::size_t ns = cfg.num_species();
  std::vector<std::uint64_t> hits(pair_count(ns), 0);
  for (SiteIndex s = 0; s < lat.size(); ++s) {
    const Species here = cfg.get(s);
    for (const Vec2 d : {Vec2{1, 0}, Vec2{0, 1}}) {
      ++hits[pair_index(ns, here, cfg.get(lat.neighbor(s, d)))];
    }
  }
  const auto bonds = static_cast<double>(2ull * lat.size());
  std::vector<double> out(hits.size());
  for (std::size_t p = 0; p < hits.size(); ++p) {
    out[p] = static_cast<double>(hits[p]) / bonds;
  }
  return out;
}

std::vector<double> pair_correlation_matrix(const Configuration& cfg) {
  const std::size_t ns = cfg.num_species();
  std::vector<double> g = bond_fraction_matrix(cfg);
  for (std::size_t a = 0; a < ns; ++a) {
    const double ta = cfg.coverage(static_cast<Species>(a));
    for (std::size_t b = a; b < ns; ++b) {
      const double tb = cfg.coverage(static_cast<Species>(b));
      const double random = a == b ? ta * ta : 2.0 * ta * tb;
      double& cell = g[pair_index(ns, static_cast<Species>(a), static_cast<Species>(b))];
      cell = random <= 0 ? 0.0 : cell / random;
    }
  }
  return g;
}

double axial_decay_length(const Configuration& cfg, Species s, std::int32_t max_r) {
  const double theta = cfg.coverage(s);
  if (theta <= 0 || theta >= 1 || max_r < 1) return 0.0;
  double xi = 0;
  for (std::int32_t r = 1; r <= max_r; ++r) {
    const double c = axial_correlation_xy(cfg, s, r);
    if (c <= 0) break;
    xi += c;
  }
  return xi;
}

}  // namespace casurf::stats
