#pragma once

#include <cstddef>
#include <vector>

#include "lattice/configuration.hpp"

namespace casurf::stats {

/// Fraction of unordered nearest-neighbor bonds whose two sites hold
/// species {a, b} (in either order; a == b counts same-species bonds).
/// The lattice has 2N bonds (one +x and one +y per site, periodic).
[[nodiscard]] double bond_fraction(const Configuration& cfg, Species a, Species b);

/// Normalized nearest-neighbor pair correlation
///   g_ab = P(bond is {a, b}) / P_random(bond is {a, b}),
/// where the denominator assumes independently shuffled occupations
/// (2 theta_a theta_b for a != b, theta_a^2 for a == b). 1 = random
/// mixing; < 1 = the species avoid each other (segregation); > 1 =
/// clustering. Returns 0 when either coverage is 0.
[[nodiscard]] double pair_correlation(const Configuration& cfg, Species a, Species b);

/// Two-point same-species correlation along the +x axis at distance r:
///   c_s(r) = [ P(sigma(x) = s and sigma(x + r e_x) = s) - theta_s^2 ]
///            / (theta_s - theta_s^2),
/// the standard normalized covariance (1 at r = 0, 0 for random mixing).
/// Domain (cluster) sizes show up as the decay length. Returns 0 when the
/// species coverage is 0 or 1.
[[nodiscard]] double axial_correlation(const Configuration& cfg, Species s,
                                       std::int32_t r);

/// Same statistic along the +y axis. On column-partitioned lattices seam
/// artifacts are anisotropic: stripes along x leave c_s^x untouched while
/// c_s^y decays differently, so a +x-only diagnostic can be blind to them.
[[nodiscard]] double axial_correlation_y(const Configuration& cfg, Species s,
                                         std::int32_t r);

/// Axis-averaged two-point correlation, (c_s^x(r) + c_s^y(r)) / 2.
[[nodiscard]] double axial_correlation_xy(const Configuration& cfg, Species s,
                                          std::int32_t r);

/// Number of unordered species pairs {a, b} (a <= b) for `num_species`.
[[nodiscard]] constexpr std::size_t pair_count(std::size_t num_species) {
  return num_species * (num_species + 1) / 2;
}

/// Index of unordered pair {a, b} in the packed upper-triangular layout
/// used by bond_fraction_matrix / pair_correlation_matrix: row-major over
/// a <= b, i.e. (0,0), (0,1), ..., (0,n-1), (1,1), ...
[[nodiscard]] std::size_t pair_index(std::size_t num_species, Species a, Species b);

/// bond_fraction for every unordered pair in ONE pass over the 2N bonds
/// (the per-pair function is O(N) each; the drift sampler needs all pairs
/// every observation). Result is indexed by pair_index.
[[nodiscard]] std::vector<double> bond_fraction_matrix(const Configuration& cfg);

/// pair_correlation for every unordered pair, same packing as
/// bond_fraction_matrix; entries with zero random-mixing probability are 0.
[[nodiscard]] std::vector<double> pair_correlation_matrix(const Configuration& cfg);

/// Axial decay-length estimate from the axis-averaged correlation:
///   xi_s = sum_{r=1..max_r} c_s^xy(r), truncated at the first r where the
/// correlation drops to <= 0 (beyond that the tail is noise). For an
/// exponential profile exp(-r/xi) this sum converges to ~xi; as a drift
/// diagnostic only its *stability* matters, not the absolute calibration.
/// Returns 0 when coverage is 0 or 1 (no fluctuations) or max_r < 1.
[[nodiscard]] double axial_decay_length(const Configuration& cfg, Species s,
                                        std::int32_t max_r);

}  // namespace casurf::stats
