#pragma once

#include "lattice/configuration.hpp"

namespace casurf::stats {

/// Fraction of unordered nearest-neighbor bonds whose two sites hold
/// species {a, b} (in either order; a == b counts same-species bonds).
/// The lattice has 2N bonds (one +x and one +y per site, periodic).
[[nodiscard]] double bond_fraction(const Configuration& cfg, Species a, Species b);

/// Normalized nearest-neighbor pair correlation
///   g_ab = P(bond is {a, b}) / P_random(bond is {a, b}),
/// where the denominator assumes independently shuffled occupations
/// (2 theta_a theta_b for a != b, theta_a^2 for a == b). 1 = random
/// mixing; < 1 = the species avoid each other (segregation); > 1 =
/// clustering. Returns 0 when either coverage is 0.
[[nodiscard]] double pair_correlation(const Configuration& cfg, Species a, Species b);

/// Two-point same-species correlation along the +x axis at distance r:
///   c_s(r) = [ P(sigma(x) = s and sigma(x + r e_x) = s) - theta_s^2 ]
///            / (theta_s - theta_s^2),
/// the standard normalized covariance (1 at r = 0, 0 for random mixing).
/// Domain (cluster) sizes show up as the decay length. Returns 0 when the
/// species coverage is 0 or 1.
[[nodiscard]] double axial_correlation(const Configuration& cfg, Species s,
                                       std::int32_t r);

}  // namespace casurf::stats
