#include "stats/coverage.hpp"

#include <algorithm>
#include <stdexcept>

namespace casurf {

void CoverageRecorder::sample(const Simulator& sim) {
  if (tracked_.empty()) {
    for (std::size_t s = 0; s < sim.configuration().num_species(); ++s) {
      tracked_.push_back(static_cast<Species>(s));
    }
  }
  if (per_species_.empty()) per_species_.resize(tracked_.size());

  const double t = sim.time();
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    // Repeated samples at identical times (e.g. t = 0 twice) are dropped
    // rather than violating monotonicity.
    if (!per_species_[i].empty() && !(t > per_species_[i].times().back())) continue;
    per_species_[i].append(t, sim.configuration().coverage(tracked_[i]));
  }
}

const TimeSeries& CoverageRecorder::series(Species s) const {
  const auto it = std::ranges::find(tracked_, s);
  if (it == tracked_.end() || per_species_.empty()) {
    throw std::out_of_range("CoverageRecorder::series: species not tracked");
  }
  return per_species_[static_cast<std::size_t>(it - tracked_.begin())];
}

TimeSeries CoverageRecorder::combined(const std::vector<Species>& group) const {
  if (group.empty()) throw std::invalid_argument("CoverageRecorder::combined: empty group");
  const TimeSeries& first = series(group.front());
  TimeSeries out;
  for (std::size_t i = 0; i < first.size(); ++i) {
    double sum = 0;
    for (const Species s : group) sum += series(s).value(i);
    out.append(first.time(i), sum);
  }
  return out;
}

}  // namespace casurf
