#include "stats/coverage.hpp"

#include <algorithm>
#include <stdexcept>

namespace casurf {

void CoverageRecorder::sample(const Simulator& sim) {
  if (tracked_.empty()) {
    for (std::size_t s = 0; s < sim.configuration().num_species(); ++s) {
      tracked_.push_back(static_cast<Species>(s));
    }
  }
  if (per_species_.empty()) per_species_.resize(tracked_.size());

  const double t = sim.time();
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    // Repeated samples at identical times (e.g. t = 0 twice) are dropped
    // rather than violating monotonicity.
    if (!per_species_[i].empty() && !(t > per_species_[i].times().back())) continue;
    per_species_[i].append(t, sim.configuration().coverage(tracked_[i]));
  }
}

const TimeSeries& CoverageRecorder::series(Species s) const {
  const auto it = std::ranges::find(tracked_, s);
  if (it == tracked_.end() || per_species_.empty()) {
    throw std::out_of_range("CoverageRecorder::series: species not tracked");
  }
  return per_species_[static_cast<std::size_t>(it - tracked_.begin())];
}

void CoverageRecorder::save_state(StateWriter& w) const {
  w.section("coverage");
  w.vec_u64(tracked_);
  w.u64(per_species_.size());
  for (const TimeSeries& ts : per_species_) {
    w.vec_f64(ts.times());
    w.vec_f64(ts.values());
  }
}

void CoverageRecorder::restore_state(StateReader& r) {
  r.expect_section("coverage");
  tracked_ = r.vec_u64<Species>(SIZE_MAX, "tracked species");
  const std::uint64_t n = r.u64();
  if (n != tracked_.size()) {
    throw StateFormatError("coverage recorder: series/tracked count mismatch");
  }
  per_species_.clear();
  per_species_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::vector<double> times = r.vec_f64(SIZE_MAX, "coverage times");
    std::vector<double> values = r.vec_f64(times.size(), "coverage values");
    per_species_.emplace_back(std::move(times), std::move(values));
  }
}

TimeSeries CoverageRecorder::combined(const std::vector<Species>& group) const {
  if (group.empty()) throw std::invalid_argument("CoverageRecorder::combined: empty group");
  const TimeSeries& first = series(group.front());
  TimeSeries out;
  for (std::size_t i = 0; i < first.size(); ++i) {
    double sum = 0;
    for (const Species s : group) sum += series(s).value(i);
    out.append(first.time(i), sum);
  }
  return out;
}

}  // namespace casurf
