#pragma once

#include <vector>

#include "core/observer.hpp"
#include "core/simulator.hpp"
#include "stats/timeseries.hpp"

namespace casurf {

/// Observer that records the coverage of selected species (or of all
/// species) on the sampling grid — the paper's primary observable
/// ("coverage with CO and O particles", Figs 8-10).
class CoverageRecorder final : public Observer {
 public:
  /// Record every species of the model.
  CoverageRecorder() = default;

  /// Record only the listed species.
  explicit CoverageRecorder(std::vector<Species> tracked) : tracked_(std::move(tracked)) {}

  void sample(const Simulator& sim) override;

  /// Series for species `s` (must have been tracked).
  [[nodiscard]] const TimeSeries& series(Species s) const;

  /// Series of the SUM of coverages of several species (e.g. CO on both
  /// phases of the Pt(100) model). Built on demand from recorded data.
  [[nodiscard]] TimeSeries combined(const std::vector<Species>& group) const;

  [[nodiscard]] const std::vector<Species>& tracked() const { return tracked_; }

  /// Checkpointing: tracked species + every recorded (t, v) pair, bit-exact,
  /// so a resumed run's CSV equals the uninterrupted run's byte for byte.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  std::vector<Species> tracked_;           // empty = all (filled on first sample)
  std::vector<TimeSeries> per_species_;    // parallel to tracked_
};

}  // namespace casurf
