#include "stats/csv.hpp"

#include <sstream>
#include <stdexcept>

#include "io/atomic_file.hpp"

namespace casurf::stats {

void write_csv(const std::string& path, const std::vector<std::string>& headers,
               const std::vector<std::vector<double>>& columns) {
  if (headers.size() != columns.size()) {
    throw std::invalid_argument("write_csv: header/column count mismatch");
  }
  std::ostringstream out;
  for (std::size_t c = 0; c < headers.size(); ++c) {
    out << (c ? "," : "") << headers[c];
  }
  out << '\n';
  std::size_t rows = 0;
  for (const auto& col : columns) rows = std::max(rows, col.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) out << ',';
      if (r < columns[c].size()) out << columns[c][r];
    }
    out << '\n';
  }
  io::atomic_write_file(path, out.view());
}

void write_csv_series(const std::string& path, const std::vector<std::string>& names,
                      const std::vector<TimeSeries>& series) {
  if (names.size() != series.size() || series.empty()) {
    throw std::invalid_argument("write_csv_series: name/series mismatch");
  }
  std::vector<std::string> headers = {"time"};
  std::vector<std::vector<double>> columns = {series.front().times()};
  for (std::size_t i = 0; i < series.size(); ++i) {
    headers.push_back(names[i]);
    columns.push_back(series[i].values());
  }
  write_csv(path, headers, columns);
}

}  // namespace casurf::stats
