#pragma once

#include <string>
#include <vector>

#include "stats/timeseries.hpp"

namespace casurf::stats {

/// Write labelled columns as CSV. Columns may have different lengths;
/// missing cells are left empty. Benchmarks use this to dump the series
/// behind each reproduced figure next to the printed table.
void write_csv(const std::string& path, const std::vector<std::string>& headers,
               const std::vector<std::vector<double>>& columns);

/// Write aligned time series that share a time axis: first column is the
/// time of `series[0]` (all series must be sampled on the same instants).
void write_csv_series(const std::string& path, const std::vector<std::string>& names,
                      const std::vector<TimeSeries>& series);

}  // namespace casurf::stats
