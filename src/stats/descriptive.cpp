#include "stats/descriptive.hpp"

#include <cmath>
#include <stdexcept>

namespace casurf::stats {

double mean(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("mean: empty vector");
  double sum = 0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) throw std::invalid_argument("variance: need >= 2 samples");
  const double m = mean(v);
  double sum2 = 0;
  for (const double x : v) sum2 += (x - m) * (x - m);
  return sum2 / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double autocorrelation(const std::vector<double>& v, std::size_t lag) {
  if (v.size() < lag + 2) throw std::invalid_argument("autocorrelation: series too short");
  const double m = mean(v);
  double num = 0;
  double den = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    den += (v[i] - m) * (v[i] - m);
    if (i + lag < v.size()) num += (v[i] - m) * (v[i + lag] - m);
  }
  if (den == 0) return 0;
  return num / den;
}

double correlation(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) {
    throw std::invalid_argument("correlation: need equal-length vectors (>= 2)");
  }
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0, da = 0, db = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da == 0 || db == 0) return 0;
  return num / std::sqrt(da * db);
}

}  // namespace casurf::stats
