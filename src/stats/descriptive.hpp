#pragma once

#include <cstddef>
#include <vector>

namespace casurf::stats {

[[nodiscard]] double mean(const std::vector<double>& v);
[[nodiscard]] double variance(const std::vector<double>& v);  ///< sample variance
[[nodiscard]] double stddev(const std::vector<double>& v);

/// Normalized autocorrelation at integer lag (r(0) = 1).
[[nodiscard]] double autocorrelation(const std::vector<double>& v, std::size_t lag);

/// Pearson correlation of two equal-length vectors.
[[nodiscard]] double correlation(const std::vector<double>& a,
                                 const std::vector<double>& b);

}  // namespace casurf::stats
