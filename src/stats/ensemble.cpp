#include "stats/ensemble.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace casurf {

double EnsembleResult::stderr_at(std::size_t i) const {
  if (runs < 2) return 0;
  return stddev.value(i) / std::sqrt(static_cast<double>(runs));
}

EnsembleResult run_ensemble(
    const std::function<std::unique_ptr<Simulator>(std::uint64_t seed)>& factory,
    const std::function<double(const Simulator&)>& observable, std::size_t runs,
    double t_end, double dt, unsigned threads, std::uint64_t base_seed) {
  if (!factory || !observable) {
    throw std::invalid_argument("run_ensemble: null factory or observable");
  }
  if (runs == 0 || !(dt > 0) || !(t_end >= 0)) {
    throw std::invalid_argument("run_ensemble: need runs > 0, dt > 0, t_end >= 0");
  }

  const std::size_t points = static_cast<std::size_t>(t_end / dt) + 1;
  // samples[replica * points + grid_point]
  std::vector<double> samples(runs * points, 0.0);

  ThreadPool pool(threads);
  pool.parallel_for(runs, [&](unsigned, std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      auto sim = factory(base_seed + r);
      for (std::size_t g = 0; g < points; ++g) {
        sim->advance_to(static_cast<double>(g) * dt);
        samples[r * points + g] = observable(*sim);
      }
    }
  });

  EnsembleResult result;
  result.runs = runs;
  for (std::size_t g = 0; g < points; ++g) {
    double sum = 0;
    for (std::size_t r = 0; r < runs; ++r) sum += samples[r * points + g];
    const double mean = sum / static_cast<double>(runs);
    double var = 0;
    for (std::size_t r = 0; r < runs; ++r) {
      const double d = samples[r * points + g] - mean;
      var += d * d;
    }
    const double sd = runs > 1 ? std::sqrt(var / static_cast<double>(runs - 1)) : 0.0;
    const double t = static_cast<double>(g) * dt;
    if (g == 0) {
      result.mean.append(t, mean);
      result.stddev.append(t, sd);
    } else {
      result.mean.append(t, mean);
      result.stddev.append(t, sd);
    }
  }
  return result;
}

}  // namespace casurf
