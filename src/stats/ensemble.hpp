#pragma once

#include <functional>
#include <memory>

#include "core/simulator.hpp"
#include "stats/timeseries.hpp"

namespace casurf {

/// Result of a replica ensemble: mean and standard deviation of the
/// observable on a fixed time grid, over `runs` independent simulations.
struct EnsembleResult {
  TimeSeries mean;
  TimeSeries stddev;  ///< sample standard deviation across replicas
  std::size_t runs = 0;

  /// Standard error of the mean at grid point i.
  [[nodiscard]] double stderr_at(std::size_t i) const;
};

/// The paper's *third* route to parallelism (section 1): "the necessary
/// statistics may be obtained from the averaging of a large number of
/// small, independent simulations". Runs `runs` replicas — each built by
/// `factory(seed)` with seeds base_seed, base_seed+1, ... — distributed
/// over `threads` workers, samples `observable` on the grid t = 0, dt,
/// 2 dt, ..., t_end, and reduces mean/stddev per grid point.
///
/// Deterministic: the result depends only on (factory, seeds, grid), not
/// on the thread count — replicas are fully independent (this is why the
/// route needs no partitions, and why it cannot accelerate a *single*
/// large system, which is the gap PNDCA fills).
[[nodiscard]] EnsembleResult run_ensemble(
    const std::function<std::unique_ptr<Simulator>(std::uint64_t seed)>& factory,
    const std::function<double(const Simulator&)>& observable, std::size_t runs,
    double t_end, double dt, unsigned threads = 2, std::uint64_t base_seed = 1);

}  // namespace casurf
