#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace casurf::stats {

namespace {

KsResult ks_against(std::vector<double> samples,
                    const std::function<double(double)>& cdf) {
  if (samples.size() < 8) {
    throw std::invalid_argument("ks test: need at least 8 samples");
  }
  std::ranges::sort(samples);
  const auto n = static_cast<double>(samples.size());
  double d = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(hi - f)});
  }
  KsResult r;
  r.statistic = d;
  r.p_value = kolmogorov_p(d, samples.size());
  return r;
}

}  // namespace

double kolmogorov_p(double d_statistic, std::size_t n) {
  const double sn = std::sqrt(static_cast<double>(n));
  const double x = (sn + 0.12 + 0.11 / sn) * d_statistic;
  if (x < 0.2) return 1.0;
  double sum = 0;
  double sign = 1;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_exponential(std::vector<double> samples, double rate) {
  if (!(rate > 0)) throw std::invalid_argument("ks_exponential: rate must be positive");
  return ks_against(std::move(samples),
                    [rate](double t) { return t <= 0 ? 0.0 : 1.0 - std::exp(-rate * t); });
}

KsResult ks_uniform01(std::vector<double> samples) {
  return ks_against(std::move(samples),
                    [](double u) { return std::clamp(u, 0.0, 1.0); });
}

double chi_square_p(double statistic, std::size_t dof) {
  if (dof == 0) throw std::invalid_argument("chi_square_p: zero dof");
  if (statistic <= 0) return 1.0;
  // Regularized upper incomplete gamma Q(dof/2, x/2) via series/continued
  // fraction (Numerical Recipes style).
  const double a = static_cast<double>(dof) / 2.0;
  const double x = statistic / 2.0;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    // Series for P(a, x), return 1 - P.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::abs(del) < std::abs(sum) * 1e-12) break;
    }
    const double p = sum * std::exp(-x + a * std::log(x) - gln);
    return std::clamp(1.0 - p, 0.0, 1.0);
  }
  // Continued fraction for Q(a, x).
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::abs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-12) break;
  }
  const double q = std::exp(-x + a * std::log(x) - gln) * h;
  return std::clamp(q, 0.0, 1.0);
}

}  // namespace casurf::stats
