#pragma once

#include <vector>

namespace casurf::stats {

/// Result of a Kolmogorov-Smirnov goodness-of-fit test.
struct KsResult {
  double statistic = 0;  ///< D_n = sup |F_emp - F_theory|
  double p_value = 0;    ///< asymptotic Kolmogorov distribution tail
  [[nodiscard]] bool reject(double alpha = 0.01) const { return p_value < alpha; }
};

/// One-sample KS test of `samples` against Exp(rate). This operationalizes
/// Segers' first correctness criterion (paper section 6): the waiting time
/// of a reaction of type i must be distributed as exp(-k_i t).
[[nodiscard]] KsResult ks_exponential(std::vector<double> samples, double rate);

/// One-sample KS test against U(0, 1) (RNG sanity checks).
[[nodiscard]] KsResult ks_uniform01(std::vector<double> samples);

/// Asymptotic Kolmogorov tail Q(x) = 2 sum (-1)^{k-1} exp(-2 k^2 x^2),
/// evaluated at x = (sqrt(n) + 0.12 + 0.11/sqrt(n)) * D.
[[nodiscard]] double kolmogorov_p(double d_statistic, std::size_t n);

/// Pearson chi-square p-value upper bound via the regularized incomplete
/// gamma (for category-count tests, e.g. Segers' second criterion: events
/// of type i occur in proportion k_i / K).
[[nodiscard]] double chi_square_p(double statistic, std::size_t dof);

}  // namespace casurf::stats
