#include "stats/oscillation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace casurf::stats {

OscillationSummary detect_oscillations(const TimeSeries& series, double t_from,
                                       std::size_t resample_points,
                                       std::size_t smooth_window,
                                       double min_separation, double min_prominence) {
  OscillationSummary out;
  if (series.size() < 4) return out;
  const double t0 = std::max(t_from, series.times().front());
  const double t1 = series.times().back();
  if (!(t1 > t0)) return out;

  const TimeSeries grid = series.resample(t0, t1, resample_points);

  // Centered box smoothing to suppress stochastic jitter.
  const std::size_t half = std::max<std::size_t>(1, smooth_window / 2);
  std::vector<double> smooth(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(grid.size() - 1, i + half);
    double sum = 0;
    for (std::size_t j = lo; j <= hi; ++j) sum += grid.value(j);
    smooth[i] = sum / static_cast<double>(hi - lo + 1);
  }

  // Peak scan with separation and prominence gates.
  std::vector<std::size_t> peaks;
  double last_peak_time = -1e300;
  for (std::size_t i = 1; i + 1 < smooth.size(); ++i) {
    if (!(smooth[i] > smooth[i - 1] && smooth[i] >= smooth[i + 1])) continue;
    if (grid.time(i) - last_peak_time < min_separation) continue;
    // Prominence: drop to the lowest point between this candidate and the
    // previous/next equal-or-higher sample (bounded scan).
    double left_min = smooth[i];
    for (std::size_t j = i; j-- > 0;) {
      left_min = std::min(left_min, smooth[j]);
      if (smooth[j] > smooth[i]) break;
    }
    double right_min = smooth[i];
    for (std::size_t j = i + 1; j < smooth.size(); ++j) {
      right_min = std::min(right_min, smooth[j]);
      if (smooth[j] > smooth[i]) break;
    }
    const double prominence = smooth[i] - std::max(left_min, right_min);
    if (prominence < min_prominence) continue;
    peaks.push_back(i);
    last_peak_time = grid.time(i);
  }

  out.num_peaks = peaks.size();
  if (peaks.size() >= 2) {
    double period_sum = 0;
    for (std::size_t k = 1; k < peaks.size(); ++k) {
      period_sum += grid.time(peaks[k]) - grid.time(peaks[k - 1]);
    }
    out.mean_period = period_sum / static_cast<double>(peaks.size() - 1);
  }
  if (!peaks.empty()) {
    double amp_sum = 0;
    std::size_t amp_n = 0;
    for (std::size_t k = 0; k < peaks.size(); ++k) {
      const std::size_t from = peaks[k];
      const std::size_t to = k + 1 < peaks.size() ? peaks[k + 1] : smooth.size() - 1;
      double trough = smooth[from];
      for (std::size_t j = from; j <= to; ++j) trough = std::min(trough, smooth[j]);
      amp_sum += smooth[from] - trough;
      ++amp_n;
    }
    out.mean_amplitude = amp_sum / static_cast<double>(amp_n);
  }
  return out;
}

}  // namespace casurf::stats
