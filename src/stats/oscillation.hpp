#pragma once

#include <cstddef>
#include <vector>

#include "stats/timeseries.hpp"

namespace casurf::stats {

/// Summary of an oscillating signal, extracted by smoothed peak detection.
/// The paper's accuracy comparison for the Pt(100) model rests on whether
/// a CA variant reproduces, shifts, or kills the coverage oscillations
/// (Figs 9-10); these three numbers quantify that.
struct OscillationSummary {
  std::size_t num_peaks = 0;
  double mean_period = 0;      ///< mean peak-to-peak distance (0 if < 2 peaks)
  double mean_amplitude = 0;   ///< mean (peak - following trough) (0 if none)

  [[nodiscard]] bool oscillating(std::size_t min_peaks = 3,
                                 double min_amplitude = 0.05) const {
    return num_peaks >= min_peaks && mean_amplitude >= min_amplitude;
  }
};

/// Detect oscillations in a series after discarding a transient
/// [t < t_from]. The series is resampled uniformly, box-smoothed over
/// `smooth_window` samples, and peaks are strict local maxima separated by
/// at least `min_separation` time units with prominence over the
/// neighboring troughs of at least `min_prominence`.
[[nodiscard]] OscillationSummary detect_oscillations(const TimeSeries& series,
                                                     double t_from = 0.0,
                                                     std::size_t resample_points = 400,
                                                     std::size_t smooth_window = 5,
                                                     double min_separation = 1.0,
                                                     double min_prominence = 0.03);

}  // namespace casurf::stats
