#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace casurf {

namespace {

/// Uniform grid over [t0, t1] with (up to) `points` samples, built by
/// index — t_i = t0 + (t1 - t0) * i / (points - 1), never by repeated
/// addition — and guaranteed strictly increasing: when the window is so
/// small relative to t0 that adjacent grid times collide in double
/// precision, the colliding points are dropped instead of poisoning every
/// consumer with a "time must increase" throw. Both endpoints are kept.
std::vector<double> uniform_grid(double t0, double t1, std::size_t points) {
  std::vector<double> grid;
  grid.reserve(points);
  grid.push_back(t0);
  for (std::size_t i = 1; i < points; ++i) {
    const double t = i + 1 == points
                         ? t1
                         : t0 + (t1 - t0) * static_cast<double>(i) /
                                   static_cast<double>(points - 1);
    if (t > grid.back()) grid.push_back(t);
  }
  return grid;
}

}  // namespace

TimeSeries::TimeSeries(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  if (times_.size() != values_.size()) {
    throw std::invalid_argument("TimeSeries: times/values size mismatch");
  }
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (!(times_[i] > times_[i - 1])) {
      throw std::invalid_argument("TimeSeries: times must be strictly increasing");
    }
  }
}

void TimeSeries::append(double t, double v) {
  if (!times_.empty() && !(t > times_.back())) {
    throw std::invalid_argument("TimeSeries::append: time must increase");
  }
  times_.push_back(t);
  values_.push_back(v);
}

double TimeSeries::at(double t) const {
  if (times_.empty()) throw std::out_of_range("TimeSeries::at: empty series");
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::ranges::upper_bound(times_, t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double f = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return values_[lo] + f * (values_[hi] - values_[lo]);
}

TimeSeries TimeSeries::resample(double t0, double t1, std::size_t points) const {
  if (points < 2) throw std::invalid_argument("TimeSeries::resample: need >= 2 points");
  if (!(t1 > t0)) throw std::invalid_argument("TimeSeries::resample: need t1 > t0");
  TimeSeries out;
  for (const double t : uniform_grid(t0, t1, points)) out.append(t, at(t));
  return out;
}

double TimeSeries::mean_after(double t_from) const {
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= t_from) {
      sum += values_[i];
      ++n;
    }
  }
  return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                : sum / static_cast<double>(n);
}

double TimeSeries::stddev_after(double t_from) const {
  const double mean = mean_after(t_from);
  double sum2 = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= t_from) {
      const double d = values_[i] - mean;
      sum2 += d * d;
      ++n;
    }
  }
  // Fewer than two qualifying samples: the estimator is undefined — NaN,
  // not a silent 0.0 that would read as "perfectly converged".
  return n < 2 ? std::numeric_limits<double>::quiet_NaN()
               : std::sqrt(sum2 / static_cast<double>(n - 1));
}

TimeSeries ensemble_mean(const std::vector<TimeSeries>& runs, std::size_t points) {
  if (runs.empty()) throw std::invalid_argument("ensemble_mean: no runs");
  double t0 = -std::numeric_limits<double>::infinity();
  double t1 = std::numeric_limits<double>::infinity();
  for (const TimeSeries& run : runs) {
    if (run.empty()) throw std::invalid_argument("ensemble_mean: empty run");
    t0 = std::max(t0, run.times().front());
    t1 = std::min(t1, run.times().back());
  }
  if (!(t1 > t0)) throw std::invalid_argument("ensemble_mean: runs do not overlap");
  TimeSeries out;
  for (const double t : uniform_grid(t0, t1, points)) {
    double sum = 0;
    for (const TimeSeries& run : runs) sum += run.at(t);
    out.append(t, sum / static_cast<double>(runs.size()));
  }
  return out;
}

double mean_abs_difference(const TimeSeries& a, const TimeSeries& b, std::size_t points) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("mean_abs_difference: empty series");
  }
  const double t0 = std::max(a.times().front(), b.times().front());
  const double t1 = std::min(a.times().back(), b.times().back());
  if (!(t1 > t0)) throw std::invalid_argument("mean_abs_difference: no overlap");
  const std::vector<double> grid = uniform_grid(t0, t1, points);
  double sum = 0;
  for (const double t : grid) sum += std::abs(a.at(t) - b.at(t));
  return sum / static_cast<double>(grid.size());
}

}  // namespace casurf
