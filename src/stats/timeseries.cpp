#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace casurf {

TimeSeries::TimeSeries(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  if (times_.size() != values_.size()) {
    throw std::invalid_argument("TimeSeries: times/values size mismatch");
  }
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (!(times_[i] > times_[i - 1])) {
      throw std::invalid_argument("TimeSeries: times must be strictly increasing");
    }
  }
}

void TimeSeries::append(double t, double v) {
  if (!times_.empty() && !(t > times_.back())) {
    throw std::invalid_argument("TimeSeries::append: time must increase");
  }
  times_.push_back(t);
  values_.push_back(v);
}

double TimeSeries::at(double t) const {
  if (times_.empty()) throw std::out_of_range("TimeSeries::at: empty series");
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::ranges::upper_bound(times_, t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double f = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return values_[lo] + f * (values_[hi] - values_[lo]);
}

TimeSeries TimeSeries::resample(double t0, double t1, std::size_t points) const {
  if (points < 2) throw std::invalid_argument("TimeSeries::resample: need >= 2 points");
  TimeSeries out;
  for (std::size_t i = 0; i < points; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                              static_cast<double>(points - 1);
    out.append(t, at(t));
  }
  return out;
}

double TimeSeries::mean_after(double t_from) const {
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= t_from) {
      sum += values_[i];
      ++n;
    }
  }
  return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                : sum / static_cast<double>(n);
}

double TimeSeries::stddev_after(double t_from) const {
  const double mean = mean_after(t_from);
  double sum2 = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= t_from) {
      const double d = values_[i] - mean;
      sum2 += d * d;
      ++n;
    }
  }
  return n < 2 ? 0.0 : std::sqrt(sum2 / static_cast<double>(n - 1));
}

TimeSeries ensemble_mean(const std::vector<TimeSeries>& runs, std::size_t points) {
  if (runs.empty()) throw std::invalid_argument("ensemble_mean: no runs");
  double t0 = -std::numeric_limits<double>::infinity();
  double t1 = std::numeric_limits<double>::infinity();
  for (const TimeSeries& run : runs) {
    if (run.empty()) throw std::invalid_argument("ensemble_mean: empty run");
    t0 = std::max(t0, run.times().front());
    t1 = std::min(t1, run.times().back());
  }
  if (!(t1 > t0)) throw std::invalid_argument("ensemble_mean: runs do not overlap");
  TimeSeries out;
  for (std::size_t i = 0; i < points; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                              static_cast<double>(points - 1);
    double sum = 0;
    for (const TimeSeries& run : runs) sum += run.at(t);
    out.append(t, sum / static_cast<double>(runs.size()));
  }
  return out;
}

double mean_abs_difference(const TimeSeries& a, const TimeSeries& b, std::size_t points) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("mean_abs_difference: empty series");
  }
  const double t0 = std::max(a.times().front(), b.times().front());
  const double t1 = std::min(a.times().back(), b.times().back());
  if (!(t1 > t0)) throw std::invalid_argument("mean_abs_difference: no overlap");
  double sum = 0;
  for (std::size_t i = 0; i < points; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                              static_cast<double>(points - 1);
    sum += std::abs(a.at(t) - b.at(t));
  }
  return sum / static_cast<double>(points);
}

}  // namespace casurf
