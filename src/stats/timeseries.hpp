#pragma once

#include <cstddef>
#include <vector>

namespace casurf {

/// An irregularly-sampled scalar time series (t_i, v_i) with t strictly
/// increasing, plus the resampling/combination operations the experiment
/// harness needs (ensemble averaging across runs whose sample instants
/// differ, RSM-vs-CA curve distances, steady-state windows).
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(std::vector<double> times, std::vector<double> values);

  void append(double t, double v);

  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] double time(std::size_t i) const { return times_.at(i); }
  [[nodiscard]] double value(std::size_t i) const { return values_.at(i); }

  /// Linear interpolation at time t; clamps to the end values outside the
  /// sampled range. Requires a non-empty series.
  [[nodiscard]] double at(double t) const;

  /// Resample onto a uniform grid over [t0, t1] (requires t1 > t0 and
  /// points >= 2). Grid times are computed by index, never by accumulation;
  /// when the window is so narrow relative to t0 that adjacent grid times
  /// collide in double precision, the collided points are dropped, so the
  /// result may hold fewer than `points` samples but is always strictly
  /// increasing with both endpoints present.
  [[nodiscard]] TimeSeries resample(double t0, double t1, std::size_t points) const;

  /// Mean of the values with t >= t_from (time-unweighted); the usual
  /// steady-state coverage estimator.
  [[nodiscard]] double mean_after(double t_from) const;

  /// Sample standard deviation of values with t >= t_from; NaN when fewer
  /// than two samples qualify (the estimator is undefined there — a silent
  /// 0 would read as perfect convergence).
  [[nodiscard]] double stddev_after(double t_from) const;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

/// Pointwise average of several series on a common uniform grid spanning
/// the overlap of all inputs.
[[nodiscard]] TimeSeries ensemble_mean(const std::vector<TimeSeries>& runs,
                                       std::size_t points = 200);

/// Mean absolute difference between two series, compared on a uniform grid
/// over the overlap of their domains. The scalar "distance from RSM" used
/// throughout the accuracy experiments.
[[nodiscard]] double mean_abs_difference(const TimeSeries& a, const TimeSeries& b,
                                         std::size_t points = 200);

}  // namespace casurf
