#pragma once

#include <cstddef>
#include <vector>

namespace casurf {

/// An irregularly-sampled scalar time series (t_i, v_i) with t strictly
/// increasing, plus the resampling/combination operations the experiment
/// harness needs (ensemble averaging across runs whose sample instants
/// differ, RSM-vs-CA curve distances, steady-state windows).
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(std::vector<double> times, std::vector<double> values);

  void append(double t, double v);

  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] double time(std::size_t i) const { return times_.at(i); }
  [[nodiscard]] double value(std::size_t i) const { return values_.at(i); }

  /// Linear interpolation at time t; clamps to the end values outside the
  /// sampled range. Requires a non-empty series.
  [[nodiscard]] double at(double t) const;

  /// Resample onto a uniform grid [t0, t1] with `points` samples.
  [[nodiscard]] TimeSeries resample(double t0, double t1, std::size_t points) const;

  /// Mean of the values with t >= t_from (time-unweighted); the usual
  /// steady-state coverage estimator.
  [[nodiscard]] double mean_after(double t_from) const;

  /// Standard deviation of values with t >= t_from.
  [[nodiscard]] double stddev_after(double t_from) const;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

/// Pointwise average of several series on a common uniform grid spanning
/// the overlap of all inputs.
[[nodiscard]] TimeSeries ensemble_mean(const std::vector<TimeSeries>& runs,
                                       std::size_t points = 200);

/// Mean absolute difference between two series, compared on a uniform grid
/// over the overlap of their domains. The scalar "distance from RSM" used
/// throughout the accuracy experiments.
[[nodiscard]] double mean_abs_difference(const TimeSeries& a, const TimeSeries& b,
                                         std::size_t points = 200);

}  // namespace casurf
