#include "util/failpoint.hpp"

#include <cerrno>
#include <cstdlib>
#include <mutex>

#include "rng/counter_rng.hpp"

namespace casurf::fail {

namespace {

struct ParsedTerm {
  std::string name;
  bool probabilistic = false;  // false: hit@N, true: prob@P
  std::uint64_t hit = 0;       // 1-based evaluation index to fire on
  double prob = 0;
};

/// Grammar: SPEC := TERM ("," TERM)*; TERM := NAME "=" ("hit@" N | "prob@" P)
/// with N a positive integer and P a probability in [0, 1]. NAME is any
/// nonempty string without "=" or "," (the wired sites use the slash
/// taxonomy of the metrics probes, e.g. "io/atomic_write/fsync").
std::string parse_spec(const std::string& spec, std::vector<ParsedTerm>& out) {
  if (!spec.empty() && spec.back() == ',') {
    return "empty failpoint term (trailing comma)";
  }
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string term = spec.substr(pos, end - pos);
    pos = end + 1;
    if (term.empty()) return "empty failpoint term (stray comma?)";

    const std::size_t eq = term.find('=');
    if (eq == std::string::npos || eq == 0) {
      return "failpoint term '" + term + "' is not NAME=hit@N or NAME=prob@P";
    }
    ParsedTerm t;
    t.name = term.substr(0, eq);
    const std::string trigger = term.substr(eq + 1);
    const auto parse_arg = [&](const char* prefix) -> const char* {
      const std::size_t n = std::char_traits<char>::length(prefix);
      return trigger.compare(0, n, prefix) == 0 ? trigger.c_str() + n : nullptr;
    };
    if (const char* arg = parse_arg("hit@")) {
      errno = 0;
      char* tail = nullptr;
      const unsigned long long n = std::strtoull(arg, &tail, 10);
      if (tail == arg || *tail != '\0' || errno == ERANGE || n == 0 || *arg == '-') {
        return "failpoint '" + t.name + "': hit@ expects a positive integer, got '" +
               arg + "'";
      }
      t.hit = n;
    } else if (const char* parg = parse_arg("prob@")) {
      errno = 0;
      char* tail = nullptr;
      const double p = std::strtod(parg, &tail);
      if (tail == parg || *tail != '\0' || errno == ERANGE || !(p >= 0) || !(p <= 1)) {
        return "failpoint '" + t.name +
               "': prob@ expects a probability in [0, 1], got '" + parg + "'";
      }
      t.probabilistic = true;
      t.prob = p;
    } else {
      return "failpoint '" + t.name + "': unknown trigger '" + trigger +
             "' (expected hit@N or prob@P)";
    }
    out.push_back(std::move(t));
  }
  return {};
}

#ifndef CASURF_NO_FAILPOINTS

/// FNV-1a, used instead of std::hash so the prob@P streams are identical
/// across processes and library versions (replayability is the point).
std::uint64_t name_hash(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct Entry {
  ParsedTerm term;
  std::uint64_t stream_base = 0;  // CounterRng stream of this failpoint
  std::uint64_t evaluations = 0;
  std::uint64_t fires = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<Entry> entries;
  std::uint64_t seed = 0;
};

Registry& registry() {
  static Registry r;
  return r;
}

#endif  // CASURF_NO_FAILPOINTS

}  // namespace

std::string validate(const std::string& spec) {
  std::vector<ParsedTerm> terms;
  if (std::string err = parse_spec(spec, terms); !err.empty()) return err;
  if (!kFailpointsCompiled && !terms.empty()) {
    return "failpoints requested but this build compiled them out "
           "(CASURF_FAILPOINTS=OFF)";
  }
  return {};
}

#ifdef CASURF_NO_FAILPOINTS

std::string configure(const std::string& spec) { return validate(spec); }
void set_seed(std::uint64_t) {}
void reset() {}
std::vector<std::string> armed_names() { return {}; }
std::uint64_t evaluations(const std::string&) { return 0; }
std::uint64_t fires(const std::string&) { return 0; }

#else

std::string configure(const std::string& spec) {
  std::vector<ParsedTerm> terms;
  if (std::string err = parse_spec(spec, terms); !err.empty()) return err;
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.entries.clear();
  for (ParsedTerm& t : terms) {
    Entry e;
    e.stream_base = CounterRng::stream_base(r.seed, name_hash(t.name));
    e.term = std::move(t);
    r.entries.push_back(std::move(e));
  }
  detail::g_armed.store(static_cast<int>(r.entries.size()),
                        std::memory_order_relaxed);
  return {};
}

void set_seed(std::uint64_t seed) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.seed = seed;
  for (Entry& e : r.entries) {
    e.stream_base = CounterRng::stream_base(seed, name_hash(e.term.name));
  }
}

void reset() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.entries.clear();
  detail::g_armed.store(0, std::memory_order_relaxed);
}

std::vector<std::string> armed_names() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.entries.size());
  for (const Entry& e : r.entries) names.push_back(e.term.name);
  return names;
}

std::uint64_t evaluations(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  for (const Entry& e : r.entries) {
    if (e.term.name == name) return e.evaluations;
  }
  return 0;
}

std::uint64_t fires(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  for (const Entry& e : r.entries) {
    if (e.term.name == name) return e.fires;
  }
  return 0;
}

namespace detail {

std::atomic<int> g_armed{0};

bool should_fail(const char* name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  for (Entry& e : r.entries) {
    if (e.term.name != name) continue;
    const std::uint64_t n = ++e.evaluations;
    bool fires_now;
    if (e.term.probabilistic) {
      // The n-th evaluation's draw is a pure function of (seed, name, n):
      // the firing pattern replays exactly for a fixed seed and spec.
      fires_now = CounterRng::to_unit(CounterRng::nth(e.stream_base, n)) <
                  e.term.prob;
    } else {
      fires_now = n == e.term.hit;
    }
    if (fires_now) ++e.fires;
    return fires_now;
  }
  return false;
}

}  // namespace detail

#endif  // CASURF_NO_FAILPOINTS

}  // namespace casurf::fail
