#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace casurf::fail {

/// Deterministic fault injection: named failpoints compiled into the I/O,
/// threading, and fast-path layers, armed at runtime from a spec string
/// (casurf_run --failpoints / env CASURF_FAILPOINTS). Each armed failpoint
/// fires according to its trigger:
///
///   NAME=hit@N    fire exactly on the N-th evaluation since arming (once)
///   NAME=prob@P   fire each evaluation with probability P, drawn from a
///                 CounterRng stream keyed by (seed, NAME, evaluation index)
///                 — so a given (seed, spec) replays the identical firing
///                 pattern, which is what makes torture runs reproducible
///
/// Same discipline as the metrics probes (obs/metrics.hpp): a disarmed
/// registry costs one relaxed atomic load per site, and the CMake option
/// CASURF_FAILPOINTS=OFF (-DCASURF_NO_FAILPOINTS) compiles every site out
/// to a constant-false branch — Failpoint becomes an empty type, checked
/// by a static_assert below. Firing never touches simulation RNG or state:
/// a run with failpoints that never fire is bit-identical to a bare run.
///
/// The registry is process-global. Arming is meant for one place near
/// main(); the wired sites only evaluate.

#ifdef CASURF_NO_FAILPOINTS
inline constexpr bool kFailpointsCompiled = false;
#else
inline constexpr bool kFailpointsCompiled = true;
#endif

/// Parse `spec` without arming anything; returns the empty string when the
/// spec is well-formed, else a message naming the first bad term. In the
/// compiled-out build every nonempty spec is an error (the caller should
/// refuse it loudly rather than silently run faultless).
[[nodiscard]] std::string validate(const std::string& spec);

/// Replace the armed set with `spec` (validate() grammar; the empty spec
/// disarms everything). Returns the empty string on success, else the
/// validation error — in which case the previously armed set is unchanged.
std::string configure(const std::string& spec);

/// Seed of the prob@P trigger streams (defaults to 0). Set it to the run's
/// --seed so the injected failures replay with the trajectory.
void set_seed(std::uint64_t seed);

/// Disarm every failpoint and forget all evaluation/fire counts.
void reset();

/// Names currently armed, in spec order.
[[nodiscard]] std::vector<std::string> armed_names();

/// Evaluations of / fires by the named failpoint since it was armed
/// (0 for unarmed names — disarmed sites do not count).
[[nodiscard]] std::uint64_t evaluations(const std::string& name);
[[nodiscard]] std::uint64_t fires(const std::string& name);

namespace detail {
#ifndef CASURF_NO_FAILPOINTS
extern std::atomic<int> g_armed;  ///< number of armed failpoints
[[nodiscard]] bool should_fail(const char* name);
#endif
}  // namespace detail

/// A wired failpoint site. Constructed (constexpr) with the site's name;
/// fire() asks the registry whether the injected failure triggers now.
/// Disarmed cost: one relaxed load. Compiled-out cost: nothing.
class Failpoint {
 public:
  explicit constexpr Failpoint(const char* name)
#ifndef CASURF_NO_FAILPOINTS
      : name_(name)
#endif
  {
    (void)name;
  }

  [[nodiscard]] bool fire() const {
#ifdef CASURF_NO_FAILPOINTS
    return false;
#else
    if (detail::g_armed.load(std::memory_order_relaxed) == 0) return false;
    return detail::should_fail(name_);
#endif
  }

 private:
#ifndef CASURF_NO_FAILPOINTS
  const char* name_;
#endif
};

#ifdef CASURF_NO_FAILPOINTS
static_assert(std::is_empty_v<Failpoint>,
              "Failpoint must compile out to an empty no-op under "
              "CASURF_FAILPOINTS=OFF");
#endif

}  // namespace casurf::fail
