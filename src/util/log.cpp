#include "util/log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json.hpp"

namespace casurf::log {

const char* to_string(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "unknown";
}

bool parse_level(std::string_view text, Level& out) {
  if (text == "debug") return out = Level::kDebug, true;
  if (text == "info") return out = Level::kInfo, true;
  if (text == "warn") return out = Level::kWarn, true;
  if (text == "error") return out = Level::kError, true;
  if (text == "off") return out = Level::kOff, true;
  return false;
}

#ifdef CASURF_NO_METRICS

std::string configure(Level level, const std::string& path) {
  (void)level, (void)path;
  return "structured logging is compiled out (CASURF_METRICS=OFF)";
}

std::string configure_from_env() { return {}; }

Level threshold() { return Level::kOff; }

#else  // logging compiled in

namespace detail {

std::atomic<int> g_level{static_cast<int>(Level::kWarn)};

namespace {
// The sink fd. Never closed while another thread may be mid-emit: swaps
// leak the old fd by design (configure happens once near main; a handful
// of fds is cheaper than a lock on every line).
std::atomic<int> g_fd{STDERR_FILENO};
}  // namespace

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double wall_seconds() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::system_clock::now().time_since_epoch())
                 .count()) /
         1e6;
}

void emit_line(std::string&& line) {
  line += '\n';
  const int fd = g_fd.load(std::memory_order_acquire);
  // One write(2) per line is the interleaving guarantee; the resume loop
  // only runs in the (regular-file) corner where the kernel wrote a prefix.
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // sink went away; logging must never take the process down
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace detail

std::string configure(Level level, const std::string& path) {
  if (!path.empty() && path != "stderr") {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
      return "cannot open log file " + path + ": " + std::strerror(errno);
    }
    detail::g_fd.store(fd, std::memory_order_release);
  } else {
    detail::g_fd.store(STDERR_FILENO, std::memory_order_release);
  }
  detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return {};
}

std::string configure_from_env() {
  const char* env = std::getenv("CASURF_LOG");
  if (env == nullptr || *env == '\0') return {};
  Level level = threshold();
  std::string file;
  std::string_view rest(env);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view term = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (term.empty()) continue;
    if (term.rfind("level=", 0) == 0) term = term.substr(6);
    if (parse_level(term, level)) continue;
    if (term.rfind("file=", 0) == 0) {
      file = std::string(term.substr(5));
      continue;
    }
    return "CASURF_LOG: unrecognised term \"" + std::string(term) + '"';
  }
  return configure(level, file);
}

Level threshold() {
  return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
}

bool RateLimit::allow() {
  const std::uint64_t now = detail::mono_ns();
  std::lock_guard lock(mutex_);
  if (last_ns_ != 0 && now > last_ns_) {
    tokens_ = std::min(
        burst_, tokens_ + rate_ * static_cast<double>(now - last_ns_) / 1e9);
  }
  last_ns_ = now;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

Event::Event(Level level, std::string_view component, std::string_view event,
             RateLimit* limit) {
  if (static_cast<int>(level) <
      detail::g_level.load(std::memory_order_relaxed)) {
    return;
  }
  if (limit != nullptr && !limit->allow()) return;
  char head[64];
  std::snprintf(head, sizeof(head), "{\"ts\":%.6f,\"mono_ns\":%" PRIu64,
                detail::wall_seconds(), detail::mono_ns());
  line_ = head;
  line_ += ",\"level\":\"";
  line_ += to_string(level);
  line_ += "\",\"component\":";
  obs::json::append_quoted(line_, component);
  line_ += ",\"event\":";
  obs::json::append_quoted(line_, event);
}

Event::~Event() {
  if (line_.empty()) return;
  line_ += '}';
  detail::emit_line(std::move(line_));
}

Event& Event::str(std::string_view key, std::string_view value) {
  if (line_.empty()) return *this;
  line_ += ',';
  obs::json::append_quoted(line_, key);
  line_ += ':';
  obs::json::append_quoted(line_, value);
  return *this;
}

Event& Event::u64(std::string_view key, std::uint64_t value) {
  if (line_.empty()) return *this;
  line_ += ',';
  obs::json::append_quoted(line_, key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), ":%" PRIu64, value);
  line_ += buf;
  return *this;
}

Event& Event::i64(std::string_view key, std::int64_t value) {
  if (line_.empty()) return *this;
  line_ += ',';
  obs::json::append_quoted(line_, key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), ":%" PRId64, value);
  line_ += buf;
  return *this;
}

Event& Event::f64(std::string_view key, double value) {
  if (line_.empty()) return *this;
  line_ += ',';
  obs::json::append_quoted(line_, key);
  line_ += ':';
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // JSON has no NaN/Inf; mirror obs::json::Writer::number.
  if (std::strstr(buf, "nan") != nullptr || std::strstr(buf, "inf") != nullptr) {
    line_ += "null";
  } else {
    line_ += buf;
  }
  return *this;
}

Event& Event::boolean(std::string_view key, bool value) {
  if (line_.empty()) return *this;
  line_ += ',';
  obs::json::append_quoted(line_, key);
  line_ += value ? ":true" : ":false";
  return *this;
}

#endif  // CASURF_NO_METRICS

}  // namespace casurf::log
