#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>

namespace casurf::log {

/// Structured JSON-lines logging for the serving layer. Every event is one
/// self-contained JSON object on one line:
///
///   {"ts":1754640000.123456,"mono_ns":8123456789,"level":"info",
///    "component":"serve.daemon","event":"job_scheduled","job":7,...}
///
/// Design constraints (docs/OBSERVABILITY.md, "Serving telemetry"):
///   - a line is emitted with a single write(2) on an O_APPEND fd, so
///     concurrent writers — the daemon's runner + HTTP threads AND forked
///     casurf_run supervisors sharing the inherited fd — never interleave
///     bytes within a line;
///   - a disabled site (level below threshold) costs one relaxed atomic
///     load plus a branch, the same discipline as obs::MetricsRegistry
///     probes and fail::Failpoint sites;
///   - CASURF_METRICS=OFF (-DCASURF_NO_METRICS) compiles the subsystem out:
///     Event becomes an empty type (static_assert below), configure()
///     refuses explicit requests, and CASURF_LOG is ignored.
///
/// Configuration precedence: compiled default (warn → stderr), then the
/// CASURF_LOG environment variable (`configure_from_env`), then explicit
/// --log-level / --log-file flags (`configure`).

#ifdef CASURF_NO_METRICS
inline constexpr bool kLogCompiled = false;
#else
inline constexpr bool kLogCompiled = true;
#endif

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] const char* to_string(Level level);

/// Parse "debug"/"info"/"warn"/"error"/"off" into `out`; false on any
/// other spelling (out untouched).
[[nodiscard]] bool parse_level(std::string_view text, Level& out);

/// Point the logger at `path` ("" or "stderr" → standard error) with the
/// given threshold. Returns the empty string on success, else a message
/// (unwritable path, or logging compiled out while a sink/level was
/// explicitly requested). The sink fd is opened O_APPEND|O_CLOEXEC: append
/// atomicity across forked supervisors, no leak into exec'd workers.
std::string configure(Level level, const std::string& path);

/// Apply the CASURF_LOG environment variable, e.g.
/// `CASURF_LOG=level=debug,file=/tmp/casurf.log` (a bare `debug` is
/// shorthand for `level=debug`). Unset/empty → no change. Returns "" on
/// success or when compiled out (env config degrades silently; only
/// explicit flags refuse), else a parse error.
std::string configure_from_env();

/// Current threshold (kOff when compiled out).
[[nodiscard]] Level threshold();

namespace detail {
#ifndef CASURF_NO_METRICS
extern std::atomic<int> g_level;  ///< Level as int; relaxed site-gate load
void emit_line(std::string&& line);  // appends '\n', single write(2)
[[nodiscard]] std::uint64_t mono_ns();
[[nodiscard]] double wall_seconds();
#endif
}  // namespace detail

/// One site's token bucket: `rate` tokens/second, up to `burst` banked.
/// Use as a function-local static next to a hot log site so a failure
/// storm (restart loops, scrape errors) cannot flood the journal:
///
///   static log::RateLimit limit(1.0, 5.0);
///   log::Event(log::Level::kWarn, "serve.daemon", "scrape_failed", &limit)
///       .str("why", err);
///
/// allow() is thread-safe; compiled out it is constant-false (the Event it
/// gates is a no-op anyway).
class RateLimit {
 public:
  constexpr RateLimit(double rate, double burst)
#ifndef CASURF_NO_METRICS
      : rate_(rate), burst_(burst), tokens_(burst)
#endif
  {
    (void)rate, (void)burst;
  }

  [[nodiscard]] bool allow();

 private:
#ifndef CASURF_NO_METRICS
  double rate_;
  double burst_;
  std::mutex mutex_;
  double tokens_;
  std::uint64_t last_ns_ = 0;
#endif
};

/// Fluent one-line event builder. Constructing below the threshold (or
/// with an exhausted RateLimit) arms nothing; the destructor of an armed
/// Event emits the finished line. Field values go through the same escaper
/// as every other JSON surface, so hostile strings cannot break a line.
class Event {
 public:
  Event(Level level, std::string_view component, std::string_view event,
        RateLimit* limit = nullptr);
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  Event& str(std::string_view key, std::string_view value);
  Event& u64(std::string_view key, std::uint64_t value);
  Event& i64(std::string_view key, std::int64_t value);
  Event& f64(std::string_view key, double value);
  Event& boolean(std::string_view key, bool value);

 private:
#ifndef CASURF_NO_METRICS
  std::string line_;  ///< empty ⇔ disarmed
#endif
};

#ifdef CASURF_NO_METRICS
inline Event::Event(Level, std::string_view, std::string_view, RateLimit*) {}
inline Event::~Event() = default;
inline Event& Event::str(std::string_view, std::string_view) { return *this; }
inline Event& Event::u64(std::string_view, std::uint64_t) { return *this; }
inline Event& Event::i64(std::string_view, std::int64_t) { return *this; }
inline Event& Event::f64(std::string_view, double) { return *this; }
inline Event& Event::boolean(std::string_view, bool) { return *this; }
inline bool RateLimit::allow() { return false; }
static_assert(std::is_empty_v<Event>,
              "log::Event must compile out to an empty no-op under "
              "CASURF_METRICS=OFF");
#endif

}  // namespace casurf::log
