# Kill-and-restart test for casurf_run's checkpoint/resume flags, driven as
#   cmake -DAPP=<casurf_run binary> -DWORKDIR=<scratch dir> -P checkpoint_cli_test.cmake
#
# Scenario: a run crashes mid-flight (--die-at calls _Exit, so no
# destructors, no final outputs — exactly what a power loss leaves behind),
# is resumed from its periodic checkpoint, and must produce outputs
# byte-identical to a run that was never interrupted. Then the primary
# checkpoint is corrupted and the resume must fall back to the rotated
# .bak copy — and still match.

if(NOT DEFINED APP OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DAPP=... -DWORKDIR=... -P checkpoint_cli_test.cmake")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

set(COMMON --model zgb --algorithm vssm --size 32x32 --t-end 6 --dt 1 --seed 11 --quiet)

function(run_expecting code)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR "expected exit ${code}, got '${rv}' from: ${ARGN}")
  endif()
endfunction()

function(require_identical a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${what}: resumed output differs from the uninterrupted run")
  endif()
endfunction()

# 1. The reference: an uninterrupted run.
run_expecting(0 ${APP} ${COMMON}
              --csv "${WORKDIR}/full.csv" --snapshot "${WORKDIR}/full.snap")

# 2. The same run, checkpointing every dt, killed at t = 3 (exit 42).
run_expecting(42 ${APP} ${COMMON} --checkpoint "${WORKDIR}/run.ck" --die-at 3)

# 3. Restart from the checkpoint; outputs must match byte for byte.
run_expecting(0 ${APP} ${COMMON} --resume "${WORKDIR}/run.ck"
              --csv "${WORKDIR}/resumed.csv" --snapshot "${WORKDIR}/resumed.snap")
require_identical("${WORKDIR}/full.csv" "${WORKDIR}/resumed.csv" "csv after resume")
require_identical("${WORKDIR}/full.snap" "${WORKDIR}/resumed.snap" "snapshot after resume")

# 4. Corrupt the primary checkpoint; the resume must reject it, fall back
#    to run.ck.bak, and still reproduce the uninterrupted outputs.
if(NOT EXISTS "${WORKDIR}/run.ck.bak")
  message(FATAL_ERROR "checkpoint rotation left no run.ck.bak")
endif()
file(WRITE "${WORKDIR}/run.ck" "this is not a checkpoint")
run_expecting(0 ${APP} ${COMMON} --resume "${WORKDIR}/run.ck"
              --csv "${WORKDIR}/fallback.csv" --snapshot "${WORKDIR}/fallback.snap")
require_identical("${WORKDIR}/full.csv" "${WORKDIR}/fallback.csv" "csv after fallback")
require_identical("${WORKDIR}/full.snap" "${WORKDIR}/fallback.snap" "snapshot after fallback")

# 5. With the fallback also gone, the resume must fail loudly, not start
#    over — exit 3, the dedicated restore-failed code (docs/ROBUSTNESS.md).
file(REMOVE "${WORKDIR}/run.ck.bak")
run_expecting(3 ${APP} ${COMMON} --resume "${WORKDIR}/run.ck"
              --csv "${WORKDIR}/never.csv")
if(EXISTS "${WORKDIR}/never.csv")
  message(FATAL_ERROR "failed resume still wrote outputs")
endif()
