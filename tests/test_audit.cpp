#include "core/audit.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "ca/pndca.hpp"
#include "core/simulation.hpp"
#include "dmc/frm.hpp"
#include "dmc/vssm.hpp"
#include "models/zgb.hpp"
#include "partition/coloring.hpp"

namespace casurf {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  AuditTest() : zgb_(models::make_zgb()) {}

  Configuration config(std::int32_t size = 20) const {
    return Configuration(Lattice(size, size), zgb_.model.species().size(), zgb_.vacant);
  }

  models::ZgbModel zgb_;
};

TEST_F(AuditTest, CleanSimulatorsPassUnderEveryAlgorithm) {
  for (const Algorithm alg :
       {Algorithm::kRsm, Algorithm::kVssm, Algorithm::kFrm, Algorithm::kNdca,
        Algorithm::kPndca, Algorithm::kLPndca, Algorithm::kTPndca,
        Algorithm::kParallelPndca}) {
    SimulationOptions opt;
    opt.algorithm = alg;
    opt.seed = 3;
    opt.threads = 2;
    auto sim = make_simulator(zgb_.model, config(), opt);
    sim->advance_to(2.0);
    StateAuditor auditor(AuditPolicy::kAbort);
    const AuditReport report = auditor.run(*sim);
    EXPECT_TRUE(report.clean()) << sim->name() << ":\n" << report.to_string();
  }
}

TEST_F(AuditTest, DetectsCorruptedConfigurationCounts) {
  VssmSimulator sim(zgb_.model, config(), 3);
  sim.advance_to(1.0);
  sim.configuration().corrupt_count_for_test(zgb_.co, +2);

  StateAuditor abort_auditor(AuditPolicy::kAbort);
  try {
    abort_auditor.run(sim);
    FAIL() << "corrupted counts passed the audit";
  } catch (const AuditError& e) {
    EXPECT_FALSE(e.report().clean());
    EXPECT_EQ(e.report().issues.front().component, "config-counts");
  }
  EXPECT_EQ(abort_auditor.audits_failed(), 1u);

  // kRepair recounts and the simulator keeps running.
  StateAuditor repair_auditor(AuditPolicy::kRepair);
  const AuditReport repaired = repair_auditor.run(sim);
  EXPECT_TRUE(repaired.repaired);
  EXPECT_TRUE(StateAuditor(AuditPolicy::kAbort).run(sim).clean());
  sim.advance_to(2.0);
}

TEST_F(AuditTest, DetectsAndRepairsVssmEnabledSetDrift) {
  VssmSimulator sim(zgb_.model, config(), 3);
  sim.advance_to(1.0);
  // Inject a phantom enabled site: CO adsorption on a site the recompute
  // will disagree about once its occupancy says otherwise.
  EnabledSet& set = sim.mutable_enabled_for_test(0);
  const SiteIndex victim = set.empty() ? 0 : set.items().front();
  if (set.contains(victim)) set.erase(victim);
  else set.insert(victim);

  try {
    StateAuditor(AuditPolicy::kAbort).run(sim);
    FAIL() << "corrupted enabled set passed the audit";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.report().issues.front().component, "vssm-enabled");
    EXPECT_NE(e.report().to_string().find("vssm-enabled"), std::string::npos);
  }

  const AuditReport repaired = StateAuditor(AuditPolicy::kRepair).run(sim);
  EXPECT_TRUE(repaired.repaired);
  EXPECT_TRUE(StateAuditor(AuditPolicy::kAbort).run(sim).clean());
  sim.advance_to(2.0);  // trajectory continues from the repaired state
}

TEST_F(AuditTest, DetectsAndRepairsFrmBookkeepingDrift) {
  FrmSimulator sim(zgb_.model, config(), 3);
  sim.advance_to(1.0);
  sim.corrupt_pair_for_test(0, 5);

  try {
    StateAuditor(AuditPolicy::kAbort).run(sim);
    FAIL() << "corrupted FRM pair table passed the audit";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.report().issues.front().component, "frm-queue");
  }

  EXPECT_TRUE(StateAuditor(AuditPolicy::kRepair).run(sim).repaired);
  EXPECT_TRUE(StateAuditor(AuditPolicy::kAbort).run(sim).clean());
  sim.advance_to(2.0);
}

TEST_F(AuditTest, DetectsAndRepairsRateCacheCorruption) {
  const Configuration cfg = config();
  PndcaSimulator sim(zgb_.model, config(),
                     {make_partition(cfg.lattice(), zgb_.model)}, 3,
                     ChunkPolicy::kRateWeighted);
  sim.advance_to(1.0);
  ASSERT_NE(sim.mutable_rate_cache_for_test(), nullptr);
  sim.mutable_rate_cache_for_test()->corrupt_count_for_test(0, 0, 0, +1);

  try {
    StateAuditor(AuditPolicy::kAbort).run(sim);
    FAIL() << "corrupted rate cache passed the audit";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.report().issues.front().component, "rate-cache");
  }

  EXPECT_TRUE(StateAuditor(AuditPolicy::kRepair).run(sim).repaired);
  EXPECT_TRUE(StateAuditor(AuditPolicy::kAbort).run(sim).clean());
  sim.advance_to(2.0);
}

TEST_F(AuditTest, AuditorCountsRunsAndFailures) {
  VssmSimulator sim(zgb_.model, config(), 3);
  StateAuditor auditor(AuditPolicy::kRepair);
  auditor.run(sim);
  sim.configuration().corrupt_count_for_test(zgb_.o, -1);
  auditor.run(sim);
  auditor.run(sim);
  EXPECT_EQ(auditor.audits_run(), 3u);
  EXPECT_EQ(auditor.audits_failed(), 1u);
}

TEST_F(AuditTest, ReportRendersOneLinePerIssue) {
  AuditReport report;
  report.issues.push_back({"config-counts", "species 1: stored 5, actual 3"});
  report.issues.push_back({"rate-cache", "slot 0 chunk 2 type 1: stored 9, actual 8"});
  const std::string text = report.to_string();
  EXPECT_NE(text.find("config-counts"), std::string::npos);
  EXPECT_NE(text.find("rate-cache"), std::string::npos);
  EXPECT_NE(text.find("stored 5, actual 3"), std::string::npos);
}

}  // namespace
}  // namespace casurf
