#include "ca/bca.hpp"

#include <gtest/gtest.h>

namespace casurf {
namespace {

/// Build the paper's Fig 3 setup: 9 sites in one dimension, blocks of
/// three, second phase shifted so the blocks are {0,7,8},{1,2,3},{4,5,6}.
BlockCA make_fig3(const std::vector<Species>& initial) {
  const Lattice lat(9, 1);
  Configuration cfg(lat, 2, 0);
  for (std::int32_t x = 0; x < 9; ++x) cfg.set(Vec2{x, 0}, initial[x]);
  std::vector<Partition> phases = {Partition::blocks(lat, 3, 1),
                                   Partition::blocks(lat, 3, 1, {1, 0})};
  return BlockCA(std::move(cfg), std::move(phases), fig3_zero_spreads_rule());
}

std::vector<Species> state_of(const BlockCA& ca) {
  std::vector<Species> v;
  for (SiteIndex s = 0; s < ca.configuration().size(); ++s) {
    v.push_back(ca.configuration().get(s));
  }
  return v;
}

TEST(Bca, Fig3FirstStepMatchesPaper) {
  // Paper Fig 3, first transition:
  //   0 1 1 | 1 1 1 | 0 1 1   ->   0 0 1 | 1 1 1 | 0 0 1
  BlockCA ca = make_fig3({0, 1, 1, 1, 1, 1, 0, 1, 1});
  ca.step();
  EXPECT_EQ(state_of(ca), (std::vector<Species>{0, 0, 1, 1, 1, 1, 0, 0, 1}));
}

TEST(Bca, Fig3SecondStepUsesShiftedBlocks) {
  // Second transition with blocks {0,7,8}, {1,2,3}, {4,5,6}: the zeros
  // spread across the old block edges.
  BlockCA ca = make_fig3({0, 1, 1, 1, 1, 1, 0, 1, 1});
  ca.run(2);
  EXPECT_EQ(state_of(ca), (std::vector<Species>{0, 0, 0, 1, 1, 0, 0, 0, 0}));
}

TEST(Bca, ZeroNeverSpreadsAcrossBlockEdgeWithinOneStep) {
  // Within a single phase, a 0 at a block edge cannot affect the adjacent
  // block — the defining BCA restriction.
  BlockCA ca = make_fig3({1, 1, 0, 1, 1, 1, 1, 1, 1});
  ca.step();
  // Block {0,1,2}: site 1 sees the 0. Block {3,4,5}: site 3's neighbor 2 is
  // in the other block, so site 3 must stay 1.
  EXPECT_EQ(state_of(ca), (std::vector<Species>{1, 0, 0, 1, 1, 1, 1, 1, 1}));
}

TEST(Bca, PhaseAlternation) {
  BlockCA ca = make_fig3({1, 1, 1, 1, 1, 1, 1, 1, 1});
  EXPECT_EQ(ca.current_phase().chunk_of(0), 0u);
  ca.step();
  // Second phase: site 0 belongs to the wrapped block {7, 8, 0} (chunk 2).
  EXPECT_EQ(ca.current_phase().chunk_of(0), 2u);
  ca.step();
  EXPECT_EQ(ca.current_phase().chunk_of(0), 0u);  // cycles back
}

TEST(Bca, AllOnesIsFixedPoint) {
  BlockCA ca = make_fig3({1, 1, 1, 1, 1, 1, 1, 1, 1});
  ca.run(4);
  EXPECT_EQ(ca.configuration().count(1), 9u);
}

TEST(Bca, AllZerosIsFixedPoint) {
  BlockCA ca = make_fig3({0, 0, 0, 0, 0, 0, 0, 0, 0});
  ca.run(4);
  EXPECT_EQ(ca.configuration().count(0), 9u);
}

TEST(Bca, ZerosEventuallyTakeOverWithShifts) {
  // With alternating phases the zero region grows without bound: from one
  // seed the lattice reaches all-zero.
  BlockCA ca = make_fig3({1, 1, 1, 1, 0, 1, 1, 1, 1});
  ca.run(12);
  EXPECT_EQ(ca.configuration().count(0), 9u);
}

TEST(Bca, ValidatesConstruction) {
  const Lattice lat(9, 1);
  Configuration cfg(lat, 2, 0);
  EXPECT_THROW(BlockCA(cfg, {}, fig3_zero_spreads_rule()), std::invalid_argument);
  EXPECT_THROW(BlockCA(cfg, {Partition::blocks(lat, 3, 1)}, nullptr),
               std::invalid_argument);
  EXPECT_THROW(BlockCA(cfg, {Partition::blocks(Lattice(6, 1), 3, 1)},
                       fig3_zero_spreads_rule()),
               std::invalid_argument);
}

}  // namespace
}  // namespace casurf
