#include "lattice/bitplanes.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {
namespace {

Configuration random_config(std::int32_t w, std::int32_t h, std::size_t species,
                            std::uint64_t seed) {
  Configuration cfg(Lattice(w, h), species, 0);
  Xoshiro256 rng(seed);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    cfg.set(s, static_cast<Species>(uniform_below(rng, species)));
  }
  return cfg;
}

TEST(Bitplanes, RebuildMatchesConfiguration) {
  for (const auto [w, h] : {std::pair{10, 7}, {64, 3}, {70, 5}, {128, 4}}) {
    const Configuration cfg = random_config(w, h, 3, 11);
    const SpeciesBitplanes planes(cfg);
    EXPECT_TRUE(planes.matches(cfg)) << w << "x" << h;
    for (std::int32_t y = 0; y < h; ++y) {
      for (std::int32_t x = 0; x < w; ++x) {
        const Species truth = cfg.get(cfg.lattice().index({x, y}));
        for (Species sp = 0; sp < 3; ++sp) {
          ASSERT_EQ(planes.bit(sp, x, y), sp == truth)
              << w << "x" << h << " (" << x << "," << y << ") sp " << int(sp);
        }
      }
    }
  }
}

TEST(Bitplanes, WindowBitsMatchWrappedColumns) {
  // bit f of window(sp, y, x0) must be the occupancy of column
  // (x0 + f) mod width — across narrow (<64), word-aligned, and ragged
  // (non-multiple-of-64) widths, for anchors beyond the row and negative.
  for (const std::int32_t w : {10, 64, 70, 128}) {
    const Configuration cfg = random_config(w, 6, 4, w * 131u);
    const SpeciesBitplanes planes(cfg);
    for (const std::int32_t y : {0, 3, 5, 7, -1}) {
      for (const std::int32_t x0 : {0, 1, 5, w - 1, w, 2 * w + 3, -1, -63}) {
        for (Species sp = 0; sp < 4; ++sp) {
          const std::uint64_t win = planes.window(sp, y, x0);
          for (std::uint32_t f = 0; f < 64; ++f) {
            const std::int32_t xc = (((x0 + static_cast<std::int32_t>(f)) % w) + w) % w;
            const std::int32_t yc = ((y % 6) + 6) % 6;
            ASSERT_EQ((win >> f) & 1u, planes.bit(sp, xc, yc) ? 1u : 0u)
                << "w=" << w << " y=" << y << " x0=" << x0 << " f=" << f;
          }
        }
      }
    }
  }
}

TEST(Bitplanes, MaskWindowIsUnionOfSpeciesWindows) {
  const Configuration cfg = random_config(70, 4, 5, 3);
  const SpeciesBitplanes planes(cfg);
  for (const SpeciesMask mask : {SpeciesMask{0b00101}, SpeciesMask{0b10010}}) {
    for (const std::int32_t x0 : {0, 17, 69, -2}) {
      std::uint64_t expect = 0;
      for (Species sp = 0; sp < 5; ++sp) {
        if (mask & (SpeciesMask{1} << sp)) expect |= planes.window(sp, 2, x0);
      }
      EXPECT_EQ(planes.mask_window(mask, 2, x0), expect) << "x0=" << x0;
    }
  }
}

TEST(Bitplanes, FullDomainMaskShortCircuitsToAllOnes) {
  const Configuration cfg = random_config(40, 4, 3, 5);
  const SpeciesBitplanes planes(cfg);
  const SpeciesMask full = (SpeciesMask{1} << 3) - 1;
  EXPECT_EQ(planes.mask_window(full, 1, 7), ~std::uint64_t{0});
  // Bits above num_species never contribute: they address no plane.
  EXPECT_EQ(planes.mask_window(full | 0xF0u, 1, 7), ~std::uint64_t{0});
  EXPECT_TRUE(planes.mask_bit(full, -5, 100));
}

TEST(Bitplanes, MaskBitAgreesWithWindow) {
  const Configuration cfg = random_config(10, 9, 4, 17);
  const SpeciesBitplanes planes(cfg);
  const SpeciesMask mask = 0b0110;
  for (std::int32_t y = -2; y < 11; ++y) {
    for (std::int32_t x = -12; x < 22; ++x) {
      const bool via_window = (planes.mask_window(mask, y, x) >> 0) & 1u;
      EXPECT_EQ(planes.mask_bit(mask, x, y), via_window)
          << "(" << x << "," << y << ")";
    }
  }
}

TEST(Bitplanes, ResyncSiteTracksWritesAndIsIdempotent) {
  Configuration cfg = random_config(70, 5, 4, 23);
  SpeciesBitplanes planes(cfg);
  Xoshiro256 rng(29);
  for (int i = 0; i < 200; ++i) {
    const SiteIndex s = static_cast<SiteIndex>(uniform_below(rng, cfg.size()));
    cfg.set(s, static_cast<Species>(uniform_below(rng, 4)));
    planes.resync_site(cfg, s);
    planes.resync_site(cfg, s);  // replaying must be harmless
    ASSERT_TRUE(planes.matches(cfg)) << "after resync " << i;
  }
}

TEST(Bitplanes, MatchesDetectsStaleBit) {
  Configuration cfg = random_config(12, 12, 3, 31);
  SpeciesBitplanes planes(cfg);
  ASSERT_TRUE(planes.matches(cfg));
  const SiteIndex s = 77;
  const Species old = cfg.get(s);
  cfg.set(s, static_cast<Species>((old + 1) % 3));
  EXPECT_FALSE(planes.matches(cfg));
  planes.rebuild(cfg);
  EXPECT_TRUE(planes.matches(cfg));
}

TEST(Bitplanes, ManySpeciesPlanes) {
  // More species than the old 8-color assumptions elsewhere: 12 planes,
  // each site in exactly one.
  const Configuration cfg = random_config(33, 5, 12, 41);
  const SpeciesBitplanes planes(cfg);
  EXPECT_TRUE(planes.matches(cfg));
  for (std::int32_t x = 0; x < 33; ++x) {
    int set = 0;
    for (Species sp = 0; sp < 12; ++sp) set += planes.bit(sp, x, 2) ? 1 : 0;
    ASSERT_EQ(set, 1) << x;
  }
}

}  // namespace
}  // namespace casurf
