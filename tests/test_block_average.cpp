#include "stats/block_average.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace casurf::stats {
namespace {

std::vector<double> iid_samples(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = uniform01(rng);
  return v;
}

/// AR(1) process with coefficient phi: correlation time ~ 1/(1 - phi).
std::vector<double> ar1_samples(std::size_t n, double phi, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  double x = 0;
  for (double& out : v) {
    x = phi * x + (uniform01(rng) - 0.5);
    out = x;
  }
  return v;
}

TEST(BlockAverage, IidErrorMatchesNaive) {
  const auto samples = iid_samples(4096, 1);
  const auto r = block_average(samples);
  EXPECT_NEAR(r.mean, 0.5, 0.02);
  // Independent samples: blocking must not inflate the error much.
  EXPECT_LT(r.error, 2.0 * r.naive_error);
  EXPECT_LT(r.statistical_inefficiency(), 4.0);
}

TEST(BlockAverage, CorrelatedSamplesInflateError) {
  const auto samples = ar1_samples(8192, 0.95, 2);
  const auto r = block_average(samples);
  // tau ~ 1/(1-0.95) = 20: the true error is ~ sqrt(2 tau) ~ 6x naive.
  EXPECT_GT(r.error, 3.0 * r.naive_error);
  EXPECT_GT(r.statistical_inefficiency(), 9.0);
}

TEST(BlockAverage, ErrorLevelsMonotoneUntilPlateauForAr1) {
  const auto samples = ar1_samples(8192, 0.9, 3);
  const auto r = block_average(samples);
  ASSERT_GE(r.error_per_level.size(), 4u);
  // The first few blocking levels must grow for a strongly correlated
  // series.
  EXPECT_LT(r.error_per_level[0], r.error_per_level[2]);
}

TEST(BlockAverage, NeedsEnoughSamples) {
  EXPECT_THROW((void)block_average({1, 2, 3}), std::invalid_argument);
}

TEST(BlockAverage, MeanIsExact) {
  const std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(block_average(v).mean, 4.5);
}

TEST(AutocorrelationTime, IidIsHalf) {
  const auto samples = iid_samples(8192, 4);
  EXPECT_NEAR(integrated_autocorrelation_time(samples), 0.5, 0.35);
}

TEST(AutocorrelationTime, Ar1MatchesTheory) {
  // tau_int for AR(1) = 1/2 + phi/(1-phi).
  const double phi = 0.8;
  const auto samples = ar1_samples(65536, phi, 5);
  const double expected = 0.5 + phi / (1.0 - phi);
  EXPECT_NEAR(integrated_autocorrelation_time(samples), expected, expected * 0.35);
}

TEST(AutocorrelationTime, NeedsEnoughSamples) {
  EXPECT_THROW((void)integrated_autocorrelation_time(std::vector<double>(8, 1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace casurf::stats
