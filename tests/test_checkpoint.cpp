#include "io/checkpoint.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "io/atomic_file.hpp"
#include "models/zgb.hpp"

namespace casurf {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, 8);
  return b;
}

class CheckpointTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  CheckpointTest() : zgb_(models::make_zgb()) {}

  std::unique_ptr<Simulator> make(std::int32_t size = 24, unsigned threads = 3) const {
    Configuration cfg(Lattice(size, size), zgb_.model.species().size(), zgb_.vacant);
    SimulationOptions opt;
    opt.algorithm = GetParam();
    opt.seed = 5;
    opt.l_trials = 2;
    opt.threads = threads;
    return make_simulator(zgb_.model, std::move(cfg), opt);
  }

  void TearDown() override {
    std::remove(path_.c_str());
  }

  models::ZgbModel zgb_;
  // PID-suffixed: ctest -j runs each test case as its own concurrent
  // process, so a fixed name would be clobbered by sibling cases.
  std::string path_ = ::testing::TempDir() + "casurf_checkpoint_test." +
                      std::to_string(::getpid()) + ".ck";
};

/// The core guarantee: interrupt at T/2, restore into a freshly
/// constructed simulator, continue — and land on exactly the state the
/// uninterrupted run reaches: same configuration, same counters, and the
/// same simulated time to the last mantissa bit.
TEST_P(CheckpointTest, ResumeIsBitIdentical) {
  auto uninterrupted = make();
  uninterrupted->advance_to(2.0);
  uninterrupted->advance_to(4.0);

  auto first_half = make();
  first_half->advance_to(2.0);
  io::save_checkpoint(path_, *first_half, "user-payload");

  auto resumed = make();
  EXPECT_EQ(io::restore_checkpoint(path_, *resumed), "user-payload");
  EXPECT_EQ(bits(resumed->time()), bits(first_half->time()));
  resumed->advance_to(4.0);

  EXPECT_EQ(resumed->configuration(), uninterrupted->configuration());
  EXPECT_EQ(bits(resumed->time()), bits(uninterrupted->time()));
  EXPECT_EQ(resumed->counters().trials, uninterrupted->counters().trials);
  EXPECT_EQ(resumed->counters().executed, uninterrupted->counters().executed);
  EXPECT_EQ(resumed->counters().steps, uninterrupted->counters().steps);
  EXPECT_EQ(resumed->counters().executed_per_type,
            uninterrupted->counters().executed_per_type);
}

TEST_P(CheckpointTest, PeekReportsMetadataWithoutASimulator) {
  auto sim = make();
  sim->advance_to(1.0);
  io::save_checkpoint(path_, *sim);

  const io::CheckpointInfo info = io::peek_checkpoint(path_);
  EXPECT_EQ(info.version, io::kCheckpointVersion);
  EXPECT_EQ(info.algorithm, sim->name());
  EXPECT_EQ(info.width, 24);
  EXPECT_EQ(info.height, 24);
  EXPECT_EQ(info.species, zgb_.model.species().names());
  EXPECT_EQ(bits(info.time), bits(sim->time()));
  EXPECT_EQ(info.steps, sim->counters().steps);
}

TEST_P(CheckpointTest, TruncatedFileIsRejected) {
  auto sim = make();
  sim->advance_to(1.0);
  io::save_checkpoint(path_, *sim);

  const std::string raw = io::read_file(path_);
  for (const std::size_t keep : {raw.size() - 1, raw.size() / 2, std::size_t{10}}) {
    std::ofstream(path_, std::ios::binary).write(raw.data(),
                                                 static_cast<std::streamsize>(keep));
    auto fresh = make();
    EXPECT_THROW((void)io::restore_checkpoint(path_, *fresh), io::CheckpointError)
        << "kept " << keep << " of " << raw.size() << " bytes";
  }
}

TEST_P(CheckpointTest, BitFlipIsCaughtByCrc) {
  auto sim = make();
  sim->advance_to(1.0);
  io::save_checkpoint(path_, *sim);

  std::string raw = io::read_file(path_);
  raw[raw.size() / 2] ^= 0x40;  // one flipped bit, deep in the payload
  std::ofstream(path_, std::ios::binary).write(raw.data(),
                                               static_cast<std::streamsize>(raw.size()));
  auto fresh = make();
  try {
    (void)io::restore_checkpoint(path_, *fresh);
    FAIL() << "corrupt checkpoint accepted";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos) << e.what();
  }
}

TEST_P(CheckpointTest, WrongLatticeSizeIsRejected) {
  auto sim = make(24);
  io::save_checkpoint(path_, *sim);
  auto smaller = make(16);
  EXPECT_THROW((void)io::restore_checkpoint(path_, *smaller), io::CheckpointError);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CheckpointTest,
    ::testing::Values(Algorithm::kRsm, Algorithm::kVssm, Algorithm::kFrm,
                      Algorithm::kNdca, Algorithm::kPndca, Algorithm::kLPndca,
                      Algorithm::kTPndca, Algorithm::kParallelPndca),
    [](const auto& info) {
      switch (info.param) {
        case Algorithm::kRsm: return "RSM";
        case Algorithm::kVssm: return "VSSM";
        case Algorithm::kFrm: return "FRM";
        case Algorithm::kNdca: return "NDCA";
        case Algorithm::kPndca: return "PNDCA";
        case Algorithm::kLPndca: return "LPNDCA";
        case Algorithm::kTPndca: return "TPNDCA";
        case Algorithm::kParallelPndca: return "Parallel";
      }
      return "unknown";
    });

class CheckpointFileTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  models::ZgbModel zgb_ = models::make_zgb();
  std::string path_ = ::testing::TempDir() + "casurf_checkpoint_file_test." +
                      std::to_string(::getpid()) + ".ck";

  std::unique_ptr<Simulator> make(Algorithm alg, unsigned threads = 2) const {
    Configuration cfg(Lattice(16, 16), zgb_.model.species().size(), zgb_.vacant);
    SimulationOptions opt;
    opt.algorithm = alg;
    opt.seed = 9;
    opt.threads = threads;
    return make_simulator(zgb_.model, std::move(cfg), opt);
  }
};

TEST_F(CheckpointFileTest, Crc32MatchesTheReferenceVector) {
  // The standard check value of CRC-32/ISO-HDLC over "123456789".
  const char* s = "123456789";
  EXPECT_EQ(io::crc32(std::span(reinterpret_cast<const std::uint8_t*>(s), 9)),
            0xCBF43926u);
  EXPECT_EQ(io::crc32({}), 0u);
}

TEST_F(CheckpointFileTest, WrongAlgorithmIsRejectedByName) {
  auto vssm = make(Algorithm::kVssm);
  vssm->advance_to(1.0);
  io::save_checkpoint(path_, *vssm);

  auto frm = make(Algorithm::kFrm);
  try {
    (void)io::restore_checkpoint(path_, *frm);
    FAIL() << "cross-algorithm restore accepted";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("VSSM"), std::string::npos) << e.what();
  }
}

TEST_F(CheckpointFileTest, NotACheckpointFileIsRejected) {
  std::ofstream(path_) << "casurf-snapshot 1\nlattice 4 4\n";
  auto sim = make(Algorithm::kRsm);
  EXPECT_THROW((void)io::restore_checkpoint(path_, *sim), io::CheckpointError);
  EXPECT_THROW((void)io::peek_checkpoint(path_), io::CheckpointError);
}

TEST_F(CheckpointFileTest, MissingFileIsACheckpointError) {
  auto sim = make(Algorithm::kRsm);
  EXPECT_THROW((void)io::restore_checkpoint("/nonexistent/x.ck", *sim),
               io::CheckpointError);
}

TEST_F(CheckpointFileTest, LargeUserSectionRoundTrips) {
  // Larger than the StateReader string sanity cap: the user blob must not
  // be subject to it.
  std::string blob(3u << 20, 'x');
  blob[42] = '\0';  // embedded NUL survives
  auto sim = make(Algorithm::kRsm);
  io::save_checkpoint(path_, *sim, blob);
  auto fresh = make(Algorithm::kRsm);
  EXPECT_EQ(io::restore_checkpoint(path_, *fresh), blob);
}

TEST_F(CheckpointFileTest, SaveLeavesNoTemporaryBehind) {
  auto sim = make(Algorithm::kRsm);
  io::save_checkpoint(path_, *sim);
  io::save_checkpoint(path_, *sim);  // overwrite goes through the same rename
  EXPECT_EQ(std::ifstream(path_ + ".tmp." + std::to_string(getpid())).good(), false);
  EXPECT_TRUE(std::ifstream(path_).good());
}

TEST_F(CheckpointFileTest, ParallelEngineResumesAtAnyThreadCount) {
  auto uninterrupted = make(Algorithm::kParallelPndca, 2);
  uninterrupted->advance_to(4.0);

  auto writer = make(Algorithm::kParallelPndca, 2);
  writer->advance_to(2.0);
  io::save_checkpoint(path_, *writer);

  for (const unsigned threads : {1u, 3u, 5u}) {
    auto resumed = make(Algorithm::kParallelPndca, threads);
    (void)io::restore_checkpoint(path_, *resumed);
    resumed->advance_to(4.0);
    EXPECT_EQ(resumed->configuration(), uninterrupted->configuration())
        << threads << " threads";
    EXPECT_EQ(resumed->counters().executed, uninterrupted->counters().executed)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace casurf
