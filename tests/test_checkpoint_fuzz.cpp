// Fuzz-style robustness contract for the checkpoint reader
// (docs/ROBUSTNESS.md): no damaged checkpoint — truncated anywhere,
// including exactly at section boundaries, or with any single bit flipped —
// may ever crash the restore or hand back garbage state. The only permitted
// outcomes are a CheckpointError (the caller then falls back to .bak or
// fails cleanly, as casurf_run does) or, for damage the container cannot
// see, a StateFormatError wrapped into CheckpointError by the reader.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "io/atomic_file.hpp"
#include "io/checkpoint.hpp"
#include "models/zgb.hpp"

namespace casurf {
namespace {

class CheckpointFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "casurf_checkpoint_fuzz." +
            std::to_string(::getpid()) + ".ck";
    zgb_.emplace(models::make_zgb(models::ZgbParams::from_y(0.45, 10.0)));
    opt_.algorithm = Algorithm::kVssm;
    opt_.seed = 17;
    std::unique_ptr<Simulator> sim = make();
    sim->advance_to(2.0);
    io::save_checkpoint(path_, *sim, "user-blob for the fuzzer");
    pristine_ = io::read_file(path_);
    reference_time_ = sim->time();
  }

  void TearDown() override { std::filesystem::remove(path_); }

  std::unique_ptr<Simulator> make() const {
    const Configuration init(Lattice(16, 16), 3, zgb_->vacant);
    return make_simulator(zgb_->model, init, opt_);
  }

  /// Write `bytes` over the checkpoint and require the restore to reject it
  /// with the checkpoint error protocol — not crash, not succeed.
  void expect_rejected(const std::string& bytes, const std::string& what) {
    io::atomic_write_file(path_, bytes);
    std::unique_ptr<Simulator> sim = make();
    EXPECT_THROW(io::restore_checkpoint(path_, *sim), io::CheckpointError)
        << what;
  }

  std::string path_;
  std::optional<models::ZgbModel> zgb_;
  SimulationOptions opt_;
  std::string pristine_;
  double reference_time_ = 0;
};

TEST_F(CheckpointFuzzTest, PristineFileRestores) {
  std::unique_ptr<Simulator> sim = make();
  EXPECT_EQ(io::restore_checkpoint(path_, *sim), "user-blob for the fuzzer");
  EXPECT_EQ(sim->time(), reference_time_);
}

TEST_F(CheckpointFuzzTest, TruncationAtEveryStrideIsRejected) {
  // Every prefix length with a fine stride (and all of the first 64 bytes,
  // which cover the magic/version/CRC/size header exactly).
  for (std::size_t len = 0; len < pristine_.size(); len += len < 64 ? 1 : 37) {
    expect_rejected(pristine_.substr(0, len),
                    "truncated to " + std::to_string(len) + " bytes");
  }
}

TEST_F(CheckpointFuzzTest, TruncationAtSectionBoundariesIsRejected) {
  // The payload is a section stream ("meta", "state", "user"); cutting
  // exactly at, just before, and just after each marker exercises the
  // reader's section framing rather than just the container's size check.
  for (const char* marker : {"meta", "state", "user"}) {
    const std::size_t at = pristine_.find(marker);
    ASSERT_NE(at, std::string::npos) << marker;
    for (const std::size_t cut :
         {at - 1, at, at + 1, at + std::string(marker).size()}) {
      expect_rejected(pristine_.substr(0, cut),
                      std::string("cut at section '") + marker + "' offset " +
                          std::to_string(cut));
    }
  }
}

TEST_F(CheckpointFuzzTest, EveryByteWithABitFlippedIsRejected) {
  // One bit per byte, rotating which bit, covers header fields (magic,
  // version, CRC, payload size) and the whole payload. The CRC catches
  // payload damage; the header checks catch the rest. Nothing may restore.
  for (std::size_t i = 0; i < pristine_.size(); ++i) {
    std::string mutated = pristine_;
    mutated[i] = static_cast<char>(
        static_cast<std::uint8_t>(mutated[i]) ^ (1u << (i % 8)));
    expect_rejected(mutated, "bit flip at offset " + std::to_string(i));
  }
}

TEST_F(CheckpointFuzzTest, TrailingGarbageAndWholesaleGarbageAreRejected) {
  expect_rejected(pristine_ + "x", "one trailing byte");
  expect_rejected(pristine_ + std::string(100, '\0'), "trailing zeros");
  expect_rejected("", "empty file");
  expect_rejected("this is not a checkpoint", "plain text");
  expect_rejected(std::string(4096, '\xff'), "all ones");
}

TEST_F(CheckpointFuzzTest, RestoreStillWorksAfterAllTheAbuse) {
  // A rejected restore must not poison anything global: put the pristine
  // bytes back and the same process must restore them fine.
  expect_rejected(pristine_.substr(0, pristine_.size() / 2), "half the file");
  io::atomic_write_file(path_, pristine_);
  std::unique_ptr<Simulator> sim = make();
  EXPECT_EQ(io::restore_checkpoint(path_, *sim), "user-blob for the fuzzer");
  EXPECT_EQ(sim->time(), reference_time_);
}

}  // namespace
}  // namespace casurf
