#include "partition/coloring.hpp"

#include <gtest/gtest.h>

#include "models/diffusion.hpp"
#include "models/pt100.hpp"
#include "models/zgb.hpp"

namespace casurf {
namespace {

TEST(FindLinearForm, ZgbOn100x100FindsFiveChunks) {
  auto zgb = models::make_zgb();
  const auto offsets = conflict_offsets(zgb.model);
  const auto form = find_linear_form(Lattice(100, 100), offsets);
  ASSERT_TRUE(form.has_value());
  EXPECT_EQ(form->m, 5);  // the paper's optimum (Fig 4)
  const Partition p = Partition::linear_form(Lattice(100, 100), form->a, form->b, form->m);
  EXPECT_TRUE(verify_partition(p, offsets));
}

TEST(FindLinearForm, EmptyOffsetsIsTrivial) {
  const auto form = find_linear_form(Lattice(8, 8), {});
  ASSERT_TRUE(form.has_value());
  EXPECT_EQ(form->m, 1);
}

TEST(FindLinearForm, SingleBondNeedsTwoChunks) {
  const auto form = find_linear_form(Lattice(8, 8), {{1, 0}, {-1, 0}});
  ASSERT_TRUE(form.has_value());
  EXPECT_EQ(form->m, 2);
}

TEST(FindLinearForm, RespectsSeamConstraint) {
  // On a 7 x 7 lattice no m = 5 linear form is periodic-consistent; the
  // search must skip to a larger m (or fail), never return a broken form.
  auto zgb = models::make_zgb();
  const auto offsets = conflict_offsets(zgb.model);
  const auto form = find_linear_form(Lattice(7, 7), offsets);
  if (form) {
    const Partition p =
        Partition::linear_form(Lattice(7, 7), form->a, form->b, form->m);
    EXPECT_TRUE(verify_partition(p, offsets));
    EXPECT_EQ(form->m % 7, 0);  // only multiples of 7 divide a*7 for a != 0
  }
}

TEST(GreedyColoring, ValidForZgbOnAwkwardSizes) {
  auto zgb = models::make_zgb();
  const auto offsets = conflict_offsets(zgb.model);
  for (const auto [w, h] : {std::pair{7, 7}, {9, 11}, {13, 6}, {10, 10}}) {
    const Partition p = greedy_coloring(Lattice(w, h), offsets);
    EXPECT_TRUE(verify_partition(p, offsets)) << w << "x" << h;
    // Never more chunks than degree + 1.
    EXPECT_LE(p.num_chunks(), offsets.size() + 1);
  }
}

TEST(GreedyColoring, EmptyOffsetsGiveOneChunk) {
  const Partition p = greedy_coloring(Lattice(5, 5), {});
  EXPECT_EQ(p.num_chunks(), 1u);
}

TEST(ChunkLowerBound, VonNeumannCliqueIsFive) {
  auto zgb = models::make_zgb();
  EXPECT_EQ(chunk_lower_bound(conflict_offsets(zgb.model)), 5u);
}

TEST(ChunkLowerBound, SingleBondIsTwo) {
  EXPECT_EQ(chunk_lower_bound({{1, 0}, {-1, 0}}), 2u);
}

TEST(MakePartition, ZgbIsOptimalFiveChunks) {
  auto zgb = models::make_zgb();
  const Partition p = make_partition(Lattice(20, 20), zgb.model);
  EXPECT_EQ(p.num_chunks(), 5u);
  EXPECT_TRUE(verify_partition(p, conflict_offsets(zgb.model)));
  // Matches the clique lower bound: provably optimal.
  EXPECT_EQ(p.num_chunks(), chunk_lower_bound(conflict_offsets(zgb.model)));
}

TEST(MakePartition, FallsBackToGreedyOnAwkwardLattice) {
  auto zgb = models::make_zgb();
  const Partition p = make_partition(Lattice(7, 9), zgb.model);
  EXPECT_TRUE(verify_partition(p, conflict_offsets(zgb.model)));
}

class ModelPartitionSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ModelPartitionSweep, AllBundledModelsGetValidPartitions) {
  const auto [w, h] = GetParam();
  const Lattice lat(w, h);
  {
    auto m = models::make_zgb();
    EXPECT_TRUE(verify_partition(make_partition(lat, m.model),
                                 conflict_offsets(m.model)));
  }
  {
    auto m = models::make_diffusion();
    EXPECT_TRUE(verify_partition(make_partition(lat, m.model),
                                 conflict_offsets(m.model)));
  }
  {
    auto m = models::make_pt100();
    EXPECT_TRUE(verify_partition(make_partition(lat, m.model),
                                 conflict_offsets(m.model)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ModelPartitionSweep,
                         ::testing::Values(std::pair{10, 10}, std::pair{15, 10},
                                           std::pair{7, 7}, std::pair{25, 25}));

TEST(MakePartition, TinyLatticesStillGetValidPartitions) {
  // On a 2x2 torus with conflict radius 2, every pair of sites conflicts
  // (wrap-around), so only singletons work; the machinery must discover
  // that rather than produce an invalid coloring.
  auto zgb = models::make_zgb();
  for (const auto [w, h] : {std::pair{2, 2}, {3, 3}, {4, 2}, {2, 5}}) {
    const Lattice lat(w, h);
    const Partition p = make_partition(lat, zgb.model);
    EXPECT_TRUE(verify_partition(p, conflict_offsets(zgb.model))) << w << "x" << h;
  }
  const Partition tiny = make_partition(Lattice(2, 2), zgb.model);
  EXPECT_EQ(tiny.num_chunks(), 4u);  // all-pairs conflicts: singletons
}

TEST(MakePartition, OneDimensionalLattices) {
  auto sf = models::make_single_file(1.0);
  for (const std::int32_t len : {5, 8, 16, 31}) {
    const Lattice lat(len, 1);
    const Partition p = make_partition(lat, sf.model);
    EXPECT_TRUE(verify_partition(p, conflict_offsets(sf.model))) << len;
    EXPECT_LE(p.num_chunks(), 6u) << len;
  }
}

TEST(MakePartition, ReadWritePolicyNeverNeedsMoreChunks) {
  auto zgb = models::make_zgb();
  const Lattice lat(20, 20);
  const Partition full = make_partition(lat, zgb.model, ConflictPolicy::kFullNeighborhood);
  const Partition rw = make_partition(lat, zgb.model, ConflictPolicy::kReadWrite);
  EXPECT_LE(rw.num_chunks(), full.num_chunks());
  EXPECT_TRUE(verify_partition(rw, conflict_offsets(zgb.model, ConflictPolicy::kReadWrite)));
}

}  // namespace
}  // namespace casurf
