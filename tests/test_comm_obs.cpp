// End-to-end check of the run report's "comm" section: an instrumented
// multi-rank world must produce a report whose per-edge totals reconcile
// exactly with the communicator's own Stats, whose per-rank wait rows and
// gauges are present, and whose run header carries the trace id and drop
// count — the contract `casurf_report --comm` and the serve daemon's
// harvest path consume.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "parallel/msgpass.hpp"

namespace casurf {
namespace {

using obs::json::Value;

Communicator::Stats run_instrumented(obs::MetricsRegistry* registry,
                                     obs::Tracer* tracer) {
  return Communicator::run(
      3,
      [](Communicator::Rank& rank) {
        const int next = (rank.rank() + 1) % rank.world_size();
        const int prev = (rank.rank() + rank.world_size() - 1) % rank.world_size();
        const std::vector<std::uint64_t> payload(8, rank.rank());
        for (int round = 0; round < 4; ++round) {
          rank.send_span(next, 1, payload.data(), payload.size());
          std::vector<std::uint64_t> got(8, 0);
          rank.recv_span(prev, 1, got.data(), got.size());
          rank.barrier();
        }
        (void)rank.allreduce_sum(static_cast<std::uint64_t>(1));
      },
      CommObs{registry, tracer});
}

TEST(CommObsReport, CommSectionReconcilesWithStats) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  tracer.set_trace_id("test-comm-obs");
  const Communicator::Stats stats = run_instrumented(&registry, &tracer);

  obs::RunInfo info;
  info.algorithm = "msgpass-test";
  info.model = "none";
  info.threads = 3;
  info.wall_seconds = 0.5;
  info.trace_id = tracer.trace_id();
  info.trace_drops = tracer.total_dropped();
  obs::CommModel model;
  model.messages = static_cast<double>(stats.messages);
  model.bytes = static_cast<double>(stats.bytes);

  const Value doc = Value::parse(obs::run_report_json(
      info, nullptr, &registry, &stats, nullptr, nullptr, nullptr, &model));
  ASSERT_EQ(doc.string_or("schema", ""), "casurf-run-report/1");

  const Value& run = doc.at("run");
  EXPECT_EQ(run.string_or("trace_id", ""), "test-comm-obs");
  EXPECT_EQ(run.number_or("trace_drops", -1), 0);

  const Value* comm = doc.find("comm");
  ASSERT_NE(comm, nullptr);
  ASSERT_TRUE(comm->is_object());
  EXPECT_EQ(comm->number_or("messages", 0),
            static_cast<double>(stats.messages));
  EXPECT_EQ(comm->number_or("bytes", 0), static_cast<double>(stats.bytes));
  EXPECT_EQ(comm->number_or("barriers", 0),
            static_cast<double>(stats.barriers));

#ifndef CASURF_NO_METRICS
  // Per-edge rows sum back to the communicator totals, exactly.
  const Value& edges = comm->at("edges");
  ASSERT_TRUE(edges.is_array());
  EXPECT_FALSE(edges.items().empty());
  double edge_messages = 0, edge_bytes = 0;
  for (const Value& e : edges.items()) {
    edge_messages += e.number_or("messages", 0);
    edge_bytes += e.number_or("bytes", 0);
    EXPECT_GE(e.number_or("src", -1), 0);
    EXPECT_GE(e.number_or("dst", -1), 0);
  }
  EXPECT_EQ(edge_messages, static_cast<double>(stats.messages));
  EXPECT_EQ(edge_bytes, static_cast<double>(stats.bytes));

  // One wait row per rank, with the aggregate wait_ns precomputed.
  const Value& ranks = comm->at("ranks");
  ASSERT_TRUE(ranks.is_array());
  ASSERT_EQ(ranks.items().size(), 3u);
  for (const Value& r : ranks.items()) {
    EXPECT_GE(r.number_or("wait_recv_ns", -1), 0);
    EXPECT_GE(r.number_or("wait_barrier_ns", -1), 0);
    EXPECT_GE(r.number_or("wait_allreduce_ns", -1), 0);
    EXPECT_EQ(r.number_or("wait_ns", -1),
              r.number_or("wait_recv_ns", 0) + r.number_or("wait_barrier_ns", 0) +
                  r.number_or("wait_allreduce_ns", 0));
    EXPECT_GE(r.number_or("queue_high_water", -1), 0);
  }

  // Barrier skew recorded at least once per completed epoch.
  const Value* skew = comm->find("barrier_skew");
  ASSERT_NE(skew, nullptr);
  ASSERT_TRUE(skew->is_object());
  EXPECT_GE(skew->number_or("count", 0), 4);

  // The registry's gauges (queue high-waters) surface in the metrics
  // section alongside counters and timers.
  const Value* gauges = doc.at("metrics").find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_FALSE(gauges->members().empty());
#else
  // Compile-out contract: the comm section still reports the communicator
  // totals, but has no probe-derived detail to offer.
  EXPECT_TRUE(comm->at("edges").items().empty());
  EXPECT_TRUE(comm->at("ranks").items().empty());
  EXPECT_TRUE(comm->at("barrier_skew").is_null());
#endif

  // The cost-model prediction is embedded for measured-vs-model output.
  const Value& m = comm->at("model");
  ASSERT_TRUE(m.is_object());
  EXPECT_EQ(m.number_or("messages", -1), static_cast<double>(stats.messages));
}

TEST(CommObsReport, CommSectionNullWithoutCommunicator) {
  obs::MetricsRegistry registry;
  obs::RunInfo info;
  info.algorithm = "rsm";
  const Value doc =
      Value::parse(obs::run_report_json(info, nullptr, &registry));
  const Value* comm = doc.find("comm");
  ASSERT_NE(comm, nullptr);
  EXPECT_TRUE(comm->is_null());
}

TEST(CommObsReport, TraceFooterCarriesIdAndOrigin) {
  obs::Tracer tracer;
  tracer.set_trace_id("job-42");
  tracer.ring(obs::kRankLaneBase).comm_instant("comm/send", 0, 1, 7, 16);
  const Value doc = Value::parse(tracer.chrome_trace_json());
  const Value& other = doc.at("otherData");
  EXPECT_EQ(other.string_or("schema", ""), "casurf-trace/1");
  EXPECT_EQ(other.string_or("trace_id", ""), "job-42");
  EXPECT_EQ(other.number_or("t0_ns", 0),
            static_cast<double>(tracer.t0_ns()));

#ifndef CASURF_NO_METRICS
  // The comm event's args carry the edge and payload.
  bool seen = false;
  for (const Value& e : doc.at("traceEvents").items()) {
    if (e.string_or("name", "") != "comm/send") continue;
    seen = true;
    const Value& args = e.at("args");
    EXPECT_EQ(args.number_or("src", -1), 0);
    EXPECT_EQ(args.number_or("dst", -1), 1);
    EXPECT_EQ(args.number_or("tag", -1), 7);
    EXPECT_EQ(args.number_or("bytes", -1), 16);
  }
  EXPECT_TRUE(seen);
#else
  EXPECT_EQ(tracer.total_recorded(), 0u);
#endif
}

}  // namespace
}  // namespace casurf
