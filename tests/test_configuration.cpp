#include "lattice/configuration.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace casurf {
namespace {

TEST(Configuration, InitialFill) {
  const Configuration cfg(Lattice(4, 4), 3, 0);
  EXPECT_EQ(cfg.count(0), 16u);
  EXPECT_EQ(cfg.count(1), 0u);
  EXPECT_EQ(cfg.count(2), 0u);
  for (SiteIndex s = 0; s < cfg.size(); ++s) EXPECT_EQ(cfg.get(s), 0);
}

TEST(Configuration, NonZeroFill) {
  const Configuration cfg(Lattice(3, 3), 2, 1);
  EXPECT_EQ(cfg.count(1), 9u);
  EXPECT_EQ(cfg.count(0), 0u);
}

TEST(Configuration, SetMaintainsCounts) {
  Configuration cfg(Lattice(4, 4), 3, 0);
  cfg.set(SiteIndex{5}, 1);
  cfg.set(SiteIndex{6}, 2);
  cfg.set(SiteIndex{7}, 1);
  EXPECT_EQ(cfg.count(0), 13u);
  EXPECT_EQ(cfg.count(1), 2u);
  EXPECT_EQ(cfg.count(2), 1u);
  cfg.set(SiteIndex{5}, 2);  // 1 -> 2
  EXPECT_EQ(cfg.count(1), 1u);
  EXPECT_EQ(cfg.count(2), 2u);
  cfg.set(SiteIndex{5}, 2);  // idempotent
  EXPECT_EQ(cfg.count(2), 2u);
}

TEST(Configuration, CountInvariantUnderRandomWrites) {
  Configuration cfg(Lattice(8, 8), 4, 0);
  std::uint64_t x = 42;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    cfg.set(static_cast<SiteIndex>((x >> 33) % cfg.size()),
            static_cast<Species>((x >> 13) % 4));
  }
  std::uint64_t total = 0;
  for (Species s = 0; s < 4; ++s) total += cfg.count(s);
  EXPECT_EQ(total, cfg.size());
  // Cross-check against a raw recount.
  std::array<std::uint64_t, 4> recount{};
  for (SiteIndex s = 0; s < cfg.size(); ++s) ++recount[cfg.get(s)];
  for (Species s = 0; s < 4; ++s) EXPECT_EQ(recount[s], cfg.count(s));
}

TEST(Configuration, Coverage) {
  Configuration cfg(Lattice(10, 10), 2, 0);
  for (SiteIndex s = 0; s < 25; ++s) cfg.set(s, 1);
  EXPECT_DOUBLE_EQ(cfg.coverage(1), 0.25);
  EXPECT_DOUBLE_EQ(cfg.coverage(0), 0.75);
}

TEST(Configuration, SetByCoordWraps) {
  Configuration cfg(Lattice(5, 5), 2, 0);
  cfg.set(Vec2{-1, -1}, 1);
  EXPECT_EQ(cfg.get(Vec2{4, 4}), 1);
  EXPECT_EQ(cfg.get(cfg.lattice().index({4, 4})), 1);
}

TEST(Configuration, FillResets) {
  Configuration cfg(Lattice(4, 4), 3, 0);
  cfg.set(SiteIndex{1}, 2);
  cfg.fill(1);
  EXPECT_EQ(cfg.count(1), 16u);
  EXPECT_EQ(cfg.count(0), 0u);
  EXPECT_EQ(cfg.count(2), 0u);
}

TEST(Configuration, RawWritesPlusDeltaMerge) {
  Configuration cfg(Lattice(4, 4), 3, 0);
  std::array<std::int64_t, 3> delta{};
  // Simulate what a parallel worker does.
  for (SiteIndex s = 0; s < 4; ++s) {
    const Species old = cfg.get(s);
    cfg.set_raw(s, 2);
    --delta[old];
    ++delta[2];
  }
  cfg.apply_count_delta(delta.data());
  EXPECT_EQ(cfg.count(0), 12u);
  EXPECT_EQ(cfg.count(2), 4u);
}

TEST(Configuration, RenderGlyphs) {
  Configuration cfg(Lattice(3, 2), 2, 0);
  cfg.set(Vec2{1, 0}, 1);
  const std::array<char, 2> glyphs = {'.', 'X'};
  EXPECT_EQ(cfg.render(glyphs), ".X.\n...\n");
}

TEST(Configuration, Equality) {
  Configuration a(Lattice(3, 3), 2, 0);
  Configuration b(Lattice(3, 3), 2, 0);
  EXPECT_EQ(a, b);
  b.set(SiteIndex{0}, 1);
  EXPECT_FALSE(a == b);
}

TEST(Configuration, InvalidConstruction) {
  EXPECT_THROW(Configuration(Lattice(2, 2), 0), std::invalid_argument);
  EXPECT_THROW(Configuration(Lattice(2, 2), 33), std::invalid_argument);
  EXPECT_THROW(Configuration(Lattice(2, 2), 2, 5), std::invalid_argument);
}

}  // namespace
}  // namespace casurf
